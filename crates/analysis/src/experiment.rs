//! Serde-able experiment records.
//!
//! Every experiment binary emits, next to its human-readable Markdown, a
//! JSON [`ExperimentRecord`] so EXPERIMENTS.md numbers are regenerable and
//! diffable (the role of the paper's tables).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// One measured configuration within an experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Named parameters of the run (family, n, D, α, seed, …).
    pub params: BTreeMap<String, String>,
    /// Named measurements (steps, success, radius, …).
    pub metrics: BTreeMap<String, f64>,
}

impl RunRecord {
    /// An empty record.
    pub fn new() -> Self {
        RunRecord { params: BTreeMap::new(), metrics: BTreeMap::new() }
    }

    /// Adds a parameter (builder style).
    pub fn param(mut self, key: &str, value: impl ToString) -> Self {
        self.params.insert(key.to_string(), value.to_string());
        self
    }

    /// Adds a metric (builder style).
    pub fn metric(mut self, key: &str, value: f64) -> Self {
        self.metrics.insert(key.to_string(), value);
        self
    }
}

impl Default for RunRecord {
    fn default() -> Self {
        Self::new()
    }
}

/// A full experiment: id, description, and all runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id from DESIGN.md (e.g. `"E3"`).
    pub id: String,
    /// The paper claim being reproduced.
    pub claim: String,
    /// All measured runs.
    pub runs: Vec<RunRecord>,
    /// Free-form conclusions (filled by the binary after analysis).
    pub notes: Vec<String>,
}

impl ExperimentRecord {
    /// A fresh record for experiment `id` reproducing `claim`.
    pub fn new(id: &str, claim: &str) -> Self {
        ExperimentRecord {
            id: id.to_string(),
            claim: claim.to_string(),
            runs: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a run.
    pub fn push(&mut self, run: RunRecord) {
        self.runs.push(run);
    }

    /// Appends an analysis note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("records always serialize")
    }

    /// Writes the JSON next to the experiment output.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn save(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id.to_lowercase()));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_json_round_trip() {
        let mut e = ExperimentRecord::new("E3", "Theorem 14: MIS in O(log^3 n)");
        e.push(
            RunRecord::new()
                .param("family", "grid")
                .param("n", 256)
                .metric("steps", 12345.0)
                .metric("success", 1.0),
        );
        e.note("fitted exponent 2.9");
        let json = e.to_json();
        let back: ExperimentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.runs[0].params["n"], "256");
        assert_eq!(back.runs[0].metrics["steps"], 12345.0);
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("radionet-test-records");
        let e = ExperimentRecord::new("E0", "smoke");
        let path = e.save(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"id\": \"E0\""));
        std::fs::remove_file(path).ok();
    }
}
