//! Scaling-law fits: `y = a·x^b` via least squares on `(ln x, ln y)`.
//!
//! Experiment E3 fits the Radio MIS step count against `log n` and checks
//! the exponent is ≈ 3 (Theorem 14's `O(log³ n)`); E8 fits broadcast time
//! against `D` per family.

use serde::{Deserialize, Serialize};

/// A fitted power law `y ≈ a·x^b`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Multiplier `a`.
    pub a: f64,
    /// Exponent `b`.
    pub b: f64,
    /// Coefficient of determination on the log–log scale.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.a * x.powf(self.b)
    }
}

/// Fits `y = a·x^b` by ordinary least squares on logs.
///
/// Pairs with non-positive coordinates are skipped (logs undefined).
/// Returns `None` with fewer than two usable points or zero variance in `x`.
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<PowerLawFit> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0 && x.is_finite() && y.is_finite())
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let intercept = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = logs.iter().map(|(x, y)| (y - (intercept + b * x)).powi(2)).sum();
    let r_squared = if ss_tot <= 1e-12 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Some(PowerLawFit { a: intercept.exp(), b, r_squared })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let pts: Vec<(f64, f64)> =
            (1..20).map(|i| (i as f64, 3.0 * (i as f64).powf(2.5))).collect();
        let fit = fit_power_law(&pts).unwrap();
        assert!((fit.b - 2.5).abs() < 1e-9, "b = {}", fit.b);
        assert!((fit.a - 3.0).abs() < 1e-6, "a = {}", fit.a);
        assert!(fit.r_squared > 0.999_999);
        assert!((fit.predict(10.0) - 3.0 * 10f64.powf(2.5)).abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_reasonable() {
        // Deterministic "noise": ±10% alternating.
        let pts: Vec<(f64, f64)> = (1..40)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 1.1 } else { 0.9 };
                (x, 5.0 * x.powf(3.0) * noise)
            })
            .collect();
        let fit = fit_power_law(&pts).unwrap();
        assert!((fit.b - 3.0).abs() < 0.1, "b = {}", fit.b);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(fit_power_law(&[]).is_none());
        assert!(fit_power_law(&[(1.0, 2.0)]).is_none());
        assert!(fit_power_law(&[(1.0, 2.0), (1.0, 3.0)]).is_none()); // zero x-variance
        assert!(fit_power_law(&[(0.0, 2.0), (-1.0, 3.0)]).is_none()); // no positive points
    }

    #[test]
    fn skips_nonpositive_points() {
        let mut pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, (i as f64).powi(2))).collect();
        pts.push((0.0, 5.0));
        pts.push((3.0, -1.0));
        let fit = fit_power_law(&pts).unwrap();
        assert!((fit.b - 2.0).abs() < 1e-9);
    }
}
