//! Ingestion helpers: grouping and summarizing externally produced
//! [`RunRecord`] rows (e.g. the scenario sweep runner's output) into the
//! aggregate views the tables print.

use crate::experiment::RunRecord;
use crate::stats::Summary;
use std::collections::BTreeMap;

/// Groups rows by the values of `keys` (joined with `/`), preserving
/// first-seen group order, and summarizes `metric` within each group.
///
/// Rows missing the metric are skipped; rows missing a key get `"?"` for
/// that component.
pub fn group_summaries<'a>(
    rows: impl IntoIterator<Item = &'a RunRecord>,
    keys: &[&str],
    metric: &str,
) -> Vec<(String, Summary)> {
    let mut order: Vec<String> = Vec::new();
    let mut buckets: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for row in rows {
        let Some(value) = row.metrics.get(metric) else { continue };
        let label = keys
            .iter()
            .map(|k| row.params.get(*k).map(String::as_str).unwrap_or("?"))
            .collect::<Vec<_>>()
            .join("/");
        if !buckets.contains_key(&label) {
            order.push(label.clone());
        }
        buckets.entry(label).or_default().push(*value);
    }
    order
        .into_iter()
        .map(|label| {
            let summary = Summary::of(&buckets[&label]);
            (label, summary)
        })
        .collect()
}

/// How a time-resolved series drifted over a run: endpoints and envelope.
///
/// The mobility experiments feed per-sample α-bounds and diameters through
/// this to report how the independence-number regime shifts as nodes move.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesDrift {
    /// First value of the series.
    pub first: f64,
    /// Last value of the series.
    pub last: f64,
    /// Minimum over the series.
    pub lo: f64,
    /// Maximum over the series.
    pub hi: f64,
}

impl SeriesDrift {
    /// Relative change `last / first − 1` (0 when the series starts at 0).
    pub fn relative_change(&self) -> f64 {
        if self.first == 0.0 {
            0.0
        } else {
            self.last / self.first - 1.0
        }
    }
}

/// Summarizes a time-ordered series into its [`SeriesDrift`]; `None` for
/// an empty series.
pub fn drift(values: &[f64]) -> Option<SeriesDrift> {
    let (&first, &last) = (values.first()?, values.last()?);
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(SeriesDrift { first, last, lo, hi })
}

/// The fraction of rows in which `metric` equals 1.0 (success-rate
/// aggregation for boolean metrics), or `None` if no row carries it.
pub fn success_rate<'a>(
    rows: impl IntoIterator<Item = &'a RunRecord>,
    metric: &str,
) -> Option<f64> {
    let values: Vec<f64> =
        rows.into_iter().filter_map(|r| r.metrics.get(metric)).copied().collect();
    if values.is_empty() {
        return None;
    }
    Some(values.iter().filter(|v| **v == 1.0).count() as f64 / values.len() as f64)
}

/// The sum of `metric` over every row that carries it (counter
/// aggregation — e.g. total `scheduler_events` or `cache_hit`s across a
/// sweep), or `None` if no row carries it.
///
/// Counters are per-cell in sweep rows; summing them recovers the
/// sweep-wide total a service's `stats` endpoint reports, which is how the
/// two are cross-checked.
pub fn metric_total<'a>(
    rows: impl IntoIterator<Item = &'a RunRecord>,
    metric: &str,
) -> Option<f64> {
    let mut seen = false;
    let mut total = 0.0;
    for row in rows {
        if let Some(v) = row.metrics.get(metric) {
            seen = true;
            total += *v;
        }
    }
    seen.then_some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(scenario: &str, n: u64, time: f64, ok: f64) -> RunRecord {
        RunRecord::new()
            .param("scenario", scenario)
            .param("n", n)
            .metric("clock_total", time)
            .metric("success", ok)
    }

    #[test]
    fn groups_preserve_order_and_summarize() {
        let rows = vec![
            row("churn", 64, 100.0, 1.0),
            row("split", 64, 300.0, 0.0),
            row("churn", 64, 200.0, 1.0),
        ];
        let groups = group_summaries(&rows, &["scenario", "n"], "clock_total");
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "churn/64");
        assert_eq!(groups[0].1.count, 2);
        assert!((groups[0].1.mean - 150.0).abs() < 1e-9);
        assert_eq!(groups[1].0, "split/64");
    }

    #[test]
    fn missing_metric_rows_skipped() {
        let rows = vec![row("a", 1, 5.0, 1.0), RunRecord::new().param("scenario", "a")];
        let groups = group_summaries(&rows, &["scenario"], "clock_total");
        assert_eq!(groups[0].1.count, 1);
    }

    #[test]
    fn success_rates() {
        let rows = vec![row("a", 1, 0.0, 1.0), row("a", 1, 0.0, 0.0)];
        assert_eq!(success_rate(&rows, "success"), Some(0.5));
        assert_eq!(success_rate(&rows, "nope"), None);
    }

    #[test]
    fn totals_sum_only_rows_carrying_the_metric() {
        let rows = vec![
            row("a", 1, 5.0, 1.0),
            row("a", 1, 7.5, 0.0),
            RunRecord::new().param("scenario", "a"),
        ];
        assert_eq!(metric_total(&rows, "clock_total"), Some(12.5));
        assert_eq!(metric_total(&rows, "success"), Some(1.0));
        assert_eq!(metric_total(&rows, "cache_hit"), None);
    }

    #[test]
    fn totals_distinguish_absent_from_zero_across_heterogeneous_rows() {
        // A partly cache-served sweep produces heterogeneous rows: served
        // cells carry `cache_hit`, direct cells omit it entirely. The
        // total must count exactly the rows carrying the metric — and a
        // metric that is present but zero is `Some(0.0)`, never conflated
        // with "no row carries it".
        let rows = vec![
            row("a", 1, 5.0, 1.0).metric("cache_hit", 1.0),
            row("a", 1, 6.0, 1.0).metric("cache_hit", 0.0),
            row("a", 1, 7.0, 0.0), // direct run: no cache metric at all
        ];
        assert_eq!(metric_total(&rows, "cache_hit"), Some(1.0));
        assert_eq!(metric_total(&rows, "kernel_fallbacks"), None);
        let zeroed = vec![row("z", 1, 0.0, 0.0)];
        assert_eq!(metric_total(&zeroed, "clock_total"), Some(0.0));
        let empty: Vec<RunRecord> = Vec::new();
        assert_eq!(metric_total(&empty, "clock_total"), None);
        // The sibling aggregations skip the same rows, so all three
        // describe the same population of served cells.
        assert_eq!(success_rate(&rows, "cache_hit"), Some(0.5));
        assert_eq!(group_summaries(&rows, &["scenario"], "cache_hit")[0].1.count, 2);
    }

    #[test]
    fn drift_summarizes_endpoints_and_envelope() {
        assert_eq!(drift(&[]), None);
        let d = drift(&[4.0, 9.0, 2.0, 6.0]).unwrap();
        assert_eq!(d.first, 4.0);
        assert_eq!(d.last, 6.0);
        assert_eq!(d.lo, 2.0);
        assert_eq!(d.hi, 9.0);
        assert!((d.relative_change() - 0.5).abs() < 1e-12);
        assert_eq!(drift(&[0.0, 3.0]).unwrap().relative_change(), 0.0);
    }
}
