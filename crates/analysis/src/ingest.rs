//! Ingestion helpers: grouping and summarizing externally produced
//! [`RunRecord`] rows (e.g. the scenario sweep runner's output) into the
//! aggregate views the tables print.

use crate::experiment::RunRecord;
use crate::stats::Summary;
use std::collections::BTreeMap;

/// Groups rows by the values of `keys` (joined with `/`), preserving
/// first-seen group order, and summarizes `metric` within each group.
///
/// Rows missing the metric are skipped; rows missing a key get `"?"` for
/// that component.
pub fn group_summaries<'a>(
    rows: impl IntoIterator<Item = &'a RunRecord>,
    keys: &[&str],
    metric: &str,
) -> Vec<(String, Summary)> {
    let mut order: Vec<String> = Vec::new();
    let mut buckets: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for row in rows {
        let Some(value) = row.metrics.get(metric) else { continue };
        let label = keys
            .iter()
            .map(|k| row.params.get(*k).map(String::as_str).unwrap_or("?"))
            .collect::<Vec<_>>()
            .join("/");
        if !buckets.contains_key(&label) {
            order.push(label.clone());
        }
        buckets.entry(label).or_default().push(*value);
    }
    order
        .into_iter()
        .map(|label| {
            let summary = Summary::of(&buckets[&label]);
            (label, summary)
        })
        .collect()
}

/// The fraction of rows in which `metric` equals 1.0 (success-rate
/// aggregation for boolean metrics), or `None` if no row carries it.
pub fn success_rate<'a>(
    rows: impl IntoIterator<Item = &'a RunRecord>,
    metric: &str,
) -> Option<f64> {
    let values: Vec<f64> =
        rows.into_iter().filter_map(|r| r.metrics.get(metric)).copied().collect();
    if values.is_empty() {
        return None;
    }
    Some(values.iter().filter(|v| **v == 1.0).count() as f64 / values.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(scenario: &str, n: u64, time: f64, ok: f64) -> RunRecord {
        RunRecord::new()
            .param("scenario", scenario)
            .param("n", n)
            .metric("clock_total", time)
            .metric("success", ok)
    }

    #[test]
    fn groups_preserve_order_and_summarize() {
        let rows = vec![
            row("churn", 64, 100.0, 1.0),
            row("split", 64, 300.0, 0.0),
            row("churn", 64, 200.0, 1.0),
        ];
        let groups = group_summaries(&rows, &["scenario", "n"], "clock_total");
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "churn/64");
        assert_eq!(groups[0].1.count, 2);
        assert!((groups[0].1.mean - 150.0).abs() < 1e-9);
        assert_eq!(groups[1].0, "split/64");
    }

    #[test]
    fn missing_metric_rows_skipped() {
        let rows = vec![row("a", 1, 5.0, 1.0), RunRecord::new().param("scenario", "a")];
        let groups = group_summaries(&rows, &["scenario"], "clock_total");
        assert_eq!(groups[0].1.count, 1);
    }

    #[test]
    fn success_rates() {
        let rows = vec![row("a", 1, 0.0, 1.0), row("a", 1, 0.0, 0.0)];
        assert_eq!(success_rate(&rows, "success"), Some(0.5));
        assert_eq!(success_rate(&rows, "nope"), None);
    }
}
