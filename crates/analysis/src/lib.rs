//! Experiment-harness support: statistics, scaling-law fits, Markdown
//! tables and serde-able experiment records.
//!
//! Pure data manipulation — no dependency on the simulator — so every crate
//! (and external users) can consume it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod fit;
pub mod ingest;
pub mod stats;
pub mod table;

pub use experiment::{ExperimentRecord, RunRecord};
pub use fit::{fit_power_law, PowerLawFit};
pub use ingest::{group_summaries, metric_total, success_rate};
pub use stats::{percentile, Summary};
pub use table::Table;
