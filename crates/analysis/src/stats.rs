//! Summary statistics for repeated measurements.

use serde::{Deserialize, Serialize};

/// Summary of a sample: count, mean, standard deviation, min/median/max.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two points).
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Median (midpoint-interpolated for even sizes).
    pub median: f64,
    /// Largest value.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Non-finite values are ignored.
    pub fn of(values: &[f64]) -> Self {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return Summary { count: 0, mean: 0.0, std_dev: 0.0, min: 0.0, median: 0.0, max: 0.0 };
        }
        v.sort_by(f64::total_cmp);
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = if n >= 2 {
            v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let median = if n % 2 == 1 { v[n / 2] } else { (v[n / 2 - 1] + v[n / 2]) / 2.0 };
        Summary { count: n, mean, std_dev: var.sqrt(), min: v[0], median, max: v[n - 1] }
    }

    /// Half-width of a ~95% normal-approximation confidence interval on the
    /// mean (`1.96·σ/√n`; 0 for n < 2).
    pub fn ci95(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

/// Mean of a slice (0 for empty input); convenience for one-off uses.
pub fn mean(values: &[f64]) -> f64 {
    Summary::of(values).mean
}

/// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy.
///
/// # Panics
///
/// Panics if `q` is outside `\[0, 1\]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile needs q in [0, 1]");
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    v[idx]
}

/// Exact nearest-rank percentile over a **sorted** integer sample
/// (`rank = ⌈q·len⌉`, clamped to `[1, len]`; empty ⇒ 0).
///
/// This is the classic nearest-rank definition used by latency summaries —
/// `radionetd`'s `JobQueue::latency()` and the traffic `DeliveryLedger`
/// both fold through here, so the two layers can never disagree on what
/// "p99" means. Note it differs from [`quantile`], which interpolates the
/// index over `len - 1` (a convention kept for the recorded experiment
/// tables).
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!((0.0..=1.0).contains(&q), "percentile needs q in [0, 1]");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        let expected_sd = (((1.5f64).powi(2) * 2.0 + (0.5f64).powi(2) * 2.0) / 3.0).sqrt();
        assert!((s.std_dev - expected_sd).abs() < 1e-12);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn empty_and_single() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn ignores_non_finite() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "quantile needs q in [0, 1]")]
    fn quantile_range_checked() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn percentile_empty_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[], 0.99), 0);
    }

    #[test]
    fn percentile_single_and_extremes() {
        let one = [42u64];
        assert_eq!(percentile(&one, 0.0), 42);
        assert_eq!(percentile(&one, 0.5), 42);
        assert_eq!(percentile(&one, 1.0), 42);
        // q = 0 clamps the rank up to 1 (the minimum), q = 1 is the max.
        let v = [1u64, 2, 3, 4];
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 4);
    }

    #[test]
    fn percentile_nearest_rank_semantics() {
        // Nearest rank: ⌈0.5·4⌉ = 2 → the 2nd smallest, no interpolation.
        let v = [10u64, 20, 30, 40];
        assert_eq!(percentile(&v, 0.5), 20);
        assert_eq!(percentile(&v, 0.51), 30);
        assert_eq!(percentile(&v, 0.99), 40);
        // The exact values radionetd's queue summary has always produced.
        let micros = [5u64, 7, 9, 11, 13];
        assert_eq!(percentile(&micros, 0.50), 9);
        assert_eq!(percentile(&micros, 0.99), 13);
    }

    #[test]
    fn percentile_tied_values() {
        let v = [7u64, 7, 7, 7, 9];
        assert_eq!(percentile(&v, 0.5), 7);
        assert_eq!(percentile(&v, 0.8), 7);
        assert_eq!(percentile(&v, 0.81), 9);
    }

    #[test]
    #[should_panic(expected = "percentile needs q in [0, 1]")]
    fn percentile_range_checked() {
        let _ = percentile(&[1], -0.1);
    }

    #[test]
    fn odd_median() {
        let s = Summary::of(&[9.0, 1.0, 5.0]);
        assert_eq!(s.median, 5.0);
    }
}
