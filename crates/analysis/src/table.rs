//! Markdown table rendering for experiment binaries.

/// A simple Markdown table builder.
///
/// ```
/// use radionet_analysis::Table;
/// let mut t = Table::new(["n", "steps"]);
/// t.row(["256", "1234"]);
/// let s = t.render();
/// assert!(s.contains("| n"));
/// assert!(s.contains("| 256"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders aligned GitHub-flavored Markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", cell, w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        let _ = cols;
        out
    }
}

/// Formats a float with 1 decimal for tables.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 2 decimals for tables.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals for tables.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["family", "n", "time"]);
        t.row(["grid", "1024", "33.5"]);
        t.row(["unit-disk", "64", "7"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| family"));
        assert!(lines[1].starts_with("|---"));
        assert!(lines[2].contains("| 1024"));
        // All lines equal width (aligned).
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains("| x"));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(1.267), "1.27");
        assert_eq!(f3(1.2675), "1.268"); // banker's-free rounding via format!
    }
}
