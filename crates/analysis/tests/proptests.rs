//! Property tests for the analysis helpers.

use proptest::prelude::*;
use radionet_analysis::fit::fit_power_law;
use radionet_analysis::stats::{quantile, Summary};
use radionet_analysis::{ExperimentRecord, RunRecord, Table};

proptest! {
    /// Summary statistics respect their defining inequalities.
    #[test]
    fn summary_inequalities(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&values);
        prop_assert_eq!(s.count, values.len());
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.ci95() >= 0.0);
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let q0 = quantile(&values, 0.0);
        let q5 = quantile(&values, 0.5);
        let q1 = quantile(&values, 1.0);
        prop_assert!(q0 <= q5 && q5 <= q1);
    }

    /// Power-law fits recover exact power laws for arbitrary (a, b).
    #[test]
    fn fit_recovers_exact(a in 0.01f64..100.0, b in -3.0f64..4.0) {
        let pts: Vec<(f64, f64)> =
            (1..30).map(|i| (i as f64, a * (i as f64).powf(b))).collect();
        let fit = fit_power_law(&pts).unwrap();
        prop_assert!((fit.b - b).abs() < 1e-6, "b {} vs {}", fit.b, b);
        prop_assert!((fit.a - a).abs() / a < 1e-6, "a {} vs {}", fit.a, a);
        prop_assert!(fit.r_squared > 0.999);
    }

    /// Tables render one line per row plus header and separator, all of
    /// equal width.
    #[test]
    fn table_shape(rows in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..20)) {
        let mut t = Table::new(["a", "b"]);
        for (x, y) in &rows {
            t.row([x.to_string(), y.to_string()]);
        }
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 2);
        let w = lines[0].len();
        prop_assert!(lines.iter().all(|l| l.len() == w));
    }

    /// Experiment records survive a JSON round trip for arbitrary contents
    /// (metric floats up to relative ULP noise in the JSON formatter).
    #[test]
    fn record_round_trip(
        id in "[A-Z][0-9]{1,3}",
        metrics in proptest::collection::btree_map("[a-z_]{1,12}", -1e12f64..1e12, 0..8),
    ) {
        let mut e = ExperimentRecord::new(&id, "prop");
        let mut run = RunRecord::new().param("k", 1);
        for (k, v) in &metrics {
            run = run.metric(k, *v);
        }
        e.push(run);
        let back: ExperimentRecord = serde_json::from_str(&e.to_json()).unwrap();
        prop_assert_eq!(&back.id, &e.id);
        prop_assert_eq!(&back.runs[0].params, &e.runs[0].params);
        prop_assert_eq!(back.runs[0].metrics.len(), metrics.len());
        for (k, v) in &metrics {
            let got = back.runs[0].metrics[k];
            prop_assert!(
                (got - v).abs() <= v.abs() * 1e-12,
                "metric {k}: {got} vs {v}"
            );
        }
    }
}
