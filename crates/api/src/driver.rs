//! The single execution entry point: [`Driver::run`] turns a [`RunSpec`]
//! into a [`RunReport`].

use crate::dynamics::DynamicTopology;
use crate::registry::TaskRegistry;
use crate::seeds;
use crate::sink::ResultSink;
use crate::spec::{Dynamics, RunSpec};
use crate::task::{Task, TaskCtx, TaskOutcome};
use crate::topology::RunTopology;
use radionet_graph::Graph;
use radionet_journal::{Journal, JournalSummary, Recorder};
use radionet_mobility::{MobileTopology, MobilityTrace};
use radionet_sim::{
    JournalSink, NetInfo, NullSink, PositionSource, ReceptionMode, Registry, Sim, SimStats,
    Telemetry,
};
use radionet_telemetry::Stopwatch;
use radionet_traffic::TrafficReport;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Why a spec could not be run (or a sweep could not be recorded).
#[derive(Debug)]
pub enum RunError {
    /// The spec failed structural or task-specific validation.
    InvalidSpec(String),
    /// The task key is not in the registry.
    UnknownTask(String),
    /// A [`ResultSink`] failed to record a report.
    Sink(std::io::Error),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidSpec(why) => write!(f, "invalid spec: {why}"),
            RunError::UnknownTask(key) => {
                write!(f, "unknown task {key:?} (try `radionet list-tasks`)")
            }
            RunError::Sink(e) => write!(f, "result sink failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Sink(e)
    }
}

/// The unified result of one run: the spec echoed back, the instantiated
/// network's parameters, the task's [`TaskOutcome`], and the engine's
/// counters — everything a sweep row or a regression fingerprint needs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The spec that produced this report.
    pub spec: RunSpec,
    /// Actual node count (families may round the requested size).
    pub n: usize,
    /// Diameter of the instantiated base graph.
    pub d: u32,
    /// α estimate of the base graph.
    pub alpha: f64,
    /// Events in the materialized dynamics script.
    pub events: usize,
    /// The task's own summary.
    pub outcome: TaskOutcome,
    /// Whether the task's success criterion held.
    pub success: bool,
    /// Task-specific achievement in `[0, 1]`.
    pub achieved: f64,
    /// Clock when the success criterion was first met, if ever.
    pub clock_done: Option<u64>,
    /// Total clock at exit (simulated + charged).
    pub clock_total: u64,
    /// Engine counters.
    pub stats: SimStats,
    /// Digest of all per-node RNG states at exit: two runs consumed
    /// identical randomness iff their fingerprints match.
    pub rng_fingerprint: u64,
    /// Mobility runs only: spatial-index work counters plus the
    /// time-resolved α-bounds/diameter samples recorded as the nodes
    /// moved. `None` for scripted dynamics.
    pub mobility: Option<MobilityTrace>,
    /// Journaled runs only ([`Driver::run_journaled`]): per-class event
    /// counters and the rolling digest of the recording. `None` for plain
    /// runs, which execute on the zero-cost null sink.
    pub journal: Option<JournalSummary>,
    /// Traffic runs only (`traffic.*` tasks): the delivery ledger's
    /// summary — throughput and exact nearest-rank latency percentiles.
    /// A convenience copy of the [`TaskOutcome::Traffic`] payload, so
    /// aggregation code reads one field instead of matching the enum.
    /// `None` for every other task.
    pub traffic: Option<TrafficReport>,
}

/// One fully materialized cell, ready for a simulator of either sink type.
struct Materialized<'d> {
    task: &'d dyn Task,
    g: Graph,
    info: NetInfo,
    topo: RunTopology,
    n_events: usize,
    reception: ReceptionMode,
    ctx: TaskCtx,
}

/// Assembles the [`RunReport`] all driver entry points share. Generic
/// over the sink and telemetry handle so the journaled and instrumented
/// paths read the same accessors.
fn assemble_report<J: JournalSink, M: Telemetry>(
    spec: &RunSpec,
    g: &Graph,
    info: NetInfo,
    n_events: usize,
    sim: &Sim<'_, RunTopology, J, M>,
    outcome: TaskOutcome,
    journal: Option<JournalSummary>,
) -> RunReport {
    RunReport {
        spec: spec.clone(),
        n: g.n(),
        d: info.d,
        alpha: info.alpha,
        events: n_events,
        success: outcome.success(),
        achieved: outcome.achieved(),
        clock_done: outcome.clock_done(),
        traffic: match outcome {
            TaskOutcome::Traffic(t) => Some(t),
            _ => None,
        },
        outcome,
        clock_total: sim.clock(),
        stats: *sim.stats(),
        rng_fingerprint: sim.rng_fingerprint(),
        mobility: sim.topology().mobile().map(MobileTopology::to_trace),
        journal,
    }
}

/// Executes [`RunSpec`]s against a [`TaskRegistry`].
///
/// The driver owns the whole cell pipeline — family instantiation,
/// [`NetInfo`] measurement, dynamics materialization, simulator and kernel
/// setup — and delegates only the algorithm itself to the task, so every
/// algorithm in the workspace runs under the exact same harness:
///
/// ```
/// use radionet_api::{Driver, Dynamics, RunSpec};
/// use radionet_graph::families::Family;
///
/// let driver = Driver::standard();
/// let spec = RunSpec::new("mis", Family::UnitDisk, 64)
///     .with_dynamics(Dynamics::preset("churn").unwrap())
///     .with_seed(3);
/// let report = driver.run(&spec).unwrap();
/// assert_eq!(report.spec, spec);
/// assert!(report.clock_total > 0);
/// ```
#[derive(Default)]
pub struct Driver {
    registry: TaskRegistry,
    /// Attached telemetry. A process-level property, never part of the
    /// [`RunSpec`]: cache keys, echoed specs, and reports are identical
    /// with or without it (the `telemetry_equivalence` test pins this).
    tel: Option<Registry>,
}

impl Driver {
    /// A driver over [`TaskRegistry::standard`].
    pub fn standard() -> Self {
        Driver { registry: TaskRegistry::standard(), tel: None }
    }

    /// A driver over a custom registry.
    pub fn with_registry(registry: TaskRegistry) -> Self {
        Driver { registry, tel: None }
    }

    /// Attaches a telemetry registry: every subsequent [`Driver::run`]
    /// records wall-clock stage timings (setup / simulate / report) and
    /// the engine's kernel metrics into it. Telemetry observes and never
    /// steers — reports and RNG streams stay byte-identical.
    pub fn with_telemetry(mut self, tel: Registry) -> Self {
        self.tel = Some(tel);
        self
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Registry> {
        self.tel.as_ref()
    }

    /// The registry this driver resolves task keys against.
    pub fn registry(&self) -> &TaskRegistry {
        &self.registry
    }

    /// Runs one spec to completion.
    ///
    /// Pure: identical specs yield bit-identical reports (the scenario
    /// equivalence suite pins this against the pre-façade runner for the
    /// whole catalogue, under both kernels). A spec's `journal` section is
    /// ignored here — plain runs always execute on the zero-cost null
    /// sink; use [`Driver::run_journaled`] to record.
    pub fn run(&self, spec: &RunSpec) -> Result<RunReport, RunError> {
        match &self.tel {
            None => self.run_plain(spec),
            Some(tel) => self.run_timed(spec, tel),
        }
    }

    /// The uninstrumented hot path: `Sim` monomorphizes over
    /// [`NoTelemetry`](radionet_sim::NoTelemetry), so every metrics site
    /// compiles out (the E21 bench smoke pins the overhead at zero).
    fn run_plain(&self, spec: &RunSpec) -> Result<RunReport, RunError> {
        let m = self.materialize(spec)?;
        let mut sim =
            Sim::try_with_topology(&m.g, m.topo, m.info, seeds::sim_seed(spec.seed), m.reception)
                .map_err(|e| RunError::InvalidSpec(e.to_string()))?;
        sim.set_kernel(spec.kernel);
        let outcome = m.task.run(&mut sim, &m.ctx);
        Ok(assemble_report(spec, &m.g, m.info, m.n_events, &sim, outcome, None))
    }

    /// The instrumented path: identical pipeline, with the run split into
    /// setup (materialization + simulator construction), simulate, and
    /// report stages, each timed into `tel`; the simulator itself records
    /// the kernel-level metrics through its telemetry handle.
    fn run_timed(&self, spec: &RunSpec, tel: &Registry) -> Result<RunReport, RunError> {
        let total = Stopwatch::start::<Registry>();
        let setup = Stopwatch::start::<Registry>();
        let m = self.materialize(spec)?;
        let mut sim = Sim::try_instrumented(
            &m.g,
            m.topo,
            m.info,
            seeds::sim_seed(spec.seed),
            m.reception,
            NullSink,
            tel.clone(),
        )
        .map_err(|e| RunError::InvalidSpec(e.to_string()))?;
        sim.set_kernel(spec.kernel);
        setup.stop(tel, "driver_setup_micros");
        let simulate = Stopwatch::start::<Registry>();
        let outcome = m.task.run_instrumented(&mut sim, &m.ctx);
        simulate.stop(tel, "driver_simulate_micros");
        let assemble = Stopwatch::start::<Registry>();
        let report = assemble_report(spec, &m.g, m.info, m.n_events, &sim, outcome, None);
        assemble.stop(tel, "driver_report_micros");
        total.stop(tel, "driver_run_micros");
        tel.count("driver_runs", 1);
        Ok(report)
    }

    /// Runs one spec with a live [`Recorder`], returning the report (its
    /// `journal` field filled with the recording's [`JournalSummary`]) and
    /// the frozen [`Journal`] itself. The journal embeds the spec, so
    /// [`replay`](crate::journal::replay) can re-drive it later from the
    /// serialized document alone.
    ///
    /// The spec's `journal` section selects the class filter and waypoint
    /// cadence; a missing section records everything with the derived
    /// default cadence. The recorded event stream is pure in the spec; of
    /// the journal's fields only `wall_nanos` is not.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Driver::run`].
    pub fn run_journaled(&self, spec: &RunSpec) -> Result<(RunReport, Journal), RunError> {
        let m = self.materialize(spec)?;
        let jspec = spec.journal.clone().unwrap_or_default();
        let mask = jspec.mask().map_err(RunError::InvalidSpec)?;
        let cadence = jspec.cadence(m.task.timebase(&m.info));
        let started = std::time::Instant::now();
        let mut sim = Sim::try_with_journal(
            &m.g,
            m.topo,
            m.info,
            seeds::sim_seed(spec.seed),
            m.reception,
            Recorder::new(mask, cadence),
        )
        .map_err(|e| RunError::InvalidSpec(e.to_string()))?;
        sim.set_kernel(spec.kernel);
        let outcome = m.task.run_recorded(&mut sim, &m.ctx);
        let fingerprint = sim.rng_fingerprint();
        let report = assemble_report(spec, &m.g, m.info, m.n_events, &sim, outcome, None);
        let journal = sim.into_journal().into_journal(
            concat!("radionet ", env!("CARGO_PKG_VERSION")),
            spec.kernel.name(),
            Some(spec.to_value()),
            fingerprint,
            started.elapsed().as_nanos() as u64,
        );
        let report = RunReport { journal: Some(journal.summary()), ..report };
        Ok((report, journal))
    }

    /// Everything [`Driver::run`] does before a simulator exists:
    /// validation, task lookup, family instantiation, [`NetInfo`]
    /// measurement, dynamics materialization, and SINR position
    /// resolution. Shared verbatim between the null-sink and recorded
    /// entry points so a journaled run drives the exact same cell.
    fn materialize(&self, spec: &RunSpec) -> Result<Materialized<'_>, RunError> {
        spec.validate().map_err(RunError::InvalidSpec)?;
        let task = self
            .registry
            .get(&spec.task)
            .ok_or_else(|| RunError::UnknownTask(spec.task.clone()))?;
        task.check_spec(spec).map_err(RunError::InvalidSpec)?;

        // Mobility derives the topology from the moving point set; every
        // scripted recipe (static is an empty script) uses the overlay.
        // Both arms instantiate *positioned* (same random stream as
        // `instantiate`, pinned by the families tests), so a
        // `PositionSource::Geometry` SINR spec can be resolved from the
        // family's own embedding without hand-shipped coordinates.
        let (g, info, topo, n_events, reception) = match &spec.dynamics {
            Dynamics::Mobility(m) => {
                let positioned =
                    spec.family.instantiate_positioned(spec.n, seeds::graph_seed(spec.seed));
                // `spec.validate()` above already rejected families without
                // an embedding (`Family::has_embedding` ⇔ geometry present,
                // pinned by the families tests).
                let geometry = positioned
                    .geometry
                    .expect("validate() guarantees an embedding for mobility specs");
                let mut mobile = MobileTopology::new(
                    &geometry,
                    m.model,
                    m.tick.max(1),
                    seeds::mobility_seed(spec.seed),
                );
                // The run's base graph is the derived t = 0 topology (for
                // the deterministic rules it equals the generated graph;
                // the quasi gray zone is re-realized by the pair coin).
                let g = mobile.initial_graph();
                let info = NetInfo::exact(&g);
                // `None` → the driver's default cadence; `Some(0)` → the
                // explicit off switch (no trace samples, no sampling cost).
                let cadence = match m.sample_every {
                    None => Some((task.timebase(&info) / 8).max(1)),
                    Some(0) => None,
                    Some(every) => Some(every),
                };
                mobile.set_sample_every(cadence);
                // SINR over mobility reads the live moving point set each
                // step (`validate()` already rejected a frozen snapshot).
                let reception = match spec.reception.clone() {
                    ReceptionMode::Sinr(mut cfg) => {
                        cfg.positions = PositionSource::Live;
                        ReceptionMode::Sinr(cfg)
                    }
                    other => other,
                };
                (g, info, RunTopology::Mobile(mobile), 0usize, reception)
            }
            _ => {
                let positioned =
                    spec.family.instantiate_positioned(spec.n, seeds::graph_seed(spec.seed));
                let g = positioned.graph;
                // Resolve the SINR position source against the
                // *instantiated* graph (families may round the requested
                // n, so counts are only checkable here); `Geometry`
                // becomes a snapshot of the family's own embedding.
                let reception = match spec.reception.clone() {
                    ReceptionMode::Sinr(mut cfg) => {
                        match cfg.positions {
                            PositionSource::Snapshot(ref points) => {
                                if points.len() != g.n() {
                                    return Err(RunError::InvalidSpec(format!(
                                        "SINR reception carries {} positions but {} \
                                         instantiates {} nodes (requested n = {})",
                                        points.len(),
                                        spec.family.name(),
                                        g.n(),
                                        spec.n
                                    )));
                                }
                            }
                            PositionSource::Geometry => {
                                // `spec.validate()` above already rejected
                                // Geometry sources on families without an
                                // embedding (`has_embedding` ⇔ geometry
                                // present, pinned by the families tests).
                                let geometry = positioned.geometry.expect(
                                    "validate() guarantees an embedding for \
                                     geometry-sourced SINR specs",
                                );
                                cfg.positions = PositionSource::Snapshot(geometry.points);
                            }
                            PositionSource::Live => {
                                unreachable!(
                                    "validate() rejects live SINR positions without \
                                     mobility dynamics"
                                )
                            }
                        }
                        ReceptionMode::Sinr(cfg)
                    }
                    other => other,
                };
                let info = NetInfo::exact(&g);
                let events = spec.dynamics.events_for(
                    &g,
                    task.timebase(&info),
                    seeds::events_seed(spec.seed),
                );
                let n_events = events.len();
                let topo = RunTopology::Scripted(DynamicTopology::new(&g, events));
                (g, info, topo, n_events, reception)
            }
        };
        let ctx = TaskCtx {
            seed: spec.seed,
            lottery_seed: seeds::lottery_seed(spec.seed),
            step_cap: spec.steps,
            traffic: spec.traffic,
        };
        Ok(Materialized { task, g, info, topo, n_events, reception, ctx })
    }

    /// Runs specs in order on the current thread, streaming each report to
    /// `sink` as it completes. Returns the number of reports emitted.
    ///
    /// Memory stays O(1) in the sweep length: nothing is buffered beyond
    /// the report in flight. On error the sink is still finished, so
    /// partial output stays well-formed (the original error is returned).
    pub fn run_sweep(
        &self,
        specs: &[RunSpec],
        sink: &mut dyn ResultSink,
    ) -> Result<usize, RunError> {
        self.run_sweep_streaming(specs.iter().cloned(), 1, sink)
    }

    /// Runs specs on all cores (rayon), streaming reports to `sink` in
    /// spec order. Because every run is a pure function of its spec, the
    /// emitted stream is byte-identical to [`Driver::run_sweep`].
    ///
    /// Cells are processed in bounded chunks (`chunk` specs at a time,
    /// minimum 1), so memory stays O(chunk) however large the sweep is.
    pub fn run_sweep_parallel(
        &self,
        specs: &[RunSpec],
        chunk: usize,
        sink: &mut dyn ResultSink,
    ) -> Result<usize, RunError> {
        self.run_sweep_streaming(specs.iter().cloned(), chunk, sink)
    }

    /// Like [`Driver::run_sweep_parallel`], but pulls specs lazily from an
    /// iterator: at no point do more than `chunk` specs (or reports) exist
    /// at once, so a sweep generator can be arbitrarily large — this is
    /// the entry point the `radionet sweep` CLI streams through.
    ///
    /// The sink is finished on **every** exit path: even when a spec fails
    /// mid-sweep, already-emitted output gets its trailer/flush so partial
    /// files stay well-formed (the original error is still returned).
    pub fn run_sweep_streaming<I>(
        &self,
        specs: I,
        chunk: usize,
        sink: &mut dyn ResultSink,
    ) -> Result<usize, RunError>
    where
        I: IntoIterator<Item = RunSpec>,
    {
        let chunk = chunk.max(1);
        let mut specs = specs.into_iter();
        let mut total = 0usize;
        let outcome = 'sweep: {
            loop {
                let block: Vec<RunSpec> = specs.by_ref().take(chunk).collect();
                if block.is_empty() {
                    break 'sweep Ok(());
                }
                let chunk_t0 = self.tel.as_ref().map(|_| std::time::Instant::now());
                let reports: Vec<Result<RunReport, RunError>> =
                    block.par_iter().map(|spec| self.run(spec)).collect();
                if let (Some(tel), Some(t0)) = (&self.tel, chunk_t0) {
                    tel.observe("sweep_chunk_micros", t0.elapsed().as_micros() as u64);
                    tel.count("sweep_cells", block.len() as u64);
                }
                total += block.len();
                for report in reports {
                    let report = match report {
                        Ok(report) => report,
                        Err(e) => break 'sweep Err(e),
                    };
                    if let Err(e) = sink.emit(&report) {
                        break 'sweep Err(e.into());
                    }
                }
            }
        };
        match outcome {
            Ok(()) => {
                sink.finish()?;
                Ok(total)
            }
            Err(e) => {
                // Terminate the stream, but report the sweep's own error.
                let _ = sink.finish();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use radionet_graph::families::Family;
    use radionet_sim::ReceptionMode;

    #[test]
    fn unknown_task_is_reported() {
        let err = Driver::standard().run(&RunSpec::new("nope", Family::Grid, 16)).unwrap_err();
        assert!(matches!(err, RunError::UnknownTask(_)), "{err}");
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn cd_wakeup_requires_cd_reception() {
        let driver = Driver::standard();
        let spec = RunSpec::new("cd-wakeup", Family::Path, 16);
        let err = driver.run(&spec).unwrap_err();
        assert!(matches!(err, RunError::InvalidSpec(_)), "{err}");
        let report =
            driver.run(&spec.with_reception(ReceptionMode::ProtocolCd)).expect("CD spec runs");
        assert!(report.success);
        assert_eq!(report.clock_done, Some(15), "path wake-up takes exactly D steps");
    }

    #[test]
    fn sinr_position_mismatch_is_a_clean_error() {
        use radionet_sim::SinrConfig;
        // Grid rounds 40 → 36 nodes, so 40 positions must be rejected
        // before the engine's exact-equality assert can fire.
        let spec = RunSpec::new("broadcast", Family::Grid, 40).with_reception(ReceptionMode::Sinr(
            SinrConfig::for_unit_range(vec![(0.0, 0.0); 40], 1.0),
        ));
        let err = Driver::standard().run(&spec).unwrap_err();
        assert!(matches!(err, RunError::InvalidSpec(_)), "{err}");
        assert!(err.to_string().contains("36 nodes"), "{err}");
    }

    #[test]
    fn sinr_geometry_source_resolves_from_the_family_embedding() {
        use radionet_sim::SinrConfig;
        // No hand-shipped coordinates: the driver materializes the point
        // set the family generated (works even though UnitDisk may round
        // or retry — the count always matches by construction).
        let spec = RunSpec::new("broadcast", Family::UnitDisk, 48)
            .with_seed(5)
            .with_reception(ReceptionMode::Sinr(SinrConfig::geometric()));
        let report = Driver::standard().run(&spec).unwrap();
        assert!(report.success, "geometry-calibrated SINR broadcast on a UDG completes");
        assert!(report.stats.deliveries > 0);
        assert_eq!(report.stats.kernel_fallbacks, 0, "sparse SINR must not fall back");
        assert_eq!(report.spec, spec, "resolution must not leak into the echoed spec");
    }

    #[test]
    fn sinr_geometry_source_needs_an_embedding() {
        use radionet_sim::SinrConfig;
        let spec = RunSpec::new("broadcast", Family::Hypercube, 64)
            .with_reception(ReceptionMode::Sinr(SinrConfig::geometric()));
        let err = Driver::standard().run(&spec).unwrap_err();
        assert!(matches!(err, RunError::InvalidSpec(_)), "{err}");
        assert!(err.to_string().contains("embedding"), "{err}");
    }

    #[test]
    fn sinr_live_source_needs_mobility() {
        use radionet_sim::{PositionSource, SinrConfig};
        let spec = RunSpec::new("broadcast", Family::UnitDisk, 48).with_reception(
            ReceptionMode::Sinr(SinrConfig::for_unit_range(PositionSource::Live, 1.0)),
        );
        let err = Driver::standard().run(&spec).unwrap_err();
        assert!(matches!(err, RunError::InvalidSpec(_)), "{err}");
        assert!(err.to_string().contains("mobility"), "{err}");
    }

    #[test]
    fn sinr_kernels_identical_on_static_geometry() {
        use radionet_sim::{Kernel, SinrConfig};
        let driver = Driver::standard();
        let spec = RunSpec::new("broadcast", Family::UnitDisk, 64)
            .with_seed(7)
            .with_reception(ReceptionMode::Sinr(SinrConfig::geometric()));
        let sparse = driver.run(&spec.clone().with_kernel(Kernel::Sparse)).unwrap();
        let dense = driver.run(&spec.with_kernel(Kernel::Dense)).unwrap();
        assert_eq!(sparse.outcome, dense.outcome);
        assert_eq!(sparse.stats.deliveries, dense.stats.deliveries);
        assert_eq!(sparse.stats.collisions, dense.stats.collisions);
        assert_eq!(sparse.rng_fingerprint, dense.rng_fingerprint);
    }

    #[test]
    fn identical_specs_identical_reports() {
        let driver = Driver::standard();
        let spec = RunSpec::new("broadcast", Family::Grid, 25).with_seed(11);
        let a = driver.run(&spec).unwrap();
        let b = driver.run(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.rng_fingerprint, b.rng_fingerprint);
    }

    /// The contract the `Driver::tel` field documents: attaching a
    /// registry changes nothing observable about a run. Reports —
    /// including RNG fingerprints — are bit-identical with telemetry on
    /// and off, across tasks, kernels, and dynamics. (The E21 bench smoke
    /// re-checks this at larger sizes on every CI run, plus the
    /// wall-clock overhead bound.)
    #[test]
    fn telemetry_equivalence() {
        use crate::Dynamics;
        use radionet_sim::{Kernel, Registry};
        let specs = [
            RunSpec::new("broadcast", Family::Grid, 36).with_seed(7),
            RunSpec::new("mis", Family::UnitDisk, 49).with_seed(3).with_kernel(Kernel::Dense),
            RunSpec::new("leader-election", Family::Grid, 25)
                .with_seed(1)
                .with_kernel(Kernel::Event),
            RunSpec::new("broadcast", Family::UnitDisk, 49)
                .with_seed(5)
                .with_dynamics(Dynamics::preset("churn").unwrap()),
        ];
        for spec in specs {
            let plain = Driver::standard().run(&spec).unwrap();
            let tel = Registry::default();
            let timed = Driver::standard().with_telemetry(tel.clone()).run(&spec).unwrap();
            assert_eq!(plain, timed, "telemetry changed the report for {:?}", spec.task);
            // And the registry really observed the run: the driver stages
            // and the engine's per-phase clock all recorded samples.
            let snap = tel.snapshot();
            assert_eq!(snap.counter("driver_runs"), Some(1), "{:?}", spec.task);
            for name in [
                "driver_setup_micros",
                "driver_simulate_micros",
                "driver_report_micros",
                "driver_run_micros",
                "sim_phase_micros",
            ] {
                assert!(
                    snap.histograms.iter().any(|h| h.name == name && h.count > 0),
                    "no {name} samples for {:?}",
                    spec.task
                );
            }
        }
    }

    /// Sweeps through an instrumented driver count their cells and chunk
    /// walls without perturbing the emitted stream.
    #[test]
    fn sweep_telemetry_counts_cells_without_changing_the_stream() {
        use radionet_sim::Registry;
        let specs: Vec<RunSpec> =
            (0..5).map(|seed| RunSpec::new("mis", Family::Grid, 16).with_seed(seed)).collect();
        let mut plain = MemorySink::default();
        Driver::standard().run_sweep(&specs, &mut plain).unwrap();
        let tel = Registry::default();
        let driver = Driver::standard().with_telemetry(tel.clone());
        let mut timed = MemorySink::default();
        driver.run_sweep_streaming(specs.iter().cloned(), 2, &mut timed).unwrap();
        assert_eq!(plain.reports, timed.reports);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("sweep_cells"), Some(5));
        assert!(snap.histograms.iter().any(|h| h.name == "sweep_chunk_micros" && h.count > 0));
    }

    #[test]
    fn failed_sweep_still_terminates_the_sink() {
        // A mid-sweep failure must not leave a JSON-array stream without
        // its trailer: partial output stays parseable.
        let driver = Driver::standard();
        let specs = vec![
            RunSpec::new("luby-mis", Family::Path, 8),
            RunSpec::new("no-such-task", Family::Path, 8),
        ];
        let mut buf = Vec::new();
        {
            let mut sink = crate::sink::JsonArraySink::new(&mut buf);
            let err = driver.run_sweep(&specs, &mut sink).unwrap_err();
            assert!(matches!(err, RunError::UnknownTask(_)), "{err}");
        }
        let parsed: Vec<RunReport> =
            serde_json::from_str(&String::from_utf8(buf).unwrap()).unwrap();
        assert_eq!(parsed.len(), 1, "the report emitted before the failure survives");
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        let driver = Driver::standard();
        let specs: Vec<RunSpec> =
            (0..6).map(|seed| RunSpec::new("mis", Family::Grid, 16).with_seed(seed)).collect();
        let mut seq = MemorySink::default();
        let mut par = MemorySink::default();
        assert_eq!(driver.run_sweep(&specs, &mut seq).unwrap(), 6);
        assert_eq!(driver.run_sweep_parallel(&specs, 2, &mut par).unwrap(), 6);
        assert_eq!(seq.reports, par.reports);
    }
}
