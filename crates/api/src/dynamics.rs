//! The mutable topology overlay: a [`TopologyView`] driven by a
//! [`ScenarioEvent`] timeline.

use crate::events::{EventKind, ScenarioEvent};
use radionet_graph::{Graph, NodeId};
use radionet_sim::TopologyView;
use std::collections::HashSet;

/// A dynamic overlay over an immutable base [`Graph`].
///
/// The overlay tracks node liveness (crash/join), wake-up times, jammer
/// status, faded edges, and an optional k-way partition, and materializes
/// the *current* adjacency lists so the engine's hot loop reads plain
/// slices. Events are applied lazily as [`TopologyView::advance_to`] moves
/// the clock forward; adjacency is rebuilt only on steps where at least one
/// event fires, so a quiet step costs four `Vec` index reads.
///
/// Everything is a deterministic function of `(base graph, script)`.
#[derive(Clone, Debug)]
pub struct DynamicTopology {
    events: Vec<ScenarioEvent>,
    cursor: usize,
    alive: Vec<bool>,
    awake: Vec<bool>,
    jammer: Vec<bool>,
    edges_down: HashSet<(u32, u32)>,
    /// Partition block of each node while a partition is active.
    blocks: Option<Vec<u32>>,
    /// Materialized current adjacency (subset of the base CSR lists).
    adj: Vec<Vec<NodeId>>,
    /// Whether some *current* neighbor is an active jammer.
    jam_exposed: Vec<bool>,
    /// Per-node count of *pending* reactivation events (Join / Wake /
    /// JammerOff): a node with a nonzero count is never retired — the
    /// engine must keep the phase alive until its return is simulated.
    pending_returns: Vec<u32>,
    /// Batch change feed for the sparse kernel: nodes named by events
    /// applied since the engine last drained. Over-approximates (an event
    /// may leave status unchanged), which the feed contract allows.
    changed: Vec<NodeId>,
    /// Materialized jam-exposed set (the `true` entries of `jam_exposed`),
    /// rebuilt alongside it.
    jam_list: Vec<NodeId>,
}

fn edge_key(u: usize, v: usize) -> (u32, u32) {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    (a as u32, b as u32)
}

impl DynamicTopology {
    /// Builds the overlay for `base` from an event script.
    ///
    /// The script is sorted by time (stably, so same-instant events apply
    /// in script order). Nodes with a [`EventKind::Wake`] event start the
    /// run asleep.
    ///
    /// # Panics
    ///
    /// Panics if an event names a node or edge endpoint outside `base`.
    pub fn new(base: &Graph, mut events: Vec<ScenarioEvent>) -> Self {
        let n = base.n();
        for e in &events {
            if let Some(v) = e.kind.node() {
                assert!(v < n, "event {e:?} names node {v} but n = {n}");
            }
            if let EventKind::EdgeDown((u, v)) | EventKind::EdgeUp((u, v)) = e.kind {
                assert!(u < n && v < n, "event {e:?} names an endpoint out of range");
                assert!(u != v, "event {e:?} is a self-loop");
            }
            if let EventKind::Partition(k) = e.kind {
                assert!(k >= 2, "a partition needs at least 2 parts");
            }
        }
        events.sort_by_key(|e| e.at);
        let mut awake = vec![true; n];
        let mut pending_returns = vec![0u32; n];
        for e in &events {
            if let EventKind::Wake(v) = e.kind {
                awake[v] = false;
            }
            if let EventKind::Join(v) | EventKind::Wake(v) | EventKind::JammerOff(v) = e.kind {
                pending_returns[v] += 1;
            }
        }
        let mut topo = DynamicTopology {
            events,
            cursor: 0,
            alive: vec![true; n],
            awake,
            jammer: vec![false; n],
            edges_down: HashSet::new(),
            blocks: None,
            adj: vec![Vec::new(); n],
            jam_exposed: vec![false; n],
            pending_returns,
            changed: Vec::new(),
            jam_list: Vec::new(),
        };
        topo.rebuild(base);
        topo
    }

    /// A view with no events: behaves exactly like the static topology.
    pub fn unperturbed(base: &Graph) -> Self {
        Self::new(base, Vec::new())
    }

    /// Number of events not yet applied.
    pub fn pending_events(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Whether `v` is currently alive (not crashed).
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive[v.index()]
    }

    /// Whether `v` is currently an active jammer.
    pub fn is_jammer(&self, v: NodeId) -> bool {
        self.jammer[v.index()]
    }

    /// Current number of undirected overlay edges.
    pub fn current_edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    fn apply(&mut self, kind: EventKind) {
        if let Some(v) = kind.node() {
            // Activity / retirement can only change for the named node;
            // structural events (edges, partitions) touch neither.
            self.changed.push(NodeId::new(v));
        }
        if let EventKind::Join(v) | EventKind::Wake(v) | EventKind::JammerOff(v) = kind {
            self.pending_returns[v] = self.pending_returns[v].saturating_sub(1);
        }
        match kind {
            EventKind::Crash(v) => self.alive[v] = false,
            EventKind::Join(v) => self.alive[v] = true,
            EventKind::EdgeDown((u, v)) => {
                self.edges_down.insert(edge_key(u, v));
            }
            EventKind::EdgeUp((u, v)) => {
                self.edges_down.remove(&edge_key(u, v));
            }
            EventKind::Partition(parts) => {
                let n = self.alive.len();
                // Contiguous index blocks of near-equal size; on the
                // geometric families, index order has no spatial meaning,
                // but the cut is deterministic and severs ~(1 - 1/k) of
                // long-range structure either way.
                let blocks =
                    (0..n).map(|v| ((v as u64 * parts as u64) / n.max(1) as u64) as u32).collect();
                self.blocks = Some(blocks);
            }
            EventKind::Heal => self.blocks = None,
            EventKind::JammerOn(v) => self.jammer[v] = true,
            EventKind::JammerOff(v) => self.jammer[v] = false,
            EventKind::Wake(v) => self.awake[v] = true,
        }
    }

    fn rebuild(&mut self, base: &Graph) {
        let n = base.n();
        for v in 0..n {
            self.adj[v].clear();
            if !self.alive[v] {
                continue;
            }
            for &w in base.neighbors(NodeId::new(v)) {
                let wi = w.index();
                if !self.alive[wi] {
                    continue;
                }
                if !self.edges_down.is_empty() && self.edges_down.contains(&edge_key(v, wi)) {
                    continue;
                }
                if let Some(blocks) = &self.blocks {
                    if blocks[v] != blocks[wi] {
                        continue;
                    }
                }
                self.adj[v].push(w);
            }
        }
        self.jam_list.clear();
        for v in 0..n {
            self.jam_exposed[v] =
                self.adj[v].iter().any(|w| self.jammer[w.index()] && self.awake[w.index()]);
            if self.jam_exposed[v] {
                self.jam_list.push(NodeId::new(v));
            }
        }
    }
}

impl TopologyView for DynamicTopology {
    fn advance_to(&mut self, base: &Graph, clock: u64) {
        let mut changed = false;
        while let Some(e) = self.events.get(self.cursor) {
            if e.at > clock {
                break;
            }
            let kind = e.kind;
            self.cursor += 1;
            self.apply(kind);
            changed = true;
        }
        if changed {
            self.rebuild(base);
        }
    }

    fn neighbors<'a>(&'a self, _base: &'a Graph, v: NodeId) -> &'a [NodeId] {
        &self.adj[v.index()]
    }

    fn is_active(&self, v: NodeId) -> bool {
        let i = v.index();
        self.alive[i] && self.awake[i] && !self.jammer[i]
    }

    fn is_jammed(&self, v: NodeId) -> bool {
        self.jam_exposed[v.index()]
    }

    fn is_retired(&self, v: NodeId) -> bool {
        !self.is_active(v) && self.pending_returns[v.index()] == 0
    }

    fn supports_change_feed(&self) -> bool {
        true
    }

    fn drain_status_changes(&mut self, out: &mut Vec<NodeId>) {
        out.append(&mut self.changed);
    }

    fn jammed_nodes(&self) -> &[NodeId] {
        &self.jam_list
    }

    fn supports_event_jumps(&self) -> bool {
        true
    }

    /// The next scripted event strictly after `clock`. The script is
    /// sorted and the cursor has consumed every event with `at <= clock`,
    /// so this is a short scan from the cursor (events sharing one `at`
    /// are adjacent).
    fn next_event(&self, clock: u64) -> Option<u64> {
        self.events[self.cursor..].iter().find(|e| e.at > clock).map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ScenarioEvent as Ev;
    use radionet_graph::generators;

    fn degrees(t: &DynamicTopology, g: &Graph) -> Vec<usize> {
        g.nodes().map(|v| t.neighbors(g, v).len()).collect()
    }

    #[test]
    fn unperturbed_matches_base() {
        let g = generators::grid2d(4, 4);
        let mut t = DynamicTopology::unperturbed(&g);
        t.advance_to(&g, 10_000);
        for v in g.nodes() {
            assert_eq!(t.neighbors(&g, v), g.neighbors(v));
            assert!(t.is_active(v));
            assert!(!t.is_jammed(v));
        }
    }

    #[test]
    fn crash_removes_edges_join_restores() {
        let g = generators::star(5); // hub 0
        let script = vec![Ev::new(10, EventKind::Crash(0)), Ev::new(20, EventKind::Join(0))];
        let mut t = DynamicTopology::new(&g, script);
        assert_eq!(degrees(&t, &g), vec![4, 1, 1, 1, 1]);
        t.advance_to(&g, 10);
        assert!(!t.is_active(g.node(0)));
        assert_eq!(degrees(&t, &g), vec![0, 0, 0, 0, 0]);
        t.advance_to(&g, 19);
        assert!(!t.is_active(g.node(0)), "events must not re-fire");
        t.advance_to(&g, 20);
        assert!(t.is_active(g.node(0)));
        assert_eq!(degrees(&t, &g), vec![4, 1, 1, 1, 1]);
    }

    #[test]
    fn edge_fade_is_symmetric() {
        let g = generators::path(4); // 0-1-2-3
        let script = vec![
            Ev::new(5, EventKind::EdgeDown((2, 1))), // reversed orientation
            Ev::new(9, EventKind::EdgeUp((1, 2))),
        ];
        let mut t = DynamicTopology::new(&g, script);
        t.advance_to(&g, 5);
        assert_eq!(degrees(&t, &g), vec![1, 1, 1, 1]);
        assert!(!t.neighbors(&g, g.node(1)).contains(&g.node(2)));
        assert!(!t.neighbors(&g, g.node(2)).contains(&g.node(1)));
        t.advance_to(&g, 9);
        assert_eq!(degrees(&t, &g), degrees(&DynamicTopology::unperturbed(&g), &g));
    }

    #[test]
    fn partition_cuts_cross_block_edges_only() {
        let g = generators::path(8);
        let script = vec![Ev::new(1, EventKind::Partition(2)), Ev::new(2, EventKind::Heal)];
        let mut t = DynamicTopology::new(&g, script);
        t.advance_to(&g, 1);
        // Blocks {0..3} and {4..7}: exactly the 3-4 edge is cut.
        assert!(!t.neighbors(&g, g.node(3)).contains(&g.node(4)));
        assert_eq!(t.current_edge_count(), g.m() - 1);
        t.advance_to(&g, 2);
        assert_eq!(t.current_edge_count(), g.m());
    }

    #[test]
    fn partition_many_parts() {
        let g = generators::path(9);
        let mut t = DynamicTopology::new(&g, vec![Ev::new(0, EventKind::Partition(3))]);
        t.advance_to(&g, 0);
        // Blocks of 3: cuts 2-3 and 5-6.
        assert_eq!(t.current_edge_count(), g.m() - 2);
    }

    #[test]
    fn jammer_leaves_protocol_and_deafens_neighbors() {
        let g = generators::star(5); // hub 0, leaves 1..4
        let script = vec![Ev::new(3, EventKind::JammerOn(1)), Ev::new(8, EventKind::JammerOff(1))];
        let mut t = DynamicTopology::new(&g, script);
        t.advance_to(&g, 3);
        assert!(!t.is_active(g.node(1)), "a jammer does not run the protocol");
        assert!(t.is_jammed(g.node(0)), "the hub neighbors the jammer");
        assert!(!t.is_jammed(g.node(2)), "leaf 2 is out of jamming range");
        t.advance_to(&g, 8);
        assert!(t.is_active(g.node(1)));
        assert!(!t.is_jammed(g.node(0)));
    }

    #[test]
    fn wake_events_start_asleep() {
        let g = generators::path(3);
        let mut t = DynamicTopology::new(&g, vec![Ev::new(7, EventKind::Wake(2))]);
        assert!(!t.is_active(g.node(2)));
        assert!(t.is_active(g.node(1)));
        // Asleep nodes keep their edges.
        assert_eq!(t.neighbors(&g, g.node(2)), g.neighbors(g.node(2)));
        t.advance_to(&g, 7);
        assert!(t.is_active(g.node(2)));
    }

    #[test]
    fn rejoining_node_is_not_retired() {
        // A crashed node with a pending Join must keep the phase alive
        // (the engine waits for retired-or-done, not inactive-or-done).
        let g = generators::path(3);
        let script = vec![Ev::new(2, EventKind::Crash(1)), Ev::new(10, EventKind::Join(1))];
        let mut t = DynamicTopology::new(&g, script);
        t.advance_to(&g, 2);
        assert!(!t.is_active(g.node(1)));
        assert!(!t.is_retired(g.node(1)), "a Join is still scheduled");
        t.advance_to(&g, 10);
        assert!(t.is_active(g.node(1)));
        assert!(!t.is_retired(g.node(1)));
    }

    #[test]
    fn permanently_crashed_node_is_retired() {
        let g = generators::path(3);
        let mut t = DynamicTopology::new(&g, vec![Ev::new(2, EventKind::Crash(1))]);
        t.advance_to(&g, 2);
        assert!(!t.is_active(g.node(1)));
        assert!(t.is_retired(g.node(1)), "no return is scheduled");
    }

    #[test]
    fn jammer_with_scheduled_off_is_not_retired() {
        let g = generators::path(3);
        let script = vec![Ev::new(1, EventKind::JammerOn(2)), Ev::new(9, EventKind::JammerOff(2))];
        let mut t = DynamicTopology::new(&g, script);
        t.advance_to(&g, 1);
        assert!(!t.is_active(g.node(2)));
        assert!(!t.is_retired(g.node(2)), "the jam window ends at t=9");
        t.advance_to(&g, 9);
        assert!(t.is_active(g.node(2)));
    }

    #[test]
    fn same_instant_events_apply_in_script_order() {
        let g = generators::path(3);
        let script = vec![Ev::new(4, EventKind::Crash(1)), Ev::new(4, EventKind::Join(1))];
        let mut t = DynamicTopology::new(&g, script);
        t.advance_to(&g, 4);
        assert!(t.is_active(g.node(1)));
        assert_eq!(t.pending_events(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let g = generators::path(3);
        let _ = DynamicTopology::new(&g, vec![Ev::new(0, EventKind::EdgeDown((0, 9)))]);
    }

    #[test]
    #[should_panic(expected = "names node")]
    fn out_of_range_node_rejected() {
        let g = generators::path(3);
        let _ = DynamicTopology::new(&g, vec![Ev::new(0, EventKind::Crash(7))]);
    }
}
