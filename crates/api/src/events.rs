//! The event vocabulary of a dynamic-network scenario.
//!
//! A scenario script is a list of [`ScenarioEvent`]s — global-clock
//! timestamps paired with structural changes. Scripts are serde-able so
//! named scenarios can be recorded next to experiment results and replayed
//! exactly.

use serde::{Deserialize, Serialize};

/// One timed structural change.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// Global clock (simulated + charged steps) at which the change takes
    /// effect. The topology applies every event with `at <= clock` before
    /// the step at `clock` executes.
    pub at: u64,
    /// The change.
    pub kind: EventKind,
}

impl ScenarioEvent {
    /// Shorthand constructor.
    pub fn new(at: u64, kind: EventKind) -> Self {
        ScenarioEvent { at, kind }
    }
}

/// A structural change to the topology overlay.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Node `0` crashes: it stops participating and all its edges vanish.
    Crash(usize),
    /// A crashed node rejoins with its original (base-graph) edges.
    Join(usize),
    /// One undirected edge fades out (stays out until [`EventKind::EdgeUp`]).
    EdgeDown((usize, usize)),
    /// A faded edge comes back.
    EdgeUp((usize, usize)),
    /// The network splits into `k` parts (contiguous node-index blocks);
    /// every edge crossing a block boundary is cut until
    /// [`EventKind::Heal`].
    Partition(u32),
    /// All partition cuts are repaired.
    Heal,
    /// The node becomes an adversarial jammer: it leaves the protocol and
    /// transmits broadband noise every step, deafening all current
    /// neighbors.
    JammerOn(usize),
    /// The jammer powers down and rejoins the protocol.
    JammerOff(usize),
    /// The node wakes up. Any node with a `Wake` event anywhere in the
    /// script starts the run asleep (staggered / asynchronous wake-up);
    /// asleep nodes neither act nor hear, but keep their edges.
    Wake(usize),
}

impl EventKind {
    /// The node index the event concerns, if it concerns exactly one.
    pub fn node(&self) -> Option<usize> {
        match *self {
            EventKind::Crash(v)
            | EventKind::Join(v)
            | EventKind::JammerOn(v)
            | EventKind::JammerOff(v)
            | EventKind::Wake(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serde_round_trip() {
        let script = vec![
            ScenarioEvent::new(10, EventKind::Crash(3)),
            ScenarioEvent::new(20, EventKind::EdgeDown((1, 2))),
            ScenarioEvent::new(30, EventKind::Partition(2)),
            ScenarioEvent::new(40, EventKind::Heal),
            ScenarioEvent::new(50, EventKind::JammerOn(7)),
            ScenarioEvent::new(60, EventKind::Wake(4)),
        ];
        let json = serde_json::to_string_pretty(&script).unwrap();
        let back: Vec<ScenarioEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, script);
    }

    #[test]
    fn node_accessor() {
        assert_eq!(EventKind::Crash(5).node(), Some(5));
        assert_eq!(EventKind::Heal.node(), None);
        assert_eq!(EventKind::EdgeDown((1, 2)).node(), None);
    }
}
