//! Content addressing for [`RunSpec`](crate::RunSpec)s: a canonical byte
//! form plus a stable 128-bit hash over it.
//!
//! Runs are pure functions of their spec, so a *stable* spec hash turns
//! every result store into a content-addressed cache: identical traffic is
//! served without re-simulating (see `radionet-service`). Stability is the
//! whole contract — two spec documents that *mean* the same run must hash
//! identically, and any semantic difference must change the hash. The
//! canonical form achieves the first half:
//!
//! * **Field order is normalized.** JSON object keys are sorted, so a spec
//!   parsed from a hand-written file with reordered fields (the stub serde
//!   accepts any order) hashes like the struct's own serialization.
//! * **`None` and absent unify.** `null`-valued object entries are dropped
//!   recursively, matching the deserializer's rule that a missing key and
//!   an explicit `null` both mean `None` — so a legacy spec without the
//!   `journal` / `steps` keys hashes like a modern one carrying nulls.
//! * **Rendering is fixed.** Compact JSON via the workspace serializer,
//!   whose float formatting is shortest-round-trip (bit-exact).
//!
//! The hash itself is two independent FNV-1a-64 passes over the canonical
//! bytes, concatenated to 128 bits — collision-resistant enough for a
//! result cache keyed by trusted specs, cheap enough to hash on every
//! request, with no new dependencies. `pinned_hashes` in the spec tests
//! freezes concrete values so the key derivation can never silently drift.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// FNV-1a 64-bit offset basis (the standard constant).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime (the standard constant).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset basis of the second, independent pass (the standard offset
/// perturbed by the golden-ratio constant the workspace mixer uses).
const FNV_OFFSET_HI: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// One FNV-1a 64-bit pass from an explicit offset basis.
fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A stable 128-bit content hash of a canonical spec (see the module docs
/// for the canonicalization contract). Displays and serializes as 32 lower
/// hex digits, so it can key JSONL stores and travel through the wire
/// protocol as a plain string.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpecHash {
    /// High 64 bits (the perturbed-offset FNV pass).
    pub hi: u64,
    /// Low 64 bits (the standard-offset FNV pass).
    pub lo: u64,
}

impl SpecHash {
    /// Hashes a canonical byte string.
    pub fn of_bytes(bytes: &[u8]) -> SpecHash {
        SpecHash { hi: fnv1a64(bytes, FNV_OFFSET_HI), lo: fnv1a64(bytes, FNV_OFFSET) }
    }

    /// The 32-digit lower-hex rendering (what [`fmt::Display`] prints).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the [`SpecHash::to_hex`] form back.
    ///
    /// # Errors
    ///
    /// Returns the offending text when it is not exactly 32 hex digits.
    pub fn from_hex(s: &str) -> Result<SpecHash, String> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("spec hash must be 32 hex digits, got {s:?}"));
        }
        let hi = u64::from_str_radix(&s[..16], 16).map_err(|e| e.to_string())?;
        let lo = u64::from_str_radix(&s[16..], 16).map_err(|e| e.to_string())?;
        Ok(SpecHash { hi, lo })
    }
}

impl fmt::Display for SpecHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

impl Serialize for SpecHash {
    fn to_value(&self) -> Value {
        Value::Str(self.to_hex())
    }
}

impl Deserialize for SpecHash {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => SpecHash::from_hex(s).map_err(DeError::msg),
            other => Err(DeError::msg(format!("spec hash must be a string, got {}", other.kind()))),
        }
    }
}

/// Rewrites a serialized tree into its canonical form: object keys sorted,
/// `null`-valued object entries dropped, recursively. Array order is
/// semantic (e.g. SINR position snapshots) and is preserved; array
/// elements are canonicalized but `null` *elements* are kept.
pub fn canonical_value(v: &Value) -> Value {
    match v {
        Value::Object(fields) => {
            let mut out: Vec<(String, Value)> = fields
                .iter()
                .filter(|(_, val)| !matches!(val, Value::Null))
                .map(|(k, val)| (k.clone(), canonical_value(val)))
                .collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(out)
        }
        Value::Array(items) => Value::Array(items.iter().map(canonical_value).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_passes_are_independent_and_pinned() {
        // The empty input pins the offset bases themselves.
        let empty = SpecHash::of_bytes(b"");
        assert_eq!(empty.lo, FNV_OFFSET);
        assert_eq!(empty.hi, FNV_OFFSET_HI);
        // Classic FNV-1a 64 test vector: "a" → 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(b"a", FNV_OFFSET), 0xaf63_dc4c_8601_ec8c);
        let h = SpecHash::of_bytes(b"radionet");
        assert_ne!(h.hi, h.lo, "the two passes must not collapse");
        assert_ne!(h, SpecHash::of_bytes(b"radionet "), "content sensitivity");
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        let h = SpecHash::of_bytes(b"spec");
        let hex = h.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(SpecHash::from_hex(&hex).unwrap(), h);
        assert_eq!(format!("{h}"), hex);
        assert!(SpecHash::from_hex("abc").is_err());
        assert!(SpecHash::from_hex(&"g".repeat(32)).is_err());
    }

    #[test]
    fn serde_round_trips_as_a_string() {
        let h = SpecHash::of_bytes(b"wire");
        let json = serde_json::to_string(&h).unwrap();
        assert!(json.starts_with('"') && json.ends_with('"'), "{json}");
        let back: SpecHash = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn canonicalization_sorts_drops_nulls_and_keeps_arrays() {
        let messy = Value::Object(vec![
            ("zeta".into(), Value::U64(1)),
            ("gone".into(), Value::Null),
            (
                "alpha".into(),
                Value::Object(vec![
                    ("b".into(), Value::Null),
                    ("a".into(), Value::Array(vec![Value::Null, Value::U64(2)])),
                ]),
            ),
        ]);
        let canon = canonical_value(&messy);
        let expect = Value::Object(vec![
            (
                "alpha".into(),
                Value::Object(vec![("a".into(), Value::Array(vec![Value::Null, Value::U64(2)]))]),
            ),
            ("zeta".into(), Value::U64(1)),
        ]);
        assert_eq!(canon, expect);
    }
}
