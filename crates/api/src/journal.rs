//! Replay and divergence tooling over recorded [`Journal`]s.
//!
//! A journal produced by [`Driver::run_journaled`] embeds its [`RunSpec`],
//! so the serialized document alone suffices to re-drive the run:
//! [`replay`] re-executes the spec under the recorded class filter and
//! waypoint cadence and compares the two event streams with the journal
//! crate's waypoint-bisecting differ. Identical streams mean the recording
//! is reproducible on this build; a divergence names the exact first
//! differing `(step, event)` pair — which is the `radionet replay` /
//! `radionet bisect` CLI story.

use crate::driver::{Driver, RunError, RunReport};
use crate::spec::{JournalSpec, RunSpec};
use radionet_journal::{bisect, BisectReport, ClassMask, Journal};
use serde::Deserialize;

/// The result of re-driving a recorded run: the fresh report, the fresh
/// recording, and the stream comparison against the original.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The report of the replay run.
    pub report: RunReport,
    /// The journal the replay recorded.
    pub replayed: Journal,
    /// Recorded vs. replayed, compared over every class both kept.
    pub comparison: BisectReport,
}

impl ReplayOutcome {
    /// Whether the replay reproduced the recording event-for-event.
    pub fn matches(&self) -> bool {
        !self.comparison.is_divergent()
    }
}

/// Extracts the [`RunSpec`] a journal was recorded under.
///
/// # Errors
///
/// [`RunError::InvalidSpec`] when the journal carries no spec (it was not
/// produced by [`Driver::run_journaled`]) or the embedded spec no longer
/// parses.
pub fn spec_of(journal: &Journal) -> Result<RunSpec, RunError> {
    let value = journal.spec.as_ref().ok_or_else(|| {
        RunError::InvalidSpec(
            "journal carries no embedded spec; record with `radionet run --journal`".into(),
        )
    })?;
    RunSpec::from_value(value)
        .map_err(|e| RunError::InvalidSpec(format!("embedded journal spec does not parse: {e}")))
}

/// Re-drives a recorded journal's spec and compares the fresh event stream
/// against the recording.
///
/// The replay runs under the *recorded* class filter and waypoint cadence
/// (not whatever the embedded spec's journal section says), so the two
/// streams are compared like for like.
///
/// # Errors
///
/// Propagates [`spec_of`] failures and every [`Driver::run_journaled`]
/// failure mode.
pub fn replay(driver: &Driver, recorded: &Journal) -> Result<ReplayOutcome, RunError> {
    let mut spec = spec_of(recorded)?;
    spec.journal = Some(JournalSpec {
        classes: mask_string(recorded.mask),
        checkpoint_every: recorded.checkpoint_every,
    });
    let (report, replayed) = driver.run_journaled(&spec)?;
    let comparison = bisect(recorded, &replayed, ClassMask::ALL);
    Ok(ReplayOutcome { report, replayed, comparison })
}

/// The spec-side spelling of a class mask (`ClassMask::parse` inverse).
fn mask_string(mask: ClassMask) -> String {
    let names = mask.names();
    if names.is_empty() {
        "none".into()
    } else {
        names.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::families::Family;
    use radionet_journal::{Event, EventKind, TransmitInfo};

    fn journaled_spec() -> RunSpec {
        RunSpec::new("broadcast", Family::Grid, 25)
            .with_seed(3)
            .with_journal(JournalSpec { classes: "all".into(), checkpoint_every: 8 })
    }

    #[test]
    fn replay_reproduces_a_recorded_run_bit_for_bit() {
        let driver = Driver::standard();
        let (report, journal) = driver.run_journaled(&journaled_spec()).unwrap();
        assert_eq!(report.journal, Some(journal.summary()));
        // Serialize → parse → replay: the full CLI round trip.
        let parsed = Journal::from_json_str(&journal.to_json_string().unwrap()).unwrap();
        let out = replay(&driver, &parsed).unwrap();
        assert!(out.matches(), "replay diverged: {}", out.comparison);
        assert_eq!(out.replayed.final_fingerprint, journal.final_fingerprint);
        assert_eq!(out.replayed.events, journal.events);
        assert_eq!(out.replayed.waypoints, journal.waypoints);
    }

    #[test]
    fn replay_pinpoints_a_perturbed_event() {
        let driver = Driver::standard();
        let (_report, mut journal) = driver.run_journaled(&journaled_spec()).unwrap();
        // Corrupt one mid-stream transmission, as a broken engine would.
        let idx = journal
            .events
            .iter()
            .position(|e| e.step > 10 && matches!(e.kind, EventKind::Transmit(_)))
            .expect("a grid broadcast transmits after step 10");
        let step = journal.events[idx].step;
        journal.events[idx] =
            Event { step, kind: EventKind::Transmit(TransmitInfo { node: 9999 }) };
        let out = replay(&driver, &journal).unwrap();
        assert!(!out.matches());
        let divergence = out.comparison.divergence.as_ref().expect("divergence located");
        assert_eq!(divergence.step, step, "bisect names the corrupted step");
    }

    #[test]
    fn spec_of_requires_an_embedded_spec() {
        let driver = Driver::standard();
        let (_report, mut journal) = driver.run_journaled(&journaled_spec()).unwrap();
        journal.spec = None;
        let err = replay(&driver, &journal).unwrap_err();
        assert!(matches!(err, RunError::InvalidSpec(_)), "{err}");
    }
}
