//! # radionet-api — the unified façade
//!
//! The paper's point is a *single parametrization* (the independence number
//! α) that unites general-graph and geometric radio models; this crate is
//! the same move applied to the workspace's API. Instead of eleven
//! divergent `run_*` free functions with bespoke config and outcome types,
//! there is **one** typed, serde-able description of a run — [`RunSpec`] —
//! and **one** entry point that executes it — [`Driver::run`] — returning
//! one unified [`RunReport`].
//!
//! * [`spec`] — [`RunSpec`] (graph family + size, reception mode, step
//!   kernel, [`Dynamics`] recipe, task key, optional step cap, seed);
//! * [`task`] — the object-safe [`Task`] trait and the unified
//!   [`TaskOutcome`] enum;
//! * [`tasks`] — the standard implementations: `Compete` broadcast, leader
//!   election, radio MIS, radio partition, and every baseline (BGI,
//!   Czumaj–Rytter, CD wake-up, naive LE, LOCAL MIS references);
//! * [`registry`] — the string-keyed [`TaskRegistry`]: a new algorithm
//!   plugs in with one `impl` plus one registry line;
//! * [`driver`] — [`Driver`], plus streaming sweeps over many specs;
//! * [`sink`] — the [`ResultSink`] trait and its JSONL / JSON-array /
//!   in-memory implementations (huge sweeps never buffer);
//! * [`events`] / [`dynamics`] — the dynamic-topology vocabulary
//!   ([`ScenarioEvent`](events::ScenarioEvent) scripts and the
//!   [`DynamicTopology`](dynamics::DynamicTopology) overlay) every
//!   scripted run is executed through (a static run is simply an empty
//!   script);
//! * [`topology`] — [`RunTopology`], the unified view tasks run under:
//!   the scripted overlay or a
//!   [`MobileTopology`](radionet_mobility::MobileTopology) whose edges
//!   are re-derived from moving geometry
//!   ([`Dynamics::Mobility`] recipes);
//! * [`seeds`] — the shared deterministic seed derivation: identical specs
//!   produce bit-identical reports anywhere;
//! * [`journal`] — replay and divergence tooling over the event journals
//!   [`Driver::run_journaled`] records (see `radionet-journal`): re-drive
//!   a recorded run and binary-search two recordings to their first
//!   differing event.
//!
//! ```
//! use radionet_api::{Driver, Dynamics, RunSpec};
//! use radionet_graph::families::Family;
//!
//! // One typed spec names the whole experiment…
//! let spec = RunSpec::new("broadcast", Family::UnitDisk, 64)
//!     .with_dynamics(Dynamics::preset("jamming").unwrap())
//!     .with_seed(42);
//! // …and one call runs it.
//! let report = Driver::standard().run(&spec).unwrap();
//! assert_eq!(report.spec, spec);
//! println!("informed {:.0}% in {} steps", 100.0 * report.achieved, report.clock_total);
//! ```
//!
//! The `radionet` CLI binary (root crate) exposes the same surface from the
//! shell: `radionet run`, `radionet sweep`, `radionet list-tasks`,
//! `radionet catalogue`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod dynamics;
pub mod events;
pub mod hash;
pub mod journal;
pub mod registry;
pub mod seeds;
pub mod sink;
pub mod spec;
pub mod task;
pub mod tasks;
pub mod topology;

pub use driver::{Driver, RunError, RunReport};
pub use hash::SpecHash;
pub use journal::{replay, spec_of, ReplayOutcome};
pub use registry::TaskRegistry;
pub use sink::{JsonArraySink, JsonlSink, MemorySink, ResultSink};
pub use spec::{
    ChurnSpec, Dynamics, JamSpec, JournalSpec, MobilitySpec, PartitionSpec, RunSpec, StaggerSpec,
};
pub use task::{
    BroadcastSummary, ElectionSummary, MisSummary, PartitionSummary, Task, TaskCtx, TaskOutcome,
    WakeupSummary,
};
pub use topology::RunTopology;
// The streaming-traffic vocabulary, re-exported so spec-building code can
// stay on the façade crate alone (the types live in `radionet-traffic`,
// below this crate in the dependency graph).
pub use radionet_traffic::{
    Arrival, BurstyArrival, PoissonArrival, TrafficKind, TrafficReport, TrafficSpec,
};
