//! The string-keyed task registry.

use crate::task::Task;
use crate::tasks;
use std::collections::BTreeMap;

/// Maps stable string keys to boxed [`Task`]s.
///
/// The registry is the single catalogue of runnable algorithms: the
/// [`Driver`](crate::Driver) resolves [`RunSpec::task`](crate::RunSpec)
/// against it, and `radionet list-tasks` prints it. Keys iterate in sorted
/// order, so listings are deterministic.
///
/// ```
/// use radionet_api::TaskRegistry;
///
/// let registry = TaskRegistry::standard();
/// assert!(registry.get("broadcast").is_some());
/// assert!(registry.get("warp-drive").is_none());
/// let keys: Vec<&str> = registry.keys().collect();
/// assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted and duplicate-free");
/// ```
#[derive(Default)]
pub struct TaskRegistry {
    tasks: BTreeMap<&'static str, Box<dyn Task>>,
}

impl TaskRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard registry: every algorithm in the workspace.
    pub fn standard() -> Self {
        let mut r = TaskRegistry::new();
        r.register(Box::new(tasks::BroadcastTask));
        r.register(Box::new(tasks::LeaderElectionTask));
        r.register(Box::new(tasks::MisTask));
        r.register(Box::new(tasks::PartitionTask));
        r.register(Box::new(tasks::BgiBroadcastTask));
        r.register(Box::new(tasks::CrBroadcastTask));
        r.register(Box::new(tasks::NaiveLeaderElectionTask));
        r.register(Box::new(tasks::CdWakeupTask));
        r.register(Box::new(tasks::LubyMisTask));
        r.register(Box::new(tasks::GhaffariMisTask));
        r.register(Box::new(tasks::TrafficTask::new(radionet_traffic::TrafficKind::Gossip)));
        r.register(Box::new(tasks::TrafficTask::new(radionet_traffic::TrafficKind::Unicast)));
        r.register(Box::new(tasks::TrafficTask::new(radionet_traffic::TrafficKind::Multicast)));
        r
    }

    /// Registers a task under its own key.
    ///
    /// # Panics
    ///
    /// Panics if the key is already taken — duplicate keys are always a
    /// wiring bug, and silently replacing an algorithm would corrupt every
    /// downstream result.
    pub fn register(&mut self, task: Box<dyn Task>) {
        let key = task.key();
        let prev = self.tasks.insert(key, task);
        assert!(prev.is_none(), "duplicate task key {key:?}");
    }

    /// Looks a task up by key.
    pub fn get(&self, key: &str) -> Option<&dyn Task> {
        self.tasks.get(key).map(|t| t.as_ref())
    }

    /// All keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.tasks.keys().copied()
    }

    /// All tasks, sorted by key.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Task> + '_ {
        self.tasks.values().map(|t| t.as_ref())
    }

    /// Number of registered tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_covers_every_run_entry_point() {
        let r = TaskRegistry::standard();
        // One key per legacy `run_*` family (run_compete is reachable as
        // single-source broadcast; run_bgi_multi backs naive-leader-election).
        for key in [
            "broadcast",
            "leader-election",
            "mis",
            "partition",
            "bgi-broadcast",
            "cr-broadcast",
            "naive-leader-election",
            "cd-wakeup",
            "luby-mis",
            "ghaffari-mis",
            "traffic.gossip",
            "traffic.unicast",
            "traffic.multicast",
        ] {
            assert!(r.get(key).is_some(), "missing task {key}");
        }
        assert_eq!(r.len(), 13);
    }

    #[test]
    fn keys_match_tasks_and_have_descriptions() {
        let r = TaskRegistry::standard();
        for task in r.iter() {
            assert_eq!(r.get(task.key()).unwrap().key(), task.key());
            assert!(!task.describe().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "duplicate task key")]
    fn duplicate_registration_panics() {
        let mut r = TaskRegistry::standard();
        r.register(Box::new(crate::tasks::BroadcastTask));
    }
}
