//! Deterministic seed derivation shared by the [`Driver`](crate::Driver)
//! and the `radionet-scenario` sweep runner.
//!
//! Everything an experiment cell randomizes — the graph instance, the event
//! script, the simulator's per-node RNGs, and node-private lotteries — is
//! derived from **one** cell seed through the fixed-constant mixes below.
//! Keeping the derivation in a single module is the determinism guard: the
//! façade path (`Driver::run`) and the legacy sweep path stay byte-identical
//! because they cannot disagree on a derived seed.

/// Splitmix64-style finalizer: the workspace's standard bit mixer.
pub fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The per-cell seed of a sweep: mixes the sweep's base seed with the cell
/// index (its scenario name, requested size, and repetition number).
///
/// This is the exact derivation the scenario sweep runner has always used,
/// extracted here so `SweepConfig::cells` and spec-building code cannot
/// drift apart; `pinned_values` below freezes the outputs.
pub fn seed_for(base: u64, scenario_name: &str, n: usize, rep: u64) -> u64 {
    let mut h = base ^ mix(n as u64) ^ mix(rep.wrapping_add(77));
    for b in scenario_name.bytes() {
        h = mix(h ^ b as u64);
    }
    h
}

/// The seed a cell instantiates its graph family from.
pub fn graph_seed(cell_seed: u64) -> u64 {
    mix(cell_seed ^ 0x6a)
}

/// The seed a cell materializes its dynamics event script from.
pub fn events_seed(cell_seed: u64) -> u64 {
    mix(cell_seed ^ 0xe7)
}

/// The seed the simulator's per-node RNGs derive from.
pub fn sim_seed(cell_seed: u64) -> u64 {
    mix(cell_seed ^ 0x51)
}

/// The seed for node-private zero-cost lotteries (e.g. the leader-election
/// candidate draw).
pub fn lottery_seed(cell_seed: u64) -> u64 {
    mix(cell_seed ^ 0x1e)
}

/// The seed the mobility subsystem derives all motion randomness (and the
/// quasi-UDG pair coins) from.
pub fn mobility_seed(cell_seed: u64) -> u64 {
    mix(cell_seed ^ 0xb0b)
}

/// The seed a cell's streaming-traffic plan (arrival times, destinations,
/// multicast salts) derives from.
pub fn traffic_seed(cell_seed: u64) -> u64 {
    mix(cell_seed ^ 0x74af)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Determinism guard: these exact values are produced today by the
    /// sweep runner's historical derivation. If this test fails, every
    /// recorded sweep result and golden fixture in the repo silently means
    /// something else — do not "fix" the constants, fix the regression.
    #[test]
    fn pinned_values() {
        let a = seed_for(3, "t-static", 36, 0);
        assert_eq!(a, 0xafd9_5556_08f2_5d31);
        assert_eq!(seed_for(0xd1ce, "grid-churn", 256, 2), 0x36a2_b80e_a344_4106);
        assert_eq!(graph_seed(a), 0xe564_bb60_168a_bc47);
        assert_eq!(events_seed(a), 0x99b4_abb8_250e_ef13);
        assert_eq!(sim_seed(a), 0x354c_d6cf_8f85_6e8a);
        assert_eq!(lottery_seed(a), 0xa23d_f5e8_9228_eb74);
        assert_eq!(mobility_seed(a), 0xd39a_61ed_284e_18c6);
        assert_eq!(traffic_seed(a), 0x2906_b425_9b21_c5f3);
    }

    #[test]
    fn distinct_streams_per_cell_seed() {
        let s = 0x1234_5678_9abc_def0;
        let derived = [
            graph_seed(s),
            events_seed(s),
            sim_seed(s),
            lottery_seed(s),
            mobility_seed(s),
            traffic_seed(s),
        ];
        let mut sorted = derived.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), derived.len(), "derived seed streams collide");
    }

    #[test]
    fn name_sensitivity() {
        assert_ne!(seed_for(1, "a", 64, 0), seed_for(1, "b", 64, 0));
        assert_ne!(seed_for(1, "a", 64, 0), seed_for(1, "a", 65, 0));
        assert_ne!(seed_for(1, "a", 64, 0), seed_for(1, "a", 64, 1));
        assert_ne!(seed_for(1, "a", 64, 0), seed_for(2, "a", 64, 0));
    }
}
