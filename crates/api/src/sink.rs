//! Streaming result sinks: huge sweeps write as they go, never buffering
//! the whole result set.

use crate::driver::RunReport;
use std::io::{self, Write};

/// A destination for [`RunReport`]s, fed one report at a time.
///
/// Sweep drivers call [`emit`](ResultSink::emit) per completed cell and
/// [`finish`](ResultSink::finish) once at the end, so sinks can stream to
/// disk or a socket with O(1) memory however large the sweep is.
pub trait ResultSink {
    /// Records one report.
    fn emit(&mut self, report: &RunReport) -> io::Result<()>;

    /// Flushes and closes the stream (writes trailers, if any).
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn encode<T: serde::Serialize>(value: &T, pretty: bool) -> io::Result<String> {
    let encoded =
        if pretty { serde_json::to_string_pretty(value) } else { serde_json::to_string(value) };
    encoded.map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// JSON Lines: one compact JSON object per line, written immediately.
///
/// The format of choice for million-cell sweeps — each line is a complete
/// record, so partial files are usable and downstream tools can stream.
pub struct JsonlSink<W: Write> {
    w: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> ResultSink for JsonlSink<W> {
    fn emit(&mut self, report: &RunReport) -> io::Result<()> {
        let line = encode(report, false)?;
        self.w.write_all(line.as_bytes())?;
        self.w.write_all(b"\n")
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// A streaming JSON array: `[` … pretty-printed reports … `]`, valid JSON
/// once finished, still O(1) memory while streaming.
pub struct JsonArraySink<W: Write> {
    w: W,
    count: usize,
    finished: bool,
}

impl<W: Write> JsonArraySink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonArraySink { w, count: 0, finished: false }
    }

    /// Reports emitted so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl<W: Write> ResultSink for JsonArraySink<W> {
    fn emit(&mut self, report: &RunReport) -> io::Result<()> {
        let prefix = if self.count == 0 { "[\n" } else { ",\n" };
        self.w.write_all(prefix.as_bytes())?;
        self.w.write_all(encode(report, true)?.as_bytes())?;
        self.count += 1;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        if !self.finished {
            self.finished = true;
            let trailer: &[u8] = if self.count == 0 { b"[]\n" } else { b"\n]\n" };
            self.w.write_all(trailer)?;
        }
        self.w.flush()
    }
}

/// Collects reports in memory (tests and small interactive runs).
#[derive(Default)]
pub struct MemorySink {
    /// Everything emitted so far, in emit order.
    pub reports: Vec<RunReport>,
}

impl ResultSink for MemorySink {
    fn emit(&mut self, report: &RunReport) -> io::Result<()> {
        self.reports.push(report.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use crate::spec::RunSpec;
    use radionet_graph::families::Family;

    fn report() -> RunReport {
        Driver::standard().run(&RunSpec::new("luby-mis", Family::Path, 8)).unwrap()
    }

    #[test]
    fn jsonl_one_line_per_report() {
        let mut sink = JsonlSink::new(Vec::new());
        let r = report();
        sink.emit(&r).unwrap();
        sink.emit(&r).unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back: RunReport = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_array_is_valid_json() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonArraySink::new(&mut buf);
            let r = report();
            sink.emit(&r).unwrap();
            sink.emit(&r).unwrap();
            sink.finish().unwrap();
            assert_eq!(sink.count(), 2);
        }
        let text = String::from_utf8(buf).unwrap();
        let back: Vec<RunReport> = serde_json::from_str(&text).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn empty_array_still_valid() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonArraySink::new(&mut buf);
            sink.finish().unwrap();
        }
        let back: Vec<RunReport> = serde_json::from_str(&String::from_utf8(buf).unwrap()).unwrap();
        assert!(back.is_empty());
    }
}
