//! The unified run description: one serde-able [`RunSpec`] names everything
//! a cell needs — graph family and size, reception rule, step kernel,
//! dynamics recipe, task key, optional step cap, and the seed all
//! randomness derives from.

use crate::events::{EventKind, ScenarioEvent};
use crate::hash::{canonical_value, SpecHash};
use crate::seeds::mix;
use radionet_graph::families::Family;
use radionet_graph::Graph;
use radionet_journal::ClassMask;
use radionet_mobility::{GroupDriftParams, MobilityModel, WalkParams, WaypointParams};
use radionet_sim::{Kernel, PositionSource, ReceptionMode};
use radionet_traffic::TrafficSpec;
use serde::{Deserialize, Serialize};

/// What to record while a run executes (see `radionet-journal`). Absent
/// from a spec (`RunSpec::journal = None`), the run executes on the
/// zero-cost [`NullSink`](radionet_sim::NullSink) — the engine's journal
/// branches fold away at compile time and nothing is recorded.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalSpec {
    /// Comma-separated event classes to keep (`"radio,topology,phase,sched"`;
    /// `"all"`/empty keeps everything, `"none"` records waypoints only).
    pub classes: String,
    /// Waypoint cadence in completed steps; `0` lets the driver derive one
    /// from the task's timebase (≈ timebase / 8).
    pub checkpoint_every: u64,
}

impl Default for JournalSpec {
    fn default() -> Self {
        JournalSpec { classes: "all".into(), checkpoint_every: 0 }
    }
}

impl JournalSpec {
    /// The parsed class filter.
    ///
    /// # Errors
    ///
    /// Returns the unknown class token verbatim.
    pub fn mask(&self) -> Result<ClassMask, String> {
        ClassMask::parse(&self.classes)
    }

    /// Resolves the waypoint cadence against a task timebase: an explicit
    /// cadence wins, `0` derives `max(timebase / 8, 1)`.
    pub fn cadence(&self, timebase: u64) -> u64 {
        if self.checkpoint_every != 0 {
            self.checkpoint_every
        } else {
            (timebase / 8).max(1)
        }
    }
}

/// Staggered (asynchronous) wake-up: every node except 0 wakes at a
/// deterministic pseudo-random time in `[0, spread × timebase]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StaggerSpec {
    /// Wake-time spread as a fraction of the task timebase.
    pub spread: f64,
}

/// Node churn: a fraction of nodes crash at staggered times and rejoin
/// `down` later.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Fraction of nodes (excluding node 0) that crash.
    pub victims: f64,
    /// First crash, as a fraction of the timebase.
    pub start: f64,
    /// Crash times spread over this additional fraction.
    pub spread: f64,
    /// Downtime per victim, as a fraction of the timebase.
    pub down: f64,
}

/// A k-way partition (contiguous index blocks) later healed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Number of parts.
    pub parts: u32,
    /// Split time as a fraction of the timebase.
    pub at: f64,
    /// Repair time as a fraction of the timebase.
    pub heal_at: f64,
}

/// Adversarial jammers: a fraction of nodes defect and emit noise during a
/// window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JamSpec {
    /// Fraction of nodes (excluding node 0) that become jammers.
    pub jammers: f64,
    /// Jamming starts, as a fraction of the timebase.
    pub from: f64,
    /// Jamming ends, as a fraction of the timebase.
    pub until: f64,
}

/// Continuously moving geometric nodes: the topology is *re-derived from
/// evolving positions* (see `radionet-mobility`) instead of mutated by
/// scripted events. Requires a geometric family — the point set the
/// generators expose via
/// [`Family::instantiate_positioned`](radionet_graph::families::Family::instantiate_positioned)
/// is what moves.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MobilitySpec {
    /// The mobility model (speeds in interaction radii per tick).
    pub model: MobilityModel,
    /// Engine steps per mobility tick (≥ 1; the driver clamps 0 to 1).
    pub tick: u64,
    /// Engine steps between time-resolved α-bounds/diameter samples;
    /// `None` lets the driver pick `timebase / 8`, and `Some(0)` disables
    /// sampling entirely (no trace samples, no sampling cost).
    pub sample_every: Option<u64>,
}

/// A dynamics recipe: how the topology evolves during the run.
///
/// Event times are expressed as *fractions of the task's timebase* (the
/// step budget the paper's bounds are stated in, see
/// [`Task::timebase`](crate::Task::timebase)), so one recipe scales across
/// sizes and families: `0.0` is the start of the run and `1.0` is roughly
/// where the task's own budget would expire. [`Dynamics::Mobility`] is the
/// exception: it scripts no events — the topology follows the moving
/// point set tick by tick.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Dynamics {
    /// The paper's model: nothing changes.
    Static,
    /// Staggered wake-up.
    StaggeredWake(StaggerSpec),
    /// Crash/rejoin churn.
    Churn(ChurnSpec),
    /// Partition then repair.
    PartitionRepair(PartitionSpec),
    /// Jamming window.
    Jamming(JamSpec),
    /// Moving geometric nodes (geometric families only).
    Mobility(MobilitySpec),
}

impl Dynamics {
    /// Short stable name for tables and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Dynamics::Static => "static",
            Dynamics::StaggeredWake(_) => "staggered-wake",
            Dynamics::Churn(_) => "churn",
            Dynamics::PartitionRepair(_) => "partition-repair",
            Dynamics::Jamming(_) => "jamming",
            Dynamics::Mobility(m) => match m.model.kind_name() {
                "waypoint" => "mobility:waypoint",
                "walk" => "mobility:walk",
                "levy" => "mobility:levy",
                "group" => "mobility:group",
                _ => "mobility:static",
            },
        }
    }

    /// The standard presets (the parameter choices the scenario catalogue
    /// has always swept), by dynamics name. `None` for unknown names.
    pub fn preset(name: &str) -> Option<Dynamics> {
        match name {
            "static" => Some(Dynamics::Static),
            "churn" => Some(Dynamics::Churn(ChurnSpec {
                victims: 0.1,
                start: 0.05,
                spread: 0.15,
                down: 0.2,
            })),
            "partition" | "partition-repair" => {
                Some(Dynamics::PartitionRepair(PartitionSpec { parts: 2, at: 0.05, heal_at: 0.35 }))
            }
            "jamming" => Some(Dynamics::Jamming(JamSpec { jammers: 0.05, from: 0.05, until: 0.4 })),
            "staggered" | "staggered-wake" => {
                Some(Dynamics::StaggeredWake(StaggerSpec { spread: 0.1 }))
            }
            // Classic random waypoint: whole-domain waypoints, short
            // pauses — the fleet is in motion most of the time.
            "mobility:waypoint" | "waypoint" => Some(Dynamics::Mobility(MobilitySpec {
                model: MobilityModel::RandomWaypoint(WaypointParams {
                    speed_lo: 0.02,
                    speed_hi: 0.08,
                    pause_lo: 10,
                    pause_hi: 60,
                    range: 0.0,
                }),
                tick: 1,
                sample_every: None,
            })),
            "mobility:walk" | "walk" => Some(Dynamics::Mobility(MobilitySpec {
                model: MobilityModel::RandomWalk(WalkParams {
                    step: 0.04,
                    levy_alpha: 0.0,
                    run_lo: 10,
                    run_hi: 40,
                    pause_lo: 5,
                    pause_hi: 30,
                }),
                tick: 1,
                sample_every: None,
            })),
            "mobility:levy" | "levy" => Some(Dynamics::Mobility(MobilitySpec {
                model: MobilityModel::RandomWalk(WalkParams {
                    step: 0.02,
                    levy_alpha: 1.5,
                    run_lo: 5,
                    run_hi: 20,
                    pause_lo: 10,
                    pause_hi: 80,
                }),
                tick: 1,
                sample_every: None,
            })),
            "mobility:group" | "group" => Some(Dynamics::Mobility(MobilitySpec {
                model: MobilityModel::GroupDrift(GroupDriftParams {
                    groups: 8,
                    speed: 0.03,
                    jitter: 0.01,
                    hold: 40,
                }),
                tick: 1,
                sample_every: None,
            })),
            _ => None,
        }
    }

    /// Every preset name accepted by [`Dynamics::preset`], in display order.
    pub const PRESETS: [&'static str; 9] = [
        "static",
        "churn",
        "partition-repair",
        "jamming",
        "staggered-wake",
        "mobility:waypoint",
        "mobility:walk",
        "mobility:levy",
        "mobility:group",
    ];

    /// Materializes the event script for one cell.
    ///
    /// Deterministic in `(graph, timebase, seed)`; fractions in the recipe
    /// are scaled by `timebase` steps.
    pub fn events_for(&self, g: &Graph, timebase: u64, seed: u64) -> Vec<ScenarioEvent> {
        let h = timebase as f64;
        let at = |frac: f64| (frac * h).round().max(0.0) as u64;
        let n = g.n();
        match *self {
            Dynamics::Static => Vec::new(),
            // Mobility scripts no events: the topology is derived from the
            // moving point set instead.
            Dynamics::Mobility(_) => Vec::new(),
            Dynamics::StaggeredWake(s) => (1..n)
                .map(|v| {
                    let t = mix(seed ^ 0x5a5a ^ v as u64) as f64 / u64::MAX as f64;
                    ScenarioEvent::new(at(t * s.spread), EventKind::Wake(v))
                })
                .collect(),
            Dynamics::Churn(c) => {
                let count = ((n as f64 * c.victims).round() as usize).max(1);
                let victims = pick_victims(n, count, seed ^ 0xc4u64);
                let mut script = Vec::with_capacity(2 * victims.len());
                for (i, &v) in victims.iter().enumerate() {
                    let frac =
                        if victims.len() > 1 { i as f64 / (victims.len() - 1) as f64 } else { 0.0 };
                    let crash = at(c.start + frac * c.spread);
                    script.push(ScenarioEvent::new(crash, EventKind::Crash(v)));
                    script.push(ScenarioEvent::new(crash + at(c.down).max(1), EventKind::Join(v)));
                }
                script
            }
            Dynamics::PartitionRepair(p) => vec![
                ScenarioEvent::new(at(p.at), EventKind::Partition(p.parts)),
                ScenarioEvent::new(at(p.heal_at), EventKind::Heal),
            ],
            Dynamics::Jamming(j) => {
                let count = ((n as f64 * j.jammers).round() as usize).max(1);
                let victims = pick_victims(n, count, seed ^ 0x7a_7au64);
                let mut script = Vec::with_capacity(2 * victims.len());
                for &v in &victims {
                    script.push(ScenarioEvent::new(at(j.from), EventKind::JammerOn(v)));
                    script.push(ScenarioEvent::new(at(j.until), EventKind::JammerOff(v)));
                }
                script
            }
        }
    }
}

/// Picks `count` distinct victims from `1..n` (node 0 — the instrumented
/// source — is never picked), deterministically from `seed`.
fn pick_victims(n: usize, count: usize, seed: u64) -> Vec<usize> {
    assert!(n >= 2, "victim selection needs n >= 2");
    let count = count.min(n - 1);
    let mut picked = Vec::with_capacity(count);
    let mut i = 0u64;
    while picked.len() < count {
        let v = 1 + (mix(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % (n as u64 - 1)) as usize;
        if !picked.contains(&v) {
            picked.push(v);
        }
        i += 1;
    }
    picked
}

/// One fully specified run: the single typed entry point of the workspace.
///
/// A `RunSpec` is a pure description — the graph, the event script, the
/// simulator RNGs, and every node-private lottery all derive from `seed`
/// (see [`seeds`](crate::seeds)) — so identical specs produce bit-identical
/// [`RunReport`](crate::RunReport)s on any machine, any thread count, and
/// either step kernel.
///
/// ```
/// use radionet_api::{Driver, RunSpec};
/// use radionet_graph::families::Family;
///
/// let spec = RunSpec::new("broadcast", Family::Grid, 36).with_seed(7);
/// let report = Driver::standard().run(&spec).unwrap();
/// assert!(report.success, "static grid broadcast completes");
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Registry key of the task to run (see
    /// [`TaskRegistry::standard`](crate::TaskRegistry::standard)).
    pub task: String,
    /// The base graph family (geometry is the family's own parametrization).
    pub family: Family,
    /// Requested node count (families may round, e.g. to a square grid).
    pub n: usize,
    /// The reception rule.
    pub reception: ReceptionMode,
    /// The step kernel executing the run.
    pub kernel: Kernel,
    /// The dynamics recipe.
    pub dynamics: Dynamics,
    /// Optional cap on the task's own step budget. Honored by the tasks
    /// with an explicit budget knob (`cd-wakeup` steps, `luby-mis` /
    /// `ghaffari-mis` rounds); the `Compete`-based tasks, radio MIS, and
    /// the Decay floods derive their budgets from [`NetInfo`] exactly as
    /// the paper's bounds prescribe and document the cap as ignored.
    ///
    /// [`NetInfo`]: radionet_sim::NetInfo
    pub steps: Option<u64>,
    /// Optional observability section: what
    /// [`Driver::run_journaled`](crate::Driver::run_journaled) records.
    /// `None` (the default, and what journal-less legacy specs parse to)
    /// runs on the zero-cost null sink.
    pub journal: Option<JournalSpec>,
    /// Optional streaming-traffic axis, read by the `traffic.*` task
    /// family (other tasks ignore it). `None` — the default, and what
    /// every pre-traffic spec document parses to — means a traffic task
    /// runs [`TrafficSpec::default`]; because canonicalization drops
    /// nulls, legacy specs keep their exact spec hashes.
    pub traffic: Option<TrafficSpec>,
    /// The cell seed every random choice derives from.
    pub seed: u64,
}

impl RunSpec {
    /// A spec with the workspace defaults: protocol-model reception, the
    /// sparse kernel, static topology, no step cap, seed 0.
    pub fn new(task: impl Into<String>, family: Family, n: usize) -> Self {
        RunSpec {
            task: task.into(),
            family,
            n,
            reception: ReceptionMode::Protocol,
            kernel: Kernel::default(),
            dynamics: Dynamics::Static,
            steps: None,
            journal: None,
            traffic: None,
            seed: 0,
        }
    }

    /// Sets the cell seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the dynamics recipe.
    pub fn with_dynamics(mut self, dynamics: Dynamics) -> Self {
        self.dynamics = dynamics;
        self
    }

    /// Sets the reception rule.
    pub fn with_reception(mut self, reception: ReceptionMode) -> Self {
        self.reception = reception;
        self
    }

    /// Sets the step kernel.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the journal section.
    pub fn with_journal(mut self, journal: JournalSpec) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Sets the streaming-traffic axis.
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = Some(traffic);
        self
    }

    /// The canonical byte form this spec is content-addressed by: its
    /// serialized tree with object keys sorted and `null` entries dropped
    /// (recursively), rendered as compact JSON. Stable across JSON field
    /// order and across the `None`-vs-absent serde forms — a legacy spec
    /// document without the `steps`/`journal` keys canonicalizes
    /// byte-identically to a modern one carrying explicit nulls — so the
    /// result-cache key (see [`RunSpec::spec_hash`]) never depends on how
    /// a spec happened to be written down. See [`crate::hash`] for the
    /// full contract and `pinned_hashes` for the frozen values.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let canon = canonical_value(&serde::Serialize::to_value(self));
        serde_json::to_string(&canon)
            .expect("spec trees contain no non-finite numbers")
            .into_bytes()
    }

    /// The stable 128-bit content hash of [`RunSpec::canonical_bytes`]:
    /// the key under which a deterministic run's report may be cached and
    /// served without re-simulating (`radionet-service`). Equal for specs
    /// that denote the same run; different whenever any semantic field
    /// differs.
    pub fn spec_hash(&self) -> SpecHash {
        SpecHash::of_bytes(&self.canonical_bytes())
    }

    /// Structural validation that needs no registry: the family size
    /// floor, the mobility × family compatibility rule, and the
    /// SINR position-source × dynamics compatibility rules.
    /// [`Driver::run`](crate::Driver::run) calls this before
    /// instantiating anything, and separately checks the SINR position
    /// count against the **instantiated** graph (families may round `n`,
    /// so the exact count is unknowable here).
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 4 {
            return Err(format!("n = {} but graph families need n >= 4", self.n));
        }
        if let Some(journal) = &self.journal {
            journal.mask()?;
        }
        if let Some(traffic) = &self.traffic {
            traffic.validate()?;
        }
        let mobility = matches!(self.dynamics, Dynamics::Mobility(_));
        if mobility && !self.family.has_embedding() {
            return Err(format!(
                "dynamics {:?} needs a geometric family with positions \
                 (unit-disk, quasi-udg, unit-ball-3d, geo-radio); {} has no embedding",
                self.dynamics.name(),
                self.family.name()
            ));
        }
        if let ReceptionMode::Sinr(cfg) = &self.reception {
            cfg.validate()?;
            match cfg.positions {
                PositionSource::Snapshot(_) if mobility => {
                    return Err("mobility moves node positions, but the SINR reception carries a \
                         fixed position snapshot; use the geometry or live position source \
                         so reception follows the moving point set"
                        .into());
                }
                PositionSource::Live if !mobility => {
                    return Err("live SINR positions follow a moving point set; they require \
                         mobility dynamics (static and scripted runs use geometry-sourced \
                         or snapshot positions)"
                        .into());
                }
                PositionSource::Geometry if !self.family.has_embedding() => {
                    return Err(format!(
                        "SINR geometry-sourced positions need a geometric family with an \
                         embedding (unit-disk, quasi-udg, unit-ball-3d, geo-radio); {} has \
                         none — supply an explicit position snapshot",
                        self.family.name()
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_sim::NetInfo;

    #[test]
    fn presets_cover_all_dynamics_names() {
        for name in Dynamics::PRESETS {
            let d = Dynamics::preset(name).expect(name);
            assert_eq!(d.name(), name);
        }
        assert!(Dynamics::preset("nope").is_none());
        // Short CLI aliases resolve too.
        assert_eq!(Dynamics::preset("partition").unwrap().name(), "partition-repair");
        assert_eq!(Dynamics::preset("staggered").unwrap().name(), "staggered-wake");
    }

    #[test]
    fn events_deterministic_and_protect_node_zero() {
        let g = Family::Grid.instantiate(49, 1);
        let info = NetInfo::exact(&g);
        let timebase = 100 * info.d as u64;
        for name in Dynamics::PRESETS {
            let d = Dynamics::preset(name).unwrap();
            let a = d.events_for(&g, timebase, 42);
            let b = d.events_for(&g, timebase, 42);
            assert_eq!(a, b, "{name} not deterministic");
            for e in &a {
                if let Some(v) = e.kind.node() {
                    assert!(v > 0, "{name}: node 0 must stay protected");
                    assert!(v < g.n());
                }
            }
        }
    }

    #[test]
    fn mobility_presets_script_no_events_and_resolve_aliases() {
        let g = Family::UnitDisk.instantiate(49, 1);
        for name in ["mobility:waypoint", "mobility:walk", "mobility:levy", "mobility:group"] {
            let d = Dynamics::preset(name).expect(name);
            assert_eq!(d.name(), name);
            assert!(d.events_for(&g, 1000, 42).is_empty(), "{name} scripted events");
            let Dynamics::Mobility(m) = d else { panic!("{name} is not a mobility recipe") };
            assert_eq!(m.tick, 1);
            assert!(m.sample_every.is_none(), "{name}: driver picks the cadence");
        }
        // Short aliases resolve to the same recipes.
        assert_eq!(Dynamics::preset("waypoint"), Dynamics::preset("mobility:waypoint"));
        assert_eq!(Dynamics::preset("levy"), Dynamics::preset("mobility:levy"));
    }

    #[test]
    fn victims_distinct_and_exclude_source() {
        let v = pick_victims(50, 10, 9);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(v.iter().all(|&x| (1..50).contains(&x)));
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        assert!(RunSpec::new("broadcast", Family::Grid, 3).validate().is_err());
        assert!(RunSpec::new("broadcast", Family::Grid, 36).validate().is_ok());
    }

    /// Cache-key determinism guard: these exact values are what
    /// [`RunSpec::canonical_bytes`] and [`RunSpec::spec_hash`] produce
    /// today. If this test fails, every persisted result-cache entry keyed
    /// by the old hashes silently stops matching — do not re-pin without
    /// migrating or invalidating the stores.
    #[test]
    fn pinned_hashes() {
        let spec = RunSpec::new("broadcast", Family::Grid, 36).with_seed(7);
        let canon = String::from_utf8(spec.canonical_bytes()).unwrap();
        assert_eq!(
            canon,
            "{\"dynamics\":\"Static\",\"family\":\"Grid\",\"kernel\":\"Sparse\",\
             \"n\":36,\"reception\":\"Protocol\",\"seed\":7,\"task\":\"broadcast\"}"
        );
        assert_eq!(spec.spec_hash().to_hex(), "96dc64666f4b0a0b4e886febffda58b4");
        // Any semantic difference must move the hash.
        assert_ne!(spec.spec_hash(), spec.clone().with_seed(8).spec_hash());
        assert_ne!(spec.spec_hash(), RunSpec::new("mis", Family::Grid, 36).spec_hash());
        assert_ne!(spec.spec_hash(), RunSpec::new("broadcast", Family::Path, 36).spec_hash());
        assert_ne!(
            spec.spec_hash(),
            spec.clone().with_kernel(radionet_sim::Kernel::Dense).spec_hash()
        );
        let stepped = RunSpec { steps: Some(100), ..spec };
        assert_ne!(stepped.spec_hash(), stepped.clone().with_seed(8).spec_hash());
    }

    /// Telemetry is deliberately **not** a spec axis: attaching a metrics
    /// registry is a [`Driver`](crate::Driver) property (which process
    /// observes the run), never part of what the run *is*. So the
    /// canonical bytes carry no telemetry field, every persisted cache
    /// key and golden spec document from before telemetry existed stays
    /// valid as-is, and nothing needs regenerating.
    #[test]
    fn telemetry_is_not_a_spec_axis() {
        // A pre-telemetry document (all required fields, no more).
        let legacy = "{\"task\":\"broadcast\",\"family\":\"Grid\",\"n\":36,\
                      \"reception\":\"Protocol\",\"kernel\":\"Sparse\",\
                      \"dynamics\":\"Static\",\"seed\":7}";
        let spec: RunSpec = serde_json::from_str(legacy).unwrap();
        assert_eq!(spec, RunSpec::new("broadcast", Family::Grid, 36).with_seed(7));
        // …and it keys to the exact hash `pinned_hashes` guards.
        assert_eq!(spec.spec_hash().to_hex(), "96dc64666f4b0a0b4e886febffda58b4");
        let canon = String::from_utf8(spec.canonical_bytes()).unwrap();
        assert!(!canon.contains("telemetry"), "telemetry leaked into the canonical form");
    }

    /// The canonical form is a property of the *document*, not of how it
    /// was written down: reordering fields and spelling `None` as explicit
    /// `null` (or omitting it) must not move the cache key.
    #[test]
    fn canonical_form_survives_document_reshaping() {
        use crate::hash::canonical_value;
        use serde::{Serialize, Value};
        let spec = RunSpec::new("broadcast", Family::Grid, 36)
            .with_seed(7)
            .with_journal(JournalSpec::default());
        let Value::Object(mut fields) = spec.to_value() else { panic!("specs are objects") };
        // Reshape: reverse the field order and drop the null-valued
        // `steps` entry (absent and null both mean `None`).
        fields.reverse();
        fields.retain(|(k, v)| !(k == "steps" && matches!(v, Value::Null)));
        let doc = serde_json::to_string(&Value::Object(fields)).unwrap();
        // Canonicalizing the reshaped document directly — without parsing
        // it into a RunSpec first — reproduces the spec's own bytes.
        let doc_value: Value = serde_json::from_str(&doc).unwrap();
        let canon_doc = serde_json::to_string(&canonical_value(&doc_value)).unwrap();
        assert_eq!(canon_doc.into_bytes(), spec.canonical_bytes());
        // And the parsed spec agrees, of course.
        let reparsed: RunSpec = serde_json::from_str(&doc).unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.spec_hash(), spec.spec_hash());
    }

    /// Traffic is an *optional* spec axis: a pre-traffic document (no
    /// `traffic` key) parses to `traffic: None` and keys to the exact
    /// hash `pinned_hashes` guards, so no persisted cache entry or golden
    /// fixture from before the axis existed moves. Attaching a traffic
    /// section *is* semantic and must move the hash.
    #[test]
    fn traffic_axis_preserves_legacy_hashes() {
        let legacy = "{\"task\":\"broadcast\",\"family\":\"Grid\",\"n\":36,\
                      \"reception\":\"Protocol\",\"kernel\":\"Sparse\",\
                      \"dynamics\":\"Static\",\"seed\":7}";
        let spec: RunSpec = serde_json::from_str(legacy).unwrap();
        assert!(spec.traffic.is_none(), "legacy documents parse to no traffic axis");
        assert_eq!(spec, RunSpec::new("broadcast", Family::Grid, 36).with_seed(7));
        assert_eq!(spec.spec_hash().to_hex(), "96dc64666f4b0a0b4e886febffda58b4");
        let canon = String::from_utf8(spec.canonical_bytes()).unwrap();
        assert!(!canon.contains("traffic"), "absent traffic leaked into the canonical form");
        // Attaching the axis is semantic: the hash must move, and every
        // traffic parameter must key differently.
        let t = spec.clone().with_traffic(TrafficSpec::default());
        assert_ne!(t.spec_hash(), spec.spec_hash());
        let wider = TrafficSpec { senders: 16, ..TrafficSpec::default() };
        assert_ne!(t.spec_hash(), spec.clone().with_traffic(wider).spec_hash());
        // The pinned cache key of the default traffic spec (the exact
        // value produced today — same contract as `pinned_hashes`).
        let pinned = RunSpec::new("traffic.gossip", Family::Grid, 36)
            .with_seed(7)
            .with_traffic(TrafficSpec::default());
        assert_eq!(pinned.spec_hash().to_hex(), "0a7601796dfb3fd7b97ca2aa66d98128");
    }

    #[test]
    fn traffic_section_validates() {
        let bad = TrafficSpec { senders: 0, ..TrafficSpec::default() };
        let spec = RunSpec::new("traffic.gossip", Family::Grid, 36).with_traffic(bad);
        assert!(spec.validate().is_err());
        let ok =
            RunSpec::new("traffic.gossip", Family::Grid, 36).with_traffic(TrafficSpec::default());
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn journal_section_validates_and_defaults_off() {
        let spec = RunSpec::new("broadcast", Family::Grid, 36);
        assert!(spec.journal.is_none(), "journaling is opt-in");
        let ok = spec
            .clone()
            .with_journal(JournalSpec { classes: "radio,phase".into(), checkpoint_every: 32 });
        assert!(ok.validate().is_ok());
        let bad = spec.with_journal(JournalSpec { classes: "radioo".into(), checkpoint_every: 0 });
        assert!(bad.validate().is_err());
        // Cadence resolution: explicit wins; 0 derives from the timebase.
        assert_eq!(JournalSpec::default().cadence(80), 10);
        assert_eq!(JournalSpec { classes: "all".into(), checkpoint_every: 7 }.cadence(80), 7);
        assert_eq!(JournalSpec::default().cadence(0), 1, "cadence never degenerates to 0");
    }
}
