//! The object-safe [`Task`] abstraction: one `impl` per algorithm, all
//! returning the unified [`TaskOutcome`].

use crate::spec::RunSpec;
use crate::topology::RunTopology;
use radionet_journal::Recorder;
use radionet_sim::{NetInfo, NullSink, Registry, Sim};
use radionet_traffic::{TrafficReport, TrafficSpec};
use serde::{Deserialize, Serialize};

/// Per-run inputs a task receives beyond the simulator itself.
#[derive(Clone, Copy, Debug)]
pub struct TaskCtx {
    /// The spec's cell seed (every derived stream comes from
    /// [`seeds`](crate::seeds)).
    pub seed: u64,
    /// Seed for node-private zero-cost lotteries
    /// ([`seeds::lottery_seed`](crate::seeds::lottery_seed) of the cell
    /// seed).
    pub lottery_seed: u64,
    /// Optional cap on the task's own step budget
    /// ([`RunSpec::steps`]).
    pub step_cap: Option<u64>,
    /// The spec's streaming-traffic axis ([`RunSpec::traffic`]), read by
    /// the `traffic.*` tasks (`None` runs their defaults); other tasks
    /// ignore it.
    pub traffic: Option<TrafficSpec>,
}

impl TaskCtx {
    /// Applies the spec's step cap to a task's default budget.
    pub fn capped(&self, budget: u64) -> u64 {
        match self.step_cap {
            Some(cap) => budget.min(cap),
            None => budget,
        }
    }
}

/// One runnable algorithm behind the façade.
///
/// Implementations erase the divergent `run_*` signatures of the workspace
/// behind a single object-safe interface; the
/// [`TaskRegistry`](crate::TaskRegistry) maps string keys to boxed tasks,
/// so a new algorithm plugs in with one `impl` plus one registry line:
///
/// ```
/// use radionet_api::{Driver, RunSpec, Task, TaskCtx, TaskOutcome, TaskRegistry};
/// use radionet_api::topology::RunTopology;
/// use radionet_graph::families::Family;
/// use radionet_sim::{NetInfo, Sim};
///
/// struct NoOp;
/// impl Task for NoOp {
///     fn key(&self) -> &'static str { "no-op" }
///     fn describe(&self) -> &'static str { "does nothing, succeeds instantly" }
///     fn timebase(&self, info: &NetInfo) -> u64 { info.d as u64 }
///     fn run(&self, sim: &mut Sim<'_, RunTopology>, _ctx: &TaskCtx) -> TaskOutcome {
///         TaskOutcome::Broadcast(radionet_api::task::BroadcastSummary {
///             completed: true,
///             informed_fraction: 1.0,
///             clock_all_informed: Some(sim.clock()),
///         })
///     }
/// }
///
/// let mut registry = TaskRegistry::standard();
/// registry.register(Box::new(NoOp));
/// let driver = Driver::with_registry(registry);
/// let report = driver.run(&RunSpec::new("no-op", Family::Grid, 16)).unwrap();
/// assert!(report.success);
/// ```
pub trait Task: Send + Sync {
    /// The registry key (stable, kebab-case).
    fn key(&self) -> &'static str;

    /// One-line human description for `radionet list-tasks`.
    fn describe(&self) -> &'static str;

    /// The step budget envelope dynamics fractions scale against: an
    /// a-priori estimate of how long the task keeps running, computable
    /// from [`NetInfo`] alone.
    fn timebase(&self, info: &NetInfo) -> u64;

    /// Spec validation beyond [`RunSpec::validate`] (e.g. a required
    /// reception mode). The default accepts everything.
    fn check_spec(&self, _spec: &RunSpec) -> Result<(), String> {
        Ok(())
    }

    /// Runs the algorithm on a prepared simulator. The driver owns graph
    /// construction, event materialization, and kernel selection; the task
    /// only runs its protocol and summarizes the outcome.
    fn run(&self, sim: &mut Sim<'_, RunTopology>, ctx: &TaskCtx) -> TaskOutcome;

    /// [`Task::run`], but on a simulator recording an event journal
    /// (`Sim` is monomorphic over its sink, so the two instantiations need
    /// separate object-safe entry points). Implementations share one
    /// sink-generic body between both methods — see any task in
    /// [`tasks`](crate::tasks); the run itself must not depend on the sink
    /// (recording is observation, never steering).
    ///
    /// The default panics: a task without this override cannot run under
    /// [`Driver::run_journaled`](crate::Driver::run_journaled).
    fn run_recorded(&self, sim: &mut Sim<'_, RunTopology, Recorder>, ctx: &TaskCtx) -> TaskOutcome {
        let _ = (sim, ctx);
        unimplemented!("task {:?} does not implement run_recorded (journaled runs)", self.key())
    }

    /// [`Task::run`], but on a simulator recording wall-clock telemetry
    /// into a [`Registry`] — the third object-safe instantiation of the
    /// shared sink-generic body (telemetry observes, never steers; the
    /// outcome is byte-identical to [`Task::run`]'s).
    ///
    /// The default panics: a task without this override cannot run under
    /// a telemetry-attached [`Driver`](crate::Driver).
    fn run_instrumented(
        &self,
        sim: &mut Sim<'_, RunTopology, NullSink, Registry>,
        ctx: &TaskCtx,
    ) -> TaskOutcome {
        let _ = (sim, ctx);
        unimplemented!("task {:?} does not implement run_instrumented (telemetry runs)", self.key())
    }
}

/// Summary of a message dissemination (single- or multi-source).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BroadcastSummary {
    /// Whether every node learned the source message.
    pub completed: bool,
    /// Fraction of nodes knowing the source message at exit.
    pub informed_fraction: f64,
    /// Clock when every node first knew it, if ever.
    pub clock_all_informed: Option<u64>,
}

/// Summary of a leader election.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ElectionSummary {
    /// Whether a unique leader was agreed on by every node.
    pub succeeded: bool,
    /// The elected identifier, if any.
    pub leader: Option<u64>,
    /// Fraction of nodes agreeing on the leader at exit.
    pub agreement: f64,
    /// Number of candidates in the lottery.
    pub candidates: usize,
    /// Clock when every node first knew the winner, if ever.
    pub clock_all_informed: Option<u64>,
}

/// Summary of a maximal-independent-set computation (radio or LOCAL).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MisSummary {
    /// Whether the output is a valid MIS of the base graph.
    pub valid: bool,
    /// Members of the returned set.
    pub mis_size: usize,
    /// Rounds consumed (radio rounds or LOCAL rounds).
    pub rounds: u64,
    /// Whether every node decided within the budget.
    pub complete: bool,
    /// Clock when validity was established, if it was.
    pub clock_done: Option<u64>,
}

/// Summary of a radio clustering (`Partition(β, C)`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionSummary {
    /// Whether normalization succeeded (every cluster kept its center).
    pub complete: bool,
    /// Fraction of nodes assigned to some cluster.
    pub coverage: f64,
    /// Number of clusters formed.
    pub clusters: usize,
    /// Clock when the partition phase ended, if it completed.
    pub clock_done: Option<u64>,
}

/// Summary of a wake-up flood.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WakeupSummary {
    /// Whether every node woke within the budget.
    pub complete: bool,
    /// Fraction of nodes awake at exit.
    pub awake_fraction: f64,
    /// Steps until the last node woke, if all did.
    pub completion_steps: Option<u64>,
}

/// Summary of a streaming-traffic run is [`TrafficReport`] (defined in
/// `radionet-traffic`, next to the delivery ledger that produces it).
///
/// The unified, serde-able summary of any task's run.
///
/// Variants are shared across algorithms solving the same problem (the BGI
/// and Czumaj–Rytter baselines report [`TaskOutcome::Broadcast`] just like
/// `Compete`-broadcast does), so reports from different tasks compare
/// field-for-field.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TaskOutcome {
    /// A message dissemination.
    Broadcast(BroadcastSummary),
    /// A leader election.
    LeaderElection(ElectionSummary),
    /// A maximal-independent-set computation.
    Mis(MisSummary),
    /// A radio clustering.
    Partition(PartitionSummary),
    /// A wake-up flood.
    Wakeup(WakeupSummary),
    /// A streaming-traffic delivery pipeline.
    Traffic(TrafficReport),
}

impl TaskOutcome {
    /// Whether the task's own success criterion held.
    pub fn success(&self) -> bool {
        match *self {
            TaskOutcome::Broadcast(b) => b.completed,
            TaskOutcome::LeaderElection(e) => e.succeeded,
            TaskOutcome::Mis(m) => m.valid,
            TaskOutcome::Partition(p) => p.complete,
            TaskOutcome::Wakeup(w) => w.complete,
            TaskOutcome::Traffic(t) => t.undelivered == 0,
        }
    }

    /// Task-specific achievement in `[0, 1]` (informed/agreeing/awake
    /// fraction, cluster coverage, or MIS validity).
    pub fn achieved(&self) -> f64 {
        match *self {
            TaskOutcome::Broadcast(b) => b.informed_fraction,
            TaskOutcome::LeaderElection(e) => e.agreement,
            TaskOutcome::Mis(m) => {
                if m.valid {
                    1.0
                } else {
                    0.0
                }
            }
            TaskOutcome::Partition(p) => p.coverage,
            TaskOutcome::Wakeup(w) => w.awake_fraction,
            TaskOutcome::Traffic(t) => {
                if t.injected == 0 {
                    1.0
                } else {
                    t.delivered as f64 / t.injected as f64
                }
            }
        }
    }

    /// Clock when the success criterion was first met, if ever.
    pub fn clock_done(&self) -> Option<u64> {
        match *self {
            TaskOutcome::Broadcast(b) => b.clock_all_informed,
            TaskOutcome::LeaderElection(e) => e.clock_all_informed,
            TaskOutcome::Mis(m) => m.clock_done,
            TaskOutcome::Partition(p) => p.clock_done,
            TaskOutcome::Wakeup(w) => w.completion_steps,
            // A stream has no single completion instant; the percentile
            // fields carry the latency story.
            TaskOutcome::Traffic(_) => None,
        }
    }

    /// The outcome kind, for tables.
    pub fn kind(&self) -> &'static str {
        match self {
            TaskOutcome::Broadcast(_) => "broadcast",
            TaskOutcome::LeaderElection(_) => "leader-election",
            TaskOutcome::Mis(_) => "mis",
            TaskOutcome::Partition(_) => "partition",
            TaskOutcome::Wakeup(_) => "wakeup",
            TaskOutcome::Traffic(_) => "traffic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let b = TaskOutcome::Broadcast(BroadcastSummary {
            completed: true,
            informed_fraction: 0.75,
            clock_all_informed: Some(10),
        });
        assert!(b.success());
        assert_eq!(b.achieved(), 0.75);
        assert_eq!(b.clock_done(), Some(10));
        assert_eq!(b.kind(), "broadcast");

        let m = TaskOutcome::Mis(MisSummary {
            valid: false,
            mis_size: 3,
            rounds: 7,
            complete: true,
            clock_done: None,
        });
        assert!(!m.success());
        assert_eq!(m.achieved(), 0.0);
        assert_eq!(m.clock_done(), None);
    }

    #[test]
    fn outcome_serde_round_trip() {
        let outcomes = vec![
            TaskOutcome::Broadcast(BroadcastSummary {
                completed: true,
                informed_fraction: 1.0,
                clock_all_informed: Some(42),
            }),
            TaskOutcome::LeaderElection(ElectionSummary {
                succeeded: false,
                leader: None,
                agreement: 0.0,
                candidates: 0,
                clock_all_informed: None,
            }),
            TaskOutcome::Mis(MisSummary {
                valid: true,
                mis_size: 9,
                rounds: 3,
                complete: true,
                clock_done: Some(5),
            }),
            TaskOutcome::Partition(PartitionSummary {
                complete: true,
                coverage: 0.99,
                clusters: 4,
                clock_done: Some(8),
            }),
            TaskOutcome::Wakeup(WakeupSummary {
                complete: true,
                awake_fraction: 1.0,
                completion_steps: Some(31),
            }),
            TaskOutcome::Traffic(TrafficReport {
                injected: 12,
                delivered: 11,
                undelivered: 1,
                throughput_per_kstep: 21.484375,
                first_p50: 9,
                first_p90: 17,
                first_p99: 30,
                full_p50: 31,
                full_p90: 60,
                full_p99: 95,
            }),
        ];
        let json = serde_json::to_string_pretty(&outcomes).unwrap();
        let back: Vec<TaskOutcome> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, outcomes);
    }

    #[test]
    fn ctx_capping() {
        let ctx = TaskCtx { seed: 0, lottery_seed: 0, step_cap: Some(100), traffic: None };
        assert_eq!(ctx.capped(500), 100);
        assert_eq!(ctx.capped(50), 50);
        let open = TaskCtx { seed: 0, lottery_seed: 0, step_cap: None, traffic: None };
        assert_eq!(open.capped(500), 500);
    }

    #[test]
    fn traffic_outcome_accessors() {
        let full = TaskOutcome::Traffic(TrafficReport {
            injected: 10,
            delivered: 10,
            undelivered: 0,
            throughput_per_kstep: 19.53125,
            first_p50: 4,
            first_p90: 7,
            first_p99: 9,
            full_p50: 12,
            full_p90: 20,
            full_p99: 25,
        });
        assert!(full.success());
        assert_eq!(full.achieved(), 1.0);
        assert_eq!(full.clock_done(), None, "streams have no single completion instant");
        assert_eq!(full.kind(), "traffic");
        let TaskOutcome::Traffic(mut partial) = full else { unreachable!() };
        partial.delivered = 5;
        partial.undelivered = 5;
        let partial = TaskOutcome::Traffic(partial);
        assert!(!partial.success());
        assert_eq!(partial.achieved(), 0.5);
    }
}
