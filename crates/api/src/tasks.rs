//! The standard task implementations: the paper's algorithms and every
//! baseline, one [`Task`] impl each.
//!
//! | key | algorithm | outcome variant |
//! |-----|-----------|-----------------|
//! | `broadcast` | `Compete({s})` broadcast (Thm 7) | `Broadcast` |
//! | `leader-election` | Algorithm 3 (Thm 8) | `LeaderElection` |
//! | `mis` | Radio MIS (Thm 14) | `Mis` |
//! | `partition` | MIS centers + `Partition(β, C)` (Thm 2) | `Partition` |
//! | `bgi-broadcast` | Bar-Yehuda–Goldreich–Itai Decay flood | `Broadcast` |
//! | `cr-broadcast` | Czumaj–Rytter-style broadcast | `Broadcast` |
//! | `naive-leader-election` | lottery + multi-source BGI flood | `LeaderElection` |
//! | `cd-wakeup` | collision-detection wake-up flood | `Wakeup` |
//! | `luby-mis` | Luby's LOCAL MIS reference | `Mis` |
//! | `ghaffari-mis` | Ghaffari's LOCAL MIS reference (Alg 4) | `Mis` |
//! | `traffic.gossip` | streaming multi-message gossip flood | `Traffic` |
//! | `traffic.unicast` | streaming point-to-point delivery | `Traffic` |
//! | `traffic.multicast` | streaming salted-multicast delivery | `Traffic` |

use crate::seeds;
use crate::spec::RunSpec;
use crate::task::{
    BroadcastSummary, ElectionSummary, MisSummary, PartitionSummary, Task, TaskCtx, TaskOutcome,
    WakeupSummary,
};
use crate::topology::RunTopology;
use radionet_baselines::bgi::{run_bgi_broadcast, BgiConfig};
use radionet_baselines::cd_wakeup::{run_cd_wakeup, CdWakeupConfig};
use radionet_baselines::czumaj_rytter::{run_cr_broadcast, CrConfig};
use radionet_baselines::local_mis::{ghaffari_local_mis, luby_mis, LocalMisOutcome};
use radionet_baselines::naive_le::{run_naive_leader_election, NaiveLeConfig};
use radionet_cluster::partition_radio::{run_radio_partition_normalized, RadioPartitionConfig};
use radionet_core::broadcast::run_broadcast;
use radionet_core::compete::CompeteConfig;
use radionet_core::leader_election::{run_leader_election, LeaderElectionConfig};
use radionet_core::mis::{run_radio_mis, MisConfig};
use radionet_journal::Recorder;
use radionet_primitives::decay::DecaySchedule;
use radionet_primitives::GossipProtocol;
use radionet_sim::{JournalSink, NetInfo, NullSink, ReceptionMode, Registry, Sim, Telemetry};
use radionet_traffic::{DeliveryLedger, TrafficKind, TrafficPlan, TrafficSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The broadcast source every standard task uses (the instrumented node the
/// dynamics recipes never crash or jam).
pub const SOURCE: usize = 0;

/// The message the standard broadcast tasks disseminate.
pub const MESSAGE: u64 = 42;

fn informed_fraction(best: &[Option<u64>], target: u64, n: usize) -> f64 {
    best.iter().filter(|b| **b == Some(target)).count() as f64 / n as f64
}

/// Delegates all three object-safe [`Task`] entry points (`run` on the
/// null sink, `run_recorded` on a [`Recorder`], `run_instrumented` on a
/// telemetry [`Registry`]) to one sink-generic inherent body, so no
/// task's algorithm text is duplicated per instantiation.
macro_rules! runs_via_exec {
    () => {
        fn run(&self, sim: &mut Sim<'_, RunTopology>, ctx: &TaskCtx) -> TaskOutcome {
            Self::exec(sim, ctx)
        }

        fn run_recorded(
            &self,
            sim: &mut Sim<'_, RunTopology, Recorder>,
            ctx: &TaskCtx,
        ) -> TaskOutcome {
            Self::exec(sim, ctx)
        }

        fn run_instrumented(
            &self,
            sim: &mut Sim<'_, RunTopology, NullSink, Registry>,
            ctx: &TaskCtx,
        ) -> TaskOutcome {
            Self::exec(sim, ctx)
        }
    };
}

/// `Compete({s})` broadcast from node 0 (paper, Theorem 7).
pub struct BroadcastTask;

impl BroadcastTask {
    fn exec<J: JournalSink, M: Telemetry>(
        sim: &mut Sim<'_, RunTopology, J, M>,
        _ctx: &TaskCtx,
    ) -> TaskOutcome {
        let n = sim.graph().n();
        let source = sim.graph().node(SOURCE);
        let out = run_broadcast(sim, source, MESSAGE, &CompeteConfig::default());
        TaskOutcome::Broadcast(BroadcastSummary {
            completed: out.completed(),
            informed_fraction: informed_fraction(&out.compete.best, MESSAGE, n),
            clock_all_informed: out.completion_time(),
        })
    }
}

impl Task for BroadcastTask {
    fn key(&self) -> &'static str {
        "broadcast"
    }

    fn describe(&self) -> &'static str {
        "Compete({s}) broadcast from node 0 (Theorem 7, O(D log_D α + polylog n))"
    }

    fn timebase(&self, info: &NetInfo) -> u64 {
        CompeteConfig::default().propagation_budget(info)
    }

    runs_via_exec!();
}

/// Leader election via candidate lottery + `Compete(C)` (paper, Theorem 8).
pub struct LeaderElectionTask;

impl LeaderElectionTask {
    fn exec<J: JournalSink, M: Telemetry>(
        sim: &mut Sim<'_, RunTopology, J, M>,
        ctx: &TaskCtx,
    ) -> TaskOutcome {
        let n = sim.graph().n();
        let out = run_leader_election(sim, ctx.lottery_seed, &LeaderElectionConfig::default());
        let agreement = match out.leader {
            Some(id) => informed_fraction(&out.compete.best, id, n),
            None => 0.0,
        };
        TaskOutcome::LeaderElection(ElectionSummary {
            succeeded: out.succeeded(),
            leader: out.leader,
            agreement,
            candidates: out.candidate_count(),
            clock_all_informed: out.compete.clock_all_informed,
        })
    }
}

impl Task for LeaderElectionTask {
    fn key(&self) -> &'static str {
        "leader-election"
    }

    fn describe(&self) -> &'static str {
        "leader election: Θ(log n / n) lottery + Compete(C) (Theorem 8)"
    }

    fn timebase(&self, info: &NetInfo) -> u64 {
        CompeteConfig::default().propagation_budget(info)
    }

    runs_via_exec!();
}

/// Radio MIS (paper, Theorem 14).
pub struct MisTask;

impl MisTask {
    fn exec<J: JournalSink, M: Telemetry>(
        sim: &mut Sim<'_, RunTopology, J, M>,
        _ctx: &TaskCtx,
    ) -> TaskOutcome {
        let g = sim.graph();
        let out = run_radio_mis(sim, &MisConfig::default());
        let valid = out.is_valid(g);
        TaskOutcome::Mis(MisSummary {
            valid,
            mis_size: out.mis_nodes().len(),
            rounds: out.rounds,
            complete: out.complete,
            clock_done: valid.then(|| sim.clock()),
        })
    }
}

impl Task for MisTask {
    fn key(&self) -> &'static str {
        "mis"
    }

    fn describe(&self) -> &'static str {
        "Radio MIS in O(log³ n) steps (Theorem 14)"
    }

    fn timebase(&self, info: &NetInfo) -> u64 {
        let c = MisConfig::default();
        let log_n = MisConfig::effective_log_n(info.log_n());
        c.total_steps(log_n)
    }

    runs_via_exec!();
}

/// The β used by the standalone partition task: the coarse scale of
/// `Compete` (`β = 1/√D`), the paper's Theorem 2 workhorse.
fn partition_beta(info: &NetInfo) -> f64 {
    (info.d.max(2) as f64).powf(-0.5).min(1.0)
}

/// Radio MIS centers + `Partition(β, C)` clustering (paper, Theorem 2).
pub struct PartitionTask;

impl PartitionTask {
    fn exec<J: JournalSink, M: Telemetry>(
        sim: &mut Sim<'_, RunTopology, J, M>,
        _ctx: &TaskCtx,
    ) -> TaskOutcome {
        let g = sim.graph();
        let info = *sim.info();
        let mis = run_radio_mis(sim, &MisConfig::default());
        let mut centers = mis.mis_flags();
        if !centers.iter().any(|&c| c) {
            centers = vec![true; g.n()];
        }
        let (clustering, coverage, _report) = run_radio_partition_normalized(
            sim,
            &centers,
            partition_beta(&info),
            RadioPartitionConfig::default(),
        );
        let complete = clustering.is_some();
        TaskOutcome::Partition(PartitionSummary {
            complete,
            coverage,
            clusters: clustering.map(|c| c.centers.len()).unwrap_or(0),
            clock_done: complete.then(|| sim.clock()),
        })
    }
}

impl Task for PartitionTask {
    fn key(&self) -> &'static str {
        "partition"
    }

    fn describe(&self) -> &'static str {
        "radio clustering: MIS centers + Partition(1/√D, C) (Theorem 2)"
    }

    fn timebase(&self, info: &NetInfo) -> u64 {
        let mis = MisTask.timebase(info);
        let c = RadioPartitionConfig::default();
        mis + c.total_steps(partition_beta(info), info.n, info.log_n())
    }

    runs_via_exec!();
}

/// The BGI Decay-flood broadcast baseline.
pub struct BgiBroadcastTask;

impl BgiBroadcastTask {
    fn exec<J: JournalSink, M: Telemetry>(
        sim: &mut Sim<'_, RunTopology, J, M>,
        _ctx: &TaskCtx,
    ) -> TaskOutcome {
        let n = sim.graph().n();
        let source = sim.graph().node(SOURCE);
        let out = run_bgi_broadcast(sim, source, MESSAGE, &BgiConfig::default());
        TaskOutcome::Broadcast(BroadcastSummary {
            completed: out.completed(),
            informed_fraction: informed_fraction(&out.best, MESSAGE, n),
            clock_all_informed: out.clock_all_informed,
        })
    }
}

impl Task for BgiBroadcastTask {
    fn key(&self) -> &'static str {
        "bgi-broadcast"
    }

    fn describe(&self) -> &'static str {
        "BGI Decay broadcast baseline, O(D log n + log² n)"
    }

    fn timebase(&self, info: &NetInfo) -> u64 {
        BgiConfig::default().budget(info)
    }

    runs_via_exec!();
}

/// The Czumaj–Rytter-style broadcast baseline.
pub struct CrBroadcastTask;

impl CrBroadcastTask {
    fn exec<J: JournalSink, M: Telemetry>(
        sim: &mut Sim<'_, RunTopology, J, M>,
        _ctx: &TaskCtx,
    ) -> TaskOutcome {
        let n = sim.graph().n();
        let source = sim.graph().node(SOURCE);
        let out = run_cr_broadcast(sim, source, MESSAGE, &CrConfig::default());
        TaskOutcome::Broadcast(BroadcastSummary {
            completed: out.completed(),
            informed_fraction: informed_fraction(&out.best, MESSAGE, n),
            clock_all_informed: out.clock_all_informed,
        })
    }
}

impl Task for CrBroadcastTask {
    fn key(&self) -> &'static str {
        "cr-broadcast"
    }

    fn describe(&self) -> &'static str {
        "Czumaj–Rytter-style broadcast baseline, O(D log(n/D) + log² n)"
    }

    fn timebase(&self, info: &NetInfo) -> u64 {
        CrConfig::default().budget(info)
    }

    runs_via_exec!();
}

/// The folklore lottery + multi-source BGI flood election baseline.
pub struct NaiveLeaderElectionTask;

impl NaiveLeaderElectionTask {
    fn exec<J: JournalSink, M: Telemetry>(
        sim: &mut Sim<'_, RunTopology, J, M>,
        ctx: &TaskCtx,
    ) -> TaskOutcome {
        let n = sim.graph().n();
        let out = run_naive_leader_election(sim, ctx.lottery_seed, &NaiveLeConfig::default());
        let agreement = match out.leader {
            Some(id) => informed_fraction(&out.flood.best, id, n),
            None => 0.0,
        };
        TaskOutcome::LeaderElection(ElectionSummary {
            succeeded: out.succeeded(),
            leader: out.leader,
            agreement,
            candidates: out.candidate_ids.iter().flatten().count(),
            clock_all_informed: out.flood.clock_all_informed,
        })
    }
}

impl Task for NaiveLeaderElectionTask {
    fn key(&self) -> &'static str {
        "naive-leader-election"
    }

    fn describe(&self) -> &'static str {
        "naive leader election: lottery + multi-source BGI flood"
    }

    fn timebase(&self, info: &NetInfo) -> u64 {
        BgiConfig::default().budget(info)
    }

    runs_via_exec!();
}

/// Collision-detection wake-up flood (requires
/// [`ReceptionMode::ProtocolCd`]).
pub struct CdWakeupTask;

impl CdWakeupTask {
    fn exec<J: JournalSink, M: Telemetry>(
        sim: &mut Sim<'_, RunTopology, J, M>,
        ctx: &TaskCtx,
    ) -> TaskOutcome {
        let n = sim.graph().n();
        let source = sim.graph().node(SOURCE);
        let config = CdWakeupConfig { max_steps: ctx.capped(CdWakeupConfig::default().max_steps) };
        let out = run_cd_wakeup(sim, source, &config);
        let awake = out.woke_at.iter().filter(|w| w.is_some()).count();
        TaskOutcome::Wakeup(WakeupSummary {
            complete: out.completion_steps.is_some(),
            awake_fraction: awake as f64 / n as f64,
            completion_steps: out.completion_steps,
        })
    }
}

impl Task for CdWakeupTask {
    fn key(&self) -> &'static str {
        "cd-wakeup"
    }

    fn describe(&self) -> &'static str {
        "collision-detection wake-up flood: eccentricity(source) steps exactly"
    }

    fn timebase(&self, info: &NetInfo) -> u64 {
        info.d.max(1) as u64
    }

    fn check_spec(&self, spec: &RunSpec) -> Result<(), String> {
        if spec.reception != ReceptionMode::ProtocolCd {
            return Err(format!(
                "cd-wakeup requires collision detection (reception {:?})",
                spec.reception.name()
            ));
        }
        Ok(())
    }

    runs_via_exec!();
}

/// How many Decay iterations each learned message stays *hot* (keeps
/// generating retransmissions) in the streaming-traffic pipeline. The
/// failure mode this bounds is a young flood dying: while a front is one
/// node wide, every extra iteration roughly halves the chance the relay
/// coin never lands before the window closes, and concurrent floods split
/// the round-robin airtime, eating into the margin. Ten iterations keeps
/// diameter-630 floods alive through front crossings (E22's at-scale
/// cell) while a node's per-message work stays a constant number of Decay
/// windows.
const TRAFFIC_HOT_ITERATIONS: u32 = 10;

/// The streaming-traffic delivery pipeline: a deterministic arrival plan
/// (see `radionet-traffic`) injects messages into per-node outbound
/// queues mid-run; every node floods what it knows with the queue-draining
/// [`GossipProtocol`]; the delivery ledger folds who-learned-what-when
/// back into throughput and exact latency percentiles.
///
/// One task per [`TrafficKind`]: the delivery mechanics are identical —
/// the kind picks the registry key and which nodes each message is
/// *accountable* to (everyone / one destination / a salted member set).
pub struct TrafficTask {
    kind: TrafficKind,
}

impl TrafficTask {
    /// The task for one delivery-accounting kind.
    pub fn new(kind: TrafficKind) -> Self {
        TrafficTask { kind }
    }

    fn exec<J: JournalSink, M: Telemetry>(
        sim: &mut Sim<'_, RunTopology, J, M>,
        ctx: &TaskCtx,
        kind: TrafficKind,
    ) -> TaskOutcome {
        let n = sim.graph().n();
        // The spec's step cap shortens the horizon (and with it the
        // arrival window), keeping the cap semantics of the other tasks.
        let mut tspec = ctx.traffic.unwrap_or_default();
        let horizon = ctx.capped(u64::from(tspec.horizon)).max(1);
        tspec.horizon = horizon as u32;
        let plan = TrafficPlan::build(&tspec, kind, n as u32, seeds::traffic_seed(ctx.seed));
        let injections = plan.injections();
        let schedule = DecaySchedule::new(sim.info().log_n());
        let mut states: Vec<GossipProtocol> = (0..n)
            .map(|_| GossipProtocol::new(schedule, TRAFFIC_HOT_ITERATIONS, horizon))
            .collect();
        sim.run_phase_with_injections(&mut states, horizon, &injections);
        let mut ledger = DeliveryLedger::new(&plan, n as u32);
        for (i, st) in states.iter().enumerate() {
            for &(id, at) in st.known() {
                ledger.observe(i as u32, id, at);
            }
        }
        TaskOutcome::Traffic(ledger.report())
    }
}

impl Task for TrafficTask {
    fn key(&self) -> &'static str {
        match self.kind {
            TrafficKind::Gossip => "traffic.gossip",
            TrafficKind::Unicast => "traffic.unicast",
            TrafficKind::Multicast => "traffic.multicast",
        }
    }

    fn describe(&self) -> &'static str {
        match self.kind {
            TrafficKind::Gossip => {
                "streaming gossip: deterministic arrivals, queue-draining flood, \
                 delivery = every node"
            }
            TrafficKind::Unicast => {
                "streaming unicast: deterministic arrivals, queue-draining flood, \
                 delivery = one destination per message"
            }
            TrafficKind::Multicast => {
                "streaming multicast: deterministic arrivals, queue-draining flood, \
                 delivery = a salted member set per message"
            }
        }
    }

    /// The default horizon: dynamics fractions scale against the phase
    /// length a default-spec traffic run actually executes. (Custom
    /// horizons come through the spec, which `timebase` cannot see — the
    /// envelope stays the documented default.)
    fn timebase(&self, _info: &NetInfo) -> u64 {
        u64::from(TrafficSpec::default().horizon)
    }

    fn check_spec(&self, spec: &RunSpec) -> Result<(), String> {
        if let Some(traffic) = &spec.traffic {
            traffic.validate()?;
        }
        Ok(())
    }

    fn run(&self, sim: &mut Sim<'_, RunTopology>, ctx: &TaskCtx) -> TaskOutcome {
        Self::exec(sim, ctx, self.kind)
    }

    fn run_recorded(&self, sim: &mut Sim<'_, RunTopology, Recorder>, ctx: &TaskCtx) -> TaskOutcome {
        Self::exec(sim, ctx, self.kind)
    }

    fn run_instrumented(
        &self,
        sim: &mut Sim<'_, RunTopology, NullSink, Registry>,
        ctx: &TaskCtx,
    ) -> TaskOutcome {
        Self::exec(sim, ctx, self.kind)
    }
}

/// The LOCAL-model round budget of the reference MIS tasks — the single
/// definition both their timebases and their run caps derive from, so
/// dynamics event scripts always scale to the budget actually enforced.
fn local_mis_budget(info: &NetInfo) -> u64 {
    16 * info.log_n().max(1) as u64
}

fn local_mis_outcome(out: LocalMisOutcome, g: &radionet_graph::Graph) -> TaskOutcome {
    let valid = out.is_valid(g);
    TaskOutcome::Mis(MisSummary {
        valid,
        mis_size: out.mis.len(),
        rounds: out.rounds,
        complete: out.complete,
        clock_done: None, // LOCAL rounds are free: the radio clock never moves
    })
}

/// Luby's LOCAL MIS, a round-complexity reference (not a radio algorithm:
/// message-passing rounds are free and the dynamics overlay is ignored).
pub struct LubyMisTask;

impl LubyMisTask {
    fn exec<J: JournalSink, M: Telemetry>(
        sim: &mut Sim<'_, RunTopology, J, M>,
        ctx: &TaskCtx,
    ) -> TaskOutcome {
        let g = sim.graph();
        let mut rng = StdRng::seed_from_u64(ctx.lottery_seed ^ 0x1b);
        let cap = ctx.capped(local_mis_budget(sim.info()));
        local_mis_outcome(luby_mis(g, &mut rng, cap), g)
    }
}

impl Task for LubyMisTask {
    fn key(&self) -> &'static str {
        "luby-mis"
    }

    fn describe(&self) -> &'static str {
        "Luby's LOCAL MIS reference (free rounds, O(log n))"
    }

    fn timebase(&self, info: &NetInfo) -> u64 {
        local_mis_budget(info)
    }

    runs_via_exec!();
}

/// Ghaffari's LOCAL MIS (paper, Algorithm 4), a round-complexity reference
/// (not a radio algorithm: rounds are free and the dynamics overlay is
/// ignored).
pub struct GhaffariMisTask;

impl GhaffariMisTask {
    fn exec<J: JournalSink, M: Telemetry>(
        sim: &mut Sim<'_, RunTopology, J, M>,
        ctx: &TaskCtx,
    ) -> TaskOutcome {
        let g = sim.graph();
        let mut rng = StdRng::seed_from_u64(ctx.lottery_seed ^ 0x9f);
        let cap = ctx.capped(local_mis_budget(sim.info()));
        local_mis_outcome(ghaffari_local_mis(g, &mut rng, cap), g)
    }
}

impl Task for GhaffariMisTask {
    fn key(&self) -> &'static str {
        "ghaffari-mis"
    }

    fn describe(&self) -> &'static str {
        "Ghaffari's LOCAL MIS reference (Algorithm 4, free rounds)"
    }

    fn timebase(&self, info: &NetInfo) -> u64 {
        local_mis_budget(info)
    }

    runs_via_exec!();
}
