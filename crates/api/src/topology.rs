//! The topology the driver hands every task: scripted overlay or moving
//! geometry, behind one [`TopologyView`].
//!
//! [`Task`](crate::Task) implementations are object-safe and therefore
//! monomorphic in the simulator's view type; [`RunTopology`] is that type.
//! Scripted dynamics (the paper's static model is an empty script) run on
//! the [`DynamicTopology`] overlay exactly as before the mobility
//! subsystem; [`Dynamics::Mobility`](crate::Dynamics::Mobility) recipes run
//! on a [`MobileTopology`] whose edges are re-derived from the moving point
//! set each step. Both arms implement the sparse kernel's batch change
//! feed, so every task runs under the active-set kernel unmodified.

use crate::dynamics::DynamicTopology;
use radionet_graph::{Graph, NodeId};
use radionet_mobility::MobileTopology;
use radionet_sim::TopologyView;

/// The driver's unified topology: one of the two run-time views.
///
/// One value exists per run and lives for the whole run, so the size gap
/// between the two variants costs one oversized stack slot, not a hot-path
/// indirection (boxing the mobile arm would put a pointer chase inside
/// every `neighbors` call instead).
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum RunTopology {
    /// The event-scripted overlay (static runs use an empty script).
    Scripted(DynamicTopology),
    /// Moving geometric nodes with a derived edge set.
    Mobile(MobileTopology),
}

impl RunTopology {
    /// The mobile view, when this run is a mobility run.
    pub fn mobile(&self) -> Option<&MobileTopology> {
        match self {
            RunTopology::Scripted(_) => None,
            RunTopology::Mobile(m) => Some(m),
        }
    }

    /// The scripted overlay, when this run is event-driven.
    pub fn scripted(&self) -> Option<&DynamicTopology> {
        match self {
            RunTopology::Scripted(d) => Some(d),
            RunTopology::Mobile(_) => None,
        }
    }
}

impl TopologyView for RunTopology {
    fn advance_to(&mut self, base: &Graph, clock: u64) {
        match self {
            RunTopology::Scripted(t) => t.advance_to(base, clock),
            RunTopology::Mobile(t) => t.advance_to(base, clock),
        }
    }

    fn neighbors<'a>(&'a self, base: &'a Graph, v: NodeId) -> &'a [NodeId] {
        match self {
            RunTopology::Scripted(t) => t.neighbors(base, v),
            RunTopology::Mobile(t) => t.neighbors(base, v),
        }
    }

    fn is_active(&self, v: NodeId) -> bool {
        match self {
            RunTopology::Scripted(t) => t.is_active(v),
            RunTopology::Mobile(t) => t.is_active(v),
        }
    }

    fn is_jammed(&self, v: NodeId) -> bool {
        match self {
            RunTopology::Scripted(t) => t.is_jammed(v),
            RunTopology::Mobile(t) => t.is_jammed(v),
        }
    }

    fn is_retired(&self, v: NodeId) -> bool {
        match self {
            RunTopology::Scripted(t) => t.is_retired(v),
            RunTopology::Mobile(t) => t.is_retired(v),
        }
    }

    fn supports_change_feed(&self) -> bool {
        match self {
            RunTopology::Scripted(t) => t.supports_change_feed(),
            RunTopology::Mobile(t) => t.supports_change_feed(),
        }
    }

    fn drain_status_changes(&mut self, out: &mut Vec<NodeId>) {
        match self {
            RunTopology::Scripted(t) => t.drain_status_changes(out),
            RunTopology::Mobile(t) => t.drain_status_changes(out),
        }
    }

    fn jammed_nodes(&self) -> &[NodeId] {
        match self {
            RunTopology::Scripted(t) => t.jammed_nodes(),
            RunTopology::Mobile(t) => t.jammed_nodes(),
        }
    }

    fn supports_event_jumps(&self) -> bool {
        match self {
            RunTopology::Scripted(t) => t.supports_event_jumps(),
            RunTopology::Mobile(t) => t.supports_event_jumps(),
        }
    }

    fn next_event(&self, clock: u64) -> Option<u64> {
        match self {
            RunTopology::Scripted(t) => t.next_event(clock),
            RunTopology::Mobile(t) => t.next_event(clock),
        }
    }

    fn positions(&self) -> Option<&[[f64; 3]]> {
        match self {
            // Qualified: `MobileTopology` also has an inherent
            // `positions()` (infallible) that would shadow the trait's.
            RunTopology::Scripted(t) => TopologyView::positions(t),
            RunTopology::Mobile(t) => TopologyView::positions(t),
        }
    }

    fn positions_version(&self) -> u64 {
        match self {
            RunTopology::Scripted(t) => t.positions_version(),
            RunTopology::Mobile(t) => t.positions_version(),
        }
    }

    fn index_work(&self) -> (u64, u64) {
        match self {
            RunTopology::Scripted(t) => t.index_work(),
            RunTopology::Mobile(t) => t.index_work(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, ScenarioEvent};
    use radionet_graph::families::Family;
    use radionet_graph::generators;
    use radionet_mobility::MobilityModel;

    #[test]
    fn scripted_arm_delegates() {
        let g = generators::star(5);
        let script = vec![ScenarioEvent::new(3, EventKind::Crash(1))];
        let mut topo = RunTopology::Scripted(DynamicTopology::new(&g, script));
        assert!(topo.scripted().is_some());
        assert!(topo.mobile().is_none());
        assert!(topo.supports_change_feed());
        assert!(topo.is_active(g.node(1)));
        topo.advance_to(&g, 3);
        assert!(!topo.is_active(g.node(1)));
        assert!(topo.is_retired(g.node(1)));
        let mut changed = Vec::new();
        topo.drain_status_changes(&mut changed);
        assert_eq!(changed, vec![g.node(1)]);
    }

    #[test]
    fn mobile_arm_delegates() {
        let p = Family::UnitDisk.instantiate_positioned(32, 1);
        let inner = MobileTopology::new(&p.geometry.unwrap(), MobilityModel::Static, 1, 1);
        let mut topo = RunTopology::Mobile(inner);
        assert!(topo.mobile().is_some());
        assert!(topo.supports_change_feed());
        topo.advance_to(&p.graph, 10);
        for v in p.graph.nodes() {
            assert!(topo.is_active(v));
            assert!(!topo.is_jammed(v));
            assert!(!topo.is_retired(v));
            assert_eq!(topo.neighbors(&p.graph, v), p.graph.neighbors(v));
        }
        assert!(topo.jammed_nodes().is_empty());
    }
}
