//! Every registered task runs end-to-end through the façade on a small
//! graph — the "one typed spec reaches everything" acceptance check, plus
//! outcome sanity per task kind.

use radionet_api::{Driver, Dynamics, RunSpec, TaskOutcome};
use radionet_graph::families::Family;
use radionet_sim::{Kernel, ReceptionMode};

fn spec_for(task: &str, seed: u64) -> RunSpec {
    let mut spec = RunSpec::new(task, Family::Grid, 36).with_seed(seed);
    if task == "cd-wakeup" {
        spec = spec.with_reception(ReceptionMode::ProtocolCd);
    }
    spec
}

#[test]
fn every_registered_task_runs_on_a_static_grid() {
    let driver = Driver::standard();
    let keys: Vec<&str> = driver.registry().keys().collect();
    assert_eq!(keys.len(), 13);
    for key in keys {
        let report = driver.run(&spec_for(key, 5)).unwrap_or_else(|e| panic!("{key}: {e}"));
        assert!(report.success, "{key} failed on an unperturbed grid: {report:?}");
        assert!(report.achieved >= 1.0 - 1e-12, "{key}: achieved {}", report.achieved);
        assert_eq!(report.n, 36);
        // Radio tasks consume clock; the LOCAL references are free.
        match report.outcome {
            TaskOutcome::Mis(m) if report.clock_total == 0 => {
                assert!(m.rounds > 0, "{key}: no rounds at zero clock")
            }
            _ => assert!(report.clock_total > 0, "{key}: clock did not advance"),
        }
    }
}

#[test]
fn every_task_survives_churn_dynamics() {
    let driver = Driver::standard();
    for key in driver.registry().keys() {
        let spec = spec_for(key, 11).with_dynamics(Dynamics::preset("churn").unwrap());
        let report = driver.run(&spec).unwrap_or_else(|e| panic!("{key}: {e}"));
        // Under churn success is not guaranteed; the pipeline completing
        // with a well-formed report is the contract.
        assert!((0.0..=1.0).contains(&report.achieved), "{key}: achieved {}", report.achieved);
        assert!(report.events > 0, "{key}: churn produced no events");
    }
}

#[test]
fn kernels_agree_for_every_task() {
    let driver = Driver::standard();
    for key in driver.registry().keys() {
        let sparse = driver.run(&spec_for(key, 23).with_kernel(Kernel::Sparse)).unwrap();
        let dense = driver.run(&spec_for(key, 23).with_kernel(Kernel::Dense)).unwrap();
        let event = driver.run(&spec_for(key, 23).with_kernel(Kernel::Event)).unwrap();
        assert_eq!(sparse.outcome, dense.outcome, "{key} kernels disagree");
        assert_eq!(sparse.outcome, event.outcome, "{key} event kernel disagrees");
        // Scheduler pop / skip counters are kernel-dependent by design;
        // everything else in the stats must match byte-for-byte.
        assert_eq!(
            sparse.stats.kernel_invariant(),
            dense.stats.kernel_invariant(),
            "{key} kernel stats disagree"
        );
        assert_eq!(
            sparse.stats.kernel_invariant(),
            event.stats.kernel_invariant(),
            "{key} event kernel stats disagree"
        );
        assert_eq!(
            sparse.stats.scheduler_events, event.stats.scheduler_events,
            "{key}: event kernel must pop exactly the wake entries sparse pops"
        );
        assert_eq!(
            sparse.rng_fingerprint, dense.rng_fingerprint,
            "{key} kernel RNG streams disagree"
        );
        assert_eq!(
            sparse.rng_fingerprint, event.rng_fingerprint,
            "{key} event kernel RNG stream disagrees"
        );
    }
}

#[test]
fn step_cap_limits_capped_tasks() {
    let driver = Driver::standard();
    let mut spec = spec_for("luby-mis", 3);
    spec.steps = Some(1);
    let report = driver.run(&spec).unwrap();
    if let TaskOutcome::Mis(m) = report.outcome {
        assert!(m.rounds <= 1, "round cap ignored: {} rounds", m.rounds);
    } else {
        panic!("luby-mis must report a Mis outcome");
    }
}
