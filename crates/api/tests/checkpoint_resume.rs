//! Resume-at-k ≡ straight-through: a run checkpointed after `k` phases and
//! resumed in a fresh simulator finishes bit-identically to one that never
//! stopped — under **every** dynamics preset, all three step kernels, and
//! SINR reception.
//!
//! This is the whole value of [`Checkpoint`]: the serialized document plus
//! the original `(family, dynamics, seed)` recipe is a complete resume
//! token. The suite drives `radionet_sim::Checkpoint` through the api
//! crate's own topology arms ([`RunTopology`]) so the restore fast-forward
//! exercises the scripted overlay *and* the mobility index.

use proptest::prelude::*;
use radionet_api::dynamics::DynamicTopology;
use radionet_api::topology::RunTopology;
use radionet_api::Dynamics;
use radionet_graph::families::Family;
use radionet_graph::Graph;
use radionet_mobility::MobileTopology;
use radionet_sim::{
    Action, Checkpoint, Kernel, NetInfo, NodeCtx, Protocol, ReceptionMode, Sim, SinrConfig,
};
use serde::{DeError, Deserialize, Serialize, Value};

/// Transmits with probability 1/2 and counts everything heard — active
/// every step, so every preset's topology churn is exercised, and the
/// state is a plain serde round-trip.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
struct Gossip {
    heard: u64,
}

impl Protocol for Gossip {
    type Msg = u64;
    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u64> {
        if rand::Rng::gen_bool(ctx.rng, 0.5) {
            Action::Transmit(self.heard)
        } else {
            Action::Listen
        }
    }
    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &u64) {
        self.heard += msg + 1;
    }
}

fn decode(v: &Value) -> Result<Gossip, String> {
    Gossip::from_value(v).map_err(|e: DeError| e.to_string())
}

/// One preset's base graph + freshly constructed topology arm. Called once
/// per simulator, so the reference, recorded, and resumed runs all drive
/// identical views.
fn build(preset: &Dynamics, seed: u64) -> (Graph, RunTopology) {
    match preset {
        Dynamics::Mobility(m) => {
            let positioned = Family::UnitDisk.instantiate_positioned(36, seed);
            let geometry = positioned.geometry.expect("unit disk has an embedding");
            let mobile = MobileTopology::new(&geometry, m.model, m.tick.max(1), seed ^ 0x6d);
            let g = mobile.initial_graph();
            (g, RunTopology::Mobile(mobile))
        }
        _ => {
            let g = Family::Grid.instantiate(36, seed);
            let events = preset.events_for(&g, 60, seed ^ 0xe7);
            let topo = RunTopology::Scripted(DynamicTopology::new(&g, events));
            (g, topo)
        }
    }
}

const PHASE: u64 = 15;
const PHASES: u64 = 4;

/// Runs `phases` phases straight through, returning the final protocol
/// states, stats, and RNG fingerprint.
fn straight(preset: &Dynamics, kernel: Kernel, seed: u64) -> (Vec<Gossip>, String, u64) {
    let (g, topo) = build(preset, seed);
    let mut sim =
        Sim::try_with_topology(&g, topo, NetInfo::exact(&g), seed, ReceptionMode::Protocol)
            .unwrap();
    sim.set_kernel(kernel);
    let mut states = vec![Gossip { heard: 0 }; g.n()];
    for _ in 0..PHASES {
        sim.run_phase(&mut states, PHASE);
    }
    (states, format!("{:?}", sim.stats()), sim.rng_fingerprint())
}

/// Runs `k` phases, checkpoints through a JSON round trip, resumes in a
/// fresh simulator, and finishes the remaining phases.
fn resumed(preset: &Dynamics, kernel: Kernel, seed: u64, k: u64) -> (Vec<Gossip>, String, u64) {
    let (g, topo) = build(preset, seed);
    let mut sim =
        Sim::try_with_topology(&g, topo, NetInfo::exact(&g), seed, ReceptionMode::Protocol)
            .unwrap();
    sim.set_kernel(kernel);
    let mut states = vec![Gossip { heard: 0 }; g.n()];
    for _ in 0..k {
        sim.run_phase(&mut states, PHASE);
    }
    let json =
        serde_json::to_string(&Checkpoint::capture(&sim, &states, |s| s.to_value())).unwrap();
    drop(sim);
    drop(states);

    // "New process": same recipe, fresh simulator, restore, finish.
    let ck: Checkpoint = serde_json::from_str(&json).unwrap();
    let (g2, topo2) = build(preset, seed);
    assert_eq!(g2.n(), g.n());
    let mut sim =
        Sim::try_with_topology(&g2, topo2, NetInfo::exact(&g2), seed, ReceptionMode::Protocol)
            .unwrap();
    sim.set_kernel(kernel);
    let mut states = ck.restore_into(&mut sim, decode).unwrap();
    for _ in k..PHASES {
        sim.run_phase(&mut states, PHASE);
    }
    (states, format!("{:?}", sim.stats()), sim.rng_fingerprint())
}

#[test]
fn resume_matches_straight_through_for_every_preset_and_kernel() {
    for name in Dynamics::PRESETS {
        let preset = Dynamics::preset(name).unwrap();
        for kernel in [Kernel::Sparse, Kernel::Dense, Kernel::Event] {
            let reference = straight(&preset, kernel, 17);
            let restored = resumed(&preset, kernel, 17, 2);
            assert_eq!(restored, reference, "{name} under {kernel:?} diverged after resume");
        }
    }
}

/// The restore fast-forward jumps the topology through its event times
/// instead of replaying every clock step: a checkpoint taken long after
/// the last scripted event forces one long eventless leap, and the
/// restored state must still be indistinguishable from never stopping.
#[test]
fn restore_jumps_past_a_quiet_script_tail() {
    // All churn events land within the run's 60-step script; resuming at
    // k=3 (clock 45) fast-forwards mostly through silence.
    let preset = Dynamics::preset("churn").unwrap();
    for kernel in [Kernel::Sparse, Kernel::Event] {
        let reference = straight(&preset, kernel, 91);
        let restored = resumed(&preset, kernel, 91, 3);
        assert_eq!(restored, reference, "{kernel:?} diverged across the quiet tail");
    }
}

#[test]
fn resume_matches_under_sinr_reception() {
    // Geometry-derived SINR over a static unit disk: the checkpoint must
    // restore the physical-reception run too (the spatial index is
    // reconstructed from positions, not serialized).
    let positioned = Family::UnitDisk.instantiate_positioned(36, 5);
    let geometry = positioned.geometry.expect("unit disk has an embedding");
    let reception = ReceptionMode::Sinr(SinrConfig::for_unit_range(geometry.points.clone(), 1.0));
    fn make<'g>(g: &'g Graph, reception: &ReceptionMode) -> Sim<'g, RunTopology> {
        let topo = RunTopology::Scripted(DynamicTopology::new(g, Vec::new()));
        Sim::try_with_topology(g, topo, NetInfo::exact(g), 5, reception.clone()).unwrap()
    }
    let run = |resume_at: Option<u64>| {
        let g = positioned.graph.clone();
        let mut sim = make(&g, &reception);
        let mut states = vec![Gossip { heard: 0 }; g.n()];
        match resume_at {
            None => {
                for _ in 0..PHASES {
                    sim.run_phase(&mut states, PHASE);
                }
                (states, format!("{:?}", sim.stats()), sim.rng_fingerprint())
            }
            Some(k) => {
                for _ in 0..k {
                    sim.run_phase(&mut states, PHASE);
                }
                let ck = Checkpoint::capture(&sim, &states, |s| s.to_value());
                let mut sim = make(&g, &reception);
                let mut states = ck.restore_into(&mut sim, decode).unwrap();
                for _ in k..PHASES {
                    sim.run_phase(&mut states, PHASE);
                }
                (states, format!("{:?}", sim.stats()), sim.rng_fingerprint())
            }
        }
    };
    assert_eq!(run(Some(1)), run(None));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any preset, any kernel, any resume point: resume-at-k is
    /// indistinguishable from never stopping.
    #[test]
    fn resume_at_k_is_straight_through(
        preset_idx in 0usize..Dynamics::PRESETS.len(),
        kernel_idx in 0usize..3,
        seed in 0u64..1000,
        k in 1u64..PHASES,
    ) {
        let preset = Dynamics::preset(Dynamics::PRESETS[preset_idx]).unwrap();
        let kernel = [Kernel::Sparse, Kernel::Dense, Kernel::Event][kernel_idx];
        prop_assert_eq!(
            resumed(&preset, kernel, seed, k),
            straight(&preset, kernel, seed)
        );
    }
}
