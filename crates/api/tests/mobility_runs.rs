//! End-to-end mobility runs through the façade: every mobility preset
//! executes under `Driver::run`, produces a time-resolved trace, stays
//! deterministic, and is byte-identical across the two step kernels.

use radionet_api::{Driver, Dynamics, MobilitySpec, RunError, RunSpec};
use radionet_graph::families::Family;
use radionet_sim::{Kernel, PositionSource, ReceptionMode, SinrConfig};

const MOBILITY_PRESETS: [&str; 4] =
    ["mobility:waypoint", "mobility:walk", "mobility:levy", "mobility:group"];

fn mobile_spec(preset: &str, family: Family, seed: u64) -> RunSpec {
    RunSpec::new("broadcast", family, 48)
        .with_seed(seed)
        .with_dynamics(Dynamics::preset(preset).unwrap())
}

#[test]
fn every_mobility_preset_runs_and_traces() {
    let driver = Driver::standard();
    for preset in MOBILITY_PRESETS {
        let report = driver
            .run(&mobile_spec(preset, Family::UnitDisk, 3))
            .unwrap_or_else(|e| panic!("{preset}: {e}"));
        assert_eq!(report.events, 0, "{preset}: mobility scripts no events");
        let trace = report.mobility.as_ref().unwrap_or_else(|| panic!("{preset}: no trace"));
        assert!(!trace.samples.is_empty(), "{preset}: no time-resolved samples");
        assert!(trace.samples[0].alpha_lower >= 1);
        assert!(trace.stats.ticks > 0, "{preset}: the point set never moved");
        assert!((0.0..=1.0).contains(&report.achieved), "{preset}");
        // Samples are clock-ordered and start at the baseline.
        assert!(trace.samples.windows(2).all(|w| w[0].clock < w[1].clock), "{preset}");
    }
}

#[test]
fn mobility_runs_on_every_geometric_family() {
    let driver = Driver::standard();
    for family in
        [Family::UnitDisk, Family::QuasiUnitDisk, Family::UnitBall3, Family::GeometricRadio]
    {
        let report = driver
            .run(&mobile_spec("mobility:waypoint", family, 7))
            .unwrap_or_else(|e| panic!("{family}: {e}"));
        assert!(report.mobility.is_some(), "{family}");
        assert!(report.clock_total > 0, "{family}");
    }
}

#[test]
fn mobility_rejects_non_geometric_families() {
    let err = Driver::standard().run(&mobile_spec("mobility:waypoint", Family::Grid, 0));
    match err {
        Err(RunError::InvalidSpec(why)) => {
            assert!(why.contains("geometric"), "unhelpful error: {why}")
        }
        other => panic!("expected InvalidSpec, got {other:?}"),
    }
}

#[test]
fn mobility_rejects_frozen_sinr_snapshots() {
    // A fixed position table cannot track moving nodes; only the frozen
    // snapshot source is rejected — geometry/live SINR runs end-to-end.
    let spec = mobile_spec("mobility:waypoint", Family::UnitDisk, 0)
        .with_reception(ReceptionMode::Sinr(SinrConfig::for_unit_range(vec![(0.0, 0.0); 48], 1.0)));
    let err = Driver::standard().run(&spec);
    match err {
        Err(RunError::InvalidSpec(why)) => {
            assert!(why.contains("snapshot"), "unhelpful error: {why}")
        }
        other => panic!("expected InvalidSpec, got {other:?}"),
    }
}

#[test]
fn mobility_accepts_sinr_reception_end_to_end() {
    // The geometry-native SINR path: positions re-read from the moving
    // point set each step, across every mobility preset and geometric
    // family, with a time-resolved trace and physical-layer activity.
    let driver = Driver::standard();
    for source in [PositionSource::Geometry, PositionSource::Live] {
        let spec = mobile_spec("mobility:waypoint", Family::UnitDisk, 3)
            .with_reception(ReceptionMode::Sinr(SinrConfig::for_unit_range(source.clone(), 1.0)));
        let report = driver.run(&spec).unwrap_or_else(|e| panic!("{source:?}: {e}"));
        assert_eq!(report.spec, spec, "{source:?}");
        assert!(report.mobility.is_some(), "{source:?}: mobility trace missing");
        assert!(report.stats.deliveries > 0, "{source:?}: nothing was delivered under SINR");
        assert_eq!(report.stats.kernel_fallbacks, 0, "{source:?}: sparse SINR must not fall back");
    }
    for family in
        [Family::UnitDisk, Family::QuasiUnitDisk, Family::UnitBall3, Family::GeometricRadio]
    {
        for preset in MOBILITY_PRESETS {
            let spec = mobile_spec(preset, family, 9)
                .with_reception(ReceptionMode::Sinr(SinrConfig::geometric()));
            let report = driver.run(&spec).unwrap_or_else(|e| panic!("{family}/{preset}: {e}"));
            assert!(report.clock_total > 0, "{family}/{preset}");
            assert!(report.mobility.unwrap().stats.ticks > 0, "{family}/{preset}");
        }
    }
}

#[test]
fn mobility_sinr_kernels_are_byte_identical() {
    // Moving positions + physical reception, sparse vs dense vs event: the
    // spatially-indexed SINR kernel must reproduce the dense reference
    // bit-for-bit under the default Exact far-field policy.
    let driver = Driver::standard();
    for preset in MOBILITY_PRESETS {
        let spec = mobile_spec(preset, Family::UnitDisk, 31)
            .with_reception(ReceptionMode::Sinr(SinrConfig::geometric()));
        let sparse = driver.run(&spec.clone().with_kernel(Kernel::Sparse)).unwrap();
        let dense = driver.run(&spec.clone().with_kernel(Kernel::Dense)).unwrap();
        let event = driver.run(&spec.clone().with_kernel(Kernel::Event)).unwrap();
        assert_eq!(sparse.outcome, dense.outcome, "{preset}");
        assert_eq!(sparse.outcome, event.outcome, "{preset} (event)");
        assert_eq!(sparse.stats.deliveries, dense.stats.deliveries, "{preset}");
        assert_eq!(sparse.stats.collisions, dense.stats.collisions, "{preset}");
        assert_eq!(sparse.rng_fingerprint, dense.rng_fingerprint, "{preset}");
        assert_eq!(sparse.rng_fingerprint, event.rng_fingerprint, "{preset} (event)");
        assert_eq!(sparse.mobility, dense.mobility, "{preset}");
        assert_eq!(sparse.mobility, event.mobility, "{preset} (event)");
    }
}

#[test]
fn mobility_sinr_is_deterministic() {
    let driver = Driver::standard();
    let spec = mobile_spec("mobility:levy", Family::UnitDisk, 13)
        .with_reception(ReceptionMode::Sinr(SinrConfig::geometric()));
    let a = driver.run(&spec).unwrap();
    let b = driver.run(&spec).unwrap();
    assert_eq!(a, b);
}

#[test]
fn mobility_reports_are_deterministic() {
    let driver = Driver::standard();
    let spec = mobile_spec("mobility:levy", Family::UnitDisk, 11);
    let a = driver.run(&spec).unwrap();
    let b = driver.run(&spec).unwrap();
    assert_eq!(a, b);
    assert_ne!(
        a.rng_fingerprint,
        driver.run(&spec.clone().with_seed(12)).unwrap().rng_fingerprint,
        "seed must matter"
    );
}

#[test]
fn mobility_kernels_are_byte_identical() {
    // The acceptance criterion: the sparse active-set and clock-jumping
    // event kernels run unmodified on MobileTopology with results
    // identical to the dense reference — outcome, kernel-invariant engine
    // counters, RNG streams, and trace.
    let driver = Driver::standard();
    for preset in MOBILITY_PRESETS {
        for task in ["broadcast", "mis"] {
            let mut spec = mobile_spec(preset, Family::UnitDisk, 21);
            spec.task = task.to_string();
            let sparse = driver.run(&spec.clone().with_kernel(Kernel::Sparse)).unwrap();
            let event = driver.run(&spec.clone().with_kernel(Kernel::Event)).unwrap();
            let dense = driver.run(&spec.with_kernel(Kernel::Dense)).unwrap();
            assert_eq!(sparse.outcome, dense.outcome, "{preset}/{task}");
            assert_eq!(sparse.outcome, event.outcome, "{preset}/{task} (event)");
            assert_eq!(
                sparse.stats.kernel_invariant(),
                dense.stats.kernel_invariant(),
                "{preset}/{task}"
            );
            assert_eq!(
                sparse.stats.kernel_invariant(),
                event.stats.kernel_invariant(),
                "{preset}/{task} (event)"
            );
            assert_eq!(sparse.rng_fingerprint, dense.rng_fingerprint, "{preset}/{task}");
            assert_eq!(sparse.rng_fingerprint, event.rng_fingerprint, "{preset}/{task} (event)");
            assert_eq!(sparse.mobility, dense.mobility, "{preset}/{task}");
            assert_eq!(sparse.mobility, event.mobility, "{preset}/{task} (event)");
        }
    }
}

#[test]
fn explicit_sampling_cadence_is_honored() {
    let mut dynamics = match Dynamics::preset("mobility:waypoint").unwrap() {
        Dynamics::Mobility(m) => m,
        _ => unreachable!(),
    };
    dynamics.sample_every = Some(7);
    let spec = RunSpec::new("broadcast", Family::UnitDisk, 48)
        .with_seed(5)
        .with_dynamics(Dynamics::Mobility(MobilitySpec { ..dynamics }));
    let report = Driver::standard().run(&spec).unwrap();
    let samples = &report.mobility.unwrap().samples;
    assert!(samples.len() >= 2);
    // At most one sample per 7-step cadence window (clock jumps from
    // charged phases may place samples anywhere inside their window).
    for w in samples.windows(2) {
        assert!(w[1].clock / 7 > w[0].clock / 7, "two samples in one cadence window");
    }
}

#[test]
fn zero_cadence_disables_sampling() {
    let mut dynamics = match Dynamics::preset("mobility:waypoint").unwrap() {
        Dynamics::Mobility(m) => m,
        _ => unreachable!(),
    };
    dynamics.sample_every = Some(0);
    let spec = RunSpec::new("broadcast", Family::UnitDisk, 48)
        .with_seed(5)
        .with_dynamics(Dynamics::Mobility(dynamics));
    let report = Driver::standard().run(&spec).unwrap();
    let trace = report.mobility.expect("trace counters still reported");
    assert!(trace.samples.is_empty(), "Some(0) must switch sampling off");
    assert!(trace.stats.ticks > 0, "motion itself stays on");
}

#[test]
fn mobility_report_serde_round_trips() {
    let report =
        Driver::standard().run(&mobile_spec("mobility:group", Family::UnitBall3, 2)).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: radionet_api::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}
