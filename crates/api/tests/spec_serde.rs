//! Golden serde round-trips for [`RunSpec`]: at least one spec per task,
//! per reception mode, and per dynamics variant, frozen as a pretty-JSON
//! fixture.
//!
//! The fixture is the compatibility contract of the façade — CLI spec
//! files, recorded sweeps, and cross-version tooling all speak this exact
//! encoding. Regenerate deliberately with
//! `RADIONET_REGEN_FIXTURES=1 cargo test -p radionet-api --test spec_serde`
//! and review the diff.

use radionet_api::{
    Arrival, BurstyArrival, Driver, Dynamics, JournalSpec, RunSpec, TaskRegistry, TrafficSpec,
};
use radionet_graph::families::Family;
use radionet_sim::{FarFieldPolicy, Kernel, PositionSource, ReceptionMode, SinrConfig};

const FIXTURE: &str = include_str!("fixtures/specs.json");
const FIXTURE_PATH: &str = "tests/fixtures/specs.json";

/// The golden corpus: every registry task once, every reception mode at
/// least once, every dynamics variant at least once, both kernels, and a
/// step-capped spec.
fn corpus() -> Vec<RunSpec> {
    let mut specs = Vec::new();

    // One spec per task, cycling the dynamics presets so each variant
    // appears; cd-wakeup carries its required CD reception, and the
    // mobility presets get a geometric family (they are invalid on any
    // family without an embedding — `RunSpec::validate` enforces it).
    let registry = TaskRegistry::standard();
    for (i, key) in registry.keys().enumerate() {
        let dynamics = Dynamics::preset(Dynamics::PRESETS[i % Dynamics::PRESETS.len()]).unwrap();
        let family =
            if matches!(dynamics, Dynamics::Mobility(_)) { Family::UnitDisk } else { Family::Grid };
        let mut spec =
            RunSpec::new(key, family, 36).with_seed(1000 + i as u64).with_dynamics(dynamics);
        if key == "cd-wakeup" {
            spec = spec.with_reception(ReceptionMode::ProtocolCd);
        }
        specs.push(spec);
    }

    // Each reception mode, including a fully populated SINR config — and
    // every SINR position source: an explicit snapshot, the family's own
    // embedding (geometry-sourced), and the live moving point set of a
    // mobility run (with a non-default far-field policy).
    specs.push(RunSpec::new("broadcast", Family::UnitDisk, 4).with_seed(7).with_reception(
        ReceptionMode::Sinr(SinrConfig::for_unit_range(
            vec![(0.0, 0.0), (1.0, 0.0), (0.5, 0.5), (0.25, 0.75)],
            1.0,
        )),
    ));
    specs.push(
        RunSpec::new("broadcast", Family::UnitDisk, 36)
            .with_seed(11)
            .with_reception(ReceptionMode::Sinr(SinrConfig::geometric())),
    );
    specs.push(
        RunSpec::new("broadcast", Family::UnitDisk, 36)
            .with_seed(12)
            .with_dynamics(Dynamics::preset("mobility:waypoint").unwrap())
            .with_reception(ReceptionMode::Sinr(
                SinrConfig::for_unit_range(PositionSource::Live, 1.0)
                    .with_far_field(FarFieldPolicy::Cutoff(0.125)),
            )),
    );
    specs.push(
        RunSpec::new("bgi-broadcast", Family::Cycle, 24)
            .with_seed(8)
            .with_reception(ReceptionMode::ProtocolCd),
    );

    // Dense kernel and an explicit step cap.
    specs.push(RunSpec::new("mis", Family::Hypercube, 64).with_seed(9).with_kernel(Kernel::Dense));
    let mut capped = RunSpec::new("luby-mis", Family::Star, 32).with_seed(10);
    capped.steps = Some(12);
    specs.push(capped);

    // A journaled spec: the observability section is part of the contract.
    specs.push(
        RunSpec::new("broadcast", Family::Grid, 25)
            .with_seed(13)
            .with_journal(JournalSpec { classes: "radio,phase".into(), checkpoint_every: 16 }),
    );

    // Traffic specs with an explicit workload section: one per arrival
    // process (the registry loop above covers the traffic *tasks*, but
    // with the axis unset — the encoding of the section itself must be
    // part of the contract too).
    specs.push(
        RunSpec::new("traffic.gossip", Family::Grid, 36)
            .with_seed(14)
            .with_traffic(TrafficSpec::default()),
    );
    specs.push(RunSpec::new("traffic.multicast", Family::Cycle, 48).with_seed(15).with_traffic(
        TrafficSpec {
            arrival: Arrival::Bursty(BurstyArrival { on: 8, off: 56, per_10k: 1200 }),
            senders: 4,
            messages: 32,
            horizon: 768,
            multicast_per_mille: 300,
        },
    ));

    specs
}

#[test]
fn corpus_covers_every_axis() {
    let specs = corpus();
    let registry = TaskRegistry::standard();
    for key in registry.keys() {
        assert!(specs.iter().any(|s| s.task == key), "no golden spec for task {key}");
    }
    for name in Dynamics::PRESETS {
        assert!(
            specs.iter().any(|s| s.dynamics.name() == name),
            "no golden spec for dynamics {name}"
        );
    }
    for mode in ["protocol", "protocol+cd", "sinr"] {
        assert!(
            specs.iter().any(|s| s.reception.name() == mode),
            "no golden spec for reception {mode}"
        );
    }
    assert!(specs.iter().any(|s| s.kernel == Kernel::Dense));
    assert!(specs.iter().any(|s| s.steps.is_some()));
    assert!(specs.iter().any(|s| s.journal.is_some()));
    // Both arrival processes of the traffic axis are frozen in the corpus.
    assert!(specs
        .iter()
        .any(|s| matches!(s.traffic, Some(t) if matches!(t.arrival, Arrival::Poisson(_)))));
    assert!(specs
        .iter()
        .any(|s| matches!(s.traffic, Some(t) if matches!(t.arrival, Arrival::Bursty(_)))));
}

#[test]
fn journal_less_legacy_specs_still_parse() {
    // Specs recorded before the observability layer carry no "journal"
    // key at all; they must keep decoding (to a journal-less spec).
    let legacy = r#"{
        "task": "broadcast",
        "family": "Grid",
        "n": 36,
        "reception": "Protocol",
        "kernel": "Sparse",
        "dynamics": "Static",
        "steps": null,
        "seed": 5
    }"#;
    let spec: RunSpec = serde_json::from_str(legacy).unwrap();
    assert_eq!(spec, RunSpec::new("broadcast", Family::Grid, 36).with_seed(5));
    assert!(spec.journal.is_none());
}

#[test]
fn golden_fixture_is_byte_stable() {
    let specs = corpus();
    let rendered = serde_json::to_string_pretty(&specs).unwrap() + "\n";
    if std::env::var_os("RADIONET_REGEN_FIXTURES").is_some() {
        std::fs::write(FIXTURE_PATH, &rendered).unwrap();
        return;
    }
    assert_eq!(
        rendered, FIXTURE,
        "RunSpec encoding drifted from the golden fixture; if intentional, \
         regenerate with RADIONET_REGEN_FIXTURES=1 and review the diff"
    );
}

#[test]
fn golden_fixture_round_trips() {
    let from_fixture: Vec<RunSpec> = serde_json::from_str(FIXTURE).unwrap();
    assert_eq!(from_fixture, corpus(), "fixture no longer decodes to the corpus");
    // And a full re-encode → decode cycle is lossless.
    let json = serde_json::to_string(&from_fixture).unwrap();
    let back: Vec<RunSpec> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, from_fixture);
}

#[test]
fn golden_specs_validate_and_resolve() {
    let driver = Driver::standard();
    for spec in corpus() {
        spec.validate().unwrap_or_else(|e| panic!("golden spec {} invalid: {e}", spec.task));
        assert!(driver.registry().get(&spec.task).is_some(), "unknown golden task {}", spec.task);
    }
}
