//! The Bar-Yehuda–Goldreich–Itai Decay broadcast \[3\]:
//! every informed node repeats Decay iterations forever; completes in
//! `O(D log n + log² n)` time-steps whp. The standard general-graph
//! baseline that `Compete` must beat on geometric classes (experiment E8).

use radionet_graph::{Graph, NodeId};
use radionet_primitives::decay::DecaySchedule;
use radionet_primitives::flood::FloodProtocol;
use radionet_sim::{JournalSink, NetInfo, Sim, Telemetry, TopologyView};
use serde::{Deserialize, Serialize};

/// Configuration of the BGI broadcast baseline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BgiConfig {
    /// Step budget = `budget_factor · (D·log n + log² n)`.
    pub budget_factor: f64,
    /// Completion-check granularity (steps between harness scans).
    pub check_every: u64,
}

impl Default for BgiConfig {
    fn default() -> Self {
        BgiConfig { budget_factor: 12.0, check_every: 16 }
    }
}

impl BgiConfig {
    /// The nominal step budget for the given network parameters.
    pub fn budget(&self, info: &NetInfo) -> u64 {
        let l = info.log_n() as f64;
        (self.budget_factor * (info.d as f64 * l + l * l)).ceil() as u64
    }
}

/// Outcome of a BGI broadcast run.
#[derive(Clone, Debug)]
pub struct BgiOutcome {
    /// Per-node final message knowledge.
    pub best: Vec<Option<u64>>,
    /// Clock when every node first knew the message (None = budget ran out).
    pub clock_all_informed: Option<u64>,
    /// Total clock consumed.
    pub clock_total: u64,
}

impl BgiOutcome {
    /// Whether the broadcast completed.
    pub fn completed(&self) -> bool {
        self.clock_all_informed.is_some()
    }
}

/// Runs the BGI broadcast of `message` from `source`.
pub fn run_bgi_broadcast<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    source: NodeId,
    message: u64,
    config: &BgiConfig,
) -> BgiOutcome {
    let sources = [(source, message)];
    run_bgi_multi(sim, &sources, config)
}

/// Multi-source variant (the highest message wins), used by the naive
/// leader-election baseline.
pub fn run_bgi_multi<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    sources: &[(NodeId, u64)],
    config: &BgiConfig,
) -> BgiOutcome {
    let g: &Graph = sim.graph();
    let info = *sim.info();
    let schedule = DecaySchedule::new(info.log_n());
    let target = sources.iter().map(|&(_, m)| m).max();
    let mut states: Vec<FloodProtocol<u64>> = g
        .nodes()
        .map(|v| {
            let msg = sources.iter().find(|&&(s, _)| s == v).map(|&(_, m)| m);
            FloodProtocol::new(schedule, msg)
        })
        .collect();
    let budget = config.budget(&info);
    let mut spent = 0u64;
    let mut clock_all_informed = None;
    while spent < budget {
        let chunk = config.check_every.min(budget - spent);
        let rep = sim.run_phase(&mut states, chunk);
        spent += rep.steps;
        if states.iter().all(|s| s.best().copied() == target) {
            clock_all_informed = Some(sim.clock());
            break;
        }
    }
    BgiOutcome {
        best: states.iter().map(|s| s.best().copied()).collect(),
        clock_all_informed,
        clock_total: sim.clock(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;

    #[test]
    fn completes_on_path_within_budget() {
        let g = generators::path(64);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 1);
        let out = run_bgi_broadcast(&mut sim, g.node(0), 9, &BgiConfig::default());
        assert!(out.completed());
        let t = out.clock_all_informed.unwrap();
        // Should be around D·log n; sanity: at least D (speed ≤ 1 hop/step).
        assert!(t >= 63, "t = {t}");
    }

    #[test]
    fn completes_on_grid_and_star() {
        for (g, s) in [(generators::grid2d(9, 9), 2u64), (generators::star(50), 3)] {
            let mut sim = Sim::new(&g, NetInfo::exact(&g), s);
            let out = run_bgi_broadcast(&mut sim, g.node(0), 1, &BgiConfig::default());
            assert!(out.completed(), "{g:?}");
        }
    }

    #[test]
    fn multi_source_max_wins() {
        let g = generators::cycle(24);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 4);
        let out =
            run_bgi_multi(&mut sim, &[(g.node(0), 5), (g.node(12), 8)], &BgiConfig::default());
        assert!(out.completed());
        assert!(out.best.iter().all(|b| *b == Some(8)));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = generators::path(128);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 5);
        let cfg = BgiConfig { budget_factor: 0.01, check_every: 4 };
        let out = run_bgi_broadcast(&mut sim, g.node(0), 9, &cfg);
        assert!(!out.completed());
    }
}
