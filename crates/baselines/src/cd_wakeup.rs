//! Collision-detection wake-up flooding.
//!
//! With collision detection, propagating a *signal* (one bit: "wake up")
//! needs no contention resolution at all: every awake node transmits every
//! step, and sleeping nodes treat message **and collision alike** as the
//! signal — the frontier advances one hop per step, completing in exactly
//! `eccentricity(source) ≤ D` steps. This is the mechanism behind the
//! collision-detection broadcast results the paper's related work cites
//! (Schneider–Wattenhofer \[29\]) and the reason the no-CD lower bounds
//! (`Ω(D log(n/D))` \[22\]) do not apply with CD. Experiment E13 quantifies
//! the gap against Decay-based flooding under the paper's model.

use radionet_graph::NodeId;
use radionet_sim::{
    Action, JournalSink, NetInfo, NodeCtx, Protocol, ReceptionMode, Sim, Telemetry, TopologyView,
    Wake,
};
use serde::{Deserialize, Serialize};

/// Configuration for the CD wake-up flood.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdWakeupConfig {
    /// Step budget (completion takes at most the source eccentricity).
    pub max_steps: u64,
}

impl Default for CdWakeupConfig {
    fn default() -> Self {
        CdWakeupConfig { max_steps: 1 << 20 }
    }
}

/// Per-node state of the wake-up flood.
#[derive(Clone, Debug)]
pub struct CdWakeupNode {
    awake: bool,
    woke_at: Option<u64>,
}

impl CdWakeupNode {
    /// A source (awake at step 0) or a sleeping node.
    pub fn new(is_source: bool) -> Self {
        CdWakeupNode { awake: is_source, woke_at: is_source.then_some(0) }
    }

    /// When this node woke (step index), if it did.
    pub fn woke_at(&self) -> Option<u64> {
        self.woke_at
    }

    fn wake(&mut self, t: u64) {
        if !self.awake {
            self.awake = true;
            self.woke_at = Some(t + 1); // effective from the next step
        }
    }
}

impl Protocol for CdWakeupNode {
    type Msg = ();

    fn act(&mut self, _ctx: &mut NodeCtx<'_>) -> Action<()> {
        if self.awake {
            Action::Transmit(())
        } else {
            Action::Listen
        }
    }

    fn on_hear(&mut self, ctx: &mut NodeCtx<'_>, _msg: &()) {
        self.wake(ctx.time);
    }

    fn on_collision(&mut self, ctx: &mut NodeCtx<'_>) {
        // The whole point: a collision is just as informative as a message.
        self.wake(ctx.time);
    }

    fn is_done(&self) -> bool {
        self.awake
    }

    fn next_wake(&self, _now: u64) -> Wake {
        if self.awake {
            // Awake nodes beacon every step.
            Wake::Now
        } else {
            // Sleeping nodes are pure listeners until any signal — message
            // or collision — reaches them; the sparse kernel advances the
            // frontier in O(frontier-boundary) work per step.
            Wake::listen()
        }
    }
}

/// Outcome of a wake-up run.
#[derive(Clone, Debug)]
pub struct CdWakeupOutcome {
    /// Steps until every node was awake (`None` = budget exhausted).
    pub completion_steps: Option<u64>,
    /// Per-node wake times.
    pub woke_at: Vec<Option<u64>>,
}

/// Runs the wake-up flood from `source` **with collision detection**.
///
/// # Panics
///
/// Panics if `sim` does not run under
/// [`ReceptionMode::ProtocolCd`] — without CD this protocol stalls at the
/// first collision, which would silently measure the wrong thing.
pub fn run_cd_wakeup<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    source: NodeId,
    config: &CdWakeupConfig,
) -> CdWakeupOutcome {
    assert_eq!(
        sim.reception(),
        &ReceptionMode::ProtocolCd,
        "CD wake-up requires collision detection"
    );
    let mut states: Vec<CdWakeupNode> =
        sim.graph().nodes().map(|v| CdWakeupNode::new(v == source)).collect();
    let rep = sim.run_phase(&mut states, config.max_steps);
    CdWakeupOutcome {
        completion_steps: rep.completed.then_some(rep.steps),
        woke_at: states.iter().map(|s| s.woke_at()).collect(),
    }
}

/// Convenience: builds a CD simulator and runs the wake-up flood.
pub fn cd_wakeup_on(
    g: &radionet_graph::Graph,
    info: NetInfo,
    seed: u64,
    source: NodeId,
) -> CdWakeupOutcome {
    let mut sim = Sim::with_reception(g, info, seed, ReceptionMode::ProtocolCd);
    run_cd_wakeup(&mut sim, source, &CdWakeupConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_graph::traversal::eccentricity;

    #[test]
    fn wakes_path_in_exactly_d_steps() {
        let g = generators::path(32);
        let out = cd_wakeup_on(&g, NetInfo::exact(&g), 1, g.node(0));
        assert_eq!(out.completion_steps, Some(31));
        assert_eq!(out.woke_at[31], Some(31));
    }

    #[test]
    fn wakes_grid_in_eccentricity_steps() {
        let g = generators::grid2d(7, 7);
        let src = g.node(0);
        let out = cd_wakeup_on(&g, NetInfo::exact(&g), 2, src);
        assert_eq!(out.completion_steps, Some(eccentricity(&g, src) as u64));
    }

    #[test]
    fn clique_wakes_in_one_step() {
        let g = generators::complete(20);
        let out = cd_wakeup_on(&g, NetInfo::exact(&g), 3, g.node(5));
        assert_eq!(out.completion_steps, Some(1));
    }

    #[test]
    #[should_panic(expected = "requires collision detection")]
    fn rejects_default_model() {
        let g = generators::path(4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let _ = run_cd_wakeup(&mut sim, g.node(0), &CdWakeupConfig::default());
    }
}
