//! A Czumaj–Rytter / Kowalski–Pelc style broadcast
//! (`O(D log(n/D) + log² n)` whp \[8, 21\]).
//!
//! The optimal general-graph algorithms improve on BGI by observing that in
//! a BFS-layered execution, the effective contention at the frontier is
//! `O(n/D)` on average, so most Decay iterations only need to sweep
//! probabilities down to `2^{-O(log(n/D))}`; occasional full sweeps handle
//! dense layers. We implement that schedule: informed nodes cycle
//! probabilities over `1..⌈log(n/D)⌉ + 2` in most iterations and over the
//! full `1..log n` every `full_sweep_every`-th iteration, preserving the
//! `D·log(n/D) + log² n` shape (experiment E8 compares all broadcast
//! baselines).

use radionet_graph::NodeId;
use radionet_sim::{
    Action, JournalSink, NetInfo, NodeCtx, Protocol, Sim, Telemetry, TopologyView, Wake,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the CR-style broadcast.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrConfig {
    /// Step budget = `budget_factor · (D·log(n/D) + log² n)`.
    pub budget_factor: f64,
    /// Every `full_sweep_every`-th iteration sweeps the full range.
    pub full_sweep_every: u32,
    /// Completion-check granularity.
    pub check_every: u64,
}

impl Default for CrConfig {
    fn default() -> Self {
        CrConfig { budget_factor: 14.0, full_sweep_every: 4, check_every: 16 }
    }
}

impl CrConfig {
    /// Nominal budget for the given network parameters.
    pub fn budget(&self, info: &NetInfo) -> u64 {
        let l = info.log_n() as f64;
        let short = ((info.n.max(2) as f64 / info.d.max(1) as f64).max(2.0)).log2().ceil() + 2.0;
        (self.budget_factor * (info.d as f64 * short + l * l)).ceil() as u64
    }
}

/// Per-node state of the CR-style broadcast.
#[derive(Clone, Debug)]
struct CrNode {
    best: Option<u64>,
    informed_steps: u64,
    short_range: u32,
    full_range: u32,
    full_sweep_every: u32,
}

impl CrNode {
    fn prob(&self, t: u64) -> f64 {
        // Iterations alternate: most use the short range, every k-th the full.
        let short = self.short_range.max(1) as u64;
        let full = self.full_range.max(1) as u64;
        let k = self.full_sweep_every.max(2) as u64;
        // Interleave: blocks of (k-1) short iterations then 1 full iteration.
        let super_block = (k - 1) * short + full;
        let pos = t % super_block;
        let i = if pos < (k - 1) * short { pos % short } else { pos - (k - 1) * short };
        2f64.powi(-(i as i32 + 1))
    }
}

impl Protocol for CrNode {
    type Msg = u64;

    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u64> {
        match self.best {
            None => Action::Listen,
            Some(m) => {
                let t = self.informed_steps;
                self.informed_steps += 1;
                if ctx.rng.gen_bool(self.prob(t)) {
                    Action::Transmit(m)
                } else {
                    Action::Listen
                }
            }
        }
    }

    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &u64) {
        if self.best.is_none_or(|b| b < *msg) {
            self.best = Some(*msg);
        }
    }

    fn next_wake(&self, _now: u64) -> Wake {
        // Uninformed nodes listen passively until the frontier arrives;
        // informed nodes coin-flip every step.
        if self.best.is_some() {
            Wake::Now
        } else {
            Wake::listen()
        }
    }
}

/// Runs the CR-style broadcast of `message` from `source`; returns
/// `(per-node knowledge, clock when all informed, total clock)` packaged as
/// a [`crate::bgi::BgiOutcome`] (same shape as the BGI baseline).
pub fn run_cr_broadcast<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    source: NodeId,
    message: u64,
    config: &CrConfig,
) -> crate::bgi::BgiOutcome {
    let info = *sim.info();
    let short = ((info.n.max(2) as f64 / info.d.max(1) as f64).max(2.0)).log2().ceil() as u32 + 2;
    let mut states: Vec<CrNode> = sim
        .graph()
        .nodes()
        .map(|v| CrNode {
            best: (v == source).then_some(message),
            informed_steps: 0,
            short_range: short,
            full_range: info.log_n(),
            full_sweep_every: config.full_sweep_every,
        })
        .collect();
    let budget = config.budget(&info);
    let mut spent = 0u64;
    let mut clock_all_informed = None;
    while spent < budget {
        let chunk = config.check_every.min(budget - spent);
        let rep = sim.run_phase(&mut states, chunk);
        spent += rep.steps;
        if states.iter().all(|s| s.best == Some(message)) {
            clock_all_informed = Some(sim.clock());
            break;
        }
    }
    crate::bgi::BgiOutcome {
        best: states.iter().map(|s| s.best).collect(),
        clock_all_informed,
        clock_total: sim.clock(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;

    #[test]
    fn completes_on_path() {
        let g = generators::path(96);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 1);
        let out = run_cr_broadcast(&mut sim, g.node(0), 3, &CrConfig::default());
        assert!(out.completed());
    }

    #[test]
    fn completes_on_gnp() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let g = generators::connected_gnp(150, 0.05, &mut rng);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 2);
        let out = run_cr_broadcast(&mut sim, g.node(0), 4, &CrConfig::default());
        assert!(out.completed());
    }

    #[test]
    fn faster_than_bgi_on_long_paths() {
        // On a path, n/D ≈ 1: CR's short sweeps are O(1) long, so informed
        // frontier advances ~1 hop per O(1) steps vs BGI's O(log n).
        let g = generators::path(256);
        let mut t_cr = Vec::new();
        let mut t_bgi = Vec::new();
        for seed in 0..3u64 {
            let mut sim = Sim::new(&g, NetInfo::exact(&g), seed);
            let out = run_cr_broadcast(&mut sim, g.node(0), 1, &CrConfig::default());
            t_cr.push(out.clock_all_informed.expect("cr completes") as f64);
            let mut sim = Sim::new(&g, NetInfo::exact(&g), seed + 100);
            let out = crate::bgi::run_bgi_broadcast(
                &mut sim,
                g.node(0),
                1,
                &crate::bgi::BgiConfig::default(),
            );
            t_bgi.push(out.clock_all_informed.expect("bgi completes") as f64);
        }
        let cr: f64 = t_cr.iter().sum::<f64>() / t_cr.len() as f64;
        let bgi: f64 = t_bgi.iter().sum::<f64>() / t_bgi.len() as f64;
        assert!(cr < bgi, "CR {cr} should beat BGI {bgi} on a long path");
    }

    #[test]
    fn prob_schedule_ranges() {
        let node = CrNode {
            best: Some(1),
            informed_steps: 0,
            short_range: 3,
            full_range: 8,
            full_sweep_every: 3,
        };
        // Super-block: 2 short iterations (3 steps each) + 1 full (8 steps).
        for t in 0..3 {
            assert_eq!(node.prob(t), 2f64.powi(-(t as i32 + 1)));
        }
        assert_eq!(node.prob(3), 0.5); // second short iteration restarts
        assert_eq!(node.prob(6), 0.5); // full sweep starts
        assert_eq!(node.prob(13), 2f64.powi(-8)); // full sweep end
        assert_eq!(node.prob(14), 0.5); // next super-block
    }
}
