//! Baseline algorithms the paper compares against (or builds upon):
//!
//! * [`bgi`] — the classic Bar-Yehuda–Goldreich–Itai Decay broadcast,
//!   `O(D log n + log² n)` whp: the standard general-graph comparator;
//! * [`czumaj_rytter`] — a Czumaj–Rytter / Kowalski–Pelc style pipelined
//!   broadcast, `O(D log(n/D) + log² n)`;
//! * [`local_mis`] — Luby's and Ghaffari's MIS in the LOCAL message-passing
//!   model, the round-complexity references for Radio MIS (Theorem 14
//!   simulates Ghaffari's rounds at `O(log² n)` radio steps each);
//! * [`naive_le`] — candidate-lottery leader election over multi-source BGI
//!   flooding (the folklore variant the paper cites from \[6\]);
//! * [`cd_wakeup`] — wake-up flooding **with collision detection**, the
//!   capability that separates the paper's model from \[29\]/\[12\]
//!   (experiment E13 measures the gap).
//!
//! The most important comparator — the original \[CD21\] `Compete` with
//! all-node centers and `log_D n` propagation lengths — lives in
//! `radionet_core::compete` as `CompeteConfig::cd21`, since
//! it shares the whole engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgi;
pub mod cd_wakeup;
pub mod czumaj_rytter;
pub mod local_mis;
pub mod naive_le;

pub use bgi::{run_bgi_broadcast, BgiConfig, BgiOutcome};
pub use cd_wakeup::{cd_wakeup_on, run_cd_wakeup, CdWakeupConfig, CdWakeupOutcome};
pub use czumaj_rytter::{run_cr_broadcast, CrConfig};
pub use local_mis::{ghaffari_local_mis, luby_mis, LocalMisOutcome};
pub use naive_le::{run_naive_leader_election, NaiveLeConfig, NaiveLeOutcome};
