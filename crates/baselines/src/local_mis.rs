//! LOCAL-model MIS references: Luby's algorithm \[23\] and Ghaffari's
//! algorithm \[15\] (the paper's Algorithm 4), executed with free
//! message-passing rounds.
//!
//! These are *round-complexity references*, not radio algorithms: Radio MIS
//! (Theorem 14) simulates Ghaffari's rounds at `O(log² n)` radio steps each,
//! and experiment E4 compares `radio steps ≈ LOCAL rounds × log² n`.

use radionet_graph::independent_set::is_maximal_independent_set;
use radionet_graph::{Graph, NodeId};
use rand::Rng;

/// Outcome of a LOCAL-model MIS run.
#[derive(Clone, Debug)]
pub struct LocalMisOutcome {
    /// The MIS members.
    pub mis: Vec<NodeId>,
    /// LOCAL rounds consumed.
    pub rounds: u64,
    /// Whether all nodes were decided within the round cap.
    pub complete: bool,
}

impl LocalMisOutcome {
    /// Validity of the output set.
    pub fn is_valid(&self, g: &Graph) -> bool {
        self.complete && is_maximal_independent_set(g, &self.mis)
    }
}

/// Luby's MIS (the local-minimum variant): each round, active nodes draw a
/// uniform value; local minima join the MIS and are removed with their
/// neighbors. `O(log n)` rounds whp.
pub fn luby_mis<R: Rng + ?Sized>(g: &Graph, rng: &mut R, round_cap: u64) -> LocalMisOutcome {
    let n = g.n();
    let mut active = vec![true; n];
    let mut in_mis = vec![false; n];
    let mut rounds = 0;
    let mut remaining = n;
    while remaining > 0 && rounds < round_cap {
        rounds += 1;
        let r: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mut joins = Vec::new();
        for v in g.nodes() {
            if !active[v.index()] {
                continue;
            }
            let is_min = g
                .neighbors(v)
                .iter()
                .filter(|u| active[u.index()])
                .all(|u| r[v.index()] < r[u.index()]);
            if is_min {
                joins.push(v);
            }
        }
        for v in joins {
            if !active[v.index()] {
                continue; // removed by an earlier join this round (cannot
                          // happen for two local minima, but keep it safe)
            }
            in_mis[v.index()] = true;
            active[v.index()] = false;
            remaining -= 1;
            for &u in g.neighbors(v) {
                if active[u.index()] {
                    active[u.index()] = false;
                    remaining -= 1;
                }
            }
        }
    }
    LocalMisOutcome {
        mis: g.nodes().filter(|v| in_mis[v.index()]).collect(),
        rounds,
        complete: remaining == 0,
    }
}

/// Ghaffari's MIS (paper, Algorithm 4) with exact effective degrees: marks
/// with desire level `p_t(v)`, joins on lonely marks, and updates
/// `p_{t+1}` by the `d_t(v) ≥ 2` threshold. `O(log Δ + poly(log log n))`
/// rounds; run here with cap `O(log n)`.
pub fn ghaffari_local_mis<R: Rng + ?Sized>(
    g: &Graph,
    rng: &mut R,
    round_cap: u64,
) -> LocalMisOutcome {
    let n = g.n();
    let mut active = vec![true; n];
    let mut in_mis = vec![false; n];
    let mut p = vec![0.5f64; n];
    let mut rounds = 0;
    let mut remaining = n;
    while remaining > 0 && rounds < round_cap {
        rounds += 1;
        let marked: Vec<bool> =
            (0..n).map(|i| active[i] && rng.gen_bool(p[i].clamp(0.0, 1.0))).collect();
        // Joins: marked with no marked active neighbor.
        let mut joins = Vec::new();
        for v in g.nodes() {
            if active[v.index()]
                && marked[v.index()]
                && !g.neighbors(v).iter().any(|u| active[u.index()] && marked[u.index()])
            {
                joins.push(v);
            }
        }
        for v in joins {
            if in_mis[v.index()] || !active[v.index()] {
                continue;
            }
            in_mis[v.index()] = true;
            active[v.index()] = false;
            remaining -= 1;
            for &u in g.neighbors(v) {
                if active[u.index()] {
                    active[u.index()] = false;
                    remaining -= 1;
                }
            }
        }
        // Effective degrees on the *surviving* graph (as in Algorithm 4:
        // removed nodes contribute nothing).
        let d: Vec<f64> = g
            .nodes()
            .map(|v| {
                g.neighbors(v).iter().filter(|u| active[u.index()]).map(|u| p[u.index()]).sum()
            })
            .collect();
        for i in 0..n {
            if active[i] {
                p[i] = if d[i] >= 2.0 { p[i] / 2.0 } else { (2.0 * p[i]).min(0.5) };
            }
        }
    }
    LocalMisOutcome {
        mis: g.nodes().filter(|v| in_mis[v.index()]).collect(),
        rounds,
        complete: remaining == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cap(g: &Graph) -> u64 {
        16 * (g.n().max(2) as f64).log2().ceil() as u64
    }

    #[test]
    fn luby_valid_on_families() {
        let mut rng = StdRng::seed_from_u64(1);
        for g in [
            generators::path(50),
            generators::grid2d(8, 8),
            generators::complete(20),
            generators::star(30),
            generators::random::gnp(60, 0.1, &mut StdRng::seed_from_u64(5)),
        ] {
            let out = luby_mis(&g, &mut rng, cap(&g));
            assert!(out.is_valid(&g), "{g:?}");
        }
    }

    #[test]
    fn ghaffari_valid_on_families() {
        let mut rng = StdRng::seed_from_u64(2);
        for g in [
            generators::path(50),
            generators::grid2d(8, 8),
            generators::complete(20),
            generators::star(30),
            generators::random::gnp(60, 0.1, &mut StdRng::seed_from_u64(6)),
        ] {
            let out = ghaffari_local_mis(&g, &mut rng, cap(&g));
            assert!(out.is_valid(&g), "{g:?}");
        }
    }

    #[test]
    fn rounds_logarithmic() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::grid2d(24, 24);
        let out = luby_mis(&g, &mut rng, cap(&g));
        assert!(out.complete);
        let bound = 8.0 * (g.n() as f64).log2();
        assert!(
            (out.rounds as f64) <= bound,
            "Luby used {} rounds on n={} (bound {bound})",
            out.rounds,
            g.n()
        );
        let out = ghaffari_local_mis(&g, &mut rng, cap(&g));
        assert!(out.complete);
        assert!((out.rounds as f64) <= bound);
    }

    #[test]
    fn clique_yields_singleton() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::complete(32);
        let out = luby_mis(&g, &mut rng, cap(&g));
        assert_eq!(out.mis.len(), 1);
        let out = ghaffari_local_mis(&g, &mut rng, cap(&g));
        assert_eq!(out.mis.len(), 1);
    }

    #[test]
    fn edgeless_takes_everything_in_one_round() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Graph::from_edges(10, []).unwrap();
        let out = luby_mis(&g, &mut rng, 5);
        assert!(out.is_valid(&g));
        assert_eq!(out.mis.len(), 10);
        assert_eq!(out.rounds, 1);
    }
}
