//! Naive leader election: candidate lottery + multi-source BGI flooding.
//!
//! The folklore baseline the paper cites (from \[6\]): nodes become
//! candidates with probability `Θ(log n / n)`, draw random identifiers, and
//! flood; the highest identifier wins. Time `O(D log n + log² n)` whp —
//! the comparison target for Theorem 8 (experiment E9).

use crate::bgi::{run_bgi_multi, BgiConfig, BgiOutcome};
use radionet_primitives::ids::random_id;
use radionet_sim::{JournalSink, Sim, Telemetry, TopologyView};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the naive leader election.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NaiveLeConfig {
    /// Candidate probability = `min(1, candidate_factor · log n / n)`.
    pub candidate_factor: f64,
    /// Flooding parameters.
    pub bgi: BgiConfig,
}

impl Default for NaiveLeConfig {
    fn default() -> Self {
        NaiveLeConfig { candidate_factor: 2.0, bgi: BgiConfig::default() }
    }
}

/// Outcome of the naive leader election.
#[derive(Clone, Debug)]
pub struct NaiveLeOutcome {
    /// The flooding outcome.
    pub flood: BgiOutcome,
    /// Candidate identifiers by node.
    pub candidate_ids: Vec<Option<u64>>,
    /// The elected leader id, if any.
    pub leader: Option<u64>,
}

impl NaiveLeOutcome {
    /// Whether a unique leader was agreed on by every node.
    pub fn succeeded(&self) -> bool {
        match self.leader {
            None => false,
            Some(id) => {
                let maxes = self.candidate_ids.iter().flatten().filter(|&&c| c == id).count();
                maxes == 1 && self.flood.best.iter().all(|b| *b == Some(id))
            }
        }
    }
}

/// Runs the baseline election.
pub fn run_naive_leader_election<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    le_seed: u64,
    config: &NaiveLeConfig,
) -> NaiveLeOutcome {
    let n = sim.graph().n();
    let n_est = sim.info().n;
    let p = (config.candidate_factor * (n_est.max(2) as f64).log2() / n_est as f64).min(1.0);
    let mut rng = SmallRng::seed_from_u64(le_seed ^ 0x0af1e);
    let candidate_ids: Vec<Option<u64>> =
        (0..n).map(|_| rng.gen_bool(p).then(|| random_id(n_est, &mut rng))).collect();
    let sources: Vec<_> = candidate_ids
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.map(|id| (sim.graph().node(i), id)))
        .collect();
    if sources.is_empty() {
        return NaiveLeOutcome {
            flood: BgiOutcome {
                best: vec![None; n],
                clock_all_informed: None,
                clock_total: sim.clock(),
            },
            candidate_ids,
            leader: None,
        };
    }
    let flood = run_bgi_multi(sim, &sources, &config.bgi);
    let leader = candidate_ids.iter().flatten().copied().max();
    NaiveLeOutcome { flood, candidate_ids, leader }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_sim::NetInfo;

    #[test]
    fn elects_on_grid() {
        let g = generators::grid2d(10, 10);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 1);
        let out = run_naive_leader_election(&mut sim, 1, &NaiveLeConfig::default());
        assert!(out.succeeded());
    }

    #[test]
    fn elects_on_path() {
        let g = generators::path(80);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 2);
        let out = run_naive_leader_election(&mut sim, 5, &NaiveLeConfig::default());
        assert!(out.succeeded());
    }

    #[test]
    fn leader_is_max_candidate() {
        let g = generators::cycle(30);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 3);
        let out = run_naive_leader_election(&mut sim, 9, &NaiveLeConfig::default());
        if out.succeeded() {
            assert_eq!(out.leader, out.candidate_ids.iter().flatten().copied().max());
        }
    }
}
