//! End-to-end broadcast benchmarks: Compete (Theorem 7) vs the BGI and CR
//! baselines on a growth-bounded instance.

use criterion::{criterion_group, criterion_main, Criterion};
use radionet_baselines::bgi::{run_bgi_broadcast, BgiConfig};
use radionet_baselines::czumaj_rytter::{run_cr_broadcast, CrConfig};
use radionet_core::broadcast::run_broadcast;
use radionet_core::compete::CompeteConfig;
use radionet_graph::families::Family;
use radionet_sim::{NetInfo, Sim};

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast");
    group.sample_size(10);

    let g = Family::Grid.instantiate(256, 1);
    let info = NetInfo::exact(&g);

    group.bench_function("compete_alpha_grid_256", |b| {
        b.iter(|| {
            let mut sim = Sim::new(&g, info, 9);
            run_broadcast(&mut sim, g.node(0), 42, &CompeteConfig::default()).completed()
        })
    });
    group.bench_function("compete_cd21_grid_256", |b| {
        b.iter(|| {
            let mut sim = Sim::new(&g, info, 9);
            run_broadcast(&mut sim, g.node(0), 42, &CompeteConfig::cd21()).completed()
        })
    });
    group.bench_function("bgi_grid_256", |b| {
        b.iter(|| {
            let mut sim = Sim::new(&g, info, 9);
            run_bgi_broadcast(&mut sim, g.node(0), 42, &BgiConfig::default()).completed()
        })
    });
    group.bench_function("cr_grid_256", |b| {
        b.iter(|| {
            let mut sim = Sim::new(&g, info, 9);
            run_cr_broadcast(&mut sim, g.node(0), 42, &CrConfig::default()).completed()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);
