//! Engine micro-benchmarks: raw step throughput of the radio simulator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use radionet_graph::generators;
use radionet_primitives::decay::{DecayConfig, DecayProtocol, DecaySchedule};
use radionet_sim::{NetInfo, Sim};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    for n in [256usize, 1024] {
        let side = (n as f64).sqrt() as usize;
        let g = generators::grid2d(side, side);
        let info = NetInfo::exact(&g);
        let schedule = DecaySchedule::new(info.log_n());
        let config = DecayConfig { iterations: 8 };
        group.bench_function(format!("decay_phase_grid_{n}"), |b| {
            b.iter_batched(
                || {
                    let states: Vec<DecayProtocol<u64>> = g
                        .nodes()
                        .map(|v| {
                            DecayProtocol::new(
                                schedule,
                                config,
                                (v.index() % 4 == 0).then_some(7u64),
                            )
                        })
                        .collect();
                    (Sim::new(&g, info, 1), states)
                },
                |(mut sim, mut states)| {
                    sim.run_phase(&mut states, config.total_steps(schedule));
                    sim.stats().simulated_steps
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
