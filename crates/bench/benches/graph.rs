//! Graph-substrate micro-benchmarks: generators, diameter, α bracketing.

use criterion::{criterion_group, criterion_main, Criterion};
use radionet_graph::independent_set::alpha_bounds;
use radionet_graph::traversal::{diameter_exact, diameter_ifub};
use radionet_graph::{families::Family, generators};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group.sample_size(20);

    group.bench_function("unit_disk_1000", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            generators::unit_disk_in_square(1000, 17.0, &mut rng).graph.m()
        })
    });

    let grid = generators::grid2d(48, 48);
    group.bench_function("diameter_exact_grid_2304", |b| b.iter(|| diameter_exact(&grid)));
    group.bench_function("diameter_ifub_grid_2304", |b| b.iter(|| diameter_ifub(&grid)));

    let gnp = Family::Gnp.instantiate(60, 3);
    group.bench_function("alpha_exact_gnp_60", |b| b.iter(|| alpha_bounds(&gnp, 500_000).lower));

    let big = Family::UnitDisk.instantiate(2048, 3);
    group.bench_function("alpha_bracket_udg_2048", |b| b.iter(|| alpha_bounds(&big, 2_000).upper));

    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
