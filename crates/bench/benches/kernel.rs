//! Criterion face-off: sparse active-set kernel vs dense reference kernel
//! on a sparse Decay workload at n ≈ 100 000 (the acceptance benchmark —
//! the sparse kernel must clear 5× step throughput; in practice the gap is
//! orders of magnitude, since the dense kernel polls 100k nodes per step
//! while ~32 transmit).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use radionet_graph::generators;
use radionet_primitives::decay::{DecayConfig, DecayProtocol, DecaySchedule};
use radionet_sim::{Kernel, NetInfo, Sim};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(10);
    let side = 316; // n = 99 856
    let g = generators::grid2d(side, side);
    let info = NetInfo::exact(&g);
    let schedule = DecaySchedule::new(info.log_n());
    // Never-finishing schedule: the phase always runs the full budget.
    let config = DecayConfig { iterations: u32::MAX / schedule.steps_per_iteration() };
    let budget = 8 * schedule.steps_per_iteration() as u64;
    let stride = g.n() / 32;
    for kernel in [Kernel::Sparse, Kernel::Dense] {
        group.bench_function(format!("decay_sparse_100k_{kernel:?}"), |b| {
            b.iter_batched(
                || {
                    let states: Vec<DecayProtocol<u64>> = g
                        .nodes()
                        .map(|v| {
                            let msg = (v.index() % stride == 0).then_some(1u64);
                            DecayProtocol::new(schedule, config, msg)
                        })
                        .collect();
                    let mut sim = Sim::new(&g, info, 1);
                    sim.set_kernel(kernel);
                    (sim, states)
                },
                |(mut sim, mut states)| {
                    sim.run_phase(&mut states, budget);
                    sim.stats().simulated_steps
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
