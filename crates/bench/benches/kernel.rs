//! Criterion face-off across the three step kernels at n ≈ 100 000.
//!
//! Two workloads:
//!
//! - `decay_sparse`: the E15 acceptance benchmark — 32 always-on Decay
//!   transmitters among passive listeners. The sparse kernel must clear 5×
//!   dense step throughput (in practice orders of magnitude: the dense
//!   kernel polls 100k nodes per step while ~32 transmit). Transmitters
//!   return `Wake::Now`, so the event kernel can never jump here — its
//!   case prices the jump machinery's overhead on a jump-free workload
//!   (expected: indistinguishable from sparse).
//! - `burst_decay`: the E19 acceptance benchmark — the same transmitters
//!   duty-cycled to one Decay iteration in 256, so almost every step is
//!   silent. The event kernel charges each silent span in one clock jump
//!   and must clear 5× sparse step throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use radionet_bench::experiments::BurstDecay;
use radionet_graph::generators;
use radionet_primitives::decay::{DecayConfig, DecayProtocol, DecaySchedule};
use radionet_sim::{Kernel, NetInfo, Sim};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(10);
    let side = 316; // n = 99 856
    let g = generators::grid2d(side, side);
    let info = NetInfo::exact(&g);
    let schedule = DecaySchedule::new(info.log_n());
    // Never-finishing schedule: the phase always runs the full budget.
    let config = DecayConfig { iterations: u32::MAX / schedule.steps_per_iteration() };
    let budget = 8 * schedule.steps_per_iteration() as u64;
    let stride = g.n() / 32;
    for kernel in [Kernel::Sparse, Kernel::Dense, Kernel::Event] {
        group.bench_function(format!("decay_sparse_100k_{kernel:?}"), |b| {
            b.iter_batched(
                || {
                    let states: Vec<DecayProtocol<u64>> = g
                        .nodes()
                        .map(|v| {
                            let msg = (v.index() % stride == 0).then_some(1u64);
                            DecayProtocol::new(schedule, config, msg)
                        })
                        .collect();
                    let mut sim = Sim::new(&g, info, 1);
                    sim.set_kernel(kernel);
                    (sim, states)
                },
                |(mut sim, mut states)| {
                    sim.run_phase(&mut states, budget);
                    sim.stats().simulated_steps
                },
                BatchSize::SmallInput,
            )
        });
    }
    // Silent-span workload: 8 duty cycles at 1/32768 (~4.5M steps, almost
    // all silent) — the dense kernel is omitted (it would pay Θ(n) for
    // every one of them).
    for kernel in [Kernel::Sparse, Kernel::Event] {
        group.bench_function(format!("burst_decay_100k_{kernel:?}"), |b| {
            b.iter_batched(
                || {
                    let states: Vec<BurstDecay> = g
                        .nodes()
                        .map(|v| {
                            let msg = (v.index() % stride == 0).then_some(1u64);
                            BurstDecay::new(schedule, 32768, 8, msg)
                        })
                        .collect();
                    let mut sim = Sim::new(&g, info, 1);
                    sim.set_kernel(kernel);
                    (sim, states)
                },
                |(mut sim, mut states)| {
                    let horizon = states[0].horizon();
                    sim.run_phase(&mut states, horizon);
                    sim.stats().simulated_steps
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
