//! MIS benchmarks: Radio MIS (Theorem 14) end-to-end and the LOCAL-model
//! references.

use criterion::{criterion_group, criterion_main, Criterion};
use radionet_baselines::local_mis::{ghaffari_local_mis, luby_mis};
use radionet_core::mis::{run_radio_mis, MisConfig};
use radionet_graph::families::Family;
use radionet_sim::{NetInfo, Sim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis");
    group.sample_size(10);

    for n in [256usize, 1024] {
        let g = Family::Gnp.instantiate(n, 1);
        let info = NetInfo::exact(&g);
        group.bench_function(format!("radio_mis_gnp_{n}"), |b| {
            b.iter(|| {
                let mut sim = Sim::new(&g, info, 5);
                run_radio_mis(&mut sim, &MisConfig::fast()).steps
            })
        });
    }

    let g = Family::Gnp.instantiate(4096, 1);
    group.bench_function("ghaffari_local_gnp_4096", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| ghaffari_local_mis(&g, &mut rng, 200).rounds)
    });
    group.bench_function("luby_local_gnp_4096", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| luby_mis(&g, &mut rng, 200).rounds)
    });

    group.finish();
}

criterion_group!(benches, bench_mis);
criterion_main!(benches);
