//! Criterion face-off: incremental spatial-index maintenance vs full
//! per-tick rebuild (and the `O(n²)` brute-force oracle at a size where it
//! is still runnable) on a dwell-heavy waypoint population — the stable
//! measurement behind E17's ≥ 5× acceptance bar.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use radionet_bench::experiments::{dwell_heavy_waypoint as dwell_heavy, udg_geometry};
use radionet_mobility::{IndexStrategy, MobileTopology};
use radionet_sim::TopologyView;

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("mobility_index");
    group.sample_size(10);
    const TICKS: u64 = 32;

    // The headline pair at 20k nodes.
    let geo = udg_geometry(20_000, 1);
    for strategy in [IndexStrategy::Incremental, IndexStrategy::Rebuild] {
        group.bench_function(format!("waypoint_20k_{}", strategy.name()), |b| {
            b.iter_batched(
                || {
                    let mut topo =
                        MobileTopology::new(&geo, dwell_heavy(), 1, 7).with_strategy(strategy);
                    let base = topo.initial_graph();
                    topo.advance_to(&base, 0);
                    (topo, base)
                },
                |(mut topo, base)| {
                    for clock in 1..=TICKS {
                        topo.advance_to(&base, clock);
                    }
                    topo.current_edge_count()
                },
                BatchSize::SmallInput,
            )
        });
    }

    // All three strategies where O(n²) is still affordable.
    let small = udg_geometry(2_000, 2);
    for strategy in [IndexStrategy::Incremental, IndexStrategy::Rebuild, IndexStrategy::BruteForce]
    {
        group.bench_function(format!("waypoint_2k_{}", strategy.name()), |b| {
            b.iter_batched(
                || {
                    let mut topo =
                        MobileTopology::new(&small, dwell_heavy(), 1, 7).with_strategy(strategy);
                    let base = topo.initial_graph();
                    topo.advance_to(&base, 0);
                    (topo, base)
                },
                |(mut topo, base)| {
                    for clock in 1..=TICKS {
                        topo.advance_to(&base, clock);
                    }
                    topo.current_edge_count()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
