//! Clustering benchmarks: abstract MPX vs the radio implementation, plus
//! schedule construction (the S1 oracle work).

use criterion::{criterion_group, criterion_main, Criterion};
use radionet_cluster::mpx::partition;
use radionet_cluster::partition_radio::{run_radio_partition, RadioPartitionConfig};
use radionet_cluster::ClusterSchedule;
use radionet_graph::families::Family;
use radionet_graph::independent_set::greedy_mis_min_degree;
use radionet_sim::{NetInfo, Sim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(20);

    let g = Family::Grid.instantiate(4096, 1);
    let mis = greedy_mis_min_degree(&g);
    group.bench_function("abstract_mpx_grid_4096", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| partition(&g, &mis, 0.25, &mut rng).radius())
    });

    let small = Family::Grid.instantiate(256, 1);
    let small_mis = greedy_mis_min_degree(&small);
    let mut flags = vec![false; small.n()];
    for v in &small_mis {
        flags[v.index()] = true;
    }
    let info = NetInfo::exact(&small);
    group.bench_function("radio_partition_grid_256", |b| {
        b.iter(|| {
            let mut sim = Sim::new(&small, info, 3);
            run_radio_partition(&mut sim, &flags, 0.25, RadioPartitionConfig::default()).coverage()
        })
    });

    let mut rng = StdRng::seed_from_u64(4);
    let clustering = partition(&g, &mis, 0.25, &mut rng);
    group.bench_function("schedule_build_grid_4096", |b| {
        b.iter(|| ClusterSchedule::build(&g, &clustering).max_colors())
    });

    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
