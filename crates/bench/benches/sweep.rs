//! Sequential vs rayon sweep runner on a Quick-scale scenario grid.
//!
//! On a multi-core host the parallel runner's advantage is roughly the core
//! count (cells are embarrassingly parallel and identically seeded); on a
//! single-core host the two runners time alike, which is itself the honest
//! result. The recorded speedup is printed after the two benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use radionet_scenario::runner::{run_sweep_parallel, run_sweep_sequential, SweepConfig};
use radionet_scenario::Scenario;
use std::time::Instant;

fn quick_grid() -> SweepConfig {
    // A small all-catalogue grid: every dynamics class, one size, one seed.
    SweepConfig { scenarios: Scenario::catalogue(), sizes: vec![48], seeds: 1, base_seed: 0xbe9c }
}

fn bench_sweep(c: &mut Criterion) {
    let config = quick_grid();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("sequential", |b| b.iter(|| run_sweep_sequential(&config)));
    group.bench_function(format!("rayon_{}_threads", rayon::current_num_threads()), |b| {
        b.iter(|| run_sweep_parallel(&config))
    });
    group.finish();

    // One directly comparable pair, printed as a speedup figure.
    let t0 = Instant::now();
    let seq = run_sweep_sequential(&config);
    let t_seq = t0.elapsed();
    let t1 = Instant::now();
    let par = run_sweep_parallel(&config);
    let t_par = t1.elapsed();
    assert_eq!(seq, par, "runners diverged");
    println!(
        "sweep speedup: sequential {:.2?} / rayon({}) {:.2?} = {:.2}x",
        t_seq,
        rayon::current_num_threads(),
        t_par,
        t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
    );
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
