//! Experiment E14 binary — dynamic-network scenario sweep.
fn main() {
    let scale = radionet_bench::Scale::from_env();
    let record = radionet_bench::experiments::e14_scenarios(scale);
    save(&record);
}

fn save(record: &radionet_analysis::ExperimentRecord) {
    let dir = std::path::Path::new("results");
    match record.save(dir) {
        Ok(path) => eprintln!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
