//! E20 — radionetd serving: cache throughput and sharded determinism.

fn main() {
    radionet_bench::exp_main("E20");
}
