//! E21 — telemetry overhead guard: identical results on and off,
//! near-zero cost for the disabled path.

fn main() {
    radionet_bench::exp_main("E21");
}
