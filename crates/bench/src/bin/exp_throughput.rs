//! Experiment E15 binary — sparse step-kernel throughput.
fn main() {
    let scale = radionet_bench::Scale::from_env();
    let record = radionet_bench::experiments::e15_throughput(scale);
    save(&record);
}

fn save(record: &radionet_analysis::ExperimentRecord) {
    let dir = std::path::Path::new("results");
    match record.save(dir) {
        Ok(path) => eprintln!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
