//! Experiment E22 binary — a thin shim over the shared experiment
//! registry (`radionet_bench::experiments::ALL`).
fn main() {
    radionet_bench::exp_main("E22");
}
