//! Regenerates every experiment table and JSON record (DESIGN.md §4),
//! driven by the shared experiment registry
//! (`radionet_bench::experiments::ALL`) so a registered experiment can
//! never be missing from the aggregate run.
//!
//! Scale via `RADIONET_SCALE=quick|full` (default full). Records land in
//! `results/`.
fn main() {
    let scale = radionet_bench::Scale::from_env();
    println!("# radionet experiment suite ({scale:?} scale)\n");
    let records = radionet_bench::experiments::run_all(scale);
    let dir = std::path::Path::new("results");
    for record in &records {
        match record.save(dir) {
            Ok(path) => eprintln!("record written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", record.id),
        }
    }
    println!("\n{} experiments complete.", records.len());
}
