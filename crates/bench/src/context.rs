//! Shared experiment context: instantiated graph cases and scale knobs.

use radionet_graph::families::Family;
use radionet_graph::independent_set::alpha_bounds;
use radionet_graph::traversal;
use radionet_graph::Graph;
use radionet_sim::NetInfo;

/// Experiment scale: `Quick` for CI/tests, `Full` for the recorded tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes and few seeds (seconds).
    Quick,
    /// The sizes reported in EXPERIMENTS.md (minutes).
    Full,
}

impl Scale {
    /// Reads `RADIONET_SCALE` (`quick`/`full`; default `full` in binaries).
    pub fn from_env() -> Self {
        match std::env::var("RADIONET_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Graph sizes for scaling sweeps.
    pub fn sizes(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[64, 256],
            Scale::Full => &[64, 256, 1024, 4096],
        }
    }

    /// Larger sweep for the cheap (abstract, non-simulated) experiments.
    pub fn sizes_abstract(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[256, 1024],
            Scale::Full => &[256, 1024, 4096, 16384],
        }
    }

    /// Seeds per configuration.
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Quick => 2,
            Scale::Full => 5,
        }
    }

    /// Trials for cheap statistical experiments.
    pub fn trials(self) -> usize {
        match self {
            Scale::Quick => 40,
            Scale::Full => 200,
        }
    }
}

/// A fully characterized experiment instance.
#[derive(Clone, Debug)]
pub struct GraphCase {
    /// The family it came from.
    pub family: Family,
    /// Requested size (actual may be rounded by the family).
    pub n: usize,
    /// Seed used to instantiate.
    pub seed: u64,
    /// The graph.
    pub graph: Graph,
    /// Exact-or-bracketed network parameters ([`NetInfo`]).
    pub info: NetInfo,
}

impl GraphCase {
    /// Instantiates and characterizes a case.
    pub fn new(family: Family, n: usize, seed: u64) -> Self {
        let graph = family.instantiate(n, seed);
        let info = NetInfo::exact(&graph);
        GraphCase { family, n: graph.n(), seed, graph, info }
    }

    /// The diameter from [`NetInfo`].
    pub fn d(&self) -> u32 {
        self.info.d
    }

    /// The α estimate from [`NetInfo`].
    pub fn alpha(&self) -> f64 {
        self.info.alpha
    }
}

/// The growth-bounded families used by the headline broadcast experiment.
pub fn growth_bounded_families(scale: Scale) -> Vec<Family> {
    match scale {
        Scale::Quick => vec![Family::Grid, Family::UnitDisk],
        Scale::Full => vec![
            Family::Grid,
            Family::UnitDisk,
            Family::QuasiUnitDisk,
            Family::UnitBall3,
            Family::GeometricRadio,
        ],
    }
}

/// The general-graph (large-α) families.
pub fn general_families(scale: Scale) -> Vec<Family> {
    match scale {
        Scale::Quick => vec![Family::Gnp],
        Scale::Full => vec![Family::Gnp, Family::RandomTree, Family::Spider, Family::Hypercube],
    }
}

/// Exact-ish α for abstract experiments (bigger budget than `NetInfo`).
pub fn alpha_estimate(g: &Graph) -> f64 {
    let budget = match g.n() {
        0..=64 => 2_000_000,
        65..=200 => 100_000,
        _ => 2_000,
    };
    alpha_bounds(g, budget).estimate()
}

/// Diameter helper (exact for small, iFUB for large connected graphs).
pub fn diameter(g: &Graph) -> u32 {
    traversal::diameter(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_characterizes() {
        let case = GraphCase::new(Family::Grid, 64, 1);
        assert_eq!(case.n, 64);
        assert_eq!(case.d(), 14);
        assert!((case.alpha() - 32.0).abs() < 1.0);
    }

    #[test]
    fn scale_accessors() {
        assert!(Scale::Quick.sizes().len() < Scale::Full.sizes().len());
        assert!(Scale::Quick.seeds() < Scale::Full.seeds());
        assert!(!growth_bounded_families(Scale::Quick).is_empty());
        assert!(!general_families(Scale::Quick).is_empty());
    }
}
