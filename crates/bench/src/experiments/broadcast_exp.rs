//! E8 (Theorem 7 / Corollary 9 broadcast), E9 (Theorem 8 leader election),
//! E11 (design ablations).

use super::{banner, print_notes};
use crate::context::{general_families, growth_bounded_families};
use crate::{GraphCase, Scale};
use radionet_analysis::table::f2;
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_baselines::bgi::{run_bgi_broadcast, BgiConfig};
use radionet_baselines::czumaj_rytter::{run_cr_broadcast, CrConfig};
use radionet_baselines::naive_le::{run_naive_leader_election, NaiveLeConfig};
use radionet_core::broadcast::run_broadcast;
use radionet_core::compete::CompeteConfig;
use radionet_core::leader_election::{run_leader_election, LeaderElectionConfig};
use radionet_graph::families::Family;
use radionet_sim::Sim;

/// The broadcast algorithms compared in E8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Algo {
    CompeteAlpha,
    CompeteN,
    Bgi,
    Cr,
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::CompeteAlpha => "compete-alpha",
            Algo::CompeteN => "compete-n(CD21)",
            Algo::Bgi => "bgi",
            Algo::Cr => "cr",
        }
    }
}

/// Runs one broadcast; returns `(informed_time, success, setup_time)`.
fn run_algo(case: &GraphCase, algo: Algo, seed: u64) -> (f64, bool, f64) {
    let g = &case.graph;
    let src = g.node(0);
    let mut sim = Sim::new(g, case.info, seed);
    match algo {
        Algo::CompeteAlpha => {
            let out = run_broadcast(&mut sim, src, 42, &CompeteConfig::default());
            (
                out.completion_time().unwrap_or(out.compete.clock_total) as f64,
                out.completed(),
                out.compete.clock_setup as f64,
            )
        }
        Algo::CompeteN => {
            let out = run_broadcast(&mut sim, src, 42, &CompeteConfig::cd21());
            (
                out.completion_time().unwrap_or(out.compete.clock_total) as f64,
                out.completed(),
                out.compete.clock_setup as f64,
            )
        }
        Algo::Bgi => {
            let out = run_bgi_broadcast(&mut sim, src, 42, &BgiConfig::default());
            (out.clock_all_informed.unwrap_or(out.clock_total) as f64, out.completed(), 0.0)
        }
        Algo::Cr => {
            let out = run_cr_broadcast(&mut sim, src, 42, &CrConfig::default());
            (out.clock_all_informed.unwrap_or(out.clock_total) as f64, out.completed(), 0.0)
        }
    }
}

/// E8 — Theorem 7 / Corollary 9: broadcast in `O(D log_D α + polylog n)`;
/// `O(D + polylog n)` on growth-bounded families.
pub fn e8_broadcast(scale: Scale) -> ExperimentRecord {
    let claim = "Theorem 7 / Corollary 9: broadcast in O(D log_D alpha + polylog n)";
    banner("E8", claim);
    let mut record = ExperimentRecord::new("E8", claim);
    let mut table = Table::new([
        "family",
        "n",
        "D",
        "alpha",
        "algorithm",
        "ok",
        "time",
        "setup",
        "prop",
        "prop/D",
    ]);
    let mut families = growth_bounded_families(scale);
    families.extend(general_families(scale));
    let algos = [Algo::CompeteAlpha, Algo::CompeteN, Algo::Bgi, Algo::Cr];
    let seeds = scale.seeds().min(3);
    for family in families {
        for &n in scale.sizes() {
            let case = GraphCase::new(family, n, 11);
            for algo in algos {
                let mut time = 0.0;
                let mut setup = 0.0;
                let mut ok = 0usize;
                for s in 0..seeds {
                    let (t, success, st) = run_algo(&case, algo, 7000 + s);
                    time += t;
                    setup += st;
                    if success {
                        ok += 1;
                    }
                }
                let k = seeds as f64;
                let t = time / k;
                let setup = setup / k;
                // The leading-term proxy: time excluding the additive
                // polylog setup (Theorem 6 separates D·log_D α from
                // log^{O(1)} n; BGI/CR have no setup).
                let prop = (t - setup).max(0.0);
                let prop_per_d = prop / case.d().max(1) as f64;
                table.row([
                    family.name().to_string(),
                    case.n.to_string(),
                    case.d().to_string(),
                    format!("{:.0}", case.alpha()),
                    algo.name().to_string(),
                    format!("{ok}/{seeds}"),
                    format!("{t:.0}"),
                    format!("{setup:.0}"),
                    format!("{prop:.0}"),
                    f2(prop_per_d),
                ]);
                record.push(
                    RunRecord::new()
                        .param("family", family.name())
                        .param("growth_bounded", family.is_growth_bounded())
                        .param("n", case.n)
                        .param("algo", algo.name())
                        .metric("d", case.d() as f64)
                        .metric("alpha", case.alpha())
                        .metric("time", t)
                        .metric("time_per_d", t / case.d().max(1) as f64)
                        .metric("setup", setup)
                        .metric("prop", prop)
                        .metric("prop_per_d", prop_per_d)
                        .metric("success_rate", ok as f64 / k),
                );
            }
        }
    }
    println!("{}", table.render());
    // Path scaling: the family where BGI's per-hop Θ(log n) cost is tight,
    // so its time/D grows with n while Compete's pipelined propagation per
    // D stays flat (Corollary 9's leading term).
    if scale == Scale::Full {
        let mut table = Table::new(["n (path)", "algorithm", "ok", "prop", "prop/D"]);
        for &n in &[1024usize, 4096, 8192] {
            let case = GraphCase::new(Family::Path, n, 1);
            for algo in [Algo::CompeteAlpha, Algo::Bgi] {
                let (t, success, st) = run_algo(&case, algo, 7700);
                let prop = (t - st).max(0.0);
                let prop_per_d = prop / case.d().max(1) as f64;
                table.row([
                    n.to_string(),
                    algo.name().to_string(),
                    if success { "yes" } else { "no" }.to_string(),
                    format!("{prop:.0}"),
                    f2(prop_per_d),
                ]);
                record.push(
                    RunRecord::new()
                        .param("family", "path-scaling")
                        .param("n", case.n)
                        .param("algo", algo.name())
                        .metric("prop", prop)
                        .metric("prop_per_d", prop_per_d)
                        .metric("success_rate", if success { 1.0 } else { 0.0 }),
                );
            }
        }
        println!("{}", table.render());
    }
    summarize_broadcast(&mut record);
    print_notes(&record);
    record
}

/// Aggregates the E8 shape checks into notes.
fn summarize_broadcast(record: &mut ExperimentRecord) {
    // On growth-bounded families at the largest n, compare time/D ratios.
    let (ca, cn, bgi, ca_g, cn_g, succ) = {
        let largest = |algo: &str, gb: bool| -> Vec<f64> {
            let matches = |r: &&RunRecord| {
                r.params.get("algo").map(String::as_str) == Some(algo)
                    && r.params.get("growth_bounded") == Some(&gb.to_string())
            };
            let max_n = record
                .runs
                .iter()
                .filter(matches)
                .filter_map(|r| r.params["n"].parse::<usize>().ok())
                .max()
                .unwrap_or(0);
            record
                .runs
                .iter()
                .filter(matches)
                .filter(|r| r.params["n"] == max_n.to_string())
                .map(|r| r.metrics["prop_per_d"])
                .collect()
        };
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        (
            mean(&largest("compete-alpha", true)),
            mean(&largest("compete-n(CD21)", true)),
            mean(&largest("bgi", true)),
            mean(&largest("compete-alpha", false)),
            mean(&largest("compete-n(CD21)", false)),
            record.runs.iter().map(|r| r.metrics["success_rate"]).fold(1.0f64, f64::min),
        )
    };
    record.note(format!(
        "growth-bounded, largest n — mean prop/D: compete-alpha {ca:.1}, compete-n {cn:.1}, bgi (time/D) {bgi:.1}"
    ));
    record.note(format!(
        "general graphs, largest n — compete-alpha prop/D {ca_g:.1} vs compete-n {cn_g:.1} (expected parity: alpha = Θ(n))"
    ));
    record.note(format!("min success rate across all cells: {succ:.2}"));
}

/// E9 — Theorem 8: leader election in the same bound, whp-unique leader.
pub fn e9_leader_election(scale: Scale) -> ExperimentRecord {
    let claim = "Theorem 8: leader election in O(D log_D alpha + polylog n) whp";
    banner("E9", claim);
    let mut record = ExperimentRecord::new("E9", claim);
    let mut table = Table::new(["family", "n", "D", "algorithm", "success", "time", "candidates"]);
    let families = match scale {
        Scale::Quick => vec![Family::Grid],
        Scale::Full => vec![Family::Grid, Family::UnitDisk, Family::Gnp, Family::Spider],
    };
    let seeds = scale.seeds().min(3);
    for family in families {
        for &n in &scale.sizes()[..scale.sizes().len() - 1] {
            let case = GraphCase::new(family, n, 17);
            // Compete-based (Theorem 8).
            let mut ok = 0usize;
            let mut time = 0.0;
            let mut cands = 0.0;
            for s in 0..seeds {
                let mut sim = Sim::new(&case.graph, case.info, 8100 + s);
                let out = run_leader_election(&mut sim, 900 + s, &LeaderElectionConfig::default());
                if out.succeeded() {
                    ok += 1;
                }
                time += out.compete.clock_all_informed.unwrap_or(out.compete.clock_total) as f64;
                cands += out.candidate_count() as f64;
            }
            let k = seeds as f64;
            table.row([
                family.name().to_string(),
                case.n.to_string(),
                case.d().to_string(),
                "compete-le".to_string(),
                format!("{ok}/{seeds}"),
                format!("{:.0}", time / k),
                format!("{:.1}", cands / k),
            ]);
            record.push(
                RunRecord::new()
                    .param("family", family.name())
                    .param("n", case.n)
                    .param("algo", "compete-le")
                    .metric("success_rate", ok as f64 / k)
                    .metric("time", time / k)
                    .metric("candidates", cands / k),
            );
            // Naive baseline.
            let mut ok = 0usize;
            let mut time = 0.0;
            let mut cands = 0.0;
            for s in 0..seeds {
                let mut sim = Sim::new(&case.graph, case.info, 8200 + s);
                let out = run_naive_leader_election(&mut sim, 900 + s, &NaiveLeConfig::default());
                if out.succeeded() {
                    ok += 1;
                }
                time += out.flood.clock_all_informed.unwrap_or(out.flood.clock_total) as f64;
                cands += out.candidate_ids.iter().flatten().count() as f64;
            }
            table.row([
                family.name().to_string(),
                case.n.to_string(),
                case.d().to_string(),
                "naive-le(bgi)".to_string(),
                format!("{ok}/{seeds}"),
                format!("{:.0}", time / k),
                format!("{:.1}", cands / k),
            ]);
            record.push(
                RunRecord::new()
                    .param("family", family.name())
                    .param("n", case.n)
                    .param("algo", "naive-le")
                    .metric("success_rate", ok as f64 / k)
                    .metric("time", time / k)
                    .metric("candidates", cands / k),
            );
        }
    }
    println!("{}", table.render());
    let succ = record
        .runs
        .iter()
        .filter(|r| r.params["algo"] == "compete-le")
        .map(|r| r.metrics["success_rate"])
        .fold(1.0f64, f64::min);
    record.note(format!("min compete-le success rate: {succ:.2} (whp claim)"));
    print_notes(&record);
    record
}

/// E11 — ablations: MIS vs all-node centers, random vs fixed scale,
/// ICP length factor, background on/off.
pub fn e11_ablations(scale: Scale) -> ExperimentRecord {
    let claim = "Ablations: center set, scale randomization, ICP length, background processes";
    banner("E11", claim);
    let mut record = ExperimentRecord::new("E11", claim);

    // (a) Cluster geometry: MIS vs all-node centers (abstract, Theorem 2's
    // mechanism in isolation).
    use radionet_cluster::mpx::partition;
    use radionet_graph::independent_set::greedy_mis_min_degree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut table = Table::new(["beta", "centers", "clusters", "mean dist", "radius"]);
    let n_ab = match scale {
        Scale::Quick => 1024,
        Scale::Full => 4096,
    };
    let g = Family::UnitDisk.instantiate(n_ab, 23);
    let mis = greedy_mis_min_degree(&g);
    let all: Vec<_> = g.nodes().collect();
    let mut rng = StdRng::seed_from_u64(41);
    for &beta in &[0.5, 0.25, 0.125] {
        for (label, centers) in [("mis", &mis), ("all", &all)] {
            let mut dist = 0.0;
            let mut radius = 0.0;
            let mut clusters = 0.0;
            let reps = 5;
            for _ in 0..reps {
                let c = partition(&g, centers, beta, &mut rng);
                dist += c.mean_dist();
                radius += c.radius() as f64;
                clusters += c.cluster_count() as f64;
            }
            let k = reps as f64;
            table.row([
                beta.to_string(),
                label.to_string(),
                format!("{:.0}", clusters / k),
                f2(dist / k),
                format!("{:.1}", radius / k),
            ]);
            record.push(
                RunRecord::new()
                    .param("ablation", "centers")
                    .param("beta", beta)
                    .param("centers", label)
                    .metric("mean_dist", dist / k)
                    .metric("radius", radius / k)
                    .metric("clusters", clusters / k),
            );
        }
    }
    println!("{}", table.render());

    // (b) Random scale j vs fixed (the Haeupler–Wajc randomization).
    let mut table = Table::new(["j (beta=2^-j)", "mean dist * beta"]);
    let d = crate::context::diameter(&g);
    let js = super::cluster_exp::scale_range(d, g.n());
    let mut per_j = Vec::new();
    for &j in &js {
        let beta = 2f64.powi(-(j as i32));
        let mut dist = 0.0;
        let reps = 5;
        for _ in 0..reps {
            let c = partition(&g, &mis, beta, &mut rng);
            dist += c.mean_dist();
        }
        let norm = dist / reps as f64 * beta;
        per_j.push(norm);
        table.row([j.to_string(), f2(norm)]);
        record.push(
            RunRecord::new()
                .param("ablation", "scale")
                .param("j", j)
                .metric("dist_times_beta", norm),
        );
    }
    println!("{}", table.render());
    if !per_j.is_empty() {
        let avg = per_j.iter().sum::<f64>() / per_j.len() as f64;
        let worst = per_j.iter().fold(0.0f64, |a, &b| a.max(b));
        record.note(format!(
            "randomizing j averages dist·β to {avg:.2} vs worst fixed scale {worst:.2}"
        ));
    }

    // (c) + (d): ICP length factor and background toggles on a real broadcast.
    let mut table = Table::new(["config", "ok", "time"]);
    let case = GraphCase::new(
        Family::Grid,
        match scale {
            Scale::Quick => 256,
            Scale::Full => 1024,
        },
        29,
    );
    let seeds = scale.seeds().min(3);
    let variants: Vec<(String, CompeteConfig)> = vec![
        ("icp_len x1".into(), CompeteConfig { icp_len_factor: 1.0, ..CompeteConfig::default() }),
        ("icp_len x2 (default)".into(), CompeteConfig::default()),
        ("icp_len x4".into(), CompeteConfig { icp_len_factor: 4.0, ..CompeteConfig::default() }),
        ("no background".into(), CompeteConfig { background: false, ..CompeteConfig::default() }),
    ];
    for (name, config) in variants {
        let mut ok = 0usize;
        let mut time = 0.0;
        for s in 0..seeds {
            let mut sim = Sim::new(&case.graph, case.info, 9900 + s);
            let out = run_broadcast(&mut sim, case.graph.node(0), 42, &config);
            if out.completed() {
                ok += 1;
            }
            time += out.completion_time().unwrap_or(out.compete.clock_total) as f64;
        }
        let k = seeds as f64;
        table.row([name.clone(), format!("{ok}/{seeds}"), format!("{:.0}", time / k)]);
        record.push(
            RunRecord::new()
                .param("ablation", "compete")
                .param("variant", name)
                .metric("success_rate", ok as f64 / k)
                .metric("time", time / k),
        );
    }
    println!("{}", table.render());
    record.note("MIS centers shrink cluster count and distances at equal β (Theorem 2's engine)");
    print_notes(&record);
    record
}
