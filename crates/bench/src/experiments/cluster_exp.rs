//! E5 (Theorem 2 vs \[CD21\] Theorem 2.2), E6 (Lemma 5), E7 (Lemmas 3–4).

use super::{banner, print_notes};
use crate::Scale;
use radionet_analysis::table::{f2, f3};
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_cluster::mpx::{draw_shifts, partition_with_shifts};
use radionet_cluster::quantities::{b_param, MisProfile};
use radionet_graph::families::Family;
use radionet_graph::independent_set::greedy_mis_min_degree;
use radionet_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale range used by the abstract clustering experiments: the paper's
/// `[0.01 log D, 0.1 log D]` widened (S2) and capped so cluster radii stay
/// below `D`.
pub(crate) fn scale_range(d: u32, n: usize) -> Vec<i64> {
    let log_d = (d.max(2) as f64).log2();
    let log_log_n = ((n.max(4) as f64).log2()).log2();
    let hi = (0.45 * log_d).floor().min(log_d - log_log_n - 0.5).max(1.0) as i64;
    (1..=hi).collect()
}

/// Mean distance (in the full graph) from nodes to their cluster centers
/// under `Partition(β, centers)`, averaged over `trials` shift draws.
///
/// Uses the clustering's own `dist` field: in the abstract MPX computation
/// the winning label's hop count *is* the exact graph distance to the
/// assigned center (the shifted Dijkstra relaxes true shortest paths from
/// every source).
fn mean_center_distance(
    g: &Graph,
    centers: &[NodeId],
    beta: f64,
    trials: usize,
    rng: &mut StdRng,
) -> f64 {
    let mut acc = 0.0;
    for _ in 0..trials {
        let shifts = draw_shifts(centers, beta, None, rng);
        let c = partition_with_shifts(g, &shifts);
        let ds: Vec<f64> = c.dist.iter().filter(|&&d| d != u32::MAX).map(|&d| d as f64).collect();
        acc += ds.iter().sum::<f64>() / ds.len().max(1) as f64;
    }
    acc / trials as f64
}

/// E5 — Theorem 2: with MIS centers, `E[dist(v, center)]·β` tracks
/// `log_D α`; with all-node centers (\[CD21\] Thm 2.2) it tracks `log_D n`.
pub fn e5_cluster_distance(scale: Scale) -> ExperimentRecord {
    let claim = "Theorem 2: E[dist to center] = O(log_D alpha / beta) for >=0.77 of scales \
                 (vs CD21's O(log_D n / beta), 0.55)";
    banner("E5", claim);
    let mut record = ExperimentRecord::new("E5", claim);
    let mut table = Table::new([
        "family",
        "n",
        "D",
        "alpha",
        "log_D a",
        "log_D n",
        "mis: dist*b/logDa",
        "all: dist*b/logDn",
        "good-j (mis)",
    ]);
    let trials = match scale {
        Scale::Quick => 5,
        Scale::Full => 15,
    };
    // c in the Lemma-4 conclusion `S_β ≤ c·b·2^j`; the good-j fraction uses
    // the Lemma-3 route: E[dist] ≤ 5·S_β ≤ 5c·b·2^j ≤ 40c·log_D α·2^j.
    let c_good = 2.0;
    let families =
        [Family::UnitDisk, Family::Grid, Family::Spider, Family::Gnp, Family::RandomTree];
    for family in families {
        for &n in scale.sizes_abstract() {
            let g = family.instantiate(n, 3);
            let mis = greedy_mis_min_degree(&g);
            let all: Vec<NodeId> = g.nodes().collect();
            let d = crate::context::diameter(&g);
            let alpha = crate::context::alpha_estimate(&g);
            let log_d = (d.max(2) as f64).ln();
            let lda = (alpha.max(2.0).ln() / log_d).max(1.0);
            let ldn = ((g.n().max(2) as f64).ln() / log_d).max(1.0);
            let b = b_param(d.max(2), alpha);
            let mut rng = StdRng::seed_from_u64(97);
            let js = scale_range(d, g.n());
            let mut mis_norm = Vec::new();
            let mut all_norm = Vec::new();
            let mut good = 0usize;
            for &j in &js {
                let beta = 2f64.powi(-(j as i32));
                let e_mis = mean_center_distance(&g, &mis, beta, trials, &mut rng);
                let e_all = mean_center_distance(&g, &all, beta, trials, &mut rng);
                mis_norm.push(e_mis * beta / lda);
                all_norm.push(e_all * beta / ldn);
                // Good scale: the Theorem 2 bound with explicit constant.
                if e_mis * beta <= c_good * b as f64 * 5.0 {
                    good += 1;
                }
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            table.row([
                family.name().to_string(),
                g.n().to_string(),
                d.to_string(),
                format!("{alpha:.0}"),
                f2(lda),
                f2(ldn),
                f2(mean(&mis_norm)),
                f2(mean(&all_norm)),
                format!("{good}/{}", js.len()),
            ]);
            record.push(
                RunRecord::new()
                    .param("family", family.name())
                    .param("n", g.n())
                    .param("d", d)
                    .metric("alpha", alpha)
                    .metric("log_d_alpha", lda)
                    .metric("log_d_n", ldn)
                    .metric("mis_dist_normalized", mean(&mis_norm))
                    .metric("all_dist_normalized", mean(&all_norm))
                    .metric("good_j_fraction", good as f64 / js.len().max(1) as f64),
            );
        }
    }
    println!("{}", table.render());
    // Key separation: on geometric families, dist·β/log_D α stays bounded as
    // n grows while the all-centers normalization w.r.t. log_D n does too —
    // but the *ratio* of raw distances tracks log_D n / log_D α.
    let good_min = record.runs.iter().map(|r| r.metrics["good_j_fraction"]).fold(1.0f64, f64::min);
    record.note(format!(
        "min good-j fraction (MIS centers): {good_min:.2}; Theorem 2 promises ≥ 0.77 asymptotically"
    ));
    record.note(
        "mis: dist·β/log_D α bounded across n ⇒ the α-parametrization is the right normalizer \
         on geometric families",
    );
    print_notes(&record);
    record
}

/// E6 — Lemma 5: the number of bad scales is far below `0.02·log D`.
pub fn e6_bad_j(scale: Scale) -> ExperimentRecord {
    let claim = "Lemma 5: at most 0.02 log D scales j violate the expansion condition";
    banner("E6", claim);
    let mut record = ExperimentRecord::new("E6", claim);
    let mut table = Table::new([
        "family",
        "n",
        "D",
        "b",
        "bad-j strict (r>=8)",
        "bad-j scaled (r>=1)",
        "allowance log a/16b",
    ]);
    let anchors = match scale {
        Scale::Quick => 5,
        Scale::Full => 20,
    };
    for family in [Family::UnitDisk, Family::Grid, Family::Spider, Family::Gnp] {
        for &n in scale.sizes_abstract() {
            let g = family.instantiate(n, 5);
            let mis = greedy_mis_min_degree(&g);
            let d = crate::context::diameter(&g);
            let alpha = crate::context::alpha_estimate(&g);
            let b = b_param(d.max(2), alpha);
            let js = scale_range(d, g.n());
            let mut strict = 0usize;
            let mut scaled = 0usize;
            let mut total = 0usize;
            let mut rng = StdRng::seed_from_u64(13);
            for a in 0..anchors {
                let v = radionet_graph::generators::random::random_node(&g, &mut rng);
                let _ = a;
                let profile = MisProfile::new(&g, v, &mis);
                for &j in &js {
                    total += 1;
                    if !profile.lemma4_condition_holds(j, b) {
                        strict += 1;
                    }
                    if !profile.expansion_condition_holds(j, b, 1) {
                        scaled += 1;
                    }
                }
            }
            let allowance = (alpha.max(2.0)).log2() / (16.0 * b as f64);
            table.row([
                family.name().to_string(),
                g.n().to_string(),
                d.to_string(),
                b.to_string(),
                format!("{strict}/{total}"),
                format!("{scaled}/{total}"),
                f2(allowance),
            ]);
            record.push(
                RunRecord::new()
                    .param("family", family.name())
                    .param("n", g.n())
                    .metric("bad_strict", strict as f64)
                    .metric("bad_scaled", scaled as f64)
                    .metric("checked", total as f64)
                    .metric("allowance", allowance),
            );
        }
    }
    println!("{}", table.render());
    record.note(
        "the strict (r ≥ 8) condition is vacuous below α ≈ 2^256 — reported as measured; the \
         scaled (r ≥ 1) analogue probes the same structure at feasible n",
    );
    print_notes(&record);
    record
}

/// E7 — Lemmas 3–4: measured constants in `E[dist] ≤ 5·S_β` and
/// `S_β ≤ O(b·2^j)`.
pub fn e7_lemma4(scale: Scale) -> ExperimentRecord {
    let claim = "Lemma 3: E[dist] <= 5 S_beta; Lemma 4: S_beta = O(b 2^j) under the condition";
    banner("E7", claim);
    let mut record = ExperimentRecord::new("E7", claim);
    let mut table = Table::new(["family", "n", "max E[dist]/S_beta (<=5)", "max S_beta/(b 2^j)"]);
    let trials = match scale {
        Scale::Quick => 8,
        Scale::Full => 25,
    };
    let anchors = 6;
    for family in [Family::UnitDisk, Family::Grid, Family::Gnp] {
        let n = match scale {
            Scale::Quick => 256,
            Scale::Full => 1024,
        };
        let g = family.instantiate(n, 7);
        let mis = greedy_mis_min_degree(&g);
        let d = crate::context::diameter(&g);
        let alpha = crate::context::alpha_estimate(&g);
        let b = b_param(d.max(2), alpha);
        let js = scale_range(d, g.n());
        let mut rng = StdRng::seed_from_u64(23);
        let mut max_lemma3 = 0.0f64;
        let mut max_lemma4 = 0.0f64;
        for _ in 0..anchors {
            let v = radionet_graph::generators::random::random_node(&g, &mut rng);
            let profile = MisProfile::new(&g, v, &mis);
            for &j in &js {
                let beta = 2f64.powi(-(j as i32));
                let s_beta = profile.s_beta(beta);
                // Lemma 3: empirical mean distance of v to its center (the
                // abstract clustering's dist field is the exact distance).
                let mut acc = 0.0;
                for _ in 0..trials {
                    let shifts = draw_shifts(&mis, beta, None, &mut rng);
                    let c = partition_with_shifts(&g, &shifts);
                    acc += c.dist[v.index()] as f64;
                }
                let e_dist = acc / trials as f64;
                if s_beta > 0.5 {
                    max_lemma3 = max_lemma3.max(e_dist / s_beta);
                }
                if profile.expansion_condition_holds(j, b, 1) {
                    max_lemma4 = max_lemma4.max(s_beta / (b as f64 * 2f64.powi(j as i32)));
                }
            }
        }
        table.row([family.name().to_string(), g.n().to_string(), f3(max_lemma3), f3(max_lemma4)]);
        record.push(
            RunRecord::new()
                .param("family", family.name())
                .param("n", g.n())
                .metric("max_dist_over_s_beta", max_lemma3)
                .metric("max_s_beta_over_b2j", max_lemma4),
        );
    }
    println!("{}", table.render());
    let worst3 =
        record.runs.iter().map(|r| r.metrics["max_dist_over_s_beta"]).fold(0.0f64, f64::max);
    record.note(format!("Lemma 3 measured constant: {worst3:.2} (paper proves ≤ 5)"));
    print_notes(&record);
    record
}
