//! E19 — event-driven time: the clock-jumping scheduler kernel versus the
//! stepping sparse kernel on workloads with silent spans.
//!
//! Two parts:
//!
//! 1. **Decay-burst face-off** (all scales): a duty-cycled Decay workload
//!    at `n ≈ 100 000` — 32 transmitters run one Decay iteration per
//!    burst, then everything sleeps until the next burst, hundreds of
//!    steps away. The sparse kernel executes every silent step (cheaply,
//!    but it executes them); the event kernel charges each silent span in
//!    one clock jump. Reports, RNG fingerprints and kernel-invariant
//!    stats are asserted identical (the at-scale differential check), the
//!    skipped fraction is asserted dominant, and the wall-clock speedup
//!    is recorded; the acceptance bar is ≥ 5×.
//! 2. **Long-horizon mobility broadcast** (coarse tick): a quiescing
//!    flood over a moving unit-disk point set with a large mobility tick,
//!    run far past quiescence. Activity is front-loaded; the budget tail
//!    is silent except at tick boundaries, which the event kernel must
//!    land on exactly (the trace cadence is part of the equivalence).
//!    Identity is hard-asserted; the tail speedup is recorded.

use super::{banner, print_notes};
use crate::experiments::dwell_heavy_waypoint;
use crate::Scale;
use radionet_analysis::table::f1;
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_graph::generators;
use radionet_graph::Graph;
use radionet_mobility::MobileTopology;
use radionet_primitives::decay::DecaySchedule;
use radionet_primitives::flood::FloodProtocol;
use radionet_sim::{
    Action, Kernel, NetInfo, NodeCtx, PhaseReport, Protocol, ReceptionMode, Sim, SimStats,
    StaticTopology, Wake,
};
use rand::Rng;
use std::time::Instant;

/// Nodes in the decay-burst face-off (a 316×316 grid).
const FACEOFF_SIDE: usize = 316;
/// Transmitting-set size in the face-off (sparse activity).
const FACEOFF_SOURCES: usize = 32;
/// Silent-window length between bursts, in bursts (duty cycle 1/32768).
/// The ratio must be extreme: the phase-start scan engages all `n` nodes
/// once in every kernel, so the sparse kernel's per-silent-step cost only
/// dominates the wall clock when silent steps outnumber nodes by a wide
/// margin.
const PERIOD_BURSTS: u64 = 32768;

/// Duty-cycled Decay: transmitters run the [`DecaySchedule`] coin flips
/// during a one-iteration burst window at the start of every period, and
/// sleep (deaf) in between; listeners stay passive through the whole
/// horizon. Between bursts nothing is scheduled — exactly the silent-span
/// shape the event kernel exists for. Shared with `benches/kernel.rs` so
/// the criterion bench measures the exact workload the E19 bar is
/// asserted on.
#[derive(Clone)]
pub struct BurstDecay {
    schedule: DecaySchedule,
    burst: u64,
    period: u64,
    horizon: u64,
    message: Option<u64>,
    last: u64,
    heard: u64,
}

impl BurstDecay {
    /// A node running `bursts` duty cycles of one Decay iteration each,
    /// `period_bursts` iterations apart (duty cycle `1/period_bursts`).
    /// Transmitters carry `Some(message)`; `None` is a passive listener.
    pub fn new(schedule: DecaySchedule, period_bursts: u64, bursts: u64, msg: Option<u64>) -> Self {
        let burst = schedule.steps_per_iteration() as u64;
        let period = period_bursts * burst;
        BurstDecay {
            schedule,
            burst,
            period,
            horizon: bursts * period,
            message: msg,
            last: 0,
            heard: 0,
        }
    }

    /// The phase length: every node is done or retired by this step.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// First in-burst transmit step strictly after `t`, or `horizon`.
    fn next_burst_step(&self, t: u64) -> u64 {
        let c = t + 1;
        let s = if c % self.period < self.burst { c } else { (c / self.period + 1) * self.period };
        s.min(self.horizon)
    }
}

impl Protocol for BurstDecay {
    type Msg = u64;

    // Time-based (`ctx.time`), never call-counting: an uncalled node's
    // observable state is identical to a called one's, so the sparse and
    // event kernels may skip any step the hints declare passive.
    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u64> {
        self.last = ctx.time;
        if ctx.time >= self.horizon {
            return Action::Idle;
        }
        let pos = ctx.time % self.period;
        match &self.message {
            Some(m) if pos < self.burst && ctx.rng.gen_bool(self.schedule.prob(pos)) => {
                Action::Transmit(*m)
            }
            _ => Action::Listen,
        }
    }

    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &u64) {
        self.heard += 1;
    }

    fn is_done(&self) -> bool {
        if self.message.is_some() {
            // A transmitter is finished once no in-horizon burst step
            // remains after its latest engagement.
            self.next_burst_step(self.last) >= self.horizon
        } else {
            self.last + 1 >= self.horizon
        }
    }

    fn next_wake(&self, now: u64) -> Wake {
        match &self.message {
            Some(_) => {
                let next = self.next_burst_step(now);
                if next >= self.horizon {
                    Wake::Retire
                } else if next == now + 1 {
                    Wake::Now
                } else {
                    Wake::Sleep { wake_at: next, done_at: None }
                }
            }
            None => {
                if now + 1 >= self.horizon {
                    Wake::Retire
                } else {
                    Wake::Listen { wake_at: self.horizon, done_at: Some(self.horizon - 1) }
                }
            }
        }
    }
}

/// One timed face-off run; returns the report, RNG fingerprint, stats and
/// wall seconds.
fn faceoff_run(
    g: &Graph,
    info: NetInfo,
    kernel: Kernel,
    bursts: u64,
) -> (PhaseReport, u64, SimStats, f64) {
    let schedule = DecaySchedule::new(info.log_n());
    let mut sim = Sim::with_topology(g, StaticTopology, info, 0xe19, ReceptionMode::Protocol);
    sim.set_kernel(kernel);
    let stride = g.n() / FACEOFF_SOURCES;
    let mut states: Vec<BurstDecay> = g
        .nodes()
        .map(|v| {
            let msg = (v.index() % stride == 0).then_some(v.index() as u64);
            BurstDecay::new(schedule, PERIOD_BURSTS, bursts, msg)
        })
        .collect();
    let horizon = states[0].horizon();
    let start = Instant::now();
    let rep = sim.run_phase(&mut states, horizon);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    (rep, sim.rng_fingerprint(), *sim.stats(), wall)
}

/// The long-horizon mobility broadcast under one kernel; returns the
/// report, RNG fingerprint, stats, trace length and wall seconds.
fn mobility_run(
    n: usize,
    tick: u64,
    budget_mult: u64,
    kernel: Kernel,
) -> (PhaseReport, u64, SimStats, usize, f64) {
    let geo = crate::experiments::udg_geometry(n, 0x6e19);
    let mut topo = MobileTopology::new(&geo, dwell_heavy_waypoint(), tick, 0xe19);
    topo.set_sample_every(Some(tick));
    let g = topo.initial_graph();
    let info = NetInfo::exact(&g);
    let schedule = DecaySchedule::new(info.log_n());
    let l = info.log_n() as u64;
    // E17's completion budget times four: the flood quiesces well inside
    // the first quarter, leaving a long silent tail for the event kernel
    // to jump through (tick boundary to tick boundary).
    let budget = budget_mult * (info.d as u64 * l + l * l);
    let mut sim = Sim::with_topology(&g, topo, info, 0xe19, ReceptionMode::Protocol);
    sim.set_kernel(kernel);
    let mut states: Vec<FloodProtocol<u64>> = g
        .nodes()
        .map(|v| FloodProtocol::with_quiesce(schedule, (v.index() == 0).then_some(7), 2 * l as u32))
        .collect();
    let start = Instant::now();
    let rep = sim.run_phase(&mut states, budget);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    (rep, sim.rng_fingerprint(), *sim.stats(), sim.topology().trace().len(), wall)
}

/// E19 — event-driven time: clock jumps over silent spans.
pub fn e19_event(scale: Scale) -> ExperimentRecord {
    let claim = "Event kernel: silent spans cost one clock jump, not one step each";
    banner("E19", claim);
    let mut record = ExperimentRecord::new("E19", claim);
    let mut table =
        Table::new(["workload", "kernel", "n", "steps", "skipped", "wall ms", "Msteps/s (node)"]);

    // Part 1: decay-burst face-off at n ≈ 100k. Min-of-N walls: the sparse
    // side of this workload finishes in milliseconds, so a single sample
    // is at the mercy of the scheduler.
    let g = generators::grid2d(FACEOFF_SIDE, FACEOFF_SIDE);
    let info = NetInfo::exact(&g);
    let bursts = match scale {
        Scale::Quick => 24,
        Scale::Full => 48,
    };
    const RUNS: usize = 3;
    let mut walls = [f64::INFINITY; 2];
    let mut outcomes = Vec::new();
    for (k, kernel) in [Kernel::Sparse, Kernel::Event].into_iter().enumerate() {
        let mut best: Option<(PhaseReport, u64, SimStats)> = None;
        for _ in 0..RUNS {
            let (rep, fp, stats, wall) = faceoff_run(&g, info, kernel, bursts);
            walls[k] = walls[k].min(wall);
            if let Some(prev) = &best {
                assert_eq!((&prev.0, prev.1), (&rep, fp), "{kernel:?} run not reproducible");
            }
            best = Some((rep, fp, stats));
        }
        let (rep, _, stats) = best.as_ref().unwrap();
        let node_steps = rep.steps as f64 * g.n() as f64;
        table.row([
            "decay-burst".into(),
            format!("{kernel:?}").to_lowercase(),
            g.n().to_string(),
            rep.steps.to_string(),
            stats.silent_steps_skipped.to_string(),
            f1(walls[k] * 1e3),
            f1(node_steps / walls[k] / 1e6),
        ]);
        record.push(
            RunRecord::new()
                .param("workload", "decay-burst")
                .param("kernel", format!("{kernel:?}").to_lowercase())
                .param("n", g.n())
                .metric("steps", rep.steps as f64)
                .metric("transmissions", rep.transmissions as f64)
                .metric("deliveries", rep.deliveries as f64)
                .metric("silent_steps_skipped", stats.silent_steps_skipped as f64)
                .metric("scheduler_events", stats.scheduler_events as f64)
                .metric("wall_ms", walls[k] * 1e3)
                .metric("node_steps_per_sec", node_steps / walls[k]),
        );
        outcomes.push(best.unwrap());
    }
    let (sparse, event) = (&outcomes[0], &outcomes[1]);
    // The hard acceptance: byte-identical observables at scale.
    assert_eq!((&sparse.0, sparse.1), (&event.0, event.1), "kernels diverged on decay-burst");
    assert_eq!(
        sparse.2.kernel_invariant(),
        event.2.kernel_invariant(),
        "kernel-invariant stats diverged on decay-burst"
    );
    assert_eq!(
        sparse.2.scheduler_events, event.2.scheduler_events,
        "the event kernel must pop exactly the wake entries sparse pops"
    );
    assert_eq!(sparse.2.silent_steps_skipped, 0, "the sparse kernel never skips");
    let skipped_frac = event.2.silent_steps_skipped as f64 / event.0.steps as f64;
    assert!(
        skipped_frac > 0.9,
        "a 1/{PERIOD_BURSTS} duty cycle must leave >90% of the clock skippable, got {:.1}%",
        skipped_frac * 1e2
    );
    let speedup = walls[0] / walls[1];
    record.note(format!(
        "decay-burst face-off: event {speedup:.1}x faster than sparse at n = {} over {} steps \
         ({:.1}% of the clock jumped, {} transmitters on a 1/{PERIOD_BURSTS} duty cycle); \
         reports, RNG streams and invariant stats identical",
        g.n(),
        sparse.0.steps,
        skipped_frac * 1e2,
        FACEOFF_SOURCES,
    ));
    // Like E15's bar, timing is soft: a contended runner must not abort the
    // batch (the criterion `kernel` bench is the stable measurement;
    // correctness is the hard asserts above).
    if speedup < 5.0 {
        record.note(format!(
            "WARNING: measured speedup {speedup:.1}x is below the 5x bar — expected only \
             under heavy host contention; see benches/kernel.rs for the stable measurement"
        ));
        eprintln!("E19: WARNING: event/sparse speedup {speedup:.1}x below the 5x bar");
    }

    // Part 2: long-horizon mobility broadcast on a coarse tick. Activity
    // quiesces early; the budget tail is silent except at tick/sample
    // boundaries, which the event kernel lands on one by one (motion and
    // trace cadence are part of the equivalence).
    let (n, tick) = match scale {
        Scale::Quick => (10_000, 32u64),
        Scale::Full => (30_000, 32u64),
    };
    let mut mob = Vec::new();
    for kernel in [Kernel::Sparse, Kernel::Event] {
        let (rep, fp, stats, trace, wall) = mobility_run(n, tick, 64, kernel);
        let node_steps = rep.steps as f64 * n as f64;
        table.row([
            "mobility-bcast".into(),
            format!("{kernel:?}").to_lowercase(),
            n.to_string(),
            rep.steps.to_string(),
            stats.silent_steps_skipped.to_string(),
            f1(wall * 1e3),
            f1(node_steps / wall / 1e6),
        ]);
        record.push(
            RunRecord::new()
                .param("workload", "mobility-bcast")
                .param("kernel", format!("{kernel:?}").to_lowercase())
                .param("n", n)
                .param("tick", tick)
                .metric("steps", rep.steps as f64)
                .metric("deliveries", rep.deliveries as f64)
                .metric("silent_steps_skipped", stats.silent_steps_skipped as f64)
                .metric("trace_samples", trace as f64)
                .metric("wall_ms", wall * 1e3),
        );
        mob.push((rep, fp, stats, trace, wall));
    }
    assert_eq!(
        (&mob[0].0, mob[0].1, mob[0].3),
        (&mob[1].0, mob[1].1, mob[1].3),
        "kernels diverged on the mobility broadcast"
    );
    assert_eq!(
        mob[0].2.kernel_invariant(),
        mob[1].2.kernel_invariant(),
        "kernel-invariant stats diverged on the mobility broadcast"
    );
    record.note(format!(
        "mobility broadcast: n = {n}, tick {tick}, {} steps; event kernel skipped {} steps \
         ({:.1}x wall vs sparse); reports, trace and RNG streams identical",
        mob[0].0.steps,
        mob[1].2.silent_steps_skipped,
        mob[0].4 / mob[1].4,
    ));

    println!("{}", table.render());
    print_notes(&record);
    record
}
