//! E16 — the unified façade exercised end-to-end from the bench layer:
//! every task in the registry, swept across graph families as
//! [`RunSpec`]s through [`Driver::run_sweep_parallel`], with the parallel
//! stream asserted byte-identical to the sequential one.
//!
//! This experiment is deliberately built the way the API redesign says
//! benches should be: no hand-wired `Sim` construction, no per-algorithm
//! plumbing — specs in, reports out.

use super::{banner, print_notes};
use crate::Scale;
use radionet_analysis::table::f2;
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_api::{Driver, MemorySink, RunReport, RunSpec};
use radionet_graph::families::Family;
use radionet_sim::ReceptionMode;

fn sizes(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Quick => &[36, 64],
        Scale::Full => &[64, 256],
    }
}

/// The spec corpus: every registered task × family × size, seeded per rep.
fn specs(scale: Scale, driver: &Driver) -> Vec<RunSpec> {
    let families = [Family::Grid, Family::UnitDisk, Family::Gnp];
    let mut out = Vec::new();
    for key in driver.registry().keys() {
        for family in families {
            for &n in sizes(scale) {
                for rep in 0..scale.seeds().min(2) {
                    let seed = radionet_api::seeds::seed_for(0xfa_cade, key, n, rep);
                    let mut spec = RunSpec::new(key, family, n).with_seed(seed);
                    if key == "cd-wakeup" {
                        spec = spec.with_reception(ReceptionMode::ProtocolCd);
                    }
                    out.push(spec);
                }
            }
        }
    }
    out
}

/// E16 — every registry task through one typed entry point.
pub fn e16_facade(scale: Scale) -> ExperimentRecord {
    let claim = "Unified façade: every registry task runs through Driver::run(RunSpec), \
                 parallel sweep byte-identical to sequential";
    banner("E16", claim);
    let mut record = ExperimentRecord::new("E16", claim);

    let driver = Driver::standard();
    let corpus = specs(scale, &driver);
    eprintln!("sweeping {} specs over {} tasks", corpus.len(), driver.registry().len());

    let mut parallel = MemorySink::default();
    driver.run_sweep_parallel(&corpus, 32, &mut parallel).expect("corpus specs are valid");
    let reports = parallel.reports;

    // Determinism cross-check on a slice (full corpus at Quick scale).
    let check = if scale == Scale::Quick { corpus.len() } else { corpus.len() / 4 };
    let mut sequential = MemorySink::default();
    driver.run_sweep(&corpus[..check], &mut sequential).expect("corpus specs are valid");
    assert_eq!(
        sequential.reports,
        reports[..check],
        "parallel façade sweep diverged from sequential"
    );

    let mut table =
        Table::new(["task", "family", "ok", "achieved", "clock (mean)", "fingerprints"]);
    for key in driver.registry().keys() {
        for family in [Family::Grid, Family::UnitDisk, Family::Gnp] {
            let rows: Vec<&RunReport> =
                reports.iter().filter(|r| r.spec.task == key && r.spec.family == family).collect();
            if rows.is_empty() {
                continue;
            }
            let k = rows.len() as f64;
            let ok = rows.iter().filter(|r| r.success).count();
            let achieved = rows.iter().map(|r| r.achieved).sum::<f64>() / k;
            let clock = rows.iter().map(|r| r.clock_total as f64).sum::<f64>() / k;
            let mut fps: Vec<u64> = rows.iter().map(|r| r.rng_fingerprint).collect();
            fps.sort_unstable();
            fps.dedup();
            table.row([
                key.to_string(),
                family.name().to_string(),
                format!("{ok}/{}", rows.len()),
                f2(achieved),
                format!("{clock:.0}"),
                format!("{} distinct", fps.len()),
            ]);
        }
    }
    println!("{}", table.render());

    for r in &reports {
        record.push(
            RunRecord::new()
                .param("task", &r.spec.task)
                .param("family", r.spec.family.name())
                .param("n", r.n)
                .param("seed", r.spec.seed)
                .metric("success", if r.success { 1.0 } else { 0.0 })
                .metric("achieved", r.achieved)
                .metric("clock_total", r.clock_total as f64)
                .metric("clock_done", r.clock_done.map(|c| c as f64).unwrap_or(-1.0))
                .metric("simulated_steps", r.stats.simulated_steps as f64)
                .metric("events", r.events as f64),
        );
    }
    record.note(format!(
        "{} specs over {} tasks × 3 families, one typed entry point, zero hand-wired sims",
        reports.len(),
        driver.registry().len()
    ));
    record.note(format!("parallel sweep verified byte-identical to sequential on {check} specs"));
    print_notes(&record);
    record
}
