//! E3 (Theorem 14 scaling), E4 (MIS baselines), E10 (golden rounds).

use super::{banner, print_notes};
use crate::{GraphCase, Scale};
use radionet_analysis::fit::fit_power_law;
use radionet_analysis::table::{f2, f3};
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_baselines::local_mis::{ghaffari_local_mis, luby_mis};
use radionet_core::mis::{run_radio_mis, MisConfig, MisStatus};
use radionet_graph::families::Family;
use radionet_sim::Sim;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E3 — Theorem 14: Radio MIS computes a valid MIS in `O(log³ n)` steps whp.
pub fn e3_mis_scaling(scale: Scale) -> ExperimentRecord {
    let claim = "Theorem 14: Radio MIS valid whp in O(log^3 n) time-steps";
    banner("E3", claim);
    let mut record = ExperimentRecord::new("E3", claim);
    let mut table = Table::new(["family", "n", "valid", "rounds", "steps", "steps/log^3 n"]);
    let families = [Family::Gnp, Family::UnitDisk, Family::Grid, Family::Path, Family::Clique];
    let mut fit_points: Vec<(f64, f64)> = Vec::new();
    for family in families {
        for &n in scale.sizes() {
            let mut valid = 0usize;
            let mut steps_acc = 0.0;
            let mut rounds_acc = 0.0;
            let seeds = scale.seeds();
            let mut real_n = n;
            for s in 0..seeds {
                let case = GraphCase::new(family, n, s);
                real_n = case.n;
                let mut sim = Sim::new(&case.graph, case.info, 100 + s);
                let out = run_radio_mis(&mut sim, &MisConfig::default());
                if out.is_valid(&case.graph) {
                    valid += 1;
                }
                steps_acc += out.steps as f64;
                rounds_acc += out.rounds as f64;
            }
            let k = seeds as f64;
            let l = (real_n.max(2) as f64).log2();
            let steps = steps_acc / k;
            table.row([
                family.name().to_string(),
                real_n.to_string(),
                format!("{valid}/{seeds}"),
                format!("{:.1}", rounds_acc / k),
                format!("{steps:.0}"),
                f2(steps / l.powi(3)),
            ]);
            record.push(
                RunRecord::new()
                    .param("family", family.name())
                    .param("n", real_n)
                    .metric("valid_rate", valid as f64 / k)
                    .metric("rounds", rounds_acc / k)
                    .metric("steps", steps),
            );
            fit_points.push((l, steps));
        }
    }
    println!("{}", table.render());
    if let Some(fit) = fit_power_law(&fit_points) {
        record.note(format!(
            "steps ≈ {:.2}·(log n)^{:.2} (R² = {:.3}); Theorem 14 predicts exponent ≤ 3",
            fit.a, fit.b, fit.r_squared
        ));
    }
    let total_valid: f64 = record.runs.iter().map(|r| r.metrics["valid_rate"]).sum::<f64>()
        / record.runs.len().max(1) as f64;
    record.note(format!("overall validity rate: {total_valid:.3}"));
    print_notes(&record);
    record
}

/// E4 — context: Radio MIS time vs the Ω(log² n) lower bound \[14\] and the
/// LOCAL-model references (Ghaffari, Luby) at `log² n` steps per round.
pub fn e4_mis_baselines(scale: Scale) -> ExperimentRecord {
    let claim = "MIS context: radio steps vs log^2 n floor and LOCAL rounds x log^2 n";
    banner("E4", claim);
    let mut record = ExperimentRecord::new("E4", claim);
    let mut table = Table::new([
        "family",
        "n",
        "radio steps",
        "log^2 n (lower bd)",
        "Ghaffari rounds",
        "Luby rounds",
        "Ghaffari x log^2 n",
    ]);
    for family in [Family::Gnp, Family::UnitDisk] {
        for &n in scale.sizes() {
            let case = GraphCase::new(family, n, 1);
            let g = &case.graph;
            let l = (case.n.max(2) as f64).log2();
            let cap = (16.0 * l).ceil() as u64;
            let mut sim = Sim::new(g, case.info, 7);
            let radio = run_radio_mis(&mut sim, &MisConfig::default());
            let mut rng = StdRng::seed_from_u64(11);
            let gh = ghaffari_local_mis(g, &mut rng, cap);
            let lu = luby_mis(g, &mut rng, cap);
            assert!(gh.is_valid(g) && lu.is_valid(g));
            table.row([
                family.name().to_string(),
                case.n.to_string(),
                radio.steps.to_string(),
                format!("{:.0}", l * l),
                gh.rounds.to_string(),
                lu.rounds.to_string(),
                format!("{:.0}", gh.rounds as f64 * l * l),
            ]);
            record.push(
                RunRecord::new()
                    .param("family", family.name())
                    .param("n", case.n)
                    .metric("radio_steps", radio.steps as f64)
                    .metric("log2n_floor", l * l)
                    .metric("ghaffari_rounds", gh.rounds as f64)
                    .metric("luby_rounds", lu.rounds as f64),
            );
        }
    }
    println!("{}", table.render());
    record.note("radio steps sit between the Ω(log² n) floor and LOCAL-rounds × log² n, as Theorem 14 predicts");
    print_notes(&record);
    record
}

/// E10 — Lemmas 12–13: golden rounds accumulate for surviving nodes and
/// each golden round removes the node with at least constant probability.
pub fn e10_golden_rounds(scale: Scale) -> ExperimentRecord {
    let claim = "Lemmas 12-13: golden rounds and per-golden-round removal probability >= 1/8004";
    banner("E10", claim);
    let mut record = ExperimentRecord::new("E10", claim);
    let mut table = Table::new([
        "family",
        "n",
        "golden-1 rounds",
        "golden-2 rounds",
        "P(removed | golden)",
        "P(removed | any round)",
    ]);
    for family in [Family::Gnp, Family::Grid, Family::UnitDisk] {
        let n = match scale {
            Scale::Quick => 128,
            Scale::Full => 256,
        };
        let case = GraphCase::new(family, n, 2);
        let g = &case.graph;
        let config = MisConfig { record_history: true, ..MisConfig::default() };
        let mut golden1 = 0u64;
        let mut golden2 = 0u64;
        let mut golden_removed = 0u64;
        let mut golden_total = 0u64;
        let mut any_rounds = 0u64;
        let mut any_removed = 0u64;
        for s in 0..scale.seeds() {
            let mut sim = Sim::new(g, case.info, 500 + s);
            let out = run_radio_mis(&mut sim, &config);
            // Reconstruct per-round effective degrees from the histories:
            // node u is active in round r iff it has a record at index r.
            let max_rounds = out.history.iter().map(|h| h.len()).max().unwrap_or(0);
            for r in 0..max_rounds {
                // d_r(v) over active neighbors; low-degree set for type 2.
                let p_of = |i: usize| -> Option<f64> { out.history[i].get(r).map(|rec| rec.p) };
                let d_of = |i: usize| -> f64 {
                    g.neighbors(g.node(i)).iter().filter_map(|u| p_of(u.index())).sum()
                };
                for v in g.nodes() {
                    let i = v.index();
                    let Some(rec) = out.history[i].get(r) else { continue };
                    let d = d_of(i);
                    let type1 = d < 1.0 && rec.p == 0.5;
                    let low_mass: f64 = g
                        .neighbors(v)
                        .iter()
                        .filter(|u| p_of(u.index()).is_some() && d_of(u.index()) < 1.0)
                        .filter_map(|u| p_of(u.index()))
                        .sum();
                    let type2 = d >= 1.0 / 200.0 && low_mass >= d / 10.0;
                    let removed = rec.status != MisStatus::Active;
                    any_rounds += 1;
                    if removed {
                        any_removed += 1;
                    }
                    if type1 {
                        golden1 += 1;
                    }
                    if type2 {
                        golden2 += 1;
                    }
                    if type1 || type2 {
                        golden_total += 1;
                        if removed {
                            golden_removed += 1;
                        }
                    }
                }
            }
        }
        let p_golden = golden_removed as f64 / golden_total.max(1) as f64;
        let p_any = any_removed as f64 / any_rounds.max(1) as f64;
        table.row([
            family.name().to_string(),
            case.n.to_string(),
            golden1.to_string(),
            golden2.to_string(),
            f3(p_golden),
            f3(p_any),
        ]);
        record.push(
            RunRecord::new()
                .param("family", family.name())
                .param("n", case.n)
                .metric("golden1", golden1 as f64)
                .metric("golden2", golden2 as f64)
                .metric("p_removed_given_golden", p_golden)
                .metric("p_removed_any", p_any),
        );
    }
    println!("{}", table.render());
    let min_p =
        record.runs.iter().map(|r| r.metrics["p_removed_given_golden"]).fold(1.0f64, f64::min);
    record.note(format!(
        "min P(removed | golden round) = {min_p:.3} — the paper's bound is 1/8004 ≈ 0.000125 (loose by design)"
    ));
    print_notes(&record);
    record
}
