//! E17 — the mobility subsystem: incremental spatial-index maintenance vs
//! full rebuild, and a large random-waypoint broadcast with time-resolved
//! α-bounds/diameter tracking.
//!
//! Two parts:
//!
//! 1. **Index face-off** (all scales): a dwell-heavy local-waypoint
//!    population (short legs, long pauses — only a few percent of nodes
//!    move on any tick) advanced for a fixed tick budget under
//!    [`IndexStrategy::Incremental`] and [`IndexStrategy::Rebuild`]. The
//!    final adjacency digests are asserted identical (the at-scale
//!    differential check; the `O(n²)` brute-force oracle is pinned by the
//!    `radionet-mobility` proptests) and the per-tick speedup must clear
//!    **≥ 5×** — incremental work scales with the moved fraction, a
//!    rebuild rescans every node every tick.
//! 2. **Waypoint broadcast** (quick: 2 000 nodes; full: 100 000): a
//!    quiescing Decay flood over a classic random-waypoint UDG, sampling
//!    α-bounds, diameter, edges, and components as the fleet moves. The
//!    samples land in `results/e17.json` and the α drift is summarized via
//!    [`radionet_analysis::ingest::drift`].
//!
//! Large instances construct their geometry directly (uniform points +
//! disk rule) because the family generators are `O(n²)`; the derived
//! t = 0 edge set is identical to what the generator would produce.

use super::{banner, print_notes};
use crate::Scale;
use radionet_analysis::ingest::drift;
use radionet_analysis::table::f1;
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_graph::families::{Geometry, GeometryRule};
use radionet_mobility::{IndexStrategy, MobileTopology, MobilityModel, WaypointParams};
use radionet_primitives::decay::DecaySchedule;
use radionet_primitives::flood::FloodProtocol;
use radionet_sim::{NetInfo, Sim, TopologyView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Uniform 2D unit-disk geometry at expected degree ≈ 10 (shared with
/// `benches/mobility.rs` so the criterion bench measures the exact
/// population the E17 acceptance bar is asserted on).
pub fn udg_geometry(n: usize, seed: u64) -> Geometry {
    let side = (n as f64 * std::f64::consts::PI / 10.0).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n).map(|_| [rng.gen::<f64>() * side, rng.gen::<f64>() * side, 0.0]).collect();
    Geometry { points, dim: 2, side, rule: GeometryRule::Disk { radius: 1.0 } }
}

/// Dwell-heavy micromobility: short local legs, long pauses — the
/// sensor-field regime where almost everything is stationary at any
/// instant (shared with `benches/mobility.rs`).
pub fn dwell_heavy_waypoint() -> MobilityModel {
    MobilityModel::RandomWaypoint(WaypointParams {
        speed_lo: 0.04,
        speed_hi: 0.08,
        pause_lo: 200,
        pause_hi: 600,
        range: 2.0,
    })
}

/// Classic random waypoint: whole-domain targets, short pauses.
fn classic_waypoint() -> MobilityModel {
    MobilityModel::RandomWaypoint(WaypointParams {
        speed_lo: 0.02,
        speed_hi: 0.08,
        pause_lo: 10,
        pause_hi: 60,
        range: 0.0,
    })
}

/// Advances one strategy for `ticks` ticks; returns (digest, wall secs,
/// moved-node ticks).
fn faceoff_run(geo: &Geometry, strategy: IndexStrategy, ticks: u64, seed: u64) -> (u64, f64, u64) {
    let mut topo =
        MobileTopology::new(geo, dwell_heavy_waypoint(), 1, seed).with_strategy(strategy);
    let base = topo.initial_graph();
    topo.advance_to(&base, 0); // baseline
    let start = Instant::now();
    for clock in 1..=ticks {
        topo.advance_to(&base, clock);
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    (topo.adjacency_digest(), wall, topo.stats().moved_node_ticks)
}

/// The waypoint broadcast with time-resolved sampling; returns
/// `(samples, informed fraction, steps, wall secs)`.
fn sampled_broadcast(
    n: usize,
    tick: u64,
    cadence: u64,
    seed: u64,
) -> (Vec<radionet_mobility::MobilitySample>, f64, u64, f64) {
    let geo = udg_geometry(n, seed ^ 0x6e0);
    let mut topo = MobileTopology::new(&geo, classic_waypoint(), tick, seed);
    topo.set_sample_every(Some(cadence));
    let g = topo.initial_graph();
    let info = NetInfo::exact(&g);
    let schedule = DecaySchedule::new(info.log_n());
    let l = info.log_n() as u64;
    let budget = 16 * (info.d as u64 * l + l * l);
    let mut sim = Sim::with_topology(&g, topo, info, seed, radionet_sim::ReceptionMode::Protocol);
    let mut states: Vec<FloodProtocol<u64>> = g
        .nodes()
        .map(|v| FloodProtocol::with_quiesce(schedule, (v.index() == 0).then_some(7), 2 * l as u32))
        .collect();
    let start = Instant::now();
    let rep = sim.run_phase(&mut states, budget);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let informed = states.iter().filter(|s| s.best().is_some()).count() as f64 / g.n() as f64;
    (sim.topology().trace().to_vec(), informed, rep.steps, wall)
}

/// E17 — mobility: incremental index speedup + time-resolved α/D.
pub fn e17_mobility(scale: Scale) -> ExperimentRecord {
    let claim = "Mobility: incremental grid index beats per-step rebuild; α/D drift is tracked";
    banner("E17", claim);
    let mut record = ExperimentRecord::new("E17", claim);

    // Part 1: incremental vs rebuild on the identical trajectory.
    let (n, ticks) = match scale {
        Scale::Quick => (30_000, 120u64),
        Scale::Full => (100_000, 240u64),
    };
    let geo = udg_geometry(n, 0xe17);
    let mut table = Table::new(["part", "strategy", "n", "ticks", "wall ms", "ms/tick"]);
    let mut walls = [0.0f64; 2];
    let mut digests = [0u64; 2];
    for (k, strategy) in
        [IndexStrategy::Incremental, IndexStrategy::Rebuild].into_iter().enumerate()
    {
        let (digest, wall, moved) = faceoff_run(&geo, strategy, ticks, 0x5eed);
        walls[k] = wall;
        digests[k] = digest;
        table.row([
            "index".into(),
            strategy.name().into(),
            n.to_string(),
            ticks.to_string(),
            f1(wall * 1e3),
            f1(wall * 1e3 / ticks as f64),
        ]);
        record.push(
            RunRecord::new()
                .param("part", "index")
                .param("strategy", strategy.name())
                .param("n", n)
                .metric("ticks", ticks as f64)
                .metric("moved_node_ticks", moved as f64)
                .metric("wall_ms", wall * 1e3)
                .metric("ms_per_tick", wall * 1e3 / ticks as f64),
        );
    }
    assert_eq!(
        digests[0], digests[1],
        "incremental and rebuild strategies derived different edge sets"
    );
    let speedup = walls[1] / walls[0];
    record.note(format!(
        "index face-off: incremental {speedup:.1}x faster per tick than full rebuild at \
         n = {n} over {ticks} ticks (dwell-heavy waypoint; identical adjacency digests)"
    ));
    assert!(
        speedup >= 5.0,
        "incremental index only {speedup:.1}x faster than rebuild (acceptance bar: 5x)"
    );

    // Part 2: waypoint broadcast with time-resolved α-bounds/diameter.
    let (bn, tick, cadence) = match scale {
        Scale::Quick => (2_000, 4u64, 50u64),
        Scale::Full => (100_000, 32u64, 1_000u64),
    };
    let (samples, informed, steps, wall) = sampled_broadcast(bn, tick, cadence, 0xb0a);
    table.row([
        "broadcast".into(),
        "incremental".into(),
        bn.to_string(),
        steps.to_string(),
        f1(wall * 1e3),
        f1(wall * 1e3 / steps.max(1) as f64),
    ]);
    record.push(
        RunRecord::new()
            .param("part", "broadcast")
            .param("strategy", "incremental")
            .param("n", bn)
            .metric("steps", steps as f64)
            .metric("informed", informed)
            .metric("wall_ms", wall * 1e3),
    );
    for s in &samples {
        record.push(
            RunRecord::new()
                .param("part", "trace")
                .param("n", bn)
                .metric("clock", s.clock as f64)
                .metric("edges", s.edges as f64)
                .metric("components", s.components as f64)
                .metric("largest_component", s.largest_component as f64)
                .metric("diameter", s.diameter as f64)
                .metric("alpha_lower", s.alpha_lower as f64)
                .metric("alpha_upper", s.alpha_upper as f64),
        );
    }
    assert!(!samples.is_empty(), "broadcast recorded no time-resolved samples");
    assert!(
        informed >= 0.9,
        "waypoint broadcast informed only {:.1}% of the fleet",
        informed * 100.0
    );
    let alpha: Vec<f64> = samples.iter().map(|s| s.alpha_lower as f64).collect();
    let diam: Vec<f64> = samples.iter().map(|s| s.diameter as f64).collect();
    if let (Some(a), Some(d)) = (drift(&alpha), drift(&diam)) {
        record.note(format!(
            "time-resolved regime over {} samples: α lower bound {:.0} → {:.0} \
             (envelope [{:.0}, {:.0}]), diameter {:.0} → {:.0} (envelope [{:.0}, {:.0}]); \
             {:.1}% informed in {} steps",
            samples.len(),
            a.first,
            a.last,
            a.lo,
            a.hi,
            d.first,
            d.last,
            d.lo,
            d.hi,
            informed * 100.0,
            steps,
        ));
    }

    println!("{}", table.render());
    print_notes(&record);
    record
}
