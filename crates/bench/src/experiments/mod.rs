//! Experiment implementations, one per DESIGN.md §4 entry.
//!
//! | id | claim | function |
//! |----|-------|----------|
//! | E1 | Claim 10 (Decay amplification) | [`e1_decay`] |
//! | E2 | Lemma 11 (EstimateEffectiveDegree) | [`e2_eed`] |
//! | E3 | Theorem 14 (Radio MIS `O(log³ n)`) | [`e3_mis_scaling`] |
//! | E4 | MIS round-complexity context | [`e4_mis_baselines`] |
//! | E5 | Theorem 2 vs \[CD21\] Thm 2.2 | [`e5_cluster_distance`] |
//! | E6 | Lemma 5 (bad scales) | [`e6_bad_j`] |
//! | E7 | Lemma 4 / Lemma 3 constants | [`e7_lemma4`] |
//! | E8 | Theorem 7 / Corollary 9 (broadcast) | [`e8_broadcast`] |
//! | E9 | Theorem 8 (leader election) | [`e9_leader_election`] |
//! | E10 | Lemmas 12–13 (golden rounds) | [`e10_golden_rounds`] |
//! | E11 | design ablations | [`e11_ablations`] |
//! | E12 | S2 constant calibration | [`e12_calibration`] |
//! | E14 | dynamic-network scenarios | [`e14_scenarios`] |
//! | E15 | sparse step-kernel throughput | [`e15_throughput`] |
//! | E16 | unified façade coverage | [`e16_facade`] |
//! | E17 | mobility: incremental index + time-resolved α/D | [`e17_mobility`] |
//! | E18 | geometry-native SINR: sparse vs dense reception | [`e18_sinr`] |
//! | E19 | event kernel: clock jumps over silent spans | [`e19_event`] |
//! | E20 | radionetd serving: cache + sharded sweeps | [`e20_service`] |
//! | E21 | telemetry overhead guard | [`e21_telemetry`] |
//! | E22 | streaming traffic pipeline | [`e22_traffic`] |

mod broadcast_exp;
mod cluster_exp;
mod event_exp;
mod facade_exp;
mod mis_exp;
mod mobility_exp;
mod models_exp;
mod primitives_exp;
mod scenarios_exp;
mod service_exp;
mod sinr_exp;
mod telemetry_exp;
mod throughput_exp;
mod traffic_exp;

pub use broadcast_exp::{e11_ablations, e8_broadcast, e9_leader_election};
pub use cluster_exp::{e5_cluster_distance, e6_bad_j, e7_lemma4};
pub use event_exp::{e19_event, BurstDecay};
pub use facade_exp::e16_facade;
pub use mis_exp::{e10_golden_rounds, e3_mis_scaling, e4_mis_baselines};
pub use mobility_exp::{dwell_heavy_waypoint, e17_mobility, udg_geometry};
pub use models_exp::e13_models;
pub use primitives_exp::{e12_calibration, e1_decay, e2_eed};
pub use scenarios_exp::e14_scenarios;
pub use service_exp::e20_service;
pub use sinr_exp::e18_sinr;
pub use telemetry_exp::e21_telemetry;
pub use throughput_exp::e15_throughput;
pub use traffic_exp::e22_traffic;

use radionet_analysis::ExperimentRecord;

/// Prints the experiment banner.
pub(crate) fn banner(id: &str, claim: &str) {
    println!("\n## {id} — {claim}\n");
}

/// Prints the record's notes after its table.
pub(crate) fn print_notes(record: &ExperimentRecord) {
    for note in &record.notes {
        println!("- {note}");
    }
    println!();
}

/// One entry of the experiment registry.
pub struct ExperimentDef {
    /// Stable id (`E1`…): the record filename and the `exp_*` binary key.
    pub id: &'static str,
    /// One-line claim, for listings.
    pub claim: &'static str,
    /// The experiment function.
    pub run: fn(crate::Scale) -> ExperimentRecord,
}

/// The experiment registry, in run order — the **single** list every
/// aggregate consumer derives from. `run_all` iterates it and the `exp_*`
/// binaries resolve themselves through [`find`], so adding an experiment
/// here is sufficient to reach the whole harness (and forgetting to add it
/// makes the new binary fail loudly instead of silently skipping the
/// aggregate run).
pub const ALL: &[ExperimentDef] = &[
    ExperimentDef { id: "E1", claim: "Claim 10 (Decay amplification)", run: e1_decay },
    ExperimentDef { id: "E2", claim: "Lemma 11 (EstimateEffectiveDegree)", run: e2_eed },
    ExperimentDef { id: "E3", claim: "Theorem 14 (Radio MIS O(log³ n))", run: e3_mis_scaling },
    ExperimentDef { id: "E4", claim: "MIS round-complexity context", run: e4_mis_baselines },
    ExperimentDef { id: "E5", claim: "Theorem 2 vs [CD21] Thm 2.2", run: e5_cluster_distance },
    ExperimentDef { id: "E6", claim: "Lemma 5 (bad scales)", run: e6_bad_j },
    ExperimentDef { id: "E7", claim: "Lemma 4 / Lemma 3 constants", run: e7_lemma4 },
    ExperimentDef { id: "E8", claim: "Theorem 7 / Corollary 9 (broadcast)", run: e8_broadcast },
    ExperimentDef { id: "E9", claim: "Theorem 8 (leader election)", run: e9_leader_election },
    ExperimentDef { id: "E10", claim: "Lemmas 12–13 (golden rounds)", run: e10_golden_rounds },
    ExperimentDef { id: "E11", claim: "design ablations", run: e11_ablations },
    ExperimentDef { id: "E12", claim: "S2 constant calibration", run: e12_calibration },
    ExperimentDef { id: "E13", claim: "reception-model comparison", run: e13_models },
    ExperimentDef { id: "E14", claim: "dynamic-network scenarios", run: e14_scenarios },
    ExperimentDef { id: "E15", claim: "sparse step-kernel throughput", run: e15_throughput },
    ExperimentDef { id: "E16", claim: "unified façade coverage", run: e16_facade },
    ExperimentDef {
        id: "E17",
        claim: "mobility: incremental index + time-resolved α/D",
        run: e17_mobility,
    },
    ExperimentDef {
        id: "E18",
        claim: "geometry-native SINR: sparse spatial-index kernel vs dense reference",
        run: e18_sinr,
    },
    ExperimentDef {
        id: "E19",
        claim: "event kernel: silent spans cost one clock jump, not one step each",
        run: e19_event,
    },
    ExperimentDef {
        id: "E20",
        claim: "radionetd serving: repeated specs hit the cache, shards merge byte-identically",
        run: e20_service,
    },
    ExperimentDef {
        id: "E21",
        claim: "telemetry observes, never steers: identical results, near-zero cost",
        run: e21_telemetry,
    },
    ExperimentDef {
        id: "E22",
        claim: "streaming traffic: kernels agree at 100k nodes, throughput spans the catalogue",
        run: e22_traffic,
    },
];

/// Looks an experiment up by id (case-insensitive).
pub fn find(id: &str) -> Option<&'static ExperimentDef> {
    ALL.iter().find(|e| e.id.eq_ignore_ascii_case(id))
}

/// Runs every experiment at the given scale, returning all records.
pub fn run_all(scale: crate::Scale) -> Vec<ExperimentRecord> {
    ALL.iter().map(|e| (e.run)(scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_resolvable() {
        let mut ids: Vec<&str> = ALL.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL.len(), "duplicate experiment ids");
        for e in ALL {
            assert!(find(e.id).is_some());
            assert!(find(&e.id.to_lowercase()).is_some(), "{} not case-insensitive", e.id);
            assert!(!e.claim.is_empty());
        }
        assert!(find("E99").is_none());
    }
}
