//! Experiment implementations, one per DESIGN.md §4 entry.
//!
//! | id | claim | function |
//! |----|-------|----------|
//! | E1 | Claim 10 (Decay amplification) | [`e1_decay`] |
//! | E2 | Lemma 11 (EstimateEffectiveDegree) | [`e2_eed`] |
//! | E3 | Theorem 14 (Radio MIS `O(log³ n)`) | [`e3_mis_scaling`] |
//! | E4 | MIS round-complexity context | [`e4_mis_baselines`] |
//! | E5 | Theorem 2 vs \[CD21\] Thm 2.2 | [`e5_cluster_distance`] |
//! | E6 | Lemma 5 (bad scales) | [`e6_bad_j`] |
//! | E7 | Lemma 4 / Lemma 3 constants | [`e7_lemma4`] |
//! | E8 | Theorem 7 / Corollary 9 (broadcast) | [`e8_broadcast`] |
//! | E9 | Theorem 8 (leader election) | [`e9_leader_election`] |
//! | E10 | Lemmas 12–13 (golden rounds) | [`e10_golden_rounds`] |
//! | E11 | design ablations | [`e11_ablations`] |
//! | E12 | S2 constant calibration | [`e12_calibration`] |
//! | E14 | dynamic-network scenarios | [`e14_scenarios`] |
//! | E15 | sparse step-kernel throughput | [`e15_throughput`] |

mod broadcast_exp;
mod cluster_exp;
mod mis_exp;
mod models_exp;
mod primitives_exp;
mod scenarios_exp;
mod throughput_exp;

pub use broadcast_exp::{e11_ablations, e8_broadcast, e9_leader_election};
pub use cluster_exp::{e5_cluster_distance, e6_bad_j, e7_lemma4};
pub use mis_exp::{e10_golden_rounds, e3_mis_scaling, e4_mis_baselines};
pub use models_exp::e13_models;
pub use primitives_exp::{e12_calibration, e1_decay, e2_eed};
pub use scenarios_exp::e14_scenarios;
pub use throughput_exp::e15_throughput;

use radionet_analysis::ExperimentRecord;

/// Prints the experiment banner.
pub(crate) fn banner(id: &str, claim: &str) {
    println!("\n## {id} — {claim}\n");
}

/// Prints the record's notes after its table.
pub(crate) fn print_notes(record: &ExperimentRecord) {
    for note in &record.notes {
        println!("- {note}");
    }
    println!();
}

/// Runs every experiment at the given scale, returning all records.
pub fn run_all(scale: crate::Scale) -> Vec<ExperimentRecord> {
    vec![
        e1_decay(scale),
        e2_eed(scale),
        e3_mis_scaling(scale),
        e4_mis_baselines(scale),
        e5_cluster_distance(scale),
        e6_bad_j(scale),
        e7_lemma4(scale),
        e8_broadcast(scale),
        e9_leader_election(scale),
        e10_golden_rounds(scale),
        e11_ablations(scale),
        e12_calibration(scale),
        e13_models(scale),
        e14_scenarios(scale),
        e15_throughput(scale),
    ]
}
