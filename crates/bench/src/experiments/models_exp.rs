//! E13 — what the model abstractions cost: collision detection
//! (related work \[29\], \[12\]) and SINR reception (footnote 1), plus the
//! granularity parametrization of \[13\] next to the paper's `α`.

use super::{banner, print_notes};
use crate::Scale;
use radionet_analysis::table::f2;
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_baselines::bgi::{run_bgi_broadcast, BgiConfig};
use radionet_baselines::cd_wakeup::cd_wakeup_on;
use radionet_graph::generators;
use radionet_graph::granularity::{emek_bound, granularity};
use radionet_graph::traversal::eccentricity;
use radionet_primitives::decay::DecaySchedule;
use radionet_primitives::flood::FloodProtocol;
use radionet_sim::{NetInfo, ReceptionMode, Sim, SinrConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E13 — reception models and alternative parametrizations on unit disk
/// deployments.
pub fn e13_models(scale: Scale) -> ExperimentRecord {
    let claim = "Model extensions: collision detection (related work) and SINR (footnote 1) \
                 vs the paper's protocol model; granularity [13] vs alpha parametrization";
    banner("E13", claim);
    let mut record = ExperimentRecord::new("E13", claim);

    // --- (a) Wake-up: CD vs no-CD flooding (the capability gap).
    let mut table = Table::new(["n", "D", "ecc(src)", "cd wake-up", "no-cd flood (bgi)"]);
    let sizes: &[usize] = match scale {
        Scale::Quick => &[128],
        Scale::Full => &[128, 512, 2048],
    };
    for &n in sizes {
        let side = (n as f64 * std::f64::consts::PI / 10.0).sqrt();
        let mut rng = StdRng::seed_from_u64(7);
        let inst = loop {
            let cand = generators::unit_disk_in_square(n, side, &mut rng);
            if radionet_graph::traversal::is_connected(&cand.graph) {
                break cand;
            }
        };
        let g = &inst.graph;
        let info = NetInfo::exact(g);
        let src = g.node(0);
        let ecc = eccentricity(g, src);
        let cd = cd_wakeup_on(g, info, 3, src);
        let mut sim = Sim::new(g, info, 3);
        let bgi = run_bgi_broadcast(&mut sim, src, 1, &BgiConfig::default());
        let cd_t = cd.completion_steps.map(|t| t as f64).unwrap_or(f64::NAN);
        let bgi_t = bgi.clock_all_informed.map(|t| t as f64).unwrap_or(f64::NAN);
        table.row([
            g.n().to_string(),
            info.d.to_string(),
            ecc.to_string(),
            format!("{cd_t:.0}"),
            format!("{bgi_t:.0}"),
        ]);
        record.push(
            RunRecord::new()
                .param("part", "cd-wakeup")
                .param("n", g.n())
                .metric("ecc", ecc as f64)
                .metric("cd_steps", cd_t)
                .metric("bgi_steps", bgi_t),
        );
    }
    println!("{}", table.render());

    // --- (b) SINR vs protocol model: same Decay flood, both semantics.
    let mut table = Table::new(["n", "model", "informed", "deliveries", "collisions"]);
    for &n in sizes {
        let side = (n as f64 * std::f64::consts::PI / 10.0).sqrt();
        let mut rng = StdRng::seed_from_u64(11);
        let inst = loop {
            let cand = generators::unit_disk_in_square(n, side, &mut rng);
            if radionet_graph::traversal::is_connected(&cand.graph) {
                break cand;
            }
        };
        let g = &inst.graph;
        let info = NetInfo::exact(g);
        let positions: Vec<(f64, f64)> = inst.points.iter().map(|p| (p.x, p.y)).collect();
        let budget = {
            let l = info.log_n() as u64;
            6 * (info.d as u64 * l + l * l)
        };
        for mode in [
            ReceptionMode::Protocol,
            ReceptionMode::Sinr(SinrConfig::for_unit_range(positions.clone(), 1.0)),
        ] {
            let name = mode.name();
            let mut sim = Sim::with_reception(g, info, 5, mode);
            let schedule = DecaySchedule::new(info.log_n());
            let mut states: Vec<FloodProtocol<u64>> = g
                .nodes()
                .map(|v| FloodProtocol::new(schedule, (v.index() == 0).then_some(9)))
                .collect();
            sim.run_phase(&mut states, budget);
            let informed = states.iter().filter(|s| s.best().is_some()).count();
            let stats = *sim.stats();
            table.row([
                g.n().to_string(),
                name.to_string(),
                format!("{informed}/{}", g.n()),
                stats.deliveries.to_string(),
                stats.collisions.to_string(),
            ]);
            record.push(
                RunRecord::new()
                    .param("part", "sinr")
                    .param("n", g.n())
                    .param("model", name)
                    .metric("informed_frac", informed as f64 / g.n() as f64)
                    .metric("deliveries", stats.deliveries as f64)
                    .metric("collisions", stats.collisions as f64),
            );
        }
    }
    println!("{}", table.render());

    // --- (c) Parametrization shoot-out on UDGs: the paper's D·log_D α vs
    // the granularity bound of [13] vs BGI's D·log n.
    let mut table = Table::new([
        "n",
        "D",
        "alpha",
        "granularity g",
        "D log_D a (paper)",
        "min{D+g^2, D log g} [13]",
        "D log n (BGI)",
    ]);
    for &n in sizes {
        let side = (n as f64 * std::f64::consts::PI / 10.0).sqrt();
        let mut rng = StdRng::seed_from_u64(13);
        let inst = loop {
            let cand = generators::unit_disk_in_square(n, side, &mut rng);
            if radionet_graph::traversal::is_connected(&cand.graph) {
                break cand;
            }
        };
        let info = NetInfo::exact(&inst.graph);
        let d = info.d;
        let gran = granularity(&inst.points).unwrap_or(1.0).max(1.0);
        let paper = d as f64 * info.log_d_alpha();
        let emek = emek_bound(d, gran);
        let bgi = d as f64 * info.log_n() as f64;
        table.row([
            inst.graph.n().to_string(),
            d.to_string(),
            format!("{:.0}", info.alpha),
            f2(gran),
            format!("{paper:.0}"),
            format!("{emek:.0}"),
            format!("{bgi:.0}"),
        ]);
        record.push(
            RunRecord::new()
                .param("part", "parametrization")
                .param("n", inst.graph.n())
                .metric("granularity", gran)
                .metric("paper_bound", paper)
                .metric("emek_bound", emek)
                .metric("bgi_bound", bgi),
        );
    }
    println!("{}", table.render());
    record.note(
        "CD wake-up completes in exactly ecc(src) ≤ D steps — the capability the \
                 no-CD lower bounds forbid",
    );
    record.note(
        "SINR is two-sided vs the protocol model: capture decodes strong links through \
         collisions, but interference suppresses edge-of-range links, so the same Decay \
         schedule can leave border nodes uninformed — the abstraction is neither strictly \
         pessimistic nor optimistic (footnote 1)",
    );
    record.note(
        "the paper's D·log_D α beats the granularity bound whenever g² ≫ log_D α·D \
                 (dense deployments) and is never asymptotically worse on these instances",
    );
    print_notes(&record);
    record
}
