//! E1 (Claim 10), E2 (Lemma 11) and E12 (constant calibration).

use super::{banner, print_notes};
use crate::Scale;
use radionet_analysis::table::f3;
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_graph::{generators, Graph};
use radionet_primitives::decay::{DecayConfig, DecayProtocol, DecaySchedule};
use radionet_primitives::effective_degree::{EedConfig, EedProtocol, EedVerdict};
use radionet_sim::{NetInfo, Sim};

/// Fraction of "should-hear" nodes (those with a neighbor in `set`) that
/// heard anything after `iterations` Decay iterations.
fn decay_delivery(g: &Graph, set: &[usize], iterations: u32, seed: u64) -> f64 {
    let info = NetInfo::exact(g);
    let schedule = DecaySchedule::new(info.log_n());
    let config = DecayConfig { iterations };
    let mut sim = Sim::new(g, info, seed);
    let mut states: Vec<DecayProtocol<u32>> = g
        .nodes()
        .map(|v| {
            let msg = set.contains(&v.index()).then_some(1u32);
            DecayProtocol::new(schedule, config, msg)
        })
        .collect();
    sim.run_phase(&mut states, config.total_steps(schedule) + 1);
    let mut should = 0usize;
    let mut did = 0usize;
    let in_set = |i: usize| set.contains(&i);
    for v in g.nodes() {
        if g.neighbors(v).iter().any(|u| in_set(u.index())) {
            should += 1;
            if states[v.index()].heard_any() {
                did += 1;
            }
        }
    }
    if should == 0 {
        1.0
    } else {
        did as f64 / should as f64
    }
}

/// E1 — Claim 10: `O(log n)` Decay iterations deliver to every neighbor of
/// the transmitting set whp.
pub fn e1_decay(scale: Scale) -> ExperimentRecord {
    let claim = "Claim 10: O(log n) Decay iterations inform all neighbors of S whp";
    banner("E1", claim);
    let mut record = ExperimentRecord::new("E1", claim);
    let mut table = Table::new(["topology", "n", "|S|", "iterations", "delivery"]);
    let trials = scale.trials() / 4;
    let n = 256;

    // The adversarial cases: a dense clique where everyone transmits, a star
    // where all leaves jam the hub, and a sparse random graph.
    let clique = generators::complete(n);
    let star = generators::star(n);
    let gnp = generators::random::gnp(
        n,
        8.0 / n as f64,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1),
    );
    let all: Vec<usize> = (0..n).collect();
    let leaves: Vec<usize> = (1..n).collect();
    let quarter: Vec<usize> = (0..n / 4).collect();
    let log_n = (n as f64).log2().ceil() as u32;
    let cases: [(&str, &Graph, &[usize]); 3] =
        [("clique", &clique, &all), ("star-leaves", &star, &leaves), ("gnp", &gnp, &quarter)];

    for (name, g, set) in cases {
        for &iters in &[1u32, 2, log_n / 2, log_n, 2 * log_n] {
            let mut sum = 0.0;
            for t in 0..trials {
                sum += decay_delivery(g, set, iters.max(1), t as u64 * 31 + 7);
            }
            let delivery = sum / trials as f64;
            table.row([
                name.to_string(),
                g.n().to_string(),
                set.len().to_string(),
                iters.max(1).to_string(),
                f3(delivery),
            ]);
            record.push(
                RunRecord::new()
                    .param("topology", name)
                    .param("n", g.n())
                    .param("set_size", set.len())
                    .param("iterations", iters.max(1))
                    .metric("delivery", delivery),
            );
        }
    }
    println!("{}", table.render());
    // The claim: at Θ(log n) iterations delivery reaches ~1.
    let worst_at_2logn = record
        .runs
        .iter()
        .filter(|r| r.params["iterations"] == (2 * log_n).to_string())
        .map(|r| r.metrics["delivery"])
        .fold(1.0f64, f64::min);
    record.note(format!(
        "worst delivery at 2·log n iterations: {worst_at_2logn:.4} (paper predicts 1 − n^-c)"
    ));
    print_notes(&record);
    record
}

/// Measured probability that EED answers High for a node of effective
/// degree `d`, realized on a star (hub listens to `leaves` leaves with
/// per-leaf desire `d / leaves`).
fn eed_high_prob(d: f64, trials: usize, config: EedConfig, base_seed: u64) -> f64 {
    let leaves = 32usize;
    let p_leaf = (d / leaves as f64).min(0.5);
    let g = generators::star(leaves + 1);
    let info = NetInfo::exact(&g);
    let log_n = info.log_n();
    let mut high = 0usize;
    for t in 0..trials {
        let mut sim = Sim::new(&g, info, base_seed + t as u64);
        let mut states: Vec<EedProtocol> = g
            .nodes()
            .map(|v| {
                let p = if v.index() == 0 { 0.0 } else { p_leaf };
                EedProtocol::new(config, log_n, p)
            })
            .collect();
        sim.run_phase(&mut states, config.total_steps(log_n) + 2);
        if states[0].verdict() == Some(EedVerdict::High) {
            high += 1;
        }
    }
    high as f64 / trials as f64
}

/// E2 — Lemma 11: EED classifies `d ≥ 1` as High and `d ≤ 0.01` as Low whp.
pub fn e2_eed(scale: Scale) -> ExperimentRecord {
    let claim = "Lemma 11: EED answers High if d >= 1, Low if d <= 0.01, whp";
    banner("E2", claim);
    let mut record = ExperimentRecord::new("E2", claim);
    let mut table = Table::new(["effective degree d", "P(High)", "Lemma 11 requires"]);
    let trials = scale.trials();
    let config = EedConfig::default();
    for &d in &[0.001, 0.01, 0.05, 0.2, 0.5, 1.0, 2.0, 8.0, 16.0] {
        let p_high = eed_high_prob(d, trials, config, 1000 + (d * 1000.0) as u64);
        let requirement = if d <= 0.01 {
            "Low (P(High) ~ 0)"
        } else if d >= 1.0 {
            "High (P(High) ~ 1)"
        } else {
            "either"
        };
        table.row([format!("{d}"), f3(p_high), requirement.to_string()]);
        record.push(
            RunRecord::new().param("d", d).param("regime", requirement).metric("p_high", p_high),
        );
    }
    println!("{}", table.render());
    let low_err = record
        .runs
        .iter()
        .filter(|r| r.params["d"].parse::<f64>().unwrap() <= 0.01)
        .map(|r| r.metrics["p_high"])
        .fold(0.0f64, f64::max);
    let high_err = record
        .runs
        .iter()
        .filter(|r| r.params["d"].parse::<f64>().unwrap() >= 1.0)
        .map(|r| 1.0 - r.metrics["p_high"])
        .fold(0.0f64, f64::max);
    record.note(format!("max P(High) in the Low regime: {low_err:.4}"));
    record.note(format!("max P(Low) in the High regime: {high_err:.4}"));
    print_notes(&record);
    record
}

/// E12 — S2 calibration: how the Decay/EED/MIS constants trade reliability
/// for time at simulation scale.
pub fn e12_calibration(scale: Scale) -> ExperimentRecord {
    let claim = "S2 calibration: constants vs empirical failure rates";
    banner("E12", claim);
    let mut record = ExperimentRecord::new("E12", claim);
    let trials = scale.trials() / 4;

    // (a) EED separation vs block length C.
    let mut table = Table::new(["C (steps/log n)", "P(High | d=4)", "P(High | d=0.005)"]);
    for &c in &[2u32, 4, 8, 16] {
        let config = EedConfig { c_steps: c, ..EedConfig::default() };
        let hi = eed_high_prob(4.0, trials, config, 31);
        let lo = eed_high_prob(0.005, trials, config, 77);
        table.row([c.to_string(), f3(hi), f3(lo)]);
        record.push(
            RunRecord::new()
                .param("knob", "eed_c_steps")
                .param("value", c)
                .metric("p_high_d4", hi)
                .metric("p_high_d005", lo),
        );
    }
    println!("{}", table.render());

    // (b) Radio MIS validity vs decay budget.
    use radionet_core::mis::{run_radio_mis, MisConfig};
    let mut table = Table::new(["decay_factor", "MIS valid rate", "mean rounds"]);
    let g = radionet_graph::families::Family::Gnp.instantiate(256, 3);
    let info = NetInfo::exact(&g);
    let seeds = (scale.seeds() * 2).max(4);
    for &f in &[0.5, 0.75, 1.0, 1.5] {
        let config = MisConfig { decay_factor: f, ..MisConfig::default() };
        let mut valid = 0usize;
        let mut rounds = 0.0;
        for s in 0..seeds {
            let mut sim = Sim::new(&g, info, 900 + s);
            let out = run_radio_mis(&mut sim, &config);
            if out.is_valid(&g) {
                valid += 1;
            }
            rounds += out.rounds as f64;
        }
        let rate = valid as f64 / seeds as f64;
        table.row([f.to_string(), f3(rate), format!("{:.1}", rounds / seeds as f64)]);
        record.push(
            RunRecord::new()
                .param("knob", "mis_decay_factor")
                .param("value", f)
                .metric("valid_rate", rate)
                .metric("mean_rounds", rounds / seeds as f64),
        );
    }
    println!("{}", table.render());

    // (c) Radio partition coverage vs per-phase decay iterations.
    use radionet_cluster::partition_radio::{run_radio_partition, RadioPartitionConfig};
    use radionet_graph::independent_set::greedy_mis_min_degree;
    let mut table = Table::new(["decay iters/phase", "coverage", "steps"]);
    let case = crate::GraphCase::new(radionet_graph::families::Family::UnitDisk, 512, 5);
    let mis = greedy_mis_min_degree(&case.graph);
    let mut flags = vec![false; case.graph.n()];
    for v in &mis {
        flags[v.index()] = true;
    }
    for &iters in &[1u32, 2, 3] {
        let config = RadioPartitionConfig {
            decay_iterations_per_phase: iters,
            ..RadioPartitionConfig::default()
        };
        let mut cov = 0.0;
        let mut steps = 0.0;
        for s in 0..scale.seeds() {
            let mut sim = Sim::new(&case.graph, case.info, 40 + s);
            let raw = run_radio_partition(&mut sim, &flags, 0.5, config);
            cov += raw.coverage();
            steps += raw.report.steps as f64;
        }
        let k = scale.seeds() as f64;
        table.row([iters.to_string(), f3(cov / k), format!("{:.0}", steps / k)]);
        record.push(
            RunRecord::new()
                .param("knob", "partition_decay_iters")
                .param("value", iters)
                .metric("coverage", cov / k)
                .metric("steps", steps / k),
        );
    }
    println!("{}", table.render());
    record.note("defaults: eed_c_steps=8, mis decay_factor=1.0 (fast: 0.75), 1 decay iter/phase");
    print_notes(&record);
    record
}
