//! E14 — dynamic-network scenarios: how the α-parametrized algorithms
//! degrade (and recover) under churn, partitions, jamming, and staggered
//! wake-up, swept in parallel.

use super::{banner, print_notes};
use crate::Scale;
use radionet_analysis::ingest::group_summaries;
use radionet_analysis::table::f2;
use radionet_analysis::{ExperimentRecord, Table};
use radionet_scenario::runner::{
    run_sweep_parallel, run_sweep_sequential, to_record, to_run_records, SweepConfig,
};

/// Scenario sweep sizes (smaller than the static sweeps: every cell runs a
/// full multi-phase algorithm under perturbation).
fn sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![48, 96],
        Scale::Full => vec![64, 256, 1024],
    }
}

/// E14 — the scenario sweep. Runs the full catalogue on the rayon runner,
/// cross-checks a Quick-scale slice against the sequential runner
/// (byte-identical results), and reports per-scenario success and timing.
pub fn e14_scenarios(scale: Scale) -> ExperimentRecord {
    let claim = "Dynamic networks: guarantee degradation under churn, partition/repair, jamming";
    banner("E14", claim);
    let config = SweepConfig::catalogue(sizes(scale), scale.seeds().min(3), 0xd1ce);
    let cell_count = config.cells().len();
    eprintln!("running {cell_count} cells on {} threads", rayon::current_num_threads());
    let results = run_sweep_parallel(&config);

    // Determinism cross-check: the parallel runner must reproduce the
    // sequential runner bit-for-bit on a slice (full set at Quick scale).
    let check = if scale == Scale::Quick {
        config.clone()
    } else {
        SweepConfig { sizes: vec![sizes(Scale::Quick)[0]], ..config.clone() }
    };
    let seq = run_sweep_sequential(&check);
    let par: Vec<_> =
        if scale == Scale::Quick { results.clone() } else { run_sweep_parallel(&check) };
    assert_eq!(seq, par, "parallel sweep diverged from sequential");

    let mut record = to_record("E14", claim, &results);
    let rows = to_run_records(&results);

    let mut table =
        Table::new(["scenario", "workload", "n", "ok", "achieved", "clock (mean)", "collisions"]);
    let groups = group_summaries(&rows, &["scenario", "n"], "clock_total");
    for (label, clock) in &groups {
        let (scenario, n) = label.split_once('/').unwrap_or((label.as_str(), "?"));
        let in_group: Vec<_> = rows
            .iter()
            .filter(|r| {
                r.params.get("scenario").map(String::as_str) == Some(scenario)
                    && r.params.get("n").map(String::as_str) == Some(n)
            })
            .collect();
        let k = in_group.len().max(1) as f64;
        let ok = in_group.iter().filter(|r| r.metrics["success"] == 1.0).count();
        let achieved = in_group.iter().map(|r| r.metrics["achieved"]).sum::<f64>() / k;
        let collisions = in_group.iter().map(|r| r.metrics["collisions"]).sum::<f64>() / k;
        let workload =
            in_group.first().and_then(|r| r.params.get("workload").cloned()).unwrap_or_default();
        table.row([
            scenario.to_string(),
            workload,
            n.to_string(),
            format!("{ok}/{}", in_group.len()),
            f2(achieved),
            format!("{:.0}", clock.mean),
            format!("{collisions:.0}"),
        ]);
    }
    println!("{}", table.render());

    // Notes: static cells are the control; each dynamics class reports its
    // worst-case achieved fraction.
    for dynamics in ["static", "churn", "partition-repair", "jamming", "staggered-wake"] {
        let achieved: Vec<f64> = rows
            .iter()
            .filter(|r| r.params.get("dynamics").map(String::as_str) == Some(dynamics))
            .map(|r| r.metrics["achieved"])
            .collect();
        if achieved.is_empty() {
            continue;
        }
        let worst = achieved.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = achieved.iter().sum::<f64>() / achieved.len() as f64;
        record.note(format!(
            "{dynamics}: mean achieved {mean:.2}, worst {worst:.2} over {} cells",
            achieved.len()
        ));
    }
    record.note(format!(
        "parallel runner verified byte-identical to sequential on {} cells",
        seq.len()
    ));
    print_notes(&record);
    record
}
