//! E20 — the `radionetd` serving layer: content-addressed caching on a
//! repeated-spec workload, and sharded sweep determinism.
//!
//! Two parts:
//!
//! 1. **Repeated-spec serving face-off**: a skewed workload (every
//!    distinct spec requested many times, the realistic shape for a
//!    parameter-tuning client or a dashboard re-querying fixed cells) is
//!    served once cold — every request a fresh `Driver::run` — and once
//!    through the [`ResultCache`]. Every served response is hard-asserted
//!    byte-identical to the cold report (determinism is what makes the
//!    cache sound); the cold/served throughput ratio is recorded, with a
//!    soft ≥ 10× acceptance bar on the repeated-spec workload.
//! 2. **Sharded sweep pin**: the sharded coordinator's merged JSONL stream
//!    over a distinct-spec sweep is hard-asserted byte-identical to the
//!    sequential `Driver::run_sweep` stream at 2 and 4 shards, and the
//!    walls are recorded (informational — shard wins depend on cores).

use super::{banner, print_notes};
use crate::Scale;
use radionet_analysis::table::f1;
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_api::{Driver, JsonlSink, RunSpec};
use radionet_graph::families::Family;
use radionet_service::{run_sweep_sharded, CacheConfig, ResultCache, ShardMode};
use std::time::Instant;

/// The distinct specs behind the repeated workload: a few tasks × families
/// at one size, seeds spread so every cell is a genuinely different run.
fn distinct_specs(count: usize, n: usize) -> Vec<RunSpec> {
    (0..count)
        .map(|i| {
            let (task, family) = match i % 4 {
                0 => ("broadcast", Family::Grid),
                1 => ("luby-mis", Family::Path),
                2 => ("broadcast", Family::Gnp),
                _ => ("luby-mis", Family::Grid),
            };
            RunSpec::new(task, family, n).with_seed(0xE20 + i as u64)
        })
        .collect()
}

/// E20 — serving layer: cache throughput and sharded determinism.
pub fn e20_service(scale: Scale) -> ExperimentRecord {
    let claim = "radionetd serving: repeated specs hit the cache, shards merge byte-identically";
    banner("E20", claim);
    let mut record = ExperimentRecord::new("E20", claim);
    let mut table = Table::new(["part", "arm", "requests", "distinct", "wall ms", "req/s"]);
    let driver = Driver::standard();

    // Part 1: the repeated-spec workload. The request sequence interleaves
    // the distinct specs round-robin, so the cache warms in the first lap
    // and every later lap is pure hit traffic.
    let (distinct, repeats, n) = match scale {
        Scale::Quick => (8usize, 25usize, 36usize),
        Scale::Full => (12, 40, 64),
    };
    let specs = distinct_specs(distinct, n);
    let requests: Vec<&RunSpec> = (0..distinct * repeats).map(|i| &specs[i % distinct]).collect();

    // Cold arm: every request executes fresh (what serving without a cache
    // costs). Min-of-3 walls — the runs are deterministic, the host isn't.
    const RUNS: usize = 3;
    let mut cold_wall = f64::INFINITY;
    let mut cold_reports = Vec::new();
    for _ in 0..RUNS {
        let start = Instant::now();
        let reports: Vec<_> =
            requests.iter().map(|spec| driver.run(spec).expect("cold run")).collect();
        cold_wall = cold_wall.min(start.elapsed().as_secs_f64().max(1e-9));
        cold_reports = reports;
    }

    // Served arm: the same requests through the content-addressed cache
    // (audits off — the audit is a correctness knob measured by its own
    // tests; here every response is byte-compared against cold anyway).
    let mut served_wall = f64::INFINITY;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for _ in 0..RUNS {
        let cache =
            ResultCache::open(CacheConfig { audit_fraction: 0.0, ..CacheConfig::default() })
                .expect("in-memory cache");
        let start = Instant::now();
        let served: Vec<_> =
            requests.iter().map(|spec| cache.serve(&driver, spec).expect("serve")).collect();
        served_wall = served_wall.min(start.elapsed().as_secs_f64().max(1e-9));
        // The hard acceptance: a served response is byte-identical to the
        // cold report for the same request, hit or miss.
        for (answer, cold) in served.iter().zip(&cold_reports) {
            assert_eq!(
                serde_json::to_string(&answer.report).unwrap(),
                serde_json::to_string(cold).unwrap(),
                "served response diverged from the fresh run"
            );
        }
        let stats = cache.stats();
        hits = stats.hits;
        misses = stats.misses;
    }
    assert_eq!(misses as usize, distinct, "first lap misses, everything else hits");
    assert_eq!(hits as usize, requests.len() - distinct);

    for (arm, wall) in [("cold", cold_wall), ("served", served_wall)] {
        let rps = requests.len() as f64 / wall;
        table.row([
            "repeated-spec".into(),
            arm.into(),
            requests.len().to_string(),
            distinct.to_string(),
            f1(wall * 1e3),
            f1(rps),
        ]);
        record.push(
            RunRecord::new()
                .param("part", "repeated-spec")
                .param("arm", arm)
                .param("n", n)
                .metric("requests", requests.len() as f64)
                .metric("distinct", distinct as f64)
                .metric("cache_hits", if arm == "served" { hits as f64 } else { 0.0 })
                .metric("wall_ms", wall * 1e3)
                .metric("requests_per_sec", rps),
        );
    }
    let speedup = cold_wall / served_wall;
    record.note(format!(
        "repeated-spec serving: {} requests over {distinct} distinct specs — served arm \
         {speedup:.1}x the cold throughput ({hits} hits / {misses} misses); every served \
         response byte-identical to its fresh run",
        requests.len(),
    ));
    // Like E15/E19, timing is a soft bar: correctness is the asserts above.
    if speedup < 10.0 {
        record.note(format!(
            "WARNING: measured served/cold speedup {speedup:.1}x is below the 10x bar — \
             expected only under heavy host contention (the workload repeats each spec \
             {repeats}x, so the cache-hit ceiling is ~{repeats}x)"
        ));
        eprintln!("E20: WARNING: served/cold speedup {speedup:.1}x below the 10x bar");
    }

    // Part 2: the sharded coordinator versus the sequential sweep, pinned
    // byte-for-byte on a distinct-spec list (no cache in this path).
    let sweep_specs = distinct_specs(
        match scale {
            Scale::Quick => 16,
            Scale::Full => 24,
        },
        n,
    );
    let mut sequential = Vec::new();
    let start = Instant::now();
    driver.run_sweep(&sweep_specs, &mut JsonlSink::new(&mut sequential)).expect("sequential");
    let seq_wall = start.elapsed().as_secs_f64().max(1e-9);
    table.row([
        "sharded-sweep".into(),
        "sequential".into(),
        sweep_specs.len().to_string(),
        sweep_specs.len().to_string(),
        f1(seq_wall * 1e3),
        f1(sweep_specs.len() as f64 / seq_wall),
    ]);
    record.push(
        RunRecord::new()
            .param("part", "sharded-sweep")
            .param("arm", "sequential")
            .param("n", n)
            .metric("cells", sweep_specs.len() as f64)
            .metric("wall_ms", seq_wall * 1e3),
    );
    for shards in [2usize, 4] {
        let mut merged = Vec::new();
        let start = Instant::now();
        let emitted = run_sweep_sharded(
            &driver,
            &sweep_specs,
            shards,
            &ShardMode::InProcess,
            &mut JsonlSink::new(&mut merged),
        )
        .expect("sharded sweep");
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(emitted, sweep_specs.len());
        // The hard acceptance: the merged stream is the sequential stream.
        assert_eq!(merged, sequential, "{shards}-way shard merge diverged from sequential");
        let arm = format!("{shards}-shard");
        table.row([
            "sharded-sweep".into(),
            arm.clone(),
            sweep_specs.len().to_string(),
            sweep_specs.len().to_string(),
            f1(wall * 1e3),
            f1(sweep_specs.len() as f64 / wall),
        ]);
        record.push(
            RunRecord::new()
                .param("part", "sharded-sweep")
                .param("arm", arm)
                .param("n", n)
                .param("shards", shards)
                .metric("cells", sweep_specs.len() as f64)
                .metric("wall_ms", wall * 1e3)
                .metric("speedup_vs_sequential", seq_wall / wall),
        );
    }
    record.note(format!(
        "sharded sweep: 2- and 4-way merged streams byte-identical to the sequential \
         {}-cell stream (walls informational; determinism is the claim)",
        sweep_specs.len(),
    ));

    println!("{}", table.render());
    print_notes(&record);
    record
}
