//! E18 — geometry-native SINR: the spatially-indexed sparse physical-
//! reception kernel versus the dense `O(listeners × transmitters)`
//! reference, on static and mobile topologies.
//!
//! Three parts:
//!
//! 1. **Kernel face-off** (all scales, `n ≥ 30 000`): a Decay workload —
//!    a handful of transmitters among tens of thousands of passive
//!    listeners scattered at constant density — runs the same fixed step
//!    budget under both kernels with SINR reception. The dense kernel
//!    evaluates every (listener, transmitter) gain every step; the sparse
//!    kernel resolves reception through the decode-range spatial index,
//!    touching only listeners physically near a transmitter. Reports and
//!    RNG streams are asserted identical (the `Exact` far-field policy)
//!    and the acceptance bar is a ≥ 5× wall-clock win — in practice it is
//!    orders of magnitude.
//! 2. **Mobility × SINR** end-to-end: a `mobility:waypoint` broadcast
//!    cell with geometry-calibrated SINR runs through `Driver::run` under
//!    both kernels; outcome, counters, RNG fingerprint, and the mobility
//!    trace are asserted identical.
//! 3. **Far-field cutoff**: the same face-off under
//!    `FarFieldPolicy::Cutoff(eps)` — deliveries may only move one way
//!    (truncation under-counts interference), and the drift is recorded.

use super::{banner, print_notes};
use crate::Scale;
use radionet_analysis::table::f1;
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_api::{Driver, Dynamics, RunSpec};
use radionet_graph::families::Family;
use radionet_graph::Graph;
use radionet_primitives::decay::{DecayConfig, DecayProtocol, DecaySchedule};
use radionet_sim::{FarFieldPolicy, Kernel, NetInfo, PhaseReport, ReceptionMode, Sim, SinrConfig};
use std::time::Instant;

/// Transmitting-set size in the face-off (sparse physical activity).
const FACEOFF_SOURCES: usize = 32;

/// One timed SINR face-off run over an *edgeless* base graph (physical
/// reception ignores adjacency entirely, so this isolates exactly the
/// reception-resolution cost); returns the report, RNG fingerprint, and
/// wall seconds.
fn faceoff_run(
    n: usize,
    positions: &[[f64; 3]],
    kernel: Kernel,
    far_field: FarFieldPolicy,
    budget: u64,
) -> (PhaseReport, u64, f64) {
    let g = Graph::from_edges(n, []).expect("edgeless graph");
    let info = NetInfo { n, d: 1, alpha: n as f64 };
    let schedule = DecaySchedule::new(info.log_n());
    let config = DecayConfig { iterations: u32::MAX / schedule.steps_per_iteration() };
    let mode = ReceptionMode::Sinr(
        SinrConfig::for_unit_range(positions.to_vec(), 1.0).with_far_field(far_field),
    );
    let mut sim = Sim::with_reception(&g, info, 0xe18, mode);
    sim.set_kernel(kernel);
    let stride = n / FACEOFF_SOURCES;
    let mut states: Vec<DecayProtocol<u64>> = (0..n)
        .map(|i| {
            let msg = (i % stride == 0).then_some(i as u64);
            DecayProtocol::new(schedule, config, msg)
        })
        .collect();
    let start = Instant::now();
    let rep = sim.run_phase(&mut states, budget);
    (rep, sim.rng_fingerprint(), start.elapsed().as_secs_f64().max(1e-9))
}

/// E18 — SINR reception: spatial-index sparse kernel vs dense reference.
pub fn e18_sinr(scale: Scale) -> ExperimentRecord {
    let claim = "SINR reception: spatially-indexed sparse kernel beats the dense O(L\u{d7}T) scan";
    banner("E18", claim);
    let mut record = ExperimentRecord::new("E18", claim);

    // Part 1: kernel face-off at constant density, n ≥ 30k.
    let n = match scale {
        Scale::Quick => 30_000usize,
        Scale::Full => 100_000,
    };
    let geo = super::udg_geometry(n, 0xe18);
    let budget =
        12 * DecaySchedule::new((n as f64).log2().ceil() as u32).steps_per_iteration() as u64;
    let mut table = Table::new(["part", "kernel", "n", "steps", "deliveries", "wall ms"]);
    let mut walls = [0.0f64; 2];
    let mut outcomes = Vec::new();
    for (k, kernel) in [Kernel::Sparse, Kernel::Dense].into_iter().enumerate() {
        let (rep, fp, wall) = faceoff_run(n, &geo.points, kernel, FarFieldPolicy::Exact, budget);
        walls[k] = wall;
        table.row([
            "faceoff".into(),
            kernel.name().into(),
            n.to_string(),
            rep.steps.to_string(),
            rep.deliveries.to_string(),
            f1(wall * 1e3),
        ]);
        record.push(
            RunRecord::new()
                .param("part", "faceoff")
                .param("kernel", kernel.name())
                .param("n", n)
                .metric("steps", rep.steps as f64)
                .metric("transmissions", rep.transmissions as f64)
                .metric("deliveries", rep.deliveries as f64)
                .metric("collisions", rep.collisions as f64)
                .metric("wall_ms", wall * 1e3),
        );
        outcomes.push((rep, fp));
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "SINR kernels diverged on the face-off workload (Exact policy)"
    );
    assert!(
        outcomes[0].0.deliveries > 0,
        "degenerate face-off: physical reception never delivered"
    );
    let speedup = walls[1] / walls[0];
    // The acceptance bar from the issue: ≥ 5× at ≥ 30k nodes with
    // identical reports. Measured margins are far larger, so a hard
    // assert is safe even on contended hosts.
    assert!(
        speedup >= 5.0,
        "sparse SINR kernel speedup {speedup:.1}x is below the 5x acceptance bar"
    );
    record.note(format!(
        "SINR face-off: sparse {speedup:.1}x faster than dense at n = {n} over {budget} steps \
         ({FACEOFF_SOURCES} sources); reports and RNG streams identical under Exact"
    ));

    // Part 2: mobility × SINR end-to-end through the façade. Sizes are
    // modest: a Compete broadcast keeps *many* simultaneous transmitters
    // on the air, so per-step SINR work scales with physical density in
    // both kernels — this part pins end-to-end equality, not throughput
    // (part 1 is the throughput claim).
    let mob_n = match scale {
        Scale::Quick => 1_000usize,
        Scale::Full => 4_000,
    };
    let driver = Driver::standard();
    let spec = RunSpec::new("broadcast", Family::UnitDisk, mob_n)
        .with_seed(0xe18)
        .with_dynamics(Dynamics::preset("mobility:waypoint").expect("standard preset"))
        .with_reception(ReceptionMode::Sinr(SinrConfig::geometric()));
    let mut reports = Vec::new();
    for kernel in [Kernel::Sparse, Kernel::Dense] {
        let start = Instant::now();
        let report = driver
            .run(&spec.clone().with_kernel(kernel))
            .expect("mobility x SINR spec must run end-to-end");
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        table.row([
            "mobility".into(),
            kernel.name().into(),
            report.n.to_string(),
            report.stats.simulated_steps.to_string(),
            report.stats.deliveries.to_string(),
            f1(wall * 1e3),
        ]);
        record.push(
            RunRecord::new()
                .param("part", "mobility")
                .param("kernel", kernel.name())
                .param("n", report.n)
                .metric("steps", report.stats.simulated_steps as f64)
                .metric("deliveries", report.stats.deliveries as f64)
                .metric("informed", report.achieved)
                .metric("wall_ms", wall * 1e3),
        );
        assert_eq!(report.stats.kernel_fallbacks, 0, "sparse SINR must not fall back");
        reports.push(report);
    }
    assert_eq!(reports[0].outcome, reports[1].outcome, "mobility x SINR outcomes diverged");
    assert_eq!(reports[0].stats, reports[1].stats, "mobility x SINR counters diverged");
    assert_eq!(reports[0].rng_fingerprint, reports[1].rng_fingerprint);
    assert_eq!(reports[0].mobility, reports[1].mobility, "mobility traces diverged");
    record.note(format!(
        "mobility x SINR (waypoint UDG, n = {}): sparse and dense reports byte-identical, \
         informed fraction {:.3}",
        reports[0].n, reports[0].achieved
    ));

    // Part 3: far-field cutoff drift on the face-off instance.
    let eps = 0.125;
    let (cut, _, cut_wall) =
        faceoff_run(n, &geo.points, Kernel::Sparse, FarFieldPolicy::Cutoff(eps), budget);
    let exact = &outcomes[0].0;
    table.row([
        format!("cutoff eps={eps}"),
        "sparse".into(),
        n.to_string(),
        cut.steps.to_string(),
        cut.deliveries.to_string(),
        f1(cut_wall * 1e3),
    ]);
    assert!(
        cut.deliveries >= exact.deliveries && cut.collisions <= exact.collisions,
        "cutoff truncation must be one-sided (can only flip collisions into deliveries)"
    );
    let flipped = cut.deliveries - exact.deliveries;
    record.push(
        RunRecord::new()
            .param("part", "cutoff")
            .param("kernel", "sparse")
            .param("n", n)
            .metric("eps", eps)
            .metric("deliveries", cut.deliveries as f64)
            .metric("flipped_vs_exact", flipped as f64)
            .metric("wall_ms", cut_wall * 1e3),
    );
    record.note(format!(
        "far-field Cutoff(eps = {eps}): {flipped} of {} deliveries flipped from borderline \
         collisions (one-sided, omitted interference <= eps*noise)",
        cut.deliveries
    ));

    println!("{}", table.render());
    print_notes(&record);
    record
}
