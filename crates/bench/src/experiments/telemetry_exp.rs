//! E21 — telemetry overhead guard: observing never steers, and the
//! disabled path costs nothing.
//!
//! Two parts, mirroring E15's journal-off probe (Part 1b) one layer up:
//!
//! 1. **Engine probe**: the E15 sparse Decay face-off workload runs under
//!    the default [`NoTelemetry`] handle and under a live [`Registry`].
//!    Reports and RNG fingerprints are asserted identical (hard — metrics
//!    must never perturb the deterministic surface), then the min-of-N
//!    wall-clock ratio is checked with the E15 policy: soft warning at the
//!    2% bar, hard assert at 15%. The live registry is also checked to
//!    have actually recorded samples, so the ratio can't silently compare
//!    dead code against dead code.
//! 2. **Driver equivalence**: catalogue-style specs run through a plain
//!    [`Driver`] and one with an attached registry; the full
//!    [`RunReport`]s (RNG fingerprint included) must be bit-identical,
//!    and the registry must carry the driver-stage and kernel histograms.

use super::{banner, print_notes};
use crate::Scale;
use radionet_analysis::table::f1;
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_api::{Driver, Dynamics, RunSpec};
use radionet_graph::families::Family;
use radionet_graph::{generators, Graph};
use radionet_primitives::decay::{DecayConfig, DecayProtocol, DecaySchedule};
use radionet_sim::{
    Kernel, NetInfo, NoTelemetry, NullSink, PhaseReport, ReceptionMode, Registry, Sim,
    StaticTopology, Telemetry,
};
use std::time::Instant;

/// Nodes in the engine probe (the E15 face-off grid).
const PROBE_SIDE: usize = 316;
/// Transmitting-set size (sparse activity).
const PROBE_SOURCES: usize = 32;
/// Timed repetitions; the minimum wall is compared.
const PROBE_RUNS: usize = 5;

/// One timed probe run under an explicit telemetry handle; returns the
/// report, RNG fingerprint, and wall seconds.
fn probe_run<M: Telemetry>(
    g: &Graph,
    info: NetInfo,
    budget: u64,
    tel: M,
) -> (PhaseReport, u64, f64) {
    let schedule = DecaySchedule::new(info.log_n());
    let config = DecayConfig { iterations: u32::MAX / schedule.steps_per_iteration() };
    let mut sim = Sim::try_instrumented(
        g,
        StaticTopology,
        info,
        0xe21,
        ReceptionMode::Protocol,
        NullSink,
        tel,
    )
    .expect("protocol-mode construction is infallible");
    sim.set_kernel(Kernel::Sparse);
    let stride = g.n() / PROBE_SOURCES;
    let mut states: Vec<DecayProtocol<u64>> = g
        .nodes()
        .map(|v| {
            let msg = (v.index() % stride == 0).then_some(v.index() as u64);
            DecayProtocol::new(schedule, config, msg)
        })
        .collect();
    let start = Instant::now();
    let rep = sim.run_phase(&mut states, budget);
    (rep, sim.rng_fingerprint(), start.elapsed().as_secs_f64().max(1e-9))
}

/// E21 — telemetry: identical results on and off, near-zero cost.
pub fn e21_telemetry(scale: Scale) -> ExperimentRecord {
    let claim = "Telemetry observes, never steers: identical results, near-zero cost";
    banner("E21", claim);
    let mut record = ExperimentRecord::new("E21", claim);
    let mut table = Table::new(["probe", "telemetry", "n", "steps", "wall ms"]);

    // Part 1: engine probe — NoTelemetry vs a live Registry on the E15
    // face-off workload, long enough to resolve a 2% ratio.
    let g = generators::grid2d(PROBE_SIDE, PROBE_SIDE);
    let info = NetInfo::exact(&g);
    let budget = 8 * 48 * DecaySchedule::new(info.log_n()).steps_per_iteration() as u64;
    let baseline = probe_run(&g, info, budget, NoTelemetry);
    let mut off_wall = f64::INFINITY;
    let mut on_wall = f64::INFINITY;
    for _ in 0..PROBE_RUNS {
        let off = probe_run(&g, info, budget, NoTelemetry);
        let live = Registry::default();
        let on = probe_run(&g, info, budget, live.clone());
        assert_eq!((&off.0, off.1), (&baseline.0, baseline.1), "NoTelemetry run not reproducible");
        assert_eq!((&on.0, on.1), (&baseline.0, baseline.1), "a live Registry perturbed the run");
        // Guard the guard: the live side must have recorded real samples,
        // or the ratio below compares dead code against dead code.
        let snap = live.snapshot();
        assert_eq!(snap.counter("sim_phases"), Some(1), "live registry saw no phase");
        assert!(
            snap.histograms.iter().any(|h| h.name == "sim_phase_micros" && h.count > 0),
            "live registry recorded no phase timing"
        );
        off_wall = off_wall.min(off.2);
        on_wall = on_wall.min(on.2);
    }
    for (label, wall) in [("off", off_wall), ("on", on_wall)] {
        table.row([
            "decay-sparse".into(),
            label.into(),
            g.n().to_string(),
            baseline.0.steps.to_string(),
            f1(wall * 1e3),
        ]);
    }
    let overhead = off_wall / on_wall - 1.0;
    record.push(
        RunRecord::new()
            .param("probe", "engine")
            .param("n", g.n())
            .metric("off_wall_ms", off_wall * 1e3)
            .metric("on_wall_ms", on_wall * 1e3)
            .metric("overhead", overhead),
    );
    record.note(format!(
        "engine probe: NoTelemetry {:.1} ms vs live Registry {:.1} ms (min of {PROBE_RUNS}; \
         {:+.1}% = disabled relative to enabled); reports and RNG streams identical",
        off_wall * 1e3,
        on_wall * 1e3,
        overhead * 1e2,
    ));
    // E15 policy: a wall-clock ratio on a contended runner can flake, so
    // the 2% bar only warns; only a gross regression (instrumentation no
    // longer compiled out, or accumulators gone per-step-hot) fails hard.
    if overhead > 0.02 {
        record.note(format!(
            "WARNING: NoTelemetry measured {:.1}% slower than a live Registry — the \
             zero-cost-when-off claim expects ~0; expected only under heavy host contention",
            overhead * 1e2
        ));
        eprintln!("E21: WARNING: disabled-path overhead {:.1}% above the 2% bar", overhead * 1e2);
    }
    assert!(
        overhead < 0.15,
        "NoTelemetry costs {:.1}% over a live Registry — instrumentation is no longer \
         compiled out of the telemetry-off hot path",
        overhead * 1e2
    );

    // Part 2: driver equivalence — full reports (fingerprints included)
    // bit-identical with telemetry attached, across kernels and dynamics.
    let n = match scale {
        Scale::Quick => 64,
        Scale::Full => 256,
    };
    let specs = [
        RunSpec::new("broadcast", Family::Grid, n).with_seed(7),
        RunSpec::new("mis", Family::UnitDisk, n).with_seed(3).with_kernel(Kernel::Dense),
        RunSpec::new("leader-election", Family::Grid, n).with_seed(1).with_kernel(Kernel::Event),
        RunSpec::new("broadcast", Family::UnitDisk, n)
            .with_seed(5)
            .with_dynamics(Dynamics::preset("churn").expect("churn is a standard preset")),
    ];
    let tel = Registry::default();
    let plain_driver = Driver::standard();
    let timed_driver = Driver::standard().with_telemetry(tel.clone());
    for spec in &specs {
        let plain = plain_driver.run(spec).expect("probe specs are valid");
        let timed = timed_driver.run(spec).expect("probe specs are valid");
        assert_eq!(plain, timed, "telemetry changed the report for {:?}", spec.task);
        record.push(
            RunRecord::new()
                .param("probe", "driver")
                .param("task", &spec.task)
                .param("kernel", format!("{:?}", spec.kernel).to_lowercase())
                .param("n", n)
                .metric("identical", 1.0)
                .metric("rng_fingerprint_matches", 1.0),
        );
    }
    let snap = tel.snapshot();
    assert_eq!(snap.counter("driver_runs"), Some(specs.len() as u64));
    for name in ["driver_setup_micros", "driver_simulate_micros", "driver_report_micros"] {
        assert!(
            snap.histograms.iter().any(|h| h.name == name && h.count == specs.len() as u64),
            "missing driver stage histogram {name}"
        );
    }
    record.note(format!(
        "driver equivalence: {} specs (broadcast/mis/leader-election; sparse/dense/event \
         kernels; static + churn dynamics) bit-identical with telemetry attached, \
         fingerprints included; registry carries all driver-stage histograms",
        specs.len()
    ));

    println!("{}", table.render());
    print_notes(&record);
    record
}
