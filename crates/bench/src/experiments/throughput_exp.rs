//! E15 — step-kernel throughput: the sparse active-set kernel versus the
//! dense reference kernel on sparse radio workloads, up to million-node
//! broadcast.
//!
//! Two parts:
//!
//! 1. **Kernel face-off** (all scales): a sparse Decay workload — a handful
//!    of transmitters among `n ≈ 100 000` passive listeners — runs the same
//!    fixed step budget under both kernels. The dense kernel pays `Θ(n)`
//!    per step; the sparse kernel pays for the transmitters and their
//!    neighborhoods. Results are asserted identical (the at-scale
//!    differential check) and the speedup is recorded; the acceptance bar
//!    is ≥ 5×, in practice it is orders of magnitude.
//! 2. **Million-node broadcast** (`Full` scale): quiescing Decay flood
//!    (BGI with local termination) on a 1000×1000 grid — the
//!    bounded-independence regime where activity is a thin frontier. The
//!    run must inform every node; throughput is reported in node-steps/s,
//!    where a node-step is one node's worth of dense-equivalent work.

use super::{banner, print_notes};
use crate::Scale;
use radionet_analysis::table::f1;
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_graph::generators;
use radionet_graph::Graph;
use radionet_journal::{ClassMask, Recorder};
use radionet_primitives::decay::{DecayConfig, DecayProtocol, DecaySchedule};
use radionet_primitives::flood::FloodProtocol;
use radionet_sim::{JournalSink, Kernel, NetInfo, PhaseReport, ReceptionMode, Sim, StaticTopology};
use std::time::Instant;

/// Nodes in the kernel face-off (a 316×316 grid).
const FACEOFF_SIDE: usize = 316;
/// Transmitting-set size in the face-off (sparse activity).
const FACEOFF_SOURCES: usize = 32;

/// One timed face-off run; returns the report, RNG fingerprint and wall
/// seconds.
fn faceoff_run(g: &Graph, info: NetInfo, kernel: Kernel, budget: u64) -> (PhaseReport, u64, f64) {
    faceoff_sink(g, info, kernel, budget, radionet_sim::NullSink)
}

/// [`faceoff_run`] under an explicit event sink — the journal-off overhead
/// probe swaps in an empty-mask [`Recorder`] to price the instrumentation
/// against the monomorphized-away [`NullSink`](radionet_sim::NullSink).
fn faceoff_sink<J: JournalSink>(
    g: &Graph,
    info: NetInfo,
    kernel: Kernel,
    budget: u64,
    sink: J,
) -> (PhaseReport, u64, f64) {
    let schedule = DecaySchedule::new(info.log_n());
    let config = DecayConfig { iterations: u32::MAX / schedule.steps_per_iteration() };
    let mut sim =
        Sim::try_with_journal(g, StaticTopology, info, 0xe15, ReceptionMode::Protocol, sink)
            .expect("protocol-mode construction is infallible");
    sim.set_kernel(kernel);
    let stride = g.n() / FACEOFF_SOURCES;
    let mut states: Vec<DecayProtocol<u64>> = g
        .nodes()
        .map(|v| {
            let msg = (v.index() % stride == 0).then_some(v.index() as u64);
            DecayProtocol::new(schedule, config, msg)
        })
        .collect();
    let start = Instant::now();
    let rep = sim.run_phase(&mut states, budget);
    (rep, sim.rng_fingerprint(), start.elapsed().as_secs_f64().max(1e-9))
}

/// The million-node quiescing-flood broadcast; returns
/// `(n, steps, informed_fraction, wall_secs)`.
fn million_broadcast(side: usize) -> (usize, u64, f64, f64) {
    let g = generators::grid2d(side, side);
    let info = NetInfo::exact(&g);
    let schedule = DecaySchedule::new(info.log_n());
    let mut sim = Sim::new(&g, info, 0x1e6);
    let mut states: Vec<FloodProtocol<u64>> = g
        .nodes()
        .map(|v| {
            FloodProtocol::with_quiesce(schedule, (v.index() == 0).then_some(7), 2 * info.log_n())
        })
        .collect();
    let l = info.log_n() as u64;
    let budget = 16 * (info.d as u64 * l + l * l);
    // One phase: quiescence makes completion engine-detectable (every node
    // informed *and* retired), so no harness-side chunked polling — which
    // would re-scan all n nodes per chunk — is needed.
    let start = Instant::now();
    let rep = sim.run_phase(&mut states, budget);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let informed = states.iter().filter(|s| s.best().is_some()).count() as f64 / g.n() as f64;
    (g.n(), rep.steps, informed, wall)
}

/// E15 — sparse step-kernel throughput and the million-node run.
pub fn e15_throughput(scale: Scale) -> ExperimentRecord {
    let claim = "Sparse active-set kernel: step cost tracks radio activity, not n";
    banner("E15", claim);
    let mut record = ExperimentRecord::new("E15", claim);
    let mut table = Table::new(["workload", "kernel", "n", "steps", "wall ms", "Msteps/s (node)"]);

    // Part 1: kernel face-off at n ≈ 100k, fixed step budget.
    let g = generators::grid2d(FACEOFF_SIDE, FACEOFF_SIDE);
    let info = NetInfo::exact(&g);
    let budget = 48 * DecaySchedule::new(info.log_n()).steps_per_iteration() as u64;
    let mut walls = [0.0f64; 2];
    let mut reports = Vec::new();
    for (k, kernel) in [Kernel::Sparse, Kernel::Dense].into_iter().enumerate() {
        let (rep, fp, wall) = faceoff_run(&g, info, kernel, budget);
        walls[k] = wall;
        let node_steps = rep.steps as f64 * g.n() as f64;
        table.row([
            "decay-sparse".into(),
            format!("{kernel:?}").to_lowercase(),
            g.n().to_string(),
            rep.steps.to_string(),
            f1(wall * 1e3),
            f1(node_steps / wall / 1e6),
        ]);
        record.push(
            RunRecord::new()
                .param("workload", "decay-sparse")
                .param("kernel", format!("{kernel:?}").to_lowercase())
                .param("n", g.n())
                .metric("steps", rep.steps as f64)
                .metric("transmissions", rep.transmissions as f64)
                .metric("deliveries", rep.deliveries as f64)
                .metric("wall_ms", wall * 1e3)
                .metric("node_steps_per_sec", node_steps / wall),
        );
        reports.push((rep, fp));
    }
    assert_eq!(reports[0], reports[1], "kernels diverged on the face-off workload");
    let speedup = walls[1] / walls[0];
    record.note(format!(
        "kernel face-off: sparse {speedup:.1}x faster than dense at n = {} over {budget} steps \
         ({} transmitters); reports and RNG streams identical",
        g.n(),
        FACEOFF_SOURCES,
    ));
    // The 5x bar is a soft check: wall-clock ratios on a contended CI
    // runner can flake, and a timing dip must not abort the whole
    // experiment batch (the criterion `kernel` bench is the stable
    // measurement; correctness is the hard assert above).
    if speedup < 5.0 {
        record.note(format!(
            "WARNING: measured speedup {speedup:.1}x is below the 5x bar — expected only \
             under heavy host contention; see benches/kernel.rs for the stable measurement"
        ));
        eprintln!("E15: WARNING: sparse/dense speedup {speedup:.1}x below the 5x bar");
    }

    // Part 1b: journal-off overhead probe. The engine is generic over a
    // JournalSink; with the default NullSink every emission site must
    // monomorphize to dead code. Price the NullSink hot path against an
    // *empty-mask* Recorder (sink live, every event filtered out) on the
    // sparse face-off: min-of-N wall clocks, so scheduler noise cancels.
    // Observing must not perturb — reports and RNG streams are asserted
    // identical across sinks (hard); the wall-clock ratio check is soft at
    // the 2% bar and hard only at 15%, same policy as the speedup bar.
    const PROBE_RUNS: usize = 5;
    // The sparse face-off finishes in single-digit milliseconds, far too
    // short to resolve a 2% ratio; the probe runs a longer budget so the
    // measured window is tens of milliseconds.
    let probe_budget = budget * 8;
    let mut null_wall = f64::INFINITY;
    let mut rec_wall = f64::INFINITY;
    let baseline = faceoff_run(&g, info, Kernel::Sparse, probe_budget);
    for _ in 0..PROBE_RUNS {
        let null = faceoff_run(&g, info, Kernel::Sparse, probe_budget);
        let rec =
            faceoff_sink(&g, info, Kernel::Sparse, probe_budget, Recorder::new(ClassMask::NONE, 0));
        assert_eq!((&null.0, null.1), (&baseline.0, baseline.1), "NullSink run not reproducible");
        assert_eq!(
            (&rec.0, rec.1),
            (&baseline.0, baseline.1),
            "an empty-mask Recorder perturbed the run"
        );
        null_wall = null_wall.min(null.2);
        rec_wall = rec_wall.min(rec.2);
    }
    let overhead = null_wall / rec_wall - 1.0;
    record.push(
        RunRecord::new()
            .param("workload", "journal-off-probe")
            .param("kernel", "sparse")
            .param("n", g.n())
            .metric("null_wall_ms", null_wall * 1e3)
            .metric("empty_recorder_wall_ms", rec_wall * 1e3)
            .metric("overhead", overhead),
    );
    record.note(format!(
        "journal-off probe: NullSink {:.1} ms vs empty-mask Recorder {:.1} ms \
         (min of {PROBE_RUNS}; {:+.1}% = NullSink relative to the live sink); \
         reports and RNG streams identical across sinks",
        null_wall * 1e3,
        rec_wall * 1e3,
        overhead * 1e2,
    ));
    if overhead > 0.02 {
        record.note(format!(
            "WARNING: NullSink measured {:.1}% slower than an empty-mask Recorder — the \
             zero-cost-when-off claim expects ~0; expected only under heavy host contention",
            overhead * 1e2
        ));
        eprintln!("E15: WARNING: NullSink overhead {:.1}% above the 2% bar", overhead * 1e2);
    }
    assert!(
        overhead < 0.15,
        "NullSink costs {:.1}% over an empty-mask Recorder — instrumentation is no longer \
         compiled out of the journal-off hot path",
        overhead * 1e2
    );

    // Part 2: million-node broadcast (Full scale only — ~10 s release).
    if scale == Scale::Full {
        let (n, steps, informed, wall) = million_broadcast(1000);
        let node_steps = steps as f64 * n as f64;
        table.row([
            "flood-bcast".into(),
            "sparse".into(),
            n.to_string(),
            steps.to_string(),
            f1(wall * 1e3),
            f1(node_steps / wall / 1e6),
        ]);
        record.push(
            RunRecord::new()
                .param("workload", "flood-bcast")
                .param("kernel", "sparse")
                .param("n", n)
                .metric("steps", steps as f64)
                .metric("informed", informed)
                .metric("wall_ms", wall * 1e3)
                .metric("node_steps_per_sec", node_steps / wall),
        );
        assert!(
            informed >= 1.0,
            "million-node broadcast left {:.4}% uninformed",
            (1.0 - informed) * 100.0
        );
        record.note(format!(
            "million-node broadcast: n = {n}, {steps} simulated steps, all informed in \
             {:.1} s ({:.0}M dense-equivalent node-steps/s)",
            wall,
            node_steps / wall / 1e6
        ));
    } else {
        record.note("million-node broadcast runs at Full scale only".to_string());
    }

    println!("{}", table.render());
    print_notes(&record);
    record
}
