//! E22 — streaming traffic workloads: the multi-message delivery pipeline
//! (deterministic arrival plans → kernel injections → queue-draining
//! gossip → delivery ledger) at scale and across the graph catalogue.
//!
//! Three parts:
//!
//! 1. **At-scale differential check**: one `traffic.gossip` cell on a
//!    ~100 000-node grid, run under all three kernels. Outcome, the
//!    traffic report (throughput + latency percentiles), RNG fingerprints,
//!    kernel-invariant stats and sparse/event scheduler parity are all
//!    hard-asserted byte-identical — the streaming pipeline lives inside
//!    the same deterministic surface as every one-shot task.
//! 2. **Throughput vs α**: the same workload across the family catalogue
//!    (clique → hypercube → star → grid → cycle → path). Delivered
//!    throughput is *not* monotone in α alone — it tracks the flood
//!    completion time, which couples diameter and contention — but the
//!    extremes are pinned: the clique (α = 1, D = 1) must out-deliver the
//!    path (D = n − 1), whose floods cannot finish inside the drain
//!    window. The full curve goes into the record for the paper plot.
//! 3. **Sequential ≡ rayon**: a small spec sweep executed twice — a plain
//!    loop and a rayon parallel iterator — must serialize to the
//!    byte-identical report list (cell seeds are derived, never shared).

use super::{banner, print_notes};
use crate::Scale;
use radionet_analysis::table::f1;
use radionet_analysis::{ExperimentRecord, RunRecord, Table};
use radionet_api::{Arrival, Driver, PoissonArrival, RunReport, RunSpec, TrafficKind, TrafficSpec};
use radionet_graph::families::Family;
use radionet_sim::Kernel;
use rayon::prelude::*;
use std::time::Instant;

/// Node count of the at-scale cell (a 316×316 grid).
const FACEOFF_N: usize = 316 * 316;

/// The at-scale workload: arrivals spaced a few relay hot-windows apart
/// (so the pipeline holds a handful of in-flight floods, not a burst that
/// oversubscribes the round-robin airtime), then a long drain — the
/// 316×316 grid has diameter 630, so the horizon must hold a full
/// cross-grid flood per message.
fn faceoff_spec(messages: u32) -> TrafficSpec {
    TrafficSpec {
        arrival: Arrival::Poisson(PoissonArrival { per_10k: 15 }),
        senders: 8,
        messages,
        horizon: 4096,
        multicast_per_mille: 250,
    }
}

fn run_traffic(
    driver: &Driver,
    task: &str,
    family: Family,
    n: usize,
    seed: u64,
    tspec: TrafficSpec,
    kernel: Kernel,
) -> (RunReport, f64) {
    let spec =
        RunSpec::new(task, family, n).with_seed(seed).with_traffic(tspec).with_kernel(kernel);
    let start = Instant::now();
    let report = driver.run(&spec).unwrap_or_else(|e| panic!("{task} on {family:?}/{n}: {e}"));
    (report, start.elapsed().as_secs_f64().max(1e-9))
}

/// E22 — streaming traffic: delivery pipeline at scale, throughput vs α.
pub fn e22_traffic(scale: Scale) -> ExperimentRecord {
    let claim = "Streaming traffic: kernels agree byte-for-byte at 100k nodes; \
                 delivered throughput spans the family catalogue";
    banner("E22", claim);
    let mut record = ExperimentRecord::new("E22", claim);
    let mut table = Table::new([
        "part",
        "cell",
        "kernel",
        "n",
        "alpha",
        "inj",
        "dlv",
        "thpt/kstep",
        "full p99",
        "wall ms",
    ]);
    let driver = Driver::standard();

    // Part 1: the at-scale differential check.
    let messages = match scale {
        Scale::Quick => 4,
        Scale::Full => 8,
    };
    let tspec = faceoff_spec(messages);
    let mut runs = Vec::new();
    for kernel in [Kernel::Sparse, Kernel::Dense, Kernel::Event] {
        let (report, wall) =
            run_traffic(&driver, "traffic.gossip", Family::Grid, FACEOFF_N, 0xe22, tspec, kernel);
        let t = report.traffic.expect("traffic task must emit a traffic report");
        table.row([
            "faceoff".into(),
            "grid-100k".into(),
            format!("{kernel:?}").to_lowercase(),
            report.n.to_string(),
            f1(report.alpha),
            t.injected.to_string(),
            t.delivered.to_string(),
            f1(t.throughput_per_kstep),
            t.full_p99.to_string(),
            f1(wall * 1e3),
        ]);
        record.push(
            RunRecord::new()
                .param("part", "faceoff")
                .param("kernel", format!("{kernel:?}").to_lowercase())
                .param("n", report.n)
                .metric("injected", t.injected as f64)
                .metric("delivered", t.delivered as f64)
                .metric("throughput_per_kstep", t.throughput_per_kstep)
                .metric("first_p99", t.first_p99 as f64)
                .metric("full_p99", t.full_p99 as f64)
                .metric("wall_ms", wall * 1e3),
        );
        runs.push(report);
    }
    let key = |r: &RunReport| (r.outcome, r.traffic, r.stats.kernel_invariant(), r.rng_fingerprint);
    assert_eq!(key(&runs[0]), key(&runs[1]), "dense kernel diverged on the 100k traffic cell");
    assert_eq!(key(&runs[0]), key(&runs[2]), "event kernel diverged on the 100k traffic cell");
    assert_eq!(
        runs[0].stats.scheduler_events, runs[2].stats.scheduler_events,
        "the event kernel must pop exactly the wake entries sparse pops"
    );
    let t0 = runs[0].traffic.unwrap();
    assert!(t0.injected > 0, "the at-scale cell injected nothing");
    assert_eq!(
        t0.undelivered, 0,
        "a 4096-step horizon must drain every flood across the 316-wide grid"
    );
    record.note(format!(
        "100k faceoff: {} messages all fully delivered (full p99 {} steps); reports, RNG \
         fingerprints and invariant stats byte-identical across sparse/dense/event",
        t0.injected, t0.full_p99,
    ));

    // Part 2: throughput vs α across the family catalogue (sparse kernel).
    let curve_n = match scale {
        Scale::Quick => 64,
        Scale::Full => 256,
    };
    // Light load: arrivals spaced wider than the relay hot window, so the
    // curve measures flood completion, not broadcast-storm saturation (the
    // faceoff above already runs the saturated regime).
    let curve_spec = TrafficSpec {
        arrival: Arrival::Poisson(PoissonArrival { per_10k: 60 }),
        senders: 4,
        messages: 8,
        horizon: 512,
        multicast_per_mille: 250,
    };
    let families = [
        Family::Clique,
        Family::Hypercube,
        Family::Star,
        Family::Grid,
        Family::Cycle,
        Family::Path,
    ];
    let mut by_family = Vec::new();
    for family in families {
        let (report, wall) = run_traffic(
            &driver,
            "traffic.gossip",
            family,
            curve_n,
            0x22e,
            curve_spec,
            Kernel::Sparse,
        );
        let t = report.traffic.unwrap();
        table.row([
            "alpha-curve".into(),
            format!("{family:?}").to_lowercase(),
            "sparse".into(),
            report.n.to_string(),
            f1(report.alpha),
            t.injected.to_string(),
            t.delivered.to_string(),
            f1(t.throughput_per_kstep),
            t.full_p99.to_string(),
            f1(wall * 1e3),
        ]);
        record.push(
            RunRecord::new()
                .param("part", "alpha-curve")
                .param("family", format!("{family:?}").to_lowercase())
                .param("n", report.n)
                .metric("alpha", report.alpha)
                .metric("diameter", report.d as f64)
                .metric("injected", t.injected as f64)
                .metric("delivered", t.delivered as f64)
                .metric("throughput_per_kstep", t.throughput_per_kstep)
                .metric("full_p50", t.full_p50 as f64)
                .metric("full_p99", t.full_p99 as f64),
        );
        by_family.push((family, t));
    }
    let thpt = |f: Family| by_family.iter().find(|(g, _)| *g == f).unwrap().1.throughput_per_kstep;
    assert!(
        thpt(Family::Clique) >= thpt(Family::Path),
        "the clique (D = 1) must out-deliver the path (D = n - 1): {} vs {}",
        thpt(Family::Clique),
        thpt(Family::Path),
    );
    record.note(format!(
        "throughput vs α at n = {curve_n}: clique {} / hypercube {} / star {} / grid {} / \
         cycle {} / path {} delivered per kstep — completion time couples diameter and \
         contention, so the curve is diameter-dominated, with the α extremes pinned \
         (clique ≥ path asserted)",
        f1(thpt(Family::Clique)),
        f1(thpt(Family::Hypercube)),
        f1(thpt(Family::Star)),
        f1(thpt(Family::Grid)),
        f1(thpt(Family::Cycle)),
        f1(thpt(Family::Path)),
    ));

    // Part 3: a spec sweep is embarrassingly parallel — sequential and
    // rayon execution must serialize to the byte-identical report list.
    let sweep: Vec<(TrafficKind, u64)> =
        [TrafficKind::Gossip, TrafficKind::Unicast, TrafficKind::Multicast]
            .into_iter()
            .flat_map(|kind| (0..3u64).map(move |seed| (kind, seed)))
            .collect();
    let run_cell = |&(kind, seed): &(TrafficKind, u64)| {
        let d = Driver::standard();
        let (report, _) = run_traffic(
            &d,
            &format!("traffic.{}", kind.name()),
            Family::Grid,
            36,
            seed,
            TrafficSpec::default(),
            Kernel::Sparse,
        );
        serde_json::to_string(&report).unwrap()
    };
    let sequential: Vec<String> = sweep.iter().map(run_cell).collect();
    let parallel: Vec<String> = sweep.par_iter().map(run_cell).collect();
    assert_eq!(sequential, parallel, "rayon execution changed a traffic report");
    record.note(format!(
        "sequential ≡ rayon: {} traffic cells (3 kinds × 3 seeds) serialize byte-identically \
         under both execution orders",
        sweep.len()
    ));

    println!("{}", table.render());
    print_notes(&record);
    record
}
