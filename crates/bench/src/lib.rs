//! The benchmark harness: one experiment per quantitative claim of the
//! paper (see DESIGN.md §4 for the index). Each experiment is a library
//! function returning an [`radionet_analysis::ExperimentRecord`] and
//! printing its Markdown table; the `exp_*` binaries are thin wrappers and
//! `run_all` regenerates everything (writing JSON records to `results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;

pub use context::{GraphCase, Scale};
