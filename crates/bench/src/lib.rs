//! The benchmark harness: one experiment per quantitative claim of the
//! paper (see DESIGN.md §4 for the index). Each experiment is a library
//! function returning an [`radionet_analysis::ExperimentRecord`] and
//! printing its Markdown table; the `exp_*` binaries are thin wrappers and
//! `run_all` regenerates everything (writing JSON records to `results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;

pub use context::{GraphCase, Scale};

/// The shared `main` of every `exp_*` binary: resolves the experiment in
/// the [`experiments::ALL`] registry, runs it at the env-selected
/// [`Scale`], and writes its JSON record to `results/`.
///
/// # Panics
///
/// Panics if `id` is not registered — an `exp_*` binary whose experiment
/// is missing from the registry would otherwise silently drop out of
/// `run_all`.
pub fn exp_main(id: &str) {
    let def = experiments::find(id)
        .unwrap_or_else(|| panic!("experiment {id} is not in experiments::ALL"));
    let scale = Scale::from_env();
    let record = (def.run)(scale);
    let dir = std::path::Path::new("results");
    match record.save(dir) {
        Ok(path) => eprintln!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", record.id),
    }
}
