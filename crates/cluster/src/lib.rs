//! Miller–Peng–Xu exponential-shift clustering and the paper's
//! independence-number analysis machinery.
//!
//! * [`shifts`] — exponential random shifts `δ_v ~ Exp(β)`;
//! * [`mpx`] — the abstract (message-passing) clustering `Partition(β, C)`:
//!   node `u` joins the cluster of the center `v ∈ C` minimizing
//!   `dist(u, v) − δ_v` (paper, Section 2.2). With `C = V` this is the
//!   classic MPX used by \[CD21\]; with `C = MIS` it is this paper's variant;
//! * [`partition_radio`] — the radio-network implementation (à la
//!   Haeupler–Wajc): discretized wave expansion with Decay per phase;
//! * [`schedule`] — per-cluster conflict-free transmission schedules used by
//!   Intra-Cluster Propagation (DESIGN.md substitution S1), verified
//!   conflict-free at construction;
//! * [`quantities`] — the Section 3 quantities `T_β`, `B_β`, `S_β`, the
//!   prefix counts `s_j`, the paper's `b`, and the Lemma 4 / Lemma 5
//!   predicates (experiments E5–E7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mpx;
pub mod partition_radio;
pub mod quantities;
pub mod schedule;
pub mod shifts;

pub use mpx::{partition, Clustering};
pub use partition_radio::{run_radio_partition, RadioPartitionConfig};
pub use schedule::ClusterSchedule;
