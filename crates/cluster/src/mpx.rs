//! Abstract Miller–Peng–Xu clustering: `Partition(β)` and
//! `Partition(β, MIS)` (paper, Section 2.2).
//!
//! Each center `v` draws `δ_v ~ Exp(β)`; each node `u` joins the cluster of
//! the center minimizing `dist(u, v) − δ_v`. Computed exactly by a
//! multi-source Dijkstra with initial keys `−δ_v`, in `O((n + m) log n)`.
//!
//! This abstract version is the reference implementation: the radio version
//! ([`crate::partition_radio`]) approximates it under collisions, and the
//! analysis experiments (E5–E7) evaluate Theorem 2's quantities on it
//! directly.

use crate::shifts;
use radionet_graph::{Graph, NodeId};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A clustering of a graph: a partition into center-rooted clusters.
#[derive(Clone, Debug, PartialEq)]
pub struct Clustering {
    /// For each node, the index (into [`centers`](Self::centers)) of its
    /// cluster; `None` only if the node is unreachable from every center.
    pub cluster_of: Vec<Option<u32>>,
    /// Cluster index → center node.
    pub centers: Vec<NodeId>,
    /// For each node, its hop distance to its cluster center (through any
    /// shortest `dist(u, v)` path; `u32::MAX` if unclustered).
    pub dist: Vec<u32>,
    /// For each node, its predecessor towards the center (`None` for centers
    /// and unclustered nodes). Follows a shortest path within the cluster.
    pub parent: Vec<Option<NodeId>>,
}

impl Clustering {
    /// Number of nonempty clusters (centers can be absorbed by stronger
    /// shifts, leaving their own cluster empty).
    pub fn cluster_count(&self) -> usize {
        let mut nonempty = vec![false; self.centers.len()];
        for c in self.cluster_of.iter().flatten() {
            nonempty[*c as usize] = true;
        }
        nonempty.iter().filter(|&&x| x).count()
    }

    /// The maximum hop distance from any clustered node to its center.
    pub fn radius(&self) -> u32 {
        self.dist.iter().copied().filter(|&d| d != u32::MAX).max().unwrap_or(0)
    }

    /// Mean hop distance to the center over clustered nodes.
    pub fn mean_dist(&self) -> f64 {
        let ds: Vec<u32> = self.dist.iter().copied().filter(|&d| d != u32::MAX).collect();
        if ds.is_empty() {
            0.0
        } else {
            ds.iter().map(|&d| d as f64).sum::<f64>() / ds.len() as f64
        }
    }

    /// Members of each cluster, indexed by cluster id.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.centers.len()];
        for (i, c) in self.cluster_of.iter().enumerate() {
            if let Some(c) = c {
                out[*c as usize].push(NodeId::new(i));
            }
        }
        out
    }

    /// Checks the partition invariants: parents are cluster-internal edges
    /// decreasing `dist` by one, and each center either owns its cluster
    /// (distance 0) or was absorbed by a stronger shift — in which case its
    /// cluster must be empty (no node can prefer an absorbed center; see the
    /// triangle-inequality argument in the module docs).
    pub fn validate(&self, g: &Graph) -> bool {
        let mut sizes = vec![0usize; self.centers.len()];
        for c in self.cluster_of.iter().flatten() {
            sizes[*c as usize] += 1;
        }
        for (ci, &c) in self.centers.iter().enumerate() {
            let owns = self.cluster_of[c.index()] == Some(ci as u32);
            if owns && self.dist[c.index()] != 0 {
                return false;
            }
            if !owns && sizes[ci] != 0 {
                return false;
            }
        }
        for v in g.nodes() {
            match (self.cluster_of[v.index()], self.parent[v.index()]) {
                (None, _) => {}
                (Some(_), None) => {
                    if self.dist[v.index()] != 0 {
                        return false;
                    }
                }
                (Some(c), Some(p)) => {
                    if !g.has_edge(v, p)
                        || self.cluster_of[p.index()] != Some(c)
                        || self.dist[p.index()] + 1 != self.dist[v.index()]
                    {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Exponentially-shifted start keys for a center set.
#[derive(Clone, Debug)]
pub struct Shifts {
    /// Center nodes in the order their shifts were drawn.
    pub centers: Vec<NodeId>,
    /// `δ_v` per center (parallel to `centers`).
    pub deltas: Vec<f64>,
}

/// Draws `δ_v ~ Exp(β)` for every center (optionally clamped; see
/// [`shifts::sample_exp_clamped`]).
pub fn draw_shifts<R: Rng + ?Sized>(
    centers: &[NodeId],
    beta: f64,
    cap: Option<f64>,
    rng: &mut R,
) -> Shifts {
    let deltas = centers
        .iter()
        .map(|_| match cap {
            Some(c) => shifts::sample_exp_clamped(beta, c, rng),
            None => shifts::sample_exp(beta, rng),
        })
        .collect();
    Shifts { centers: centers.to_vec(), deltas }
}

/// `Partition(β, C)` with freshly drawn shifts: the paper's clustering with
/// an arbitrary center set `C` (use the MIS for `Partition(β, MIS)`, or all
/// nodes for the \[CD21\] baseline).
///
/// # Panics
///
/// Panics if `centers` is empty while the graph is not, or `β ≤ 0`.
pub fn partition<R: Rng + ?Sized>(
    g: &Graph,
    centers: &[NodeId],
    beta: f64,
    rng: &mut R,
) -> Clustering {
    let shifts = draw_shifts(centers, beta, None, rng);
    partition_with_shifts(g, &shifts)
}

/// `Partition` with caller-provided shifts (deterministic core; the radio
/// implementation and tests share it).
///
/// # Panics
///
/// Panics if `centers` is empty while the graph is not.
pub fn partition_with_shifts(g: &Graph, shifts: &Shifts) -> Clustering {
    assert!(!shifts.centers.is_empty() || g.n() == 0, "partition needs at least one center");
    let n = g.n();
    // Multi-source Dijkstra over keys dist(u, v) - δ_v. All edges weigh 1 but
    // sources start at distinct negative keys, so a heap is required.
    let mut key = vec![f64::INFINITY; n];
    let mut cluster = vec![None; n];
    let mut dist = vec![u32::MAX; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(HeapKey, u32)>> = BinaryHeap::new();

    for (ci, (&c, &delta)) in shifts.centers.iter().zip(&shifts.deltas).enumerate() {
        let k = -delta;
        // Duplicate centers: keep the better (smaller) key.
        if k < key[c.index()] {
            key[c.index()] = k;
            cluster[c.index()] = Some(ci as u32);
            dist[c.index()] = 0;
            parent[c.index()] = None;
            heap.push(Reverse((HeapKey(k), c.index() as u32)));
        }
    }
    while let Some(Reverse((HeapKey(k), vi))) = heap.pop() {
        let v = NodeId::new(vi as usize);
        if settled[v.index()] || k > key[v.index()] {
            continue;
        }
        settled[v.index()] = true;
        for &w in g.neighbors(v) {
            let nk = k + 1.0;
            if nk < key[w.index()] {
                key[w.index()] = nk;
                cluster[w.index()] = cluster[v.index()];
                dist[w.index()] = dist[v.index()] + 1;
                parent[w.index()] = Some(v);
                heap.push(Reverse((HeapKey(nk), w.index() as u32)));
            }
        }
    }
    Clustering { cluster_of: cluster, centers: shifts.centers.clone(), dist, parent }
}

/// Total-ordered f64 key for the Dijkstra heap (keys are never NaN).
#[derive(Clone, Copy, Debug, PartialEq)]
struct HeapKey(f64);

impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_graph::independent_set::greedy_mis_min_degree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_center_claims_component() {
        let g = generators::path(10);
        let shifts = Shifts { centers: vec![g.node(0)], deltas: vec![0.7] };
        let c = partition_with_shifts(&g, &shifts);
        assert!(c.validate(&g));
        assert_eq!(c.cluster_count(), 1);
        assert!(c.cluster_of.iter().all(|&x| x == Some(0)));
        assert_eq!(c.dist[9], 9);
        assert_eq!(c.radius(), 9);
    }

    #[test]
    fn tie_free_two_centers_split_by_shift() {
        // Path of 7, centers at both ends. δ_0 = 2.5, δ_6 = 0.0:
        // node u joins 0 iff u - 2.5 < (6 - u), i.e. u < 4.25 → nodes 0..4.
        let g = generators::path(7);
        let shifts = Shifts { centers: vec![g.node(0), g.node(6)], deltas: vec![2.5, 0.0] };
        let c = partition_with_shifts(&g, &shifts);
        assert!(c.validate(&g));
        for u in 0..=4 {
            assert_eq!(c.cluster_of[u], Some(0), "node {u}");
        }
        for u in 5..=6 {
            assert_eq!(c.cluster_of[u], Some(1), "node {u}");
        }
    }

    #[test]
    fn assignment_minimizes_shifted_distance() {
        // Brute-force check on random graphs: every node's assigned center
        // achieves min over centers of dist(u, v) − δ_v.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let g = generators::connected_gnp(40, 0.08, &mut rng);
            let mis = greedy_mis_min_degree(&g);
            let shifts = draw_shifts(&mis, 0.3, None, &mut rng);
            let c = partition_with_shifts(&g, &shifts);
            assert!(c.validate(&g));
            for u in g.nodes() {
                let assigned = c.cluster_of[u.index()].unwrap() as usize;
                let d = radionet_graph::traversal::bfs_distances(&g, u);
                let key_of = |ci: usize| d[shifts.centers[ci].index()] as f64 - shifts.deltas[ci];
                let best = (0..mis.len()).map(key_of).fold(f64::INFINITY, f64::min);
                assert!(
                    key_of(assigned) - best < 1e-9,
                    "node {u:?} assigned {assigned} key {} best {best}",
                    key_of(assigned)
                );
            }
        }
    }

    #[test]
    fn radius_bounded_by_log_n_over_beta() {
        // MPX: cluster radius ≤ max δ + O(1) ≈ O(log n / β) whp. With the
        // clamp the bound is deterministic: radius ≤ cap + 1.
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::grid2d(20, 20);
        let centers: Vec<_> = g.nodes().collect();
        let beta = 0.5;
        let cap = crate::shifts::delta_cap(beta, g.n(), 2.0);
        let shifts = draw_shifts(&centers, beta, Some(cap), &mut rng);
        let c = partition_with_shifts(&g, &shifts);
        assert!(c.validate(&g));
        assert!((c.radius() as f64) <= cap + 1.0, "radius {} cap {cap}", c.radius());
    }

    #[test]
    fn all_nodes_centers_zero_shift_is_identity() {
        let g = generators::cycle(8);
        let centers: Vec<_> = g.nodes().collect();
        let shifts = Shifts { centers: centers.clone(), deltas: vec![0.0; 8] };
        let c = partition_with_shifts(&g, &shifts);
        // Every node has key -0 at itself, so every node is its own cluster.
        assert_eq!(c.radius(), 0);
        assert_eq!(c.mean_dist(), 0.0);
        for v in g.nodes() {
            assert_eq!(c.cluster_of[v.index()], Some(v.index() as u32));
        }
    }

    #[test]
    fn members_partition_nodes() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::connected_gnp(60, 0.08, &mut rng);
        let mis = greedy_mis_min_degree(&g);
        let c = partition(&g, &mis, 0.4, &mut rng);
        let members = c.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, g.n());
        assert!(c.validate(&g));
    }

    #[test]
    #[should_panic(expected = "at least one center")]
    fn empty_centers_rejected() {
        let g = generators::path(3);
        let shifts = Shifts { centers: vec![], deltas: vec![] };
        let _ = partition_with_shifts(&g, &shifts);
    }

    #[test]
    fn disconnected_leaves_unreached_unclustered() {
        let g = radionet_graph::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let shifts = Shifts { centers: vec![g.node(0)], deltas: vec![1.0] };
        let c = partition_with_shifts(&g, &shifts);
        assert_eq!(c.cluster_of[2], None);
        assert_eq!(c.dist[2], u32::MAX);
        assert!(c.validate(&g));
    }
}
