//! Radio-network implementation of `Partition(β, C)` (paper, Section 2.2;
//! originally Haeupler–Wajc for \[CD21\]).
//!
//! Each center `c` draws `δ_c ~ Exp(β)` clamped at `δ_cap = Θ(log n / β)`
//! (the standard whp conditioning made explicit) and starts a cluster wave
//! at phase `⌊δ_cap − δ_c⌋`. A *phase* lasts one or more Decay iterations;
//! claimed nodes offer their cluster to neighbors, carrying
//! `(center id, δ_c, hop count)`, and an unclaimed node adopts — at the end
//! of the first phase in which it heard anything — the offer minimizing the
//! MPX key `dist − δ_c`. Since wave arrival time is `δ_cap` minus that key,
//! earlier phases always carry better keys, so absent collisions this
//! reproduces the abstract assignment of [`crate::mpx`]; collisions can
//! delay or locally distort assignments (claimed nodes keep offering in
//! later phases, so every node adjacent to a cluster is eventually claimed
//! whp). Experiment E11 quantifies the distortion against the abstract
//! implementation.

use crate::mpx::Clustering;
use radionet_graph::{traversal, Graph, NodeId};
use radionet_primitives::decay::DecaySchedule;
use radionet_primitives::ids::random_id;
use radionet_sim::{
    Action, JournalSink, NodeCtx, PhaseReport, Protocol, Sim, Telemetry, TopologyView, Wake,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the radio partition (DESIGN.md substitution S2 knobs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadioPartitionConfig {
    /// `δ_cap = delta_cap_factor · ln(n) / β`.
    pub delta_cap_factor: f64,
    /// Decay iterations per phase (each iteration is `log n` steps).
    pub decay_iterations_per_phase: u32,
    /// Extra phases beyond `⌈δ_cap⌉ + 2` to absorb collision delays.
    pub radius_slack: u32,
}

impl Default for RadioPartitionConfig {
    fn default() -> Self {
        RadioPartitionConfig {
            delta_cap_factor: 2.0,
            decay_iterations_per_phase: 1,
            radius_slack: 6,
        }
    }
}

impl RadioPartitionConfig {
    /// The shift clamp for a given `β` and `n` estimate.
    pub fn delta_cap(&self, beta: f64, n: usize) -> f64 {
        crate::shifts::delta_cap(beta, n, self.delta_cap_factor)
    }

    /// Steps per phase (`iterations × log n`).
    pub fn phase_steps(&self, log_n: u32) -> u64 {
        self.decay_iterations_per_phase.max(1) as u64 * log_n.max(1) as u64
    }

    /// Total number of phases for a run.
    pub fn total_phases(&self, beta: f64, n: usize) -> u64 {
        self.delta_cap(beta, n).ceil() as u64 + 2 + self.radius_slack as u64
    }

    /// Total time-steps of one radio partition run.
    pub fn total_steps(&self, beta: f64, n: usize, log_n: u32) -> u64 {
        self.total_phases(beta, n) * self.phase_steps(log_n)
    }
}

/// Over-the-air offer: "join the cluster of `center`".
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionMsg {
    /// Random identifier of the cluster center (ad-hoc model: protocols
    /// never see engine node ids).
    pub center: u64,
    /// The center's shift `δ_c`.
    pub delta: f64,
    /// Hop count of the *sender* from the center; the receiver would join
    /// at `hops + 1`.
    pub hops: u32,
}

#[derive(Clone, Copy, Debug)]
enum NodeState {
    Unclaimed,
    Claimed { center: u64, delta: f64, dist: u32, claim_phase: u64 },
}

/// Per-node protocol state for the radio partition.
#[derive(Clone, Debug)]
pub struct RadioPartitionNode {
    schedule: DecaySchedule,
    beta: f64,
    is_center: bool,
    total_phases: u64,
    phase_steps: u64,
    delta_cap: f64,
    /// Sampled lazily at the first `act` (needs the node's own RNG).
    init: Option<CenterInit>,
    state: NodeState,
    /// Best offer heard during the current phase: `(key, center, delta, dist)`.
    pending: Option<(f64, u64, f64, u32)>,
    elapsed: u64,
}

#[derive(Clone, Copy, Debug)]
struct CenterInit {
    delta: f64,
    start_phase: u64,
    id: u64,
}

impl RadioPartitionNode {
    /// A node of the partition protocol; `is_center` marks membership in the
    /// center set `C` (the MIS for `Partition(β, MIS)`).
    ///
    /// # Panics
    ///
    /// Panics unless `β > 0`.
    pub fn new(
        config: RadioPartitionConfig,
        beta: f64,
        n_estimate: usize,
        log_n: u32,
        is_center: bool,
    ) -> Self {
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
        RadioPartitionNode {
            schedule: DecaySchedule::new(log_n),
            beta,
            is_center,
            total_phases: config.total_phases(beta, n_estimate),
            phase_steps: config.phase_steps(log_n),
            delta_cap: config.delta_cap(beta, n_estimate),
            init: None,
            state: NodeState::Unclaimed,
            pending: None,
            elapsed: 0,
        }
    }

    /// The final assignment: `(center id, hop distance)` if claimed.
    pub fn assignment(&self) -> Option<(u64, u32)> {
        match self.state {
            NodeState::Claimed { center, dist, .. } => Some((center, dist)),
            NodeState::Unclaimed => None,
        }
    }

    fn commit_pending(&mut self, now_phase: u64) {
        if let (NodeState::Unclaimed, Some((_, center, delta, dist))) = (&self.state, self.pending)
        {
            self.state = NodeState::Claimed {
                center,
                delta,
                dist,
                claim_phase: now_phase.saturating_sub(1),
            };
        }
        self.pending = None;
    }
}

impl Protocol for RadioPartitionNode {
    type Msg = PartitionMsg;

    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<PartitionMsg> {
        let t = ctx.time;
        self.elapsed = t;
        if self.init.is_none() {
            let (delta, start_phase, id) = if self.is_center {
                let d = crate::shifts::sample_exp_clamped(self.beta, self.delta_cap, ctx.rng);
                let start = (self.delta_cap - d).floor().max(0.0) as u64;
                (d, start, random_id(ctx.info.n, ctx.rng))
            } else {
                (0.0, u64::MAX, 0)
            };
            self.init = Some(CenterInit { delta, start_phase, id });
        }
        let init = self.init.expect("initialized above");
        let phase = t / self.phase_steps;
        let step_in_phase = t % self.phase_steps;
        if step_in_phase == 0 {
            // Phase boundary: adopt the best offer of the previous phase,
            // then (for centers) possibly self-claim.
            self.commit_pending(phase);
            if self.is_center && phase >= init.start_phase {
                // Self-key is −δ; adopt self unless already claimed with a
                // better (smaller) key — claims from earlier phases always
                // have smaller keys, so only Unclaimed centers self-claim.
                if matches!(self.state, NodeState::Unclaimed) {
                    self.state = NodeState::Claimed {
                        center: init.id,
                        delta: init.delta,
                        dist: 0,
                        claim_phase: phase,
                    };
                }
            }
        }
        if t >= self.total_phases * self.phase_steps {
            return Action::Idle;
        }
        match self.state {
            NodeState::Claimed { center, delta, dist, claim_phase } if phase > claim_phase => {
                if ctx.rng.gen_bool(self.schedule.prob(step_in_phase)) {
                    Action::Transmit(PartitionMsg { center, delta, hops: dist })
                } else {
                    Action::Listen
                }
            }
            NodeState::Claimed { .. } => Action::Listen,
            NodeState::Unclaimed => Action::Listen,
        }
    }

    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &PartitionMsg) {
        if matches!(self.state, NodeState::Claimed { .. }) {
            return;
        }
        let dist = msg.hops + 1;
        let key = dist as f64 - msg.delta;
        if self.pending.is_none_or(|(k, ..)| key < k) {
            self.pending = Some((key, msg.center, msg.delta, dist));
        }
    }

    fn is_done(&self) -> bool {
        self.elapsed + 1 >= self.total_phases * self.phase_steps
    }

    fn next_wake(&self, now: u64) -> Wake {
        let total = self.total_phases * self.phase_steps;
        if now + 1 >= total {
            return Wake::Retire;
        }
        match self.state {
            // Claimed in an earlier phase: transmitting Decay, fresh coin
            // every step.
            NodeState::Claimed { claim_phase, .. } if now / self.phase_steps > claim_phase => {
                Wake::Now
            }
            // Unclaimed, or claimed this very phase: a pure listener until
            // the next phase boundary, where offers commit / transmission
            // starts / centers may self-claim. The cluster-phase structure
            // is exactly what the sparse kernel exploits: most nodes spend
            // most phases waiting for an offer.
            _ => {
                let boundary = (now / self.phase_steps + 1) * self.phase_steps;
                Wake::Listen { wake_at: boundary.min(total), done_at: Some(total - 1) }
            }
        }
    }
}

/// The raw outcome of a radio partition run.
#[derive(Clone, Debug)]
pub struct RadioClustering {
    /// Per node: `(center id, hop distance)`; `None` if never claimed.
    pub assignment: Vec<Option<(u64, u32)>>,
    /// The phase report of the underlying run.
    pub report: PhaseReport,
}

impl RadioClustering {
    /// Fraction of nodes claimed.
    pub fn coverage(&self) -> f64 {
        if self.assignment.is_empty() {
            return 1.0;
        }
        self.assignment.iter().filter(|a| a.is_some()).count() as f64 / self.assignment.len() as f64
    }

    /// Normalizes into a [`Clustering`]: groups nodes by center id, places
    /// each cluster's center at its distance-0 node, and recomputes `dist`
    /// and `parent` by BFS **inside each cluster's induced subgraph** (the
    /// engine-side normalization that schedule construction needs anyway —
    /// DESIGN.md substitution S1).
    ///
    /// Unclaimed nodes stay unclustered. Returns `None` if some cluster id
    /// has no distance-0 node (possible only if the center's Decay failed
    /// throughout; callers treat it as a failed run).
    pub fn to_clustering(&self, g: &Graph) -> Option<Clustering> {
        let mut ids: HashMap<u64, u32> = HashMap::new();
        let mut centers: Vec<Option<NodeId>> = Vec::new();
        for (i, a) in self.assignment.iter().enumerate() {
            if let Some((cid, dist)) = a {
                let idx = *ids.entry(*cid).or_insert_with(|| {
                    centers.push(None);
                    (centers.len() - 1) as u32
                });
                if *dist == 0 {
                    centers[idx as usize] = Some(NodeId::new(i));
                }
            }
        }
        let centers: Option<Vec<NodeId>> = centers.into_iter().collect();
        let centers = centers?;
        let mut cluster_of = vec![None; g.n()];
        for (i, a) in self.assignment.iter().enumerate() {
            if let Some((cid, _)) = a {
                cluster_of[i] = Some(ids[cid]);
            }
        }
        // Per-cluster BFS restricted to same-cluster edges.
        let mut dist = vec![u32::MAX; g.n()];
        let mut parent: Vec<Option<NodeId>> = vec![None; g.n()];
        for (ci, &c) in centers.iter().enumerate() {
            let mut queue = std::collections::VecDeque::new();
            dist[c.index()] = 0;
            queue.push_back(c);
            while let Some(u) = queue.pop_front() {
                for &w in g.neighbors(u) {
                    if cluster_of[w.index()] == Some(ci as u32) && dist[w.index()] == u32::MAX {
                        dist[w.index()] = dist[u.index()] + 1;
                        parent[w.index()] = Some(u);
                        queue.push_back(w);
                    }
                }
            }
        }
        // A claimed node unreachable from its center within the cluster can
        // only arise from id collisions (negligible); drop such nodes.
        for v in g.nodes() {
            if cluster_of[v.index()].is_some() && dist[v.index()] == u32::MAX {
                cluster_of[v.index()] = None;
            }
        }
        Some(Clustering { cluster_of, centers, dist, parent })
    }
}

/// Runs `Partition(β, C)` over the radio engine.
///
/// `is_center[v]` marks the center set (pass the MIS for the paper's
/// variant, all-true for the \[CD21\] baseline). Consumes
/// [`RadioPartitionConfig::total_steps`] simulated steps.
///
/// # Panics
///
/// Panics if `is_center.len() != g.n()` or no center is marked on a
/// nonempty graph.
pub fn run_radio_partition<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    is_center: &[bool],
    beta: f64,
    config: RadioPartitionConfig,
) -> RadioClustering {
    let g = sim.graph();
    assert_eq!(is_center.len(), g.n(), "one center flag per node");
    assert!(is_center.iter().any(|&c| c) || g.n() == 0, "partition needs at least one center");
    let info = *sim.info();
    let mut states: Vec<RadioPartitionNode> = is_center
        .iter()
        .map(|&c| RadioPartitionNode::new(config, beta, info.n, info.log_n(), c))
        .collect();
    let budget = config.total_steps(beta, info.n, info.log_n());
    let report = sim.run_phase(&mut states, budget);
    RadioClustering { assignment: states.iter().map(|s| s.assignment()).collect(), report }
}

/// Convenience: radio partition normalized to a [`Clustering`], with
/// `(coverage, report)` attached.
pub fn run_radio_partition_normalized<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    is_center: &[bool],
    beta: f64,
    config: RadioPartitionConfig,
) -> (Option<Clustering>, f64, PhaseReport) {
    let raw = run_radio_partition(sim, is_center, beta, config);
    let clustering = raw.to_clustering(sim.graph());
    (clustering, raw.coverage(), raw.report)
}

/// Recomputes exact per-node distances to assigned centers **in the full
/// graph** (not only inside the cluster), used by the Theorem 2 experiments
/// to measure `dist(v, center(v))` exactly as the paper defines it.
pub fn exact_center_distances(g: &Graph, clustering: &Clustering) -> Vec<u32> {
    // One BFS per center, but only distances to that center's members are read.
    let mut out = vec![u32::MAX; g.n()];
    for (ci, &c) in clustering.centers.iter().enumerate() {
        let d = traversal::bfs_distances(g, c);
        for v in g.nodes() {
            if clustering.cluster_of[v.index()] == Some(ci as u32) {
                out[v.index()] = d[v.index()];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_graph::independent_set::{greedy_mis_min_degree, is_maximal_independent_set};
    use radionet_sim::NetInfo;

    fn center_flags(g: &Graph, centers: &[NodeId]) -> Vec<bool> {
        let mut f = vec![false; g.n()];
        for c in centers {
            f[c.index()] = true;
        }
        f
    }

    #[test]
    fn config_budget_scales_with_beta() {
        let c = RadioPartitionConfig::default();
        assert!(c.total_steps(0.125, 256, 8) > c.total_steps(0.5, 256, 8));
        assert!(c.delta_cap(0.5, 256) > 0.0);
    }

    #[test]
    fn full_coverage_on_connected_graphs() {
        for (g, beta) in [
            (generators::grid2d(8, 8), 0.5),
            (generators::path(40), 0.25),
            (generators::complete(16), 1.0),
            (generators::spider(5, 5), 0.5),
        ] {
            let mis = greedy_mis_min_degree(&g);
            assert!(is_maximal_independent_set(&g, &mis));
            let mut sim = Sim::new(&g, NetInfo::exact(&g), 99);
            let raw = run_radio_partition(
                &mut sim,
                &center_flags(&g, &mis),
                beta,
                RadioPartitionConfig::default(),
            );
            assert!(raw.coverage() > 0.99, "{g:?}: coverage {}", raw.coverage());
        }
    }

    #[test]
    fn normalization_valid() {
        let g = generators::grid2d(10, 10);
        let mis = greedy_mis_min_degree(&g);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 5);
        let (clustering, coverage, _) = run_radio_partition_normalized(
            &mut sim,
            &center_flags(&g, &mis),
            0.5,
            RadioPartitionConfig::default(),
        );
        assert!(coverage > 0.99);
        let c = clustering.expect("centers present");
        assert!(c.validate(&g));
        // MIS centers: every node is within 1 of an MIS node, so the MPX
        // radius is at most δ_cap + slack; sanity-bound it loosely.
        let cap = RadioPartitionConfig::default().delta_cap(0.5, g.n());
        assert!((c.radius() as f64) <= cap + 8.0, "radius {} vs cap {cap}", c.radius());
    }

    #[test]
    fn single_center_star() {
        let g = generators::star(12);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 1);
        let flags = center_flags(&g, &[g.node(0)]);
        let raw = run_radio_partition(&mut sim, &flags, 0.5, RadioPartitionConfig::default());
        assert_eq!(raw.coverage(), 1.0);
        let c = raw.to_clustering(&g).unwrap();
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.radius(), 1);
        assert_eq!(c.centers[0], g.node(0));
    }

    #[test]
    fn exact_distances_match_cluster_bfs_on_trees() {
        // In a tree the in-cluster path is the only path, so exact distances
        // equal the normalized cluster distances wherever both are defined...
        // except when the global shortest path leaves the cluster; on a path
        // graph with 1 center they always agree.
        let g = generators::path(20);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 3);
        let flags = center_flags(&g, &[g.node(7)]);
        let raw = run_radio_partition(&mut sim, &flags, 0.25, RadioPartitionConfig::default());
        let c = raw.to_clustering(&g).unwrap();
        let exact = exact_center_distances(&g, &c);
        for v in g.nodes() {
            assert_eq!(exact[v.index()], c.dist[v.index()]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one center")]
    fn no_centers_rejected() {
        let g = generators::path(4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let _ = run_radio_partition(&mut sim, &[false; 4], 0.5, RadioPartitionConfig::default());
    }

    #[test]
    fn radio_tracks_abstract_mean_distance() {
        // The radio assignment should produce mean center distances within a
        // small factor of the abstract MPX run at the same β (shape check;
        // exact agreement is impossible under collisions and independent
        // shift draws).
        let g = generators::grid2d(12, 12);
        let mis = greedy_mis_min_degree(&g);
        let beta = 0.5;
        let mut radio_means = Vec::new();
        for seed in 0..5u64 {
            let mut sim = Sim::new(&g, NetInfo::exact(&g), seed);
            let (c, cov, _) = run_radio_partition_normalized(
                &mut sim,
                &center_flags(&g, &mis),
                beta,
                RadioPartitionConfig::default(),
            );
            assert!(cov > 0.99);
            let c = c.unwrap();
            let exact = exact_center_distances(&g, &c);
            let ds: Vec<f64> =
                exact.iter().filter(|&&d| d != u32::MAX).map(|&d| d as f64).collect();
            radio_means.push(ds.iter().sum::<f64>() / ds.len() as f64);
        }
        let mut abstract_means = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let c = crate::mpx::partition(&g, &mis, beta, &mut rng);
            abstract_means.push(c.mean_dist());
        }
        let rm = radio_means.iter().sum::<f64>() / radio_means.len() as f64;
        let am = abstract_means.iter().sum::<f64>() / abstract_means.len() as f64;
        assert!(rm <= 3.0 * am + 1.0 && am <= 3.0 * rm + 1.0, "radio {rm} vs abstract {am}");
    }

    use rand::SeedableRng;
}
