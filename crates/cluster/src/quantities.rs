//! The Section 3 analysis quantities.
//!
//! For a fixed node `v` and a computed MIS, let `m_i` be the number of MIS
//! nodes at hop distance exactly `i` from `v`. The paper defines
//!
//! * `T_β = Σ_i i·m_i·e^{-iβ}` (numerator),
//! * `B_β = Σ_i m_i·e^{-iβ}` (denominator),
//! * `S_β = T_β / B_β` — and Lemma 3 bounds the expected distance from `v`
//!   to its cluster center under `Partition(β, MIS)` by `5·S_β`;
//! * `s_j = Σ_{i=0}^{2^{j+1}} m_i` (prefix counts),
//! * `b = 2^{⌈log₂ log_D α⌉ + 2}` (so `2 ≤ 4·log_D α ≤ b ≤ 8·log_D α`);
//! * the **Lemma 4 condition** at scale `j`: for all `r ≥ 8`,
//!   `s_{j+log b+r} ≤ 2^{b·2^{r−1}} · s_{j+log b}` — when it holds,
//!   `S_{2^{-j}} = O(b·2^j)`;
//! * **Lemma 5**: at most `0.02·log D` scales `j` in
//!   `[0.01·log D, 0.1·log D]` violate the condition.
//!
//! Everything here is exact arithmetic on the `m_i` profile; experiments
//! E5–E7 evaluate these on real MIS outputs.

use radionet_graph::{traversal, Graph, NodeId};

/// The distance profile `m_i`: `profile[i]` = number of center-set nodes at
/// hop distance exactly `i` from the anchor node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MisProfile {
    /// `m_i` for `i = 0..=max_finite_distance`.
    pub m: Vec<u64>,
}

impl MisProfile {
    /// Computes the profile of `centers` around `v` (unreachable centers are
    /// excluded, matching the paper's connected setting).
    pub fn new(g: &Graph, v: NodeId, centers: &[NodeId]) -> Self {
        let dist = traversal::bfs_distances(g, v);
        let mut m = Vec::new();
        for &c in centers {
            let d = dist[c.index()];
            if d == traversal::UNREACHABLE {
                continue;
            }
            let d = d as usize;
            if m.len() <= d {
                m.resize(d + 1, 0);
            }
            m[d] += 1;
        }
        MisProfile { m }
    }

    /// Builds a profile directly from counts (for tests and synthetic
    /// experiments).
    pub fn from_counts(m: Vec<u64>) -> Self {
        MisProfile { m }
    }

    /// Total number of (reachable) centers.
    pub fn total(&self) -> u64 {
        self.m.iter().sum()
    }

    /// `T_β = Σ i·m_i·e^{-iβ}`.
    pub fn t_beta(&self, beta: f64) -> f64 {
        self.m
            .iter()
            .enumerate()
            .map(|(i, &mi)| i as f64 * mi as f64 * (-(i as f64) * beta).exp())
            .sum()
    }

    /// `B_β = Σ m_i·e^{-iβ}`.
    pub fn b_beta(&self, beta: f64) -> f64 {
        self.m.iter().enumerate().map(|(i, &mi)| mi as f64 * (-(i as f64) * beta).exp()).sum()
    }

    /// `S_β = T_β / B_β`; `0` for an empty profile.
    pub fn s_beta(&self, beta: f64) -> f64 {
        let b = self.b_beta(beta);
        if b == 0.0 {
            0.0
        } else {
            self.t_beta(beta) / b
        }
    }

    /// Prefix count `s_j = Σ_{i=0}^{min(2^{j+1}, end)} m_i`.
    ///
    /// Saturates at [`total`](Self::total) for large `j` (distances beyond
    /// the profile contribute nothing), exactly as in the paper where
    /// `s_{log D} ≤ α`.
    pub fn s_prefix(&self, j: i64) -> u64 {
        if j < 0 {
            // 2^{j+1} < 1 ⇒ only i = 0 contributes (i ranges over integers).
            return self.m.first().copied().unwrap_or(0);
        }
        let cutoff = 1u128 << (j + 1).min(100);
        self.m
            .iter()
            .enumerate()
            .take_while(|(i, _)| (*i as u128) <= cutoff)
            .map(|(_, &mi)| mi)
            .sum()
    }

    /// The Lemma 4 expansion condition at scale `j` with parameter `b`:
    /// `∀ r ∈ [8, …): s_{j+log b+r} ≤ 2^{b·2^{r−1}} · s_{j+log b}`.
    ///
    /// Checked in log-space to avoid overflow; once `b·2^{r−1}` exceeds
    /// `log₂(total/base)` the condition is trivially true, so only small `r`
    /// need inspection.
    ///
    /// **Note (reported by experiment E6):** with the paper's `r ≥ 8`, a
    /// violation requires a count ratio above `2^{b·2⁷} ≥ 2^{256}`, so the
    /// strict condition cannot fail for any graph that fits in memory — the
    /// asymptotic constants are that loose. Use
    /// [`expansion_condition_holds`](Self::expansion_condition_holds) with a
    /// smaller `r_min` to probe the same structure at simulation scale.
    pub fn lemma4_condition_holds(&self, j: i64, b: u64) -> bool {
        self.expansion_condition_holds(j, b, 8)
    }

    /// The Lemma 4 condition generalized to start at `r ≥ r_min` (the paper
    /// fixes `r_min = 8`; scaled-down variants make the predicate
    /// non-trivial at feasible `n`).
    pub fn expansion_condition_holds(&self, j: i64, b: u64, r_min: i64) -> bool {
        let log_b = (b as f64).log2().round() as i64;
        let base = self.s_prefix(j + log_b).max(1);
        let total = self.total().max(1);
        for r in r_min..64 {
            let exponent = (b as f64) * 2f64.powi((r - 1) as i32);
            // If even `total` can't violate it, no larger r can either
            // (the exponent grows while prefixes saturate).
            if (total as f64).log2() - (base as f64).log2() <= exponent {
                break;
            }
            let big = self.s_prefix(j + log_b + r);
            if (big as f64).log2() - (base as f64).log2() > exponent {
                return false;
            }
        }
        true
    }

    /// The Lemma 4 **conclusion** at scale `j`: `S_{2^{-j}} ≤ c · b · 2^j`.
    ///
    /// Theorem 2 promises this holds for ≥ 0.77 of the scales in the paper's
    /// range (with `c` absorbed into the `O(·)`); experiment E5 measures the
    /// fraction with an explicit `c`.
    pub fn conclusion_holds(&self, j: i64, b: u64, c: f64) -> bool {
        let beta = 2f64.powi(-(j as i32));
        self.s_beta(beta) <= c * b as f64 * 2f64.powi(j as i32)
    }
}

/// The paper's `b = 2^{⌈log₂ log_D α⌉ + 2}`: an integer power of two with
/// `2 ≤ 4·log_D α ≤ b ≤ 8·log_D α`.
///
/// # Panics
///
/// Panics if `d < 2` or `alpha < 1`.
pub fn b_param(d: u32, alpha: f64) -> u64 {
    assert!(d >= 2, "b_param needs D >= 2");
    assert!(alpha >= 1.0, "alpha must be >= 1");
    let log_d_alpha = (alpha.max(2.0).ln() / (d as f64).ln()).max(1.0);
    let e = log_d_alpha.log2().ceil() as i64 + 2;
    1u64 << e.clamp(1, 62)
}

/// The scale range the paper randomizes over: integers `j` with
/// `lo_frac·log D ≤ j ≤ hi_frac·log D` (paper: `0.01` and `0.1`; the harness
/// widens the fractions at simulation scale — DESIGN.md S2).
pub fn j_range(d: u32, lo_frac: f64, hi_frac: f64) -> std::ops::RangeInclusive<i64> {
    let log_d = (d.max(2) as f64).log2();
    let lo = (lo_frac * log_d).ceil() as i64;
    let hi = (hi_frac * log_d).floor() as i64;
    lo.max(1)..=hi.max(lo.max(1))
}

/// Counts the scales `j` in `range` where the Lemma 4 condition **fails**
/// (the "bad" `j` of Lemma 5, which proves there are at most `0.02·log D`).
pub fn bad_j_count(profile: &MisProfile, b: u64, range: std::ops::RangeInclusive<i64>) -> usize {
    range.filter(|&j| !profile.lemma4_condition_holds(j, b)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_graph::independent_set::greedy_mis_min_degree;

    #[test]
    fn profile_on_path() {
        // Path 0-1-2-3-4, centers {0, 2, 4}, anchor 2.
        let g = generators::path(5);
        let p = MisProfile::new(&g, g.node(2), &[g.node(0), g.node(2), g.node(4)]);
        assert_eq!(p.m, vec![1, 0, 2]);
        assert_eq!(p.total(), 3);
    }

    #[test]
    fn t_b_s_formulas() {
        let p = MisProfile::from_counts(vec![1, 2, 4]);
        let beta = 0.5;
        let e = |x: f64| (-x).exp();
        let t = 0.0 + 1.0 * 2.0 * e(0.5) + 2.0 * 4.0 * e(1.0);
        let b = 1.0 + 2.0 * e(0.5) + 4.0 * e(1.0);
        assert!((p.t_beta(beta) - t).abs() < 1e-12);
        assert!((p.b_beta(beta) - b).abs() < 1e-12);
        assert!((p.s_beta(beta) - t / b).abs() < 1e-12);
    }

    #[test]
    fn s_beta_small_when_center_nearby() {
        // A center at distance 0 dominates for large beta.
        let p = MisProfile::from_counts(vec![1, 0, 0, 0, 1000]);
        assert!(p.s_beta(5.0) < 0.1);
        // For tiny beta the mass at distance 4 dominates: S → ~4.
        assert!(p.s_beta(0.001) > 3.5);
    }

    #[test]
    fn prefix_counts_saturate() {
        let p = MisProfile::from_counts(vec![1, 1, 1, 1, 1]);
        assert_eq!(p.s_prefix(0), 3); // i ≤ 2
        assert_eq!(p.s_prefix(1), 5); // i ≤ 4
        assert_eq!(p.s_prefix(50), 5);
        assert_eq!(p.s_prefix(-3), 1);
    }

    #[test]
    fn b_param_brackets() {
        for (d, alpha) in [(16u32, 256.0f64), (100, 10.0), (1000, 1e6), (4, 4.0)] {
            let b = b_param(d, alpha) as f64;
            let lda = (alpha.max(2.0).ln() / (d as f64).ln()).max(1.0);
            assert!(b >= 2.0, "b = {b}");
            assert!(b >= 4.0 * lda - 1e-9, "b {b} < 4 log_D α {lda}");
            assert!(b <= 8.0 * lda + 1e-9, "b {b} > 8 log_D α {lda}");
        }
    }

    #[test]
    fn flat_profile_has_no_bad_j() {
        // Slow growth: s roughly doubles per scale — far below the doubly
        // exponential allowance.
        let m: Vec<u64> = (0..64).map(|i| (i as u64) + 1).collect();
        let p = MisProfile::from_counts(m);
        assert_eq!(bad_j_count(&p, 8, 1..=10), 0);
    }

    #[test]
    fn strict_condition_vacuous_at_feasible_scale() {
        // Violating the r ≥ 8 condition needs a prefix ratio above 2^{b·2⁷}
        // ≥ 2^{256}, impossible for u64 counts: even the most explosive
        // profile satisfies the paper's literal condition.
        let mut m = vec![0u64; (1 << 13) + 1];
        m[0] = 1;
        *m.last_mut().unwrap() = u64::MAX / 2;
        let p = MisProfile::from_counts(m);
        for j in 0..8 {
            assert!(p.lemma4_condition_holds(j, 2));
        }
    }

    #[test]
    fn scaled_condition_detects_explosions() {
        // With r_min = 1 the same structure is visible at feasible scale:
        // a spike of 2^40 centers right outside the base prefix violates
        // s_{j+log b+r} ≤ 2^{b·2^{r-1}}·s_{j+log b} at r = 1, b = 2
        // (allowance 2^2 = 4 < 2^40).
        let mut m = vec![0u64; 70];
        m[0] = 1;
        m[64] = 1 << 40; // inside cutoff 2^{j+1+log b+r} for j=3,log b=1,r=1? 2^6=64 ✓
        let p = MisProfile::from_counts(m);
        assert!(!p.expansion_condition_holds(3, 2, 1));
        // A flat profile still passes the scaled check.
        let flat = MisProfile::from_counts((0..70).map(|i| i + 1).collect());
        assert!(flat.expansion_condition_holds(3, 2, 1));
    }

    #[test]
    fn conclusion_check_matches_s_beta() {
        let p = MisProfile::from_counts(vec![1, 2, 4, 8]);
        // S_{2^{-1}} with c huge always holds; with c = 0 never (S > 0 here).
        assert!(p.conclusion_holds(1, 2, 100.0));
        assert!(!p.conclusion_holds(1, 2, 0.0));
    }

    #[test]
    fn lemma5_bound_on_real_graphs() {
        // On genuine MIS profiles the number of bad scales must satisfy the
        // proof's bound q < log α / (16 b).
        for g in [
            generators::grid2d(16, 16),
            generators::spider(16, 16),
            generators::random_tree(256, &mut rand::rngs::mock::StepRng::new(7, 11)),
        ] {
            let mis = greedy_mis_min_degree(&g);
            let d = radionet_graph::traversal::diameter(&g);
            let alpha = mis.len() as f64; // lower bound suffices for a sanity check
            let b = b_param(d.max(2), alpha);
            let range = j_range(d.max(2), 0.01, 0.9);
            let anchor = g.node(0);
            let p = MisProfile::new(&g, anchor, &mis);
            let bad = bad_j_count(&p, b, range) as f64;
            let allowed = ((alpha.max(2.0)).log2() / (16.0 * b as f64)).max(0.0);
            assert!(bad <= allowed.ceil(), "{g:?}: bad {bad} > allowed {allowed}");
        }
    }

    #[test]
    fn j_range_widens_with_d() {
        let r = j_range(1 << 20, 0.01, 0.1);
        assert_eq!(*r.start(), 1);
        assert_eq!(*r.end(), 2);
        let r2 = j_range(16, 0.15, 0.85);
        assert!(r2.contains(&1));
    }
}
