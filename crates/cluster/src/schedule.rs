//! Per-cluster conflict-free transmission schedules (DESIGN.md S1).
//!
//! The paper's Intra-Cluster Propagation runs on fast schedules from
//! Ghaffari–Haeupler–Khabbazian / Haeupler–Wajc, black-boxed by the paper.
//! We build a concrete equivalent: for every clustering, a layer-pipelined
//! schedule in which each *slot* (one time-step) has a designated transmitter
//! set such that **within each cluster** every intended receiver hears
//! exactly one transmitter. Cross-cluster interference is *not* scheduled
//! away — exactly as in the paper, where the Algorithm 10 background process
//! exists to patch those collisions.
//!
//! Construction: BFS layers inside each cluster; for a downcast transition
//! `L_i → L_{i+1}` each child designates its BFS parent, and parents are
//! greedily colored so same-cluster parents sharing a potential listener
//! land in different slots. Upcast transitions are scheduled symmetrically
//! (children colored against their parents' neighborhoods). The result is
//! `ℓ + O(colors)`-length propagation to radius `ℓ`, with `colors = O(1)` on
//! growth-bounded graphs; [`ClusterSchedule::verify`] checks
//! conflict-freeness exhaustively, and the distributed construction cost is
//! charged via [`radionet_sim::CostModel`].

use crate::mpx::Clustering;
use radionet_graph::{Graph, NodeId};

/// A verified, layer-pipelined transmission schedule for one clustering.
#[derive(Clone, Debug)]
pub struct ClusterSchedule {
    /// Cluster index per node (copied from the clustering).
    pub cluster_of: Vec<Option<u32>>,
    /// BFS layer of each node within its cluster; `u32::MAX` if unclustered.
    pub layer: Vec<u32>,
    /// BFS parent towards the cluster center.
    pub parent: Vec<Option<NodeId>>,
    /// `down[i]` = slots (each a transmitter set drawn from layer `i`)
    /// moving messages from layer `i` to layer `i+1`, across all clusters.
    pub down: Vec<Vec<Vec<NodeId>>>,
    /// `up[i]` = slots where layer-`i+1` nodes transmit to their parents
    /// (indexed by `child layer − 1`).
    pub up: Vec<Vec<Vec<NodeId>>>,
    /// Maximum layer over all clusters.
    pub depth: u32,
}

impl ClusterSchedule {
    /// Builds the schedule for `clustering` on `g`.
    ///
    /// # Panics
    ///
    /// Panics if the clustering's `dist`/`parent` fields are inconsistent
    /// with `g` (use a validated [`Clustering`]).
    pub fn build(g: &Graph, clustering: &Clustering) -> Self {
        let layer = clustering.dist.clone();
        let parent = clustering.parent.clone();
        let cluster_of = clustering.cluster_of.clone();
        let depth = layer.iter().copied().filter(|&d| d != u32::MAX).max().unwrap_or(0);

        let mut down = Vec::with_capacity(depth as usize);
        let mut up = Vec::with_capacity(depth as usize);
        for i in 0..depth {
            // Children at layer i+1 and their designated parents at layer i.
            let children: Vec<NodeId> = g.nodes().filter(|v| layer[v.index()] == i + 1).collect();
            // --- Downcast: color the parent set.
            let mut parents: Vec<NodeId> = children
                .iter()
                .map(|c| parent[c.index()].expect("layer > 0 has a parent"))
                .collect();
            parents.sort_unstable();
            parents.dedup();
            // children_of[p] = children that designated p.
            let mut children_of: Vec<Vec<NodeId>> = vec![Vec::new(); parents.len()];
            let pindex = |p: NodeId, parents: &[NodeId]| parents.binary_search(&p).unwrap();
            for &c in &children {
                let p = parent[c.index()].unwrap();
                children_of[pindex(p, &parents)].push(c);
            }
            // Conflict: same-cluster parents a, b where some child of a is
            // adjacent to b (or vice versa).
            let down_colors = color_greedy(parents.len(), |a, b| {
                let (pa, pb) = (parents[a], parents[b]);
                if cluster_of[pa.index()] != cluster_of[pb.index()] {
                    return false;
                }
                children_of[a].iter().any(|c| g.has_edge(*c, pb))
                    || children_of[b].iter().any(|c| g.has_edge(*c, pa))
            });
            let slot_count = down_colors.iter().copied().max().map_or(0, |m| m + 1);
            let mut slots: Vec<Vec<NodeId>> = vec![Vec::new(); slot_count];
            for (pi, &color) in down_colors.iter().enumerate() {
                slots[color].push(parents[pi]);
            }
            down.push(slots);

            // --- Upcast: color the children against parent neighborhoods.
            // Conflict: same-cluster children c1, c2 where c2 is adjacent to
            // parent(c1) or c1 is adjacent to parent(c2). (Two children of
            // the same parent always conflict.)
            let up_colors = color_greedy(children.len(), |x, y| {
                let (cx, cy) = (children[x], children[y]);
                if cluster_of[cx.index()] != cluster_of[cy.index()] {
                    return false;
                }
                let px = parent[cx.index()].unwrap();
                let py = parent[cy.index()].unwrap();
                g.has_edge(cy, px) || g.has_edge(cx, py)
            });
            let slot_count = up_colors.iter().copied().max().map_or(0, |m| m + 1);
            let mut slots: Vec<Vec<NodeId>> = vec![Vec::new(); slot_count];
            for (ci, &color) in up_colors.iter().enumerate() {
                slots[color].push(children[ci]);
            }
            up.push(slots);
        }
        ClusterSchedule { cluster_of, layer, parent, down, up, depth }
    }

    /// Number of slots needed to downcast to radius `ℓ` (capped at depth).
    pub fn down_slots_to(&self, l: u32) -> usize {
        self.down.iter().take(l.min(self.depth) as usize).map(|s| s.len()).sum()
    }

    /// Number of slots needed to upcast from radius `ℓ` to the center.
    pub fn up_slots_to(&self, l: u32) -> usize {
        self.up.iter().take(l.min(self.depth) as usize).map(|s| s.len()).sum()
    }

    /// Verifies within-cluster conflict-freeness of every slot: for each
    /// downcast slot, every layer-`i+1` node whose parent transmits hears no
    /// other same-cluster transmitter; for each upcast slot, every parent of
    /// a transmitting child hears no other same-cluster transmitter.
    pub fn verify(&self, g: &Graph) -> bool {
        for (i, slots) in self.down.iter().enumerate() {
            for slot in slots {
                for &tx in slot {
                    debug_assert_eq!(self.layer[tx.index()], i as u32);
                    // All children of tx at layer i+1 must hear it.
                    for &c in g.neighbors(tx) {
                        if self.parent[c.index()] == Some(tx) {
                            let interference = slot.iter().any(|&other| {
                                other != tx
                                    && self.cluster_of[other.index()] == self.cluster_of[c.index()]
                                    && g.has_edge(other, c)
                            });
                            if interference {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        for slots in self.up.iter() {
            for slot in slots {
                for &tx in slot {
                    let p = match self.parent[tx.index()] {
                        Some(p) => p,
                        None => return false,
                    };
                    let interference = slot.iter().any(|&other| {
                        other != tx
                            && self.cluster_of[other.index()] == self.cluster_of[p.index()]
                            && g.has_edge(other, p)
                    });
                    if interference {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The maximum number of colors (slots) used by any single layer
    /// transition — `O(1)` on growth-bounded graphs, the quantity that makes
    /// pipelined propagation `O(ℓ)` there.
    pub fn max_colors(&self) -> usize {
        self.down.iter().map(|s| s.len()).chain(self.up.iter().map(|s| s.len())).max().unwrap_or(0)
    }
}

/// Greedy coloring of an implicit conflict graph on `k` items.
fn color_greedy(k: usize, conflicts: impl Fn(usize, usize) -> bool) -> Vec<usize> {
    let mut colors = vec![usize::MAX; k];
    for i in 0..k {
        let mut used: Vec<bool> = Vec::new();
        for (j, &color) in colors.iter().enumerate().take(i) {
            if conflicts(i, j) {
                let c = color;
                if used.len() <= c {
                    used.resize(c + 1, false);
                }
                used[c] = true;
            }
        }
        colors[i] = used.iter().position(|&u| !u).unwrap_or(used.len());
    }
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpx::{partition_with_shifts, Shifts};
    use radionet_graph::generators;
    use radionet_graph::independent_set::greedy_mis_min_degree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn single_cluster(g: &Graph, center: NodeId) -> Clustering {
        partition_with_shifts(g, &Shifts { centers: vec![center], deltas: vec![0.0] })
    }

    #[test]
    fn path_schedule_is_one_color() {
        // On a path each layer has one node; no conflicts anywhere.
        let g = generators::path(10);
        let c = single_cluster(&g, g.node(0));
        let s = ClusterSchedule::build(&g, &c);
        assert_eq!(s.depth, 9);
        assert!(s.verify(&g));
        assert_eq!(s.max_colors(), 1);
        assert_eq!(s.down_slots_to(9), 9);
        assert_eq!(s.up_slots_to(9), 9);
    }

    #[test]
    fn star_needs_many_up_colors() {
        // Star from hub: downcast is 1 slot (hub to all leaves); upcast needs
        // one slot per leaf (all children share the hub as parent).
        let g = generators::star(8);
        let c = single_cluster(&g, g.node(0));
        let s = ClusterSchedule::build(&g, &c);
        assert!(s.verify(&g));
        assert_eq!(s.down_slots_to(1), 1);
        assert_eq!(s.up_slots_to(1), 7);
    }

    #[test]
    fn grid_schedules_verified_and_shallow() {
        let g = generators::grid2d(9, 9);
        let c = single_cluster(&g, g.node(40)); // center of grid
        let s = ClusterSchedule::build(&g, &c);
        assert!(s.verify(&g));
        // Growth-bounded: constant colors per transition.
        assert!(s.max_colors() <= 12, "colors {}", s.max_colors());
    }

    #[test]
    fn multi_cluster_verified() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let g = generators::connected_gnp(80, 0.06, &mut rng);
            let mis = greedy_mis_min_degree(&g);
            let c = crate::mpx::partition(&g, &mis, 0.4, &mut rng);
            assert!(c.validate(&g));
            let s = ClusterSchedule::build(&g, &c);
            assert!(s.verify(&g), "schedule conflict on {g:?}");
        }
    }

    #[test]
    fn udg_constant_colors() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = generators::unit_disk_in_square(250, 7.0, &mut rng);
        let g = &inst.graph;
        let mis = greedy_mis_min_degree(g);
        let c = crate::mpx::partition(g, &mis, 0.3, &mut rng);
        let s = ClusterSchedule::build(g, &c);
        assert!(s.verify(g));
        // Unit-disk density bounds the conflict degree by a constant
        // (≈ packing of disks); allow slack.
        assert!(s.max_colors() <= 40, "colors {}", s.max_colors());
    }

    #[test]
    fn slots_cap_at_depth() {
        let g = generators::path(6);
        let c = single_cluster(&g, g.node(0));
        let s = ClusterSchedule::build(&g, &c);
        assert_eq!(s.down_slots_to(100), s.down_slots_to(s.depth));
    }

    #[test]
    fn empty_graph_schedule() {
        let g = Graph::from_edges(0, []).unwrap();
        let c = Clustering { cluster_of: vec![], centers: vec![], dist: vec![], parent: vec![] };
        let s = ClusterSchedule::build(&g, &c);
        assert_eq!(s.depth, 0);
        assert!(s.verify(&g));
        assert_eq!(s.max_colors(), 0);
    }
}
