//! Exponential random shifts (paper, Section 2.2).
//!
//! Each cluster center `v` independently draws `δ_v` from an exponential
//! distribution with parameter `β` (mean `1/β`). Sampled by inverse CDF so
//! no extra dependency is needed.

use rand::Rng;

/// Draws `δ ~ Exp(β)` (rate `β`, mean `1/β`).
///
/// # Panics
///
/// Panics unless `β > 0` and finite.
pub fn sample_exp<R: Rng + ?Sized>(beta: f64, rng: &mut R) -> f64 {
    assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
    // U ∈ (0, 1]; -ln(U)/β is Exp(β). Guard U = 0.
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / beta
}

/// Draws `δ ~ Exp(β)` truncated to `[0, cap]` by clamping.
///
/// MPX analyses condition on `max_v δ_v = O(log n / β)` (which holds whp);
/// clamping at `cap` implements that conditioning explicitly so the radio
/// implementation has a deterministic phase budget.
///
/// # Panics
///
/// Panics unless `β > 0` and `cap ≥ 0`.
pub fn sample_exp_clamped<R: Rng + ?Sized>(beta: f64, cap: f64, rng: &mut R) -> f64 {
    assert!(cap >= 0.0, "cap must be nonnegative");
    sample_exp(beta, rng).min(cap)
}

/// The standard clamp `factor · ln(n) / β` (exceeded with probability
/// `n^{-factor}` per draw).
pub fn delta_cap(beta: f64, n: usize, factor: f64) -> f64 {
    factor * (n.max(2) as f64).ln() / beta
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        for &beta in &[0.25, 1.0, 4.0] {
            let k = 20_000;
            let mean: f64 = (0..k).map(|_| sample_exp(beta, &mut rng)).sum::<f64>() / k as f64;
            assert!(
                (mean - 1.0 / beta).abs() < 0.05 / beta,
                "beta {beta}: mean {mean} vs {}",
                1.0 / beta
            );
        }
    }

    #[test]
    fn memoryless_tail() {
        // P(δ > t) = e^{-βt}: check at t = 1/β (should be e^{-1} ≈ 0.3679).
        let mut rng = StdRng::seed_from_u64(2);
        let beta = 0.5;
        let k = 40_000;
        let over = (0..k).filter(|_| sample_exp(beta, &mut rng) > 2.0).count();
        let frac = over as f64 / k as f64;
        assert!((frac - (-1.0f64).exp()).abs() < 0.01, "tail {frac}");
    }

    #[test]
    fn clamped_respects_cap() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(sample_exp_clamped(0.1, 5.0, &mut rng) <= 5.0);
        }
    }

    #[test]
    fn cap_formula() {
        let c = delta_cap(0.5, 1024, 2.0);
        assert!((c - 2.0 * (1024f64).ln() / 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn rejects_zero_beta() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = sample_exp(0.0, &mut rng);
    }

    #[test]
    fn nonnegative() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(sample_exp(2.0, &mut rng) >= 0.0);
        }
    }
}
