//! Property tests for the clustering crate.

use proptest::prelude::*;
use radionet_cluster::mpx::{draw_shifts, partition_with_shifts, Shifts};
use radionet_cluster::quantities::{b_param, MisProfile};
use radionet_cluster::ClusterSchedule;
use radionet_graph::independent_set::greedy_mis_min_degree;
use radionet_graph::traversal::bfs_distances;
use radionet_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..32, proptest::collection::vec((0usize..32, 0usize..32), 0..80)).prop_map(
        |(n, pairs)| {
            let mut b = GraphBuilder::new(n);
            for i in 1..n {
                b.add_edge(i - 1, i);
            }
            for (u, v) in pairs {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every node's assignment minimizes dist − δ over all centers, and the
    /// recorded dist equals the true graph distance to the winning center.
    #[test]
    fn mpx_assignment_is_argmin(g in arb_connected_graph(), seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mis = greedy_mis_min_degree(&g);
        let shifts = draw_shifts(&mis, 0.4, None, &mut rng);
        let c = partition_with_shifts(&g, &shifts);
        prop_assert!(c.validate(&g));
        // Precompute distances from every center.
        let dists: Vec<Vec<u32>> =
            shifts.centers.iter().map(|&s| bfs_distances(&g, s)).collect();
        for u in g.nodes() {
            let ci = c.cluster_of[u.index()].unwrap() as usize;
            let key = |i: usize| dists[i][u.index()] as f64 - shifts.deltas[i];
            let best = (0..shifts.centers.len())
                .map(key)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(key(ci) - best < 1e-9);
            prop_assert_eq!(c.dist[u.index()], dists[ci][u.index()]);
        }
    }

    /// Zero shifts degenerate to nearest-center Voronoi (by hop distance).
    #[test]
    fn zero_shifts_are_voronoi(g in arb_connected_graph()) {
        let mis = greedy_mis_min_degree(&g);
        let shifts = Shifts { centers: mis.clone(), deltas: vec![0.0; mis.len()] };
        let c = partition_with_shifts(&g, &shifts);
        let nearest = radionet_graph::traversal::bfs_distances_multi(&g, &mis);
        for u in g.nodes() {
            prop_assert_eq!(c.dist[u.index()], nearest[u.index()]);
        }
        // MIS centers ⇒ every node within distance 1 of some center.
        prop_assert!(c.radius() <= 1);
    }

    /// Schedules verify on arbitrary shifted clusterings, and slot counts
    /// line up with the per-transition color structure.
    #[test]
    fn schedule_structure(g in arb_connected_graph(), seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mis = greedy_mis_min_degree(&g);
        let shifts = draw_shifts(&mis, 0.25, None, &mut rng);
        let c = partition_with_shifts(&g, &shifts);
        let s = ClusterSchedule::build(&g, &c);
        prop_assert!(s.verify(&g));
        prop_assert_eq!(s.down.len() as u32, s.depth);
        prop_assert_eq!(s.up.len() as u32, s.depth);
        // Every layer-(i+1) node's parent appears in some down slot of
        // transition i.
        for v in g.nodes() {
            let l = s.layer[v.index()];
            if l != u32::MAX && l > 0 {
                let p = s.parent[v.index()].unwrap();
                let in_slots = s.down[(l - 1) as usize]
                    .iter()
                    .any(|slot| slot.contains(&p));
                prop_assert!(in_slots, "parent of {v:?} unscheduled");
            }
        }
    }

    /// Profile quantities: S_β is a weighted mean of distances, so it lies
    /// within [0, max distance], decreases as β grows, and s_prefix is
    /// monotone in j.
    #[test]
    fn profile_quantities_sane(
        m in proptest::collection::vec(0u64..50, 1..40),
        j in 0i64..12,
    ) {
        let p = MisProfile::from_counts(m.clone());
        prop_assume!(p.total() > 0);
        let max_d = (m.len() - 1) as f64;
        for &beta in &[0.01, 0.1, 1.0, 4.0] {
            let s = p.s_beta(beta);
            prop_assert!((0.0..=max_d + 1e-9).contains(&s));
        }
        prop_assert!(p.s_beta(0.01) + 1e-9 >= p.s_beta(1.0));
        prop_assert!(p.s_prefix(j) <= p.s_prefix(j + 1));
        prop_assert!(p.s_prefix(60) == p.total());
    }

    /// b_param brackets hold for arbitrary D, α.
    #[test]
    fn b_param_brackets(d in 2u32..1_000_000, alpha_exp in 0u32..20) {
        let alpha = 2f64.powi(alpha_exp as i32).max(1.0);
        let b = b_param(d, alpha) as f64;
        let lda = (alpha.max(2.0).ln() / (d as f64).ln()).max(1.0);
        prop_assert!(b >= 2.0);
        prop_assert!(b >= 4.0 * lda - 1e-9);
        prop_assert!(b <= 8.0 * lda + 1e-9);
    }
}
