//! Broadcasting via `Compete({s})` (paper, Theorem 7):
//! `O(D log_D α + log^{O(1)} n)` time-steps whp on undirected graphs.

use crate::compete::{run_compete, CompeteConfig, CompeteOutcome};
use radionet_graph::NodeId;
use radionet_sim::{JournalSink, Sim, Telemetry, TopologyView};

/// Result of a broadcast run.
#[derive(Clone, Debug)]
pub struct BroadcastOutcome {
    /// The underlying `Compete` outcome.
    pub compete: CompeteOutcome,
    /// The broadcast message.
    pub message: u64,
}

impl BroadcastOutcome {
    /// Whether every node learned the source message.
    pub fn completed(&self) -> bool {
        self.compete.all_know(self.message)
    }

    /// Clock (simulated + charged steps) when every node first knew the
    /// message, if it ever happened.
    pub fn completion_time(&self) -> Option<u64> {
        self.compete.clock_all_informed
    }
}

/// Broadcasts `message` from `source` (paper, Theorem 7: `Compete({s})`).
pub fn run_broadcast<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    source: NodeId,
    message: u64,
    config: &CompeteConfig,
) -> BroadcastOutcome {
    let mut initial = vec![None; sim.graph().n()];
    initial[source.index()] = Some(message);
    let compete = run_compete(sim, &initial, config);
    BroadcastOutcome { compete, message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_sim::NetInfo;

    #[test]
    fn broadcast_completes_on_spider() {
        let g = generators::spider(6, 6);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 11);
        let out = run_broadcast(&mut sim, g.node(0), 7, &CompeteConfig::default());
        assert!(out.completed());
        assert!(out.completion_time().is_some());
    }

    #[test]
    fn broadcast_from_leaf() {
        let g = generators::binary_tree(5);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 12);
        let leaf = g.node(g.n() - 1);
        let out = run_broadcast(&mut sim, leaf, 123, &CompeteConfig::default());
        assert!(out.completed());
    }

    #[test]
    fn broadcast_on_random_tree() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = generators::random_tree(60, &mut rng);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 13);
        let out = run_broadcast(&mut sim, g.node(0), 1, &CompeteConfig::default());
        assert!(out.completed());
    }
}
