//! `Compete(S)` (paper, Algorithm 2): the independence-number-parametrized
//! message competition underlying broadcast (Theorem 7) and leader election
//! (Theorem 8).
//!
//! Stages, following the paper:
//!
//! 1. `MIS ← ComputeMIS` (Algorithm 7);
//! 2. coarse clustering: `Partition(β, MIS)` with `β = D^{-1/2}`;
//! 3. schedules within coarse clusters (constructed engine-side, charged —
//!    DESIGN.md S1);
//! 4. fine clusterings: `Partition(2^{-j}, MIS)` for each scale `j` in the
//!    randomized range, several per scale;
//! 5. schedules within all fine clusterings (charged as in 3);
//! 6. each coarse center draws a random sequence of fine clusterings — here
//!    a PRG seed standing for the `D^{0.99}`-length sequence (nodes expand
//!    the seed, which is how an actual implementation would coordinate
//!    randomness in `O(log n)` bits);
//! 7. the seed is transmitted within each coarse cluster over the coarse
//!    schedules;
//! 8. for each clustering in the sequence, Intra-Cluster Propagation with
//!    length `Θ(log_D α / β)`, time-multiplexed with the background
//!    processes (Algorithms 8 and 10).
//!
//! The \[CD21\] baseline is the same engine with [`CenterMode::AllNodes`] and
//! [`IcpLenMode::LogDN`] (its `Partition(β)` and `Θ(log_D n / β)` length).

use crate::icp::{cluster_ids, BgDecaySeq, IcpSeq, IcpTimeline};
use crate::mis::{run_radio_mis, MisConfig};
use radionet_cluster::partition_radio::run_radio_partition_normalized;
use radionet_cluster::quantities::j_range;
use radionet_cluster::{ClusterSchedule, Clustering, RadioPartitionConfig};
use radionet_graph::NodeId;
use radionet_primitives::ids::random_id;
use radionet_sim::{
    Action, CostModel, JournalSink, NodeCtx, Protocol, Sim, Telemetry, TopologyView, Wake,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which nodes may become cluster centers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CenterMode {
    /// Only MIS nodes (this paper's `Partition(β, MIS)`).
    Mis,
    /// Every node (the \[CD21\] `Partition(β)` baseline).
    AllNodes,
}

/// How the ICP length `ℓ` scales.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcpLenMode {
    /// `ℓ = Θ(log_D α / β)` (this paper, Theorem 2).
    LogDAlpha,
    /// `ℓ = Θ(log_D n / β)` (the \[CD21\] analysis).
    LogDN,
}

/// Configuration of `Compete` (paper constants with S2 calibration knobs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompeteConfig {
    /// Radio MIS parameters (stage 1).
    pub mis: MisConfig,
    /// Radio partition parameters (stages 2 and 4).
    pub partition: RadioPartitionConfig,
    /// Charged-cost model for schedule construction (stages 3 and 5).
    pub cost: CostModel,
    /// Center policy (paper vs \[CD21\] ablation).
    pub centers: CenterMode,
    /// ICP length scaling (paper vs \[CD21\] ablation).
    pub icp_len: IcpLenMode,
    /// `ℓ = icp_len_factor · log_D α / β` (constant inside the paper's Θ).
    pub icp_len_factor: f64,
    /// Coarse `β = D^{coarse_beta_exp}` (paper: −1/2).
    pub coarse_beta_exp: f64,
    /// Fine-scale range: integers `j ∈ [j_lo_frac·log D, j_hi_frac·log D]`
    /// (paper: 0.01 and 0.1; widened at simulation scale — S2).
    pub j_lo_frac: f64,
    /// Upper end of the fine-scale range (fraction of `log D`).
    pub j_hi_frac: f64,
    /// Clusterings per scale = `max(1, ⌈D^{per_j_exp}⌉)` (paper: 0.2).
    pub per_j_exp: f64,
    /// Hard cap on clusterings per scale and background clusterings (the
    /// paper's polynomial counts are asymptotic bookkeeping; a handful of
    /// independent clusterings per scale already decorrelates rounds — S2).
    pub per_j_cap: usize,
    /// Sequence length = `max(4, ⌈D^{sequence_exp}⌉)` (paper: 0.99).
    pub sequence_exp: f64,
    /// Background (Algorithm 8) `β = D^{bg_beta_exp}` (paper: −0.1).
    pub bg_beta_exp: f64,
    /// Background clusterings = `max(1, ⌈D^{bg_count_exp}⌉)` (paper: 0.2).
    pub bg_count_exp: f64,
    /// Enable the Algorithm 8 + 10 background strands.
    pub background: bool,
    /// Propagation budget = `budget_factor · D · log_D α` (or `log_D n`)
    /// `+ budget_polylog_factor · log³ n` steps.
    pub budget_factor: f64,
    /// Additive polylog budget multiplier.
    pub budget_polylog_factor: f64,
    /// Stop the propagation loop once every node knows the maximum message
    /// (harness-side check between rounds; the measured quantity either way
    /// is [`CompeteOutcome::clock_all_informed`]).
    pub stop_when_informed: bool,
}

impl Default for CompeteConfig {
    fn default() -> Self {
        CompeteConfig {
            mis: MisConfig::fast(),
            partition: RadioPartitionConfig::default(),
            cost: CostModel::default(),
            centers: CenterMode::Mis,
            icp_len: IcpLenMode::LogDAlpha,
            icp_len_factor: 2.0,
            coarse_beta_exp: -0.5,
            j_lo_frac: 0.1,
            j_hi_frac: 0.45,
            per_j_exp: 0.2,
            per_j_cap: 4,
            sequence_exp: 0.99,
            bg_beta_exp: -0.1,
            bg_count_exp: 0.2,
            background: true,
            budget_factor: 60.0,
            budget_polylog_factor: 30.0,
            stop_when_informed: true,
        }
    }
}

impl CompeteConfig {
    /// The \[CD21\] ablation: all-node centers, `log_D n` ICP lengths.
    pub fn cd21() -> Self {
        CompeteConfig {
            centers: CenterMode::AllNodes,
            icp_len: IcpLenMode::LogDN,
            ..Self::default()
        }
    }

    /// The propagation step budget for this config on a network with the
    /// given estimates: `budget_factor · D · log_D α` (or `log_D n` under
    /// [`IcpLenMode::LogDN`]) `+ budget_polylog_factor · log³ n`.
    ///
    /// This is the single source of truth for the stage-8 loop's budget;
    /// the scenario catalogue also uses it as the timebase that event-time
    /// fractions refer to.
    pub fn propagation_budget(&self, info: &radionet_sim::NetInfo) -> u64 {
        let log_term = match self.icp_len {
            IcpLenMode::LogDAlpha => info.log_d_alpha(),
            IcpLenMode::LogDN => info.log_d_n(),
        };
        let l3 = (info.log_n().max(2) as f64).powi(3);
        (self.budget_factor * info.d.max(2) as f64 * log_term + self.budget_polylog_factor * l3)
            as u64
    }

    /// The length multiplier for a fine clustering at scale `j`.
    fn icp_len_for(&self, j: i64, info: &radionet_sim::NetInfo) -> u32 {
        let per_beta = 2f64.powi(j as i32); // 1/β
        let log_term = match self.icp_len {
            IcpLenMode::LogDAlpha => info.log_d_alpha(),
            IcpLenMode::LogDN => info.log_d_n(),
        };
        (self.icp_len_factor * log_term * per_beta).ceil().max(1.0) as u32
    }
}

/// One prepared fine clustering: normalized clusters, schedule, ICP
/// timeline, per-node cluster ids.
struct FineClustering {
    timeline: Arc<IcpTimeline>,
    ids: Vec<u64>,
}

/// Outcome of a `Compete` run.
#[derive(Clone, Debug)]
pub struct CompeteOutcome {
    /// Highest message known by each node at the end.
    pub best: Vec<Option<u64>>,
    /// Clock after the setup stages (MIS, clusterings, schedules, seed
    /// spread), including charged steps.
    pub clock_setup: u64,
    /// Total clock at exit.
    pub clock_total: u64,
    /// Clock value when every node first knew the maximum message (checked
    /// between propagation rounds); `None` if never achieved.
    pub clock_all_informed: Option<u64>,
    /// Whether the stage-1 MIS was a valid maximal independent set
    /// (`None` under [`CenterMode::AllNodes`]).
    pub mis_valid: Option<bool>,
    /// Fraction of nodes that received their coarse cluster's sequence seed.
    pub seed_coverage: f64,
    /// Propagation rounds executed.
    pub rounds_run: u64,
    /// Number of fine clusterings prepared.
    pub fine_count: usize,
}

impl CompeteOutcome {
    /// Whether all nodes know `target`.
    pub fn all_know(&self, target: u64) -> bool {
        self.best.iter().all(|b| *b == Some(target))
    }
}

/// Runs `Compete(S)`: `initial[v]` is `Some(message)` for nodes in `S`.
///
/// # Panics
///
/// Panics if `initial.len() != n` or no node carries a message.
pub fn run_compete<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    initial: &[Option<u64>],
    config: &CompeteConfig,
) -> CompeteOutcome {
    let g = sim.graph();
    let info = *sim.info();
    let n = g.n();
    assert_eq!(initial.len(), n, "one initial message slot per node");
    let target = initial.iter().flatten().copied().max().expect("Compete needs a message");
    let log_n = info.log_n();
    let d = info.d.max(2);

    // Stage 1: centers.
    let (center_flags, mis_valid) = match config.centers {
        CenterMode::Mis => {
            let out = run_radio_mis(sim, &config.mis);
            let valid = out.is_valid(g);
            let mut flags = out.mis_flags();
            if !flags.iter().any(|&f| f) {
                // Vanishing-probability repair: an unusable MIS falls back
                // to all-node centers rather than crashing the run.
                flags = vec![true; n];
            }
            (flags, Some(valid))
        }
        CenterMode::AllNodes => (vec![true; n], None),
    };

    // Stage 2 + 3: coarse clustering and schedules.
    let beta_coarse = (d as f64).powf(config.coarse_beta_exp).min(1.0);
    let (coarse, _, _) =
        run_radio_partition_normalized(sim, &center_flags, beta_coarse, config.partition);
    let coarse = coarse.expect("coarse partition lost a center (id collision)");
    sim.charge(config.cost.schedule_build_cost(n));
    let coarse_sched = ClusterSchedule::build(g, &coarse);
    debug_assert!(coarse_sched.verify(g));

    // Stage 4 + 5: fine clusterings and schedules. The scale range follows
    // the paper's `[c₁ log D, c₂ log D]` (S2-calibrated fractions), further
    // capped so the fine-cluster radius `Θ(log n / β) = Θ(2^j log n)` stays
    // below `D` — above that the "fine" clusters would span the graph (the
    // paper's `0.1 log D` cap serves the same purpose asymptotically).
    let scales = j_range(d, config.j_lo_frac, config.j_hi_frac);
    let j_cap = ((d as f64).log2() - (log_n.max(2) as f64).log2() - 0.5).floor().max(1.0) as i64;
    let j_lo = *scales.start();
    let j_hi = (*scales.end()).min(j_cap).max(j_lo);
    let scales = j_lo..=j_hi;
    let per_j =
        ((d as f64).powf(config.per_j_exp).ceil().max(1.0) as usize).min(config.per_j_cap.max(1));
    let mut fines: Vec<FineClustering> = Vec::new();
    for j in scales {
        let beta = 2f64.powi(-(j as i32)).min(1.0);
        for _ in 0..per_j {
            let (c, _, _) =
                run_radio_partition_normalized(sim, &center_flags, beta, config.partition);
            let c = c.expect("fine partition lost a center (id collision)");
            sim.charge(config.cost.schedule_build_cost(n));
            let sched = ClusterSchedule::build(g, &c);
            debug_assert!(sched.verify(g));
            let l = config.icp_len_for(j, &info);
            fines.push(FineClustering {
                timeline: Arc::new(IcpTimeline::build(&sched, n, l)),
                ids: cluster_ids(&c),
            });
        }
    }

    // Background (Algorithm 8) clusterings.
    let mut bgs: Vec<FineClustering> = Vec::new();
    if config.background {
        let beta_bg = (d as f64).powf(config.bg_beta_exp).min(1.0);
        let bg_count = ((d as f64).powf(config.bg_count_exp).ceil().max(1.0) as usize)
            .min(config.per_j_cap.max(1));
        let l_bg = (config.icp_len_factor * (info.n.max(2) as f64).log2() / beta_bg).ceil().max(1.0)
            as u32;
        for _ in 0..bg_count {
            let (c, _, _) =
                run_radio_partition_normalized(sim, &center_flags, beta_bg, config.partition);
            let c = c.expect("background partition lost a center");
            sim.charge(config.cost.schedule_build_cost(n));
            let sched = ClusterSchedule::build(g, &c);
            debug_assert!(sched.verify(g));
            bgs.push(FineClustering {
                timeline: Arc::new(IcpTimeline::build(&sched, n, l_bg)),
                ids: cluster_ids(&c),
            });
        }
    }

    // Stage 6 + 7: sequence seeds over the coarse clusters.
    let seeds = spread_seeds(sim, &coarse, &coarse_sched);
    let seed_coverage = seeds.iter().filter(|s| s.is_some()).count() as f64 / n.max(1) as f64;
    let node_seed: Vec<u64> = seeds
        .iter()
        .enumerate()
        .map(|(i, s)| {
            s.unwrap_or_else(|| {
                // Fallback for nodes that missed the seed: derive from the
                // coarse cluster index (keeps most of the cluster aligned).
                coarse.cluster_of[i].map(|c| c as u64).unwrap_or(0)
            })
        })
        .collect();
    let clock_setup = sim.clock();

    // Stage 8: propagation rounds.
    let budget = config.propagation_budget(&info);
    let seq_len = (d as f64).powf(config.sequence_exp).ceil().max(4.0) as u64;

    let mut best: Vec<Option<u64>> = initial.to_vec();
    let mut clock_all_informed = None;
    let mut prop_steps: u64 = 0;
    let mut rounds_run = 0;
    for r in 0..seq_len {
        let mut states: Vec<RoundNode> = (0..n)
            .map(|i| {
                let v = NodeId::new(i);
                let fi = (hash_u64(node_seed[i], r) % fines.len() as u64) as usize;
                let fine = &fines[fi];
                let bg = (!bgs.is_empty()).then(|| {
                    let b = &bgs[(r % bgs.len() as u64) as usize];
                    (IcpSeq::new(b.timeline.clone(), v), BgDecaySeq::new(b.ids[i], r ^ 0xb6, log_n))
                });
                RoundNode {
                    best: best[i],
                    elapsed: 0,
                    icp_main: IcpSeq::new(fine.timeline.clone(), v),
                    decay_main: BgDecaySeq::new(fine.ids[i], r, log_n),
                    bg,
                }
            })
            .collect();
        // Wall budget: 4 strands, the slowest ICP timeline gates the round.
        let max_len = states
            .iter()
            .map(|s| {
                let a = s.icp_main.timeline_len();
                let b = s.bg.as_ref().map(|(i, _)| i.timeline_len()).unwrap_or(0);
                a.max(b)
            })
            .max()
            .unwrap_or(0) as u64;
        let wall = 4 * (max_len + 1) + 4;
        let rep = sim.run_phase(&mut states, wall);
        prop_steps += rep.steps;
        rounds_run += 1;
        for (i, s) in states.iter().enumerate() {
            best[i] = s.best;
        }
        if clock_all_informed.is_none() && best.iter().all(|b| *b == Some(target)) {
            clock_all_informed = Some(sim.clock());
            if config.stop_when_informed {
                break;
            }
        }
        if prop_steps >= budget {
            break;
        }
    }

    CompeteOutcome {
        best,
        clock_setup,
        clock_total: sim.clock(),
        clock_all_informed,
        mis_valid,
        seed_coverage,
        rounds_run,
        fine_count: fines.len(),
    }
}

/// A propagation round's per-node protocol: four time-multiplexed strands
/// sharing one `best` register (slot 0: main ICP; 1: main background decay;
/// 2: Algorithm 8 ICP; 3: Algorithm 8 background decay).
struct RoundNode {
    best: Option<u64>,
    elapsed: u64,
    icp_main: IcpSeq,
    decay_main: BgDecaySeq,
    bg: Option<(IcpSeq, BgDecaySeq)>,
}

impl Protocol for RoundNode {
    type Msg = u64;

    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u64> {
        let t = ctx.time;
        self.elapsed = t;
        let sub = t / 4;
        let tx = match t % 4 {
            0 => self.icp_main.step(sub, self.best),
            1 => self.decay_main.step(sub, self.best, ctx.rng),
            2 => self.bg.as_mut().and_then(|(icp, _)| icp.step(sub, self.best)),
            _ => self.bg.as_ref().and_then(|(_, d)| d.step(sub, self.best, ctx.rng)),
        };
        match tx {
            Some(m) => Action::Transmit(m),
            None => Action::Listen,
        }
    }

    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &u64) {
        if self.best.is_none_or(|b| b < *msg) {
            self.best = Some(*msg);
        }
    }

    fn is_done(&self) -> bool {
        let sub = self.elapsed / 4;
        self.icp_main.finished(sub)
            && self.bg.as_ref().map(|(icp, _)| icp.finished(sub)).unwrap_or(true)
    }

    fn next_wake(&self, _now: u64) -> Wake {
        if self.best.is_some() {
            // Informed: the background decay strands coin-flip most steps.
            return Wake::Now;
        }
        // Uninformed: all four strands are silent and random-free, so the
        // node is a pure listener until the frontier reaches it. Its done
        // promise is the slowest of its own ICP timelines (4-way
        // multiplexed), matching what is_done would report step by step.
        let len_main = self.icp_main.timeline_len() as u64;
        let len_bg = self.bg.as_ref().map(|(icp, _)| icp.timeline_len() as u64).unwrap_or(0);
        Wake::Listen { wake_at: Wake::NEVER, done_at: Some(4 * len_main.max(len_bg)) }
    }
}

/// Stage 6 + 7: each coarse center draws a PRG seed; the seed is downcast
/// over the coarse schedules. Returns the per-node seed (None = missed).
fn spread_seeds<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    coarse: &Clustering,
    coarse_sched: &ClusterSchedule,
) -> Vec<Option<u64>> {
    let g = sim.graph();
    let n = g.n();
    let timeline = Arc::new(IcpTimeline::build_downcast(coarse_sched, n, coarse_sched.depth));
    let wall = timeline.len() as u64 + 2;
    let mut states: Vec<SeedNode> = (0..n)
        .map(|i| {
            let v = NodeId::new(i);
            let cluster = coarse.cluster_of[i].map(|c| c as u64).unwrap_or(u64::MAX);
            let is_center =
                coarse.cluster_of[i].map(|c| coarse.centers[c as usize] == v).unwrap_or(false);
            SeedNode {
                cluster,
                is_center,
                seed: None,
                seq: IcpSeq::new(timeline.clone(), v),
                elapsed: 0,
            }
        })
        .collect();
    sim.run_phase(&mut states, wall);
    states.into_iter().map(|s| s.seed).collect()
}

/// Seed-distribution message: `(coarse cluster id, seed)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SeedMsg {
    cluster: u64,
    seed: u64,
}

struct SeedNode {
    cluster: u64,
    is_center: bool,
    seed: Option<u64>,
    seq: IcpSeq,
    elapsed: u64,
}

impl Protocol for SeedNode {
    type Msg = SeedMsg;

    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<SeedMsg> {
        let t = ctx.time;
        self.elapsed = t;
        if t == 0 && self.is_center {
            self.seed = Some(random_id(ctx.info.n, ctx.rng));
        }
        match self.seq.step(t, self.seed) {
            Some(seed) => Action::Transmit(SeedMsg { cluster: self.cluster, seed }),
            None => Action::Listen,
        }
    }

    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &SeedMsg) {
        if self.seed.is_none() && msg.cluster == self.cluster {
            self.seed = Some(msg.seed);
        }
    }

    fn is_done(&self) -> bool {
        self.seq.finished(self.elapsed)
    }

    fn next_wake(&self, now: u64) -> Wake {
        let len = self.seq.timeline_len() as u64;
        // Step 0 initializes center seeds (a random draw); after that a
        // node only needs `act` in its own scheduled downcast slots — and
        // only once it has a seed to forward. Everything else is passive
        // listening; done once the timeline is exhausted.
        let done_at = Some(len);
        if self.seed.is_some() {
            match self.seq.next_scheduled_at(now + 1) {
                Some(slot) if slot < len => Wake::Listen { wake_at: slot, done_at },
                _ => Wake::Listen { wake_at: Wake::NEVER, done_at },
            }
        } else {
            Wake::Listen { wake_at: Wake::NEVER, done_at }
        }
    }
}

/// Deterministic 64-bit hash (splitmix-style) for sequence expansion.
pub fn hash_u64(key: u64, r: u64) -> u64 {
    let mut x = key ^ r.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_sim::NetInfo;

    fn compete_single_source(
        g: &radionet_graph::Graph,
        src: usize,
        config: &CompeteConfig,
        seed: u64,
    ) -> CompeteOutcome {
        let mut sim = Sim::new(g, NetInfo::exact(g), seed);
        let mut initial = vec![None; g.n()];
        initial[src] = Some(42u64);
        run_compete(&mut sim, &initial, config)
    }

    #[test]
    fn informs_path() {
        let g = generators::path(48);
        let out = compete_single_source(&g, 0, &CompeteConfig::default(), 1);
        assert!(
            out.all_know(42),
            "informed {}/{}",
            out.best.iter().filter(|b| **b == Some(42)).count(),
            g.n()
        );
        assert!(out.clock_all_informed.is_some());
    }

    #[test]
    fn informs_grid() {
        let g = generators::grid2d(10, 10);
        let out = compete_single_source(&g, 0, &CompeteConfig::default(), 2);
        assert!(out.all_know(42));
        assert!(out.mis_valid == Some(true));
        assert!(out.seed_coverage > 0.8, "seed coverage {}", out.seed_coverage);
    }

    #[test]
    fn informs_star_and_clique() {
        for (g, s) in [(generators::star(40), 3u64), (generators::complete(24), 4)] {
            let out = compete_single_source(&g, 1, &CompeteConfig::default(), s);
            assert!(out.all_know(42), "{g:?}");
        }
    }

    #[test]
    fn cd21_config_informs_too() {
        let g = generators::grid2d(8, 8);
        let out = compete_single_source(&g, 5, &CompeteConfig::cd21(), 5);
        assert!(out.all_know(42));
        assert!(out.mis_valid.is_none());
    }

    #[test]
    fn multi_source_highest_wins() {
        let g = generators::cycle(32);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 6);
        let mut initial = vec![None; g.n()];
        initial[0] = Some(10u64);
        initial[16] = Some(99u64);
        let out = run_compete(&mut sim, &initial, &CompeteConfig::default());
        assert!(out.all_know(99));
    }

    #[test]
    fn no_background_still_works_on_small_graphs() {
        let g = generators::grid2d(6, 6);
        let cfg = CompeteConfig { background: false, ..CompeteConfig::default() };
        let out = compete_single_source(&g, 0, &cfg, 7);
        assert!(out.all_know(42));
    }

    #[test]
    fn setup_clock_included() {
        let g = generators::grid2d(6, 6);
        let out = compete_single_source(&g, 0, &CompeteConfig::default(), 8);
        assert!(out.clock_setup > 0);
        assert!(out.clock_total >= out.clock_setup);
        if let Some(t) = out.clock_all_informed {
            assert!(t >= out.clock_setup && t <= out.clock_total);
        }
    }

    #[test]
    #[should_panic(expected = "Compete needs a message")]
    fn no_sources_rejected() {
        let g = generators::path(4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let _ = run_compete(&mut sim, &[None; 4], &CompeteConfig::default());
    }

    #[test]
    fn hash_u64_spreads() {
        let vals: std::collections::HashSet<u64> = (0..100).map(|r| hash_u64(7, r) % 16).collect();
        assert!(vals.len() > 8);
    }
}
