//! Intra-Cluster Propagation (paper, Algorithm 9) and its background
//! process (Algorithm 10).
//!
//! An ICP invocation on a clustering with schedule `S` and length `ℓ`
//! executes three stages over the precomputed conflict-free slots:
//!
//! 1. downcast: pipeline the centers' messages out to distance `ℓ`;
//! 2. upcast: converge-cast higher messages back to the centers;
//! 3. downcast again.
//!
//! A scheduled transmitter simply transmits the highest message it knows
//! (the paper's "participate only if higher" test is an optimization that
//! only *reduces* the scheduled transmitter set, so omitting it cannot
//! create within-cluster collisions; receivers take `max`). Listeners
//! opportunistically absorb *any* message they hear — including from
//! adjacent clusters, which is precisely how messages cross cluster
//! boundaries between rounds.
//!
//! The background process (Algorithm 10) runs time-multiplexed: in each
//! `log n`-step block, with probability `2^{-i}` (coordinated within each
//! cluster via a shared pseudorandom coin on the cluster id — the paper
//! coordinates via the cluster schedules) the cluster's informed members
//! perform one Decay iteration, patching collisions at cluster borders.

use radionet_cluster::{ClusterSchedule, Clustering};
use radionet_graph::NodeId;
use radionet_primitives::decay::DecaySchedule;
use rand::Rng;
use std::sync::Arc;

/// Stage of an ICP slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IcpStage {
    /// First downcast.
    Down1,
    /// Upcast towards centers.
    Up,
    /// Second downcast.
    Down2,
}

/// A global ICP timeline: one entry per slot (= per protocol-local step).
#[derive(Clone, Debug)]
pub struct IcpTimeline {
    /// Stage and layer transition of each slot (metadata for debugging).
    pub slots: Vec<(IcpStage, u32)>,
    /// Per node, the sorted list of slots in which it is a scheduled
    /// transmitter.
    pub tx_slots: Vec<Vec<u32>>,
}

impl IcpTimeline {
    /// Builds the timeline for `ICP(ℓ)` from a schedule.
    ///
    /// The slot order is: down transitions `0..ℓ`, up child-layers `ℓ..1`,
    /// down transitions `0..ℓ` again, with per-transition slot groups laid
    /// out consecutively.
    pub fn build(schedule: &ClusterSchedule, n: usize, l: u32) -> Self {
        let l = l.min(schedule.depth);
        let mut slots = Vec::new();
        let mut tx_slots: Vec<Vec<u32>> = vec![Vec::new(); n];
        let push_group = |slots: &mut Vec<(IcpStage, u32)>,
                          tx_slots: &mut Vec<Vec<u32>>,
                          stage: IcpStage,
                          transition: u32,
                          group: &[Vec<NodeId>]| {
            for slot_txs in group {
                let idx = slots.len() as u32;
                slots.push((stage, transition));
                for &v in slot_txs {
                    tx_slots[v.index()].push(idx);
                }
            }
        };
        for i in 0..l {
            push_group(&mut slots, &mut tx_slots, IcpStage::Down1, i, &schedule.down[i as usize]);
        }
        for i in (1..=l).rev() {
            push_group(&mut slots, &mut tx_slots, IcpStage::Up, i, &schedule.up[(i - 1) as usize]);
        }
        for i in 0..l {
            push_group(&mut slots, &mut tx_slots, IcpStage::Down2, i, &schedule.down[i as usize]);
        }
        IcpTimeline { slots, tx_slots }
    }

    /// Builds a downcast-only timeline (used to distribute the coarse
    /// clusters' fine-clustering sequences, Algorithm 2 step 7).
    pub fn build_downcast(schedule: &ClusterSchedule, n: usize, l: u32) -> Self {
        let l = l.min(schedule.depth);
        let mut slots = Vec::new();
        let mut tx_slots: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..l {
            for slot_txs in &schedule.down[i as usize] {
                let idx = slots.len() as u32;
                slots.push((IcpStage::Down1, i));
                for &v in slot_txs {
                    tx_slots[v.index()].push(idx);
                }
            }
        }
        IcpTimeline { slots, tx_slots }
    }

    /// Number of slots (protocol-local steps) in the timeline.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the timeline has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Per-node ICP sequencer: walks a shared timeline, transmitting its best
/// message in its scheduled slots. Drive it from a composite protocol.
#[derive(Clone, Debug)]
pub struct IcpSeq {
    timeline: Arc<IcpTimeline>,
    /// This node's scheduled slots (sorted), with a cursor.
    my_slots: Vec<u32>,
    cursor: usize,
}

impl IcpSeq {
    /// Sequencer for node `v` over a shared timeline.
    pub fn new(timeline: Arc<IcpTimeline>, v: NodeId) -> Self {
        let my_slots = timeline.tx_slots[v.index()].clone();
        IcpSeq { timeline, my_slots, cursor: 0 }
    }

    /// Action for protocol-local step `t`: `Some(msg)` to transmit,
    /// `None` to listen. Returns `None` forever once past the timeline.
    pub fn step(&mut self, t: u64, best: Option<u64>) -> Option<u64> {
        if t >= self.timeline.len() as u64 {
            return None;
        }
        while self.cursor < self.my_slots.len() && (self.my_slots[self.cursor] as u64) < t {
            self.cursor += 1;
        }
        if self.cursor < self.my_slots.len() && (self.my_slots[self.cursor] as u64) == t {
            self.cursor += 1;
            best
        } else {
            None
        }
    }

    /// Whether the timeline is exhausted at local step `t`.
    pub fn finished(&self, t: u64) -> bool {
        t >= self.timeline.len() as u64
    }

    /// The first protocol-local step `≥ t` in which this node is a
    /// scheduled transmitter, if any. Does not advance the cursor — this is
    /// the lookahead the sparse kernel's wake hints are built from (a node
    /// sleeps through every slot that isn't its own).
    pub fn next_scheduled_at(&self, t: u64) -> Option<u64> {
        let start = self.cursor + self.my_slots[self.cursor..].partition_point(|&s| (s as u64) < t);
        self.my_slots.get(start).map(|&s| s as u64)
    }

    /// Length of the underlying timeline in slots.
    pub fn timeline_len(&self) -> usize {
        self.timeline.len()
    }
}

/// Per-node sequencer for the ICP background process (Algorithm 10).
#[derive(Clone, Debug)]
pub struct BgDecaySeq {
    /// Cluster identifier (coordinates the per-block coin).
    cluster: u64,
    /// Salt mixed into the coin (differs per Compete round).
    salt: u64,
    schedule: DecaySchedule,
    log_n: u32,
}

impl BgDecaySeq {
    /// Sequencer for a node of cluster `cluster` (use the cluster index of
    /// the currently selected fine clustering; unclustered nodes may pass
    /// any value — they are silent anyway if uninformed).
    pub fn new(cluster: u64, salt: u64, log_n: u32) -> Self {
        BgDecaySeq { cluster, salt, schedule: DecaySchedule::new(log_n), log_n: log_n.max(1) }
    }

    /// Whether the cluster's coin turned this block on, and the in-block
    /// transmit probability. Runs forever (no timeline).
    pub fn step(&self, t: u64, best: Option<u64>, rng: &mut impl Rng) -> Option<u64> {
        let best = best?;
        let block = t / self.log_n as u64;
        let step_in_block = t % self.log_n as u64;
        // Algorithm 10: block i (cycling 1..log n) is active with
        // probability 2^{-i}, coordinated per cluster.
        let i = 1 + (block % self.log_n as u64) as u32;
        let coin = hash01(self.cluster ^ self.salt.wrapping_mul(0x9e37_79b9_7f4a_7c15), block);
        if coin < 2f64.powi(-(i as i32)) && rng.gen_bool(self.schedule.prob(step_in_block)) {
            Some(best)
        } else {
            None
        }
    }
}

/// Deterministic hash of `(key, block)` into `[0, 1)` — the "coordinated in
/// each cluster" coin (every member computes the same value).
pub fn hash01(key: u64, block: u64) -> f64 {
    let mut x = key ^ block.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds a per-clustering mapping from nodes to cluster ids for
/// [`BgDecaySeq`] (`u64::MAX` for unclustered nodes).
pub fn cluster_ids(clustering: &Clustering) -> Vec<u64> {
    clustering.cluster_of.iter().map(|c| c.map(|x| x as u64).unwrap_or(u64::MAX)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_cluster::mpx::{partition_with_shifts, Shifts};
    use radionet_graph::generators;

    fn line_timeline(n: usize, l: u32) -> (IcpTimeline, radionet_graph::Graph) {
        let g = generators::path(n);
        let c = partition_with_shifts(&g, &Shifts { centers: vec![g.node(0)], deltas: vec![0.0] });
        let s = ClusterSchedule::build(&g, &c);
        (IcpTimeline::build(&s, g.n(), l), g)
    }

    #[test]
    fn timeline_structure_on_path() {
        let (t, _) = line_timeline(6, 3);
        // Path: 1 slot per transition. Down 3 + up 3 + down 3.
        assert_eq!(t.len(), 9);
        assert_eq!(t.slots[0], (IcpStage::Down1, 0));
        assert_eq!(t.slots[3], (IcpStage::Up, 3));
        assert_eq!(t.slots[4], (IcpStage::Up, 2));
        assert_eq!(t.slots[6], (IcpStage::Down2, 0));
        // Node 0 transmits in slots for down transition 0 (slots 0 and 6).
        assert_eq!(t.tx_slots[0], vec![0, 6]);
        // Node 3 transmits: down transition 3? l=3 so transitions 0,1,2:
        // node 2 tx at transition 2 (slots 2, 8); node 3 tx at up layer 3 (slot 3).
        assert_eq!(t.tx_slots[3], vec![3]);
    }

    #[test]
    fn timeline_capped_at_depth() {
        let (t, _) = line_timeline(4, 100);
        // depth = 3: down 3 + up 3 + down 3.
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn seq_transmits_only_when_informed() {
        let (t, _) = line_timeline(6, 3);
        let t = Arc::new(t);
        let mut seq = IcpSeq::new(t.clone(), NodeId::new(0));
        assert_eq!(seq.step(0, None), None); // uninformed: silent
        let mut seq2 = IcpSeq::new(t, NodeId::new(0));
        assert_eq!(seq2.step(0, Some(7)), Some(7));
        assert_eq!(seq2.step(1, Some(7)), None); // not scheduled
        assert_eq!(seq2.step(6, Some(9)), Some(9));
        assert!(seq2.finished(9));
        assert!(!seq2.finished(8));
    }

    #[test]
    fn seq_skips_missed_slots() {
        let (t, _) = line_timeline(6, 3);
        let mut seq = IcpSeq::new(Arc::new(t), NodeId::new(0));
        // Jump straight past slot 0: cursor must advance, not replay it.
        assert_eq!(seq.step(5, Some(1)), None);
        assert_eq!(seq.step(6, Some(1)), Some(1));
    }

    #[test]
    fn hash01_uniformish_and_deterministic() {
        assert_eq!(hash01(5, 9), hash01(5, 9));
        assert_ne!(hash01(5, 9), hash01(5, 10));
        let mean: f64 = (0..1000).map(|b| hash01(42, b)).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!((0..1000).all(|b| (0.0..1.0).contains(&hash01(b, b * 7))));
    }

    #[test]
    fn bg_decay_silent_when_uninformed() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let seq = BgDecaySeq::new(3, 1, 4);
        for t in 0..64 {
            assert_eq!(seq.step(t, None, &mut rng), None);
        }
    }

    #[test]
    fn bg_decay_transmits_sometimes_when_informed() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let seq = BgDecaySeq::new(3, 1, 4);
        let sent = (0..4000).filter(|&t| seq.step(t, Some(5), &mut rng).is_some()).count();
        assert!(sent > 0, "background never transmitted");
        // Active blocks are rare (E[2^{-i}] per block), so so is transmission.
        assert!(sent < 2000, "background too chatty: {sent}/4000");
    }

    #[test]
    fn cluster_ids_mapping() {
        let g = generators::path(4);
        let c = partition_with_shifts(&g, &Shifts { centers: vec![g.node(0)], deltas: vec![0.0] });
        let ids = cluster_ids(&c);
        assert_eq!(ids, vec![0, 0, 0, 0]);
    }
}
