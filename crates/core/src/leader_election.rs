//! Leader election (paper, Algorithm 3; Theorem 8).
//!
//! Nodes become candidates with probability `Θ(log n / n)`, candidates draw
//! `Θ(log n)`-bit identifiers, and `Compete(C)` spreads the highest; with
//! high probability `|C| = Θ(log n)`, identifiers are unique, and every
//! node ends up agreeing on the same leader in
//! `O(D log_D α + log^{O(1)} n)` time-steps.

use crate::compete::{run_compete, CompeteConfig, CompeteOutcome};
use radionet_primitives::ids::random_id;
use radionet_sim::{JournalSink, Sim, Telemetry, TopologyView};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of leader election.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeaderElectionConfig {
    /// Candidate probability = `min(1, candidate_factor · log n / n)`
    /// (the paper's `Θ(log n / n)`).
    pub candidate_factor: f64,
    /// The underlying `Compete` parameters.
    pub compete: CompeteConfig,
}

impl Default for LeaderElectionConfig {
    fn default() -> Self {
        LeaderElectionConfig { candidate_factor: 2.0, compete: CompeteConfig::default() }
    }
}

/// Result of a leader-election run.
#[derive(Clone, Debug)]
pub struct LeaderElectionOutcome {
    /// The underlying `Compete` outcome.
    pub compete: CompeteOutcome,
    /// The candidates' identifiers, by node index (None = not a candidate).
    pub candidate_ids: Vec<Option<u64>>,
    /// The elected leader's identifier, if the election succeeded.
    pub leader: Option<u64>,
}

impl LeaderElectionOutcome {
    /// Whether every node agrees on the same (correct, unique-maximum)
    /// leader id.
    pub fn succeeded(&self) -> bool {
        match self.leader {
            None => false,
            Some(id) => {
                // Unique maximum among candidates, and universally known.
                let maxes = self.candidate_ids.iter().flatten().filter(|&&c| c == id).count();
                maxes == 1 && self.compete.best.iter().all(|b| *b == Some(id))
            }
        }
    }

    /// Number of candidates (the paper's `|C|`, whp `Θ(log n)`).
    pub fn candidate_count(&self) -> usize {
        self.candidate_ids.iter().flatten().count()
    }
}

/// Runs Algorithm 3 on the simulator.
///
/// The candidate lottery is drawn from `le_seed` (node-private randomness in
/// the real protocol; kept outside the engine clock because it costs zero
/// time-steps).
pub fn run_leader_election<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    le_seed: u64,
    config: &LeaderElectionConfig,
) -> LeaderElectionOutcome {
    let n = sim.graph().n();
    let n_est = sim.info().n;
    let p = (config.candidate_factor * (n_est.max(2) as f64).log2() / n_est as f64).min(1.0);
    let mut rng = SmallRng::seed_from_u64(le_seed ^ 0x1eade1);
    let candidate_ids: Vec<Option<u64>> =
        (0..n).map(|_| rng.gen_bool(p).then(|| random_id(n_est, &mut rng))).collect();
    if candidate_ids.iter().all(|c| c.is_none()) {
        // No candidates: the election fails outright (probability n^{-Θ(1)}).
        return LeaderElectionOutcome {
            compete: crate::compete::CompeteOutcome {
                best: vec![None; n],
                clock_setup: sim.clock(),
                clock_total: sim.clock(),
                clock_all_informed: None,
                mis_valid: None,
                seed_coverage: 0.0,
                rounds_run: 0,
                fine_count: 0,
            },
            candidate_ids,
            leader: None,
        };
    }
    let compete = run_compete(sim, &candidate_ids, &config.compete);
    let leader = candidate_ids.iter().flatten().copied().max();
    LeaderElectionOutcome { compete, candidate_ids, leader }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_sim::NetInfo;

    #[test]
    fn elects_on_grid() {
        let g = generators::grid2d(8, 8);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 1);
        let out = run_leader_election(&mut sim, 1, &LeaderElectionConfig::default());
        assert!(out.succeeded(), "candidates: {}", out.candidate_count());
        assert!(out.candidate_count() >= 1);
    }

    #[test]
    fn elects_on_cycle() {
        let g = generators::cycle(40);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 2);
        let out = run_leader_election(&mut sim, 7, &LeaderElectionConfig::default());
        assert!(out.succeeded());
    }

    #[test]
    fn leader_is_max_candidate() {
        let g = generators::grid2d(6, 6);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 3);
        let out = run_leader_election(&mut sim, 3, &LeaderElectionConfig::default());
        if let Some(l) = out.leader {
            assert_eq!(Some(l), out.candidate_ids.iter().flatten().copied().max());
        }
    }

    #[test]
    fn candidate_count_concentrates() {
        // With factor f, E[|C|] = f·log n; check a loose band over seeds.
        let g = generators::grid2d(12, 12);
        let mut counts = Vec::new();
        for seed in 0..10u64 {
            let n_est = g.n();
            let p = (2.0 * (n_est as f64).log2() / n_est as f64).min(1.0);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x1eade1);
            let c = (0..g.n()).filter(|_| rng.gen_bool(p)).count();
            counts.push(c);
        }
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let expect = 2.0 * (g.n() as f64).log2();
        assert!((mean - expect).abs() < expect, "mean {mean} vs {expect}");
    }
}
