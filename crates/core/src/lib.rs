//! The paper's primary contribution, implemented over the radio simulator:
//!
//! * [`mis`] — **Radio MIS** (Algorithm 7, Theorem 14): the first maximal-
//!   independent-set algorithm for general-graph radio networks,
//!   `O(log³ n)` time-steps whp;
//! * [`icp`] — Intra-Cluster Propagation (Algorithm 9) and its background
//!   process (Algorithm 10) as schedule-driven sequencers;
//! * [`compete`] — **`Compete(S)`** (Algorithm 2, Theorem 6): message
//!   competition in `O(D log_D α + log^{O(1)} n)` time-steps, with the
//!   \[CD21\] configuration available as an ablation;
//! * [`broadcast`] — broadcasting (Theorem 7);
//! * [`leader_election`] — leader election (Algorithm 3, Theorem 8).
//!
//! # Quickstart
//!
//! ```
//! use radionet_core::broadcast::run_broadcast;
//! use radionet_core::compete::CompeteConfig;
//! use radionet_graph::generators;
//! use radionet_sim::{NetInfo, Sim};
//!
//! let g = generators::grid2d(6, 6);
//! let mut sim = Sim::new(&g, NetInfo::exact(&g), 7);
//! let out = run_broadcast(&mut sim, g.node(0), 42, &CompeteConfig::default());
//! assert!(out.completed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod compete;
pub mod icp;
pub mod leader_election;
pub mod mis;

pub use broadcast::{run_broadcast, BroadcastOutcome};
pub use compete::{run_compete, CenterMode, CompeteConfig, CompeteOutcome, IcpLenMode};
pub use leader_election::{run_leader_election, LeaderElectionConfig, LeaderElectionOutcome};
pub use mis::{run_radio_mis, MisConfig, MisOutcome, MisStatus};
