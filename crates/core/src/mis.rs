//! Radio MIS (paper, Algorithm 7; Theorem 14): the first maximal-
//! independent-set algorithm for general-graph radio networks, running in
//! `O(log³ n)` time-steps whp.
//!
//! The algorithm is Ghaffari's LOCAL-model MIS (Algorithm 4) with each round
//! simulated by `O(log² n)` radio steps:
//!
//! 1. every active node marks itself with probability `p_t(v)`;
//! 2. marked nodes run `O(log n)` iterations of Decay announcing the mark;
//! 3. a node that marked itself and heard no marked neighbor **joins the
//!    MIS**;
//! 4. MIS members run `O(log n)` iterations of Decay announcing membership;
//!    hearers become *dominated* and leave the protocol;
//! 5. all active nodes run `EstimateEffectiveDegree`; verdict High halves
//!    `p`, Low doubles it (capped at 1/2).
//!
//! Instrumentation for the golden-round experiments (E10) optionally records
//! every node's `(p_t, marked, verdict)` trajectory.

use radionet_graph::independent_set::is_maximal_independent_set;
use radionet_graph::{Graph, NodeId};
use radionet_primitives::decay::DecaySchedule;
use radionet_primitives::effective_degree::{EedConfig, EedCounter, EedVerdict};
use radionet_sim::{Action, JournalSink, NodeCtx, Protocol, Sim, Telemetry, TopologyView, Wake};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of Radio MIS (paper constants with S2 calibration knobs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MisConfig {
    /// Round cap = `round_cap_factor · log n` (the paper's `13c log n`).
    pub round_cap_factor: f64,
    /// Decay iterations per announcement phase = `decay_factor · log n`
    /// (Claim 10's `O(log n)`).
    pub decay_factor: f64,
    /// EstimateEffectiveDegree parameters.
    pub eed: EedConfig,
    /// Initial desire level `p_0` (paper: 1/2).
    pub p0: f64,
    /// Record per-round trajectories for the golden-round analysis (E10).
    pub record_history: bool,
}

impl Default for MisConfig {
    fn default() -> Self {
        MisConfig {
            round_cap_factor: 13.0,
            decay_factor: 1.0,
            eed: EedConfig::default(),
            p0: 0.5,
            record_history: false,
        }
    }
}

impl MisConfig {
    /// A cheaper profile for tests and inner loops: fewer rounds, lighter
    /// decay; still reliable at `n ≤ 2¹⁰` empirically (E12 calibrates).
    pub fn fast() -> Self {
        MisConfig { round_cap_factor: 8.0, decay_factor: 0.75, ..Self::default() }
    }

    /// Tiny-network floor on `log n`: the whp analysis needs `log n` above
    /// a constant, so nodes round their `n` estimate up to 16 — legitimate
    /// in the ad-hoc model, where `n` is only promised as an upper estimate
    /// (paper, Section 1.1). Without it, two adjacent marked nodes on a
    /// 4-node network miss each other's announcements a constant fraction
    /// of rounds.
    pub fn effective_log_n(log_n: u32) -> u32 {
        log_n.max(4)
    }

    /// Steps in one announcement (Decay) segment.
    pub fn decay_steps(&self, log_n: u32) -> u64 {
        let iters = (self.decay_factor * log_n.max(1) as f64).ceil().max(1.0) as u64;
        iters * log_n.max(1) as u64
    }

    /// Steps in one full round (mark decay + MIS decay + EED).
    pub fn round_steps(&self, log_n: u32) -> u64 {
        2 * self.decay_steps(log_n) + self.eed.total_steps(log_n)
    }

    /// Maximum number of rounds.
    pub fn round_cap(&self, log_n: u32) -> u64 {
        (self.round_cap_factor * log_n.max(1) as f64).ceil().max(1.0) as u64
    }

    /// Total step budget: `round_cap · round_steps = O(log³ n)`.
    pub fn total_steps(&self, log_n: u32) -> u64 {
        self.round_cap(log_n) * self.round_steps(log_n)
    }
}

/// Final status of a node after Radio MIS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MisStatus {
    /// Still undecided when the round cap was reached (a failed run).
    Active,
    /// Joined the maximal independent set.
    InMis,
    /// Has a neighbor in the MIS.
    Dominated,
}

/// One node's per-round trajectory entry (E10 instrumentation).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MisRoundRecord {
    /// Desire level at the start of the round.
    pub p: f64,
    /// Whether the node marked itself.
    pub marked: bool,
    /// EED verdict (`None` if the node was removed mid-round).
    pub verdict: Option<EedVerdict>,
    /// Status at the end of the round.
    pub status: MisStatus,
}

/// Over-the-air messages of Radio MIS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MisMsg {
    /// "I marked myself this round."
    Marked,
    /// "I am in the MIS."
    InMis,
    /// EstimateEffectiveDegree probe.
    Probe,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    MarkDecay,
    MisDecay,
    Eed,
}

/// Per-node protocol state of Radio MIS.
#[derive(Clone, Debug)]
pub struct MisNode {
    config: MisConfig,
    schedule: DecaySchedule,
    log_n: u32,
    status: MisStatus,
    p: f64,
    marked: bool,
    heard_marked: bool,
    eed: EedCounter,
    eed_heard: bool,
    prev_was_eed: bool,
    /// Round the node joined the MIS (for staggered announcements it keeps
    /// announcing in every later round's MisDecay segment).
    history: Vec<MisRoundRecord>,
    elapsed: u64,
}

impl MisNode {
    /// Fresh node state (applies the [`MisConfig::effective_log_n`] floor).
    pub fn new(config: MisConfig, log_n: u32) -> Self {
        let log_n = MisConfig::effective_log_n(log_n);
        MisNode {
            config,
            schedule: DecaySchedule::new(log_n),
            log_n,
            status: MisStatus::Active,
            p: config.p0,
            marked: false,
            heard_marked: false,
            eed: EedCounter::new(config.eed, log_n),
            eed_heard: false,
            prev_was_eed: false,
            history: Vec::new(),
            elapsed: 0,
        }
    }

    /// Final status.
    pub fn status(&self) -> MisStatus {
        self.status
    }

    /// Per-round trajectory (empty unless `record_history`).
    pub fn history(&self) -> &[MisRoundRecord] {
        &self.history
    }

    fn segment(&self, t_in_round: u64) -> Segment {
        let d = self.config.decay_steps(self.log_n);
        if t_in_round < d {
            Segment::MarkDecay
        } else if t_in_round < 2 * d {
            Segment::MisDecay
        } else {
            Segment::Eed
        }
    }

    fn start_round(&mut self, rng: &mut impl Rng) {
        if self.config.record_history && self.status == MisStatus::Active {
            // The entry is completed at round end; push the opening snapshot.
            self.history.push(MisRoundRecord {
                p: self.p,
                marked: false,
                verdict: None,
                status: self.status,
            });
        }
        self.marked = self.status == MisStatus::Active && rng.gen_bool(self.p.clamp(0.0, 1.0));
        if let (true, Some(rec)) = (self.config.record_history, self.history.last_mut()) {
            if self.status == MisStatus::Active {
                rec.marked = self.marked;
            }
        }
        self.heard_marked = false;
        self.eed = EedCounter::new(self.config.eed, self.log_n);
        self.eed_heard = false;
        self.prev_was_eed = false;
    }

    fn finish_round(&mut self) {
        if self.status == MisStatus::Active {
            match self.eed.verdict() {
                Some(EedVerdict::High) => self.p /= 2.0,
                Some(EedVerdict::Low) => self.p = (2.0 * self.p).min(0.5),
                None => {}
            }
        }
        if self.config.record_history {
            if let Some(rec) = self.history.last_mut() {
                if rec.verdict.is_none() {
                    rec.verdict = self.eed.verdict();
                }
                rec.status = self.status;
            }
        }
    }
}

impl Protocol for MisNode {
    type Msg = MisMsg;

    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<MisMsg> {
        let t = ctx.time;
        self.elapsed = t;
        let round_steps = self.config.round_steps(self.log_n);
        let t_in_round = t % round_steps;
        let d = self.config.decay_steps(self.log_n);

        // Settle the previous EED step before anything else.
        if self.prev_was_eed && !self.eed.finished() {
            let heard = self.eed_heard;
            self.eed_heard = false;
            self.eed.note(heard);
        }
        self.prev_was_eed = false;

        if t_in_round == 0 {
            if t > 0 {
                self.finish_round();
            }
            self.start_round(ctx.rng);
        }
        // Join decision at the MarkDecay → MisDecay boundary.
        if t_in_round == d && self.status == MisStatus::Active && self.marked && !self.heard_marked
        {
            self.status = MisStatus::InMis;
        }

        let seg = self.segment(t_in_round);
        match (seg, self.status) {
            (Segment::MarkDecay, MisStatus::Active) => {
                let local = t_in_round;
                if self.marked && ctx.rng.gen_bool(self.schedule.prob(local)) {
                    Action::Transmit(MisMsg::Marked)
                } else {
                    Action::Listen
                }
            }
            (Segment::MisDecay, MisStatus::InMis) => {
                let local = t_in_round - d;
                if ctx.rng.gen_bool(self.schedule.prob(local)) {
                    Action::Transmit(MisMsg::InMis)
                } else {
                    Action::Listen
                }
            }
            (Segment::MisDecay, MisStatus::Active) => Action::Listen,
            (Segment::Eed, MisStatus::Active) => {
                self.prev_was_eed = true;
                if self.eed.finished() {
                    return Action::Listen;
                }
                if ctx.rng.gen_bool(self.eed.transmit_prob(self.p)) {
                    Action::Transmit(MisMsg::Probe)
                } else {
                    Action::Listen
                }
            }
            _ => Action::Idle,
        }
    }

    fn on_hear(&mut self, ctx: &mut NodeCtx<'_>, msg: &MisMsg) {
        let round_steps = self.config.round_steps(self.log_n);
        let t_in_round = ctx.time % round_steps;
        match (self.segment(t_in_round), msg) {
            (Segment::MarkDecay, MisMsg::Marked) => self.heard_marked = true,
            (Segment::MisDecay, MisMsg::InMis) if self.status == MisStatus::Active => {
                self.status = MisStatus::Dominated;
            }
            (Segment::Eed, MisMsg::Probe) => self.eed_heard = true,
            // Segment-inconsistent messages cannot occur (global sync);
            // ignore defensively.
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        // A node's own work ends only when it leaves the protocol; MIS
        // members keep announcing, so the phase ends when no Active node
        // remains — approximated locally by "not Active". (MIS members
        // report done so the engine can stop; their announcements in
        // *earlier* segments already dominated all neighbors whp.)
        self.status != MisStatus::Active
    }

    fn next_wake(&self, _now: u64) -> Wake {
        match self.status {
            // Dominated nodes idle in every segment, never transmit, never
            // draw randomness (`start_round`'s mark coin short-circuits on
            // non-Active status), and `Dominated` is absorbing — the
            // remaining round bookkeeping is unobservable. Except when
            // history recording is on: `finish_round` then still updates
            // the dominated node's last trajectory record at the next
            // round boundary, which *is* observable (E10 measures it), so
            // those runs must keep acting.
            MisStatus::Dominated if !self.config.record_history => Wake::Retire,
            // Active nodes coin-flip constantly; MIS members keep
            // announcing in every round's MisDecay segment.
            _ => Wake::Now,
        }
    }
}

/// Outcome of a Radio MIS run.
#[derive(Clone, Debug)]
pub struct MisOutcome {
    /// Final per-node statuses.
    pub status: Vec<MisStatus>,
    /// Simulated steps consumed.
    pub steps: u64,
    /// Rounds elapsed (ceiling of steps / round length).
    pub rounds: u64,
    /// Whether every node was decided before the round cap.
    pub complete: bool,
    /// Per-node trajectories (empty unless `record_history`).
    pub history: Vec<Vec<MisRoundRecord>>,
}

impl MisOutcome {
    /// The MIS members.
    pub fn mis_nodes(&self) -> Vec<NodeId> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == MisStatus::InMis)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Per-node membership flags.
    pub fn mis_flags(&self) -> Vec<bool> {
        self.status.iter().map(|s| *s == MisStatus::InMis).collect()
    }

    /// Whether the output is a valid maximal independent set of `g`.
    pub fn is_valid(&self, g: &Graph) -> bool {
        self.complete && is_maximal_independent_set(g, &self.mis_nodes())
    }
}

/// Runs Radio MIS on the simulator (consumes `O(log³ n)` simulated steps).
pub fn run_radio_mis<T: TopologyView, J: JournalSink, M: Telemetry>(
    sim: &mut Sim<'_, T, J, M>,
    config: &MisConfig,
) -> MisOutcome {
    let info = *sim.info();
    let log_n = MisConfig::effective_log_n(info.log_n());
    let mut states: Vec<MisNode> =
        (0..sim.graph().n()).map(|_| MisNode::new(*config, log_n)).collect();
    let report = sim.run_phase(&mut states, config.total_steps(log_n));
    let round_steps = config.round_steps(log_n);
    MisOutcome {
        status: states.iter().map(|s| s.status()).collect(),
        steps: report.steps,
        rounds: report.steps.div_ceil(round_steps.max(1)),
        complete: report.completed,
        history: if config.record_history {
            states.into_iter().map(|s| s.history).collect()
        } else {
            Vec::new()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_sim::NetInfo;

    fn mis_on(g: &Graph, seed: u64) -> MisOutcome {
        let mut sim = Sim::new(g, NetInfo::exact(g), seed);
        run_radio_mis(&mut sim, &MisConfig::fast())
    }

    #[test]
    fn config_budget_is_log_cubed() {
        let c = MisConfig::default();
        let l = 10u32;
        let per_round = c.round_steps(l) as f64;
        // Round = 2·(log² n) + C·log²n-ish: polynomial in log n of degree 2.
        assert!(per_round >= (l * l) as f64);
        assert!(per_round <= 40.0 * (l * l) as f64);
        assert_eq!(c.total_steps(l), c.round_cap(l) * c.round_steps(l));
    }

    #[test]
    fn valid_mis_on_paths_and_grids() {
        for (g, seed) in [
            (generators::path(32), 1u64),
            (generators::grid2d(8, 8), 2),
            (generators::cycle(30), 3),
        ] {
            let out = mis_on(&g, seed);
            assert!(out.complete, "{g:?} incomplete after {} rounds", out.rounds);
            assert!(out.is_valid(&g), "{g:?} invalid MIS");
        }
    }

    #[test]
    fn valid_mis_on_clique_and_star() {
        // Clique: MIS is a single node. Star: either the hub or all leaves.
        let g = generators::complete(24);
        let out = mis_on(&g, 4);
        assert!(out.is_valid(&g));
        assert_eq!(out.mis_nodes().len(), 1);

        let g = generators::star(24);
        let out = mis_on(&g, 5);
        assert!(out.is_valid(&g));
        let k = out.mis_nodes().len();
        assert!(k == 1 || k == 23, "star MIS size {k}");
    }

    #[test]
    fn valid_mis_on_random_graphs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for trial in 0..5 {
            let g = generators::connected_gnp(64, 0.08, &mut rng);
            let out = mis_on(&g, trial);
            assert!(out.is_valid(&g), "trial {trial} invalid");
        }
    }

    #[test]
    fn valid_mis_on_udg() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let inst = generators::unit_disk_in_square(120, 6.0, &mut rng);
        let out = mis_on(&inst.graph, 9);
        assert!(out.is_valid(&inst.graph));
    }

    #[test]
    fn isolated_nodes_join() {
        // MIS does not need connectivity (paper §1.2): isolated nodes must
        // all end up in the MIS.
        let g = Graph::from_edges(5, [(0, 1)]).unwrap();
        let out = mis_on(&g, 6);
        assert!(out.is_valid(&g));
        let flags = out.mis_flags();
        assert!(flags[2] && flags[3] && flags[4]);
    }

    #[test]
    fn history_recorded_when_enabled() {
        let g = generators::grid2d(4, 4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 3);
        let cfg = MisConfig { record_history: true, ..MisConfig::fast() };
        let out = run_radio_mis(&mut sim, &cfg);
        assert!(out.complete);
        assert_eq!(out.history.len(), g.n());
        // Every decided node has at least one round recorded, with sane p.
        for h in &out.history {
            assert!(!h.is_empty());
            assert!(h.iter().all(|r| r.p > 0.0 && r.p <= 0.5));
        }
    }

    #[test]
    fn histories_identical_across_kernels() {
        // Regression: a Dominated node that retires under the sparse
        // kernel must not freeze its trajectory record — `finish_round`
        // still stamps status/verdict at the next round boundary when
        // history recording is on, and E10's golden-round statistics read
        // exactly that. The reproduction seed (grid 5×5, seed 7) showed
        // 9 vs 24 "removed" records before the fix.
        use radionet_sim::Kernel;
        let g = generators::grid2d(5, 5);
        let cfg = MisConfig { record_history: true, ..MisConfig::fast() };
        let run = |kernel| {
            let mut sim = Sim::new(&g, NetInfo::exact(&g), 7);
            sim.set_kernel(kernel);
            let out = run_radio_mis(&mut sim, &cfg);
            (out.status, out.history, out.steps, sim.rng_fingerprint())
        };
        assert_eq!(run(Kernel::Sparse), run(Kernel::Dense));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::grid2d(6, 6);
        let a = mis_on(&g, 42).mis_flags();
        let b = mis_on(&g, 42).mis_flags();
        assert_eq!(a, b);
    }

    use radionet_graph::Graph;
}
