//! Property tests for the core algorithms.

use proptest::prelude::*;
use radionet_cluster::mpx::{draw_shifts, partition_with_shifts};
use radionet_cluster::ClusterSchedule;
use radionet_core::icp::{hash01, IcpTimeline};
use radionet_core::mis::{run_radio_mis, MisConfig};
use radionet_graph::independent_set::greedy_mis_min_degree;
use radionet_graph::{Graph, GraphBuilder};
use radionet_sim::{NetInfo, Sim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..28, proptest::collection::vec((0usize..28, 0usize..28), 0..70)).prop_map(
        |(n, pairs)| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Radio MIS outputs a valid maximal independent set on arbitrary
    /// graphs (connected or not) for arbitrary seeds.
    #[test]
    fn radio_mis_always_valid(g in arb_graph(), seed in 0u64..1_000) {
        let info = NetInfo::exact(&g);
        let mut sim = Sim::new(&g, info, seed);
        let out = run_radio_mis(&mut sim, &MisConfig::default());
        prop_assert!(out.is_valid(&g), "invalid MIS on {g:?} seed {seed}");
    }

    /// ICP timelines: slot metadata is ordered by stage, every scheduled
    /// transmitter sits at the layer its slot's transition expects, and
    /// per-node slot lists are strictly increasing.
    #[test]
    fn icp_timeline_invariants(g in arb_graph(), seed in 0u64..1_000, l in 1u32..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mis = greedy_mis_min_degree(&g);
        prop_assume!(!mis.is_empty());
        let shifts = draw_shifts(&mis, 0.5, None, &mut rng);
        let c = partition_with_shifts(&g, &shifts);
        let s = ClusterSchedule::build(&g, &c);
        let t = IcpTimeline::build(&s, g.n(), l);
        // Per-node slot lists strictly increasing.
        for slots in &t.tx_slots {
            for w in slots.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
        // Transmitters match their slot's transition layer.
        for (idx, (stage, transition)) in t.slots.iter().enumerate() {
            for v in g.nodes() {
                if t.tx_slots[v.index()].contains(&(idx as u32)) {
                    let layer = s.layer[v.index()];
                    match stage {
                        radionet_core::icp::IcpStage::Down1
                        | radionet_core::icp::IcpStage::Down2 => {
                            prop_assert_eq!(layer, *transition)
                        }
                        radionet_core::icp::IcpStage::Up => {
                            prop_assert_eq!(layer, *transition)
                        }
                    }
                }
            }
        }
    }

    /// The coordination hash is deterministic and in [0, 1).
    #[test]
    fn hash01_range(key in any::<u64>(), block in any::<u64>()) {
        let h = hash01(key, block);
        prop_assert!((0.0..1.0).contains(&h));
        prop_assert_eq!(h, hash01(key, block));
    }
}
