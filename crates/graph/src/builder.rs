//! Incremental construction of [`Graph`]s.

use crate::{Graph, GraphError, NodeId};

/// Builder for [`Graph`].
///
/// Collects edges and produces a deduplicated CSR graph. Self-loops are
/// rejected; duplicate edges are merged.
///
/// ```
/// use radionet_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "graph too large");
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Number of nodes the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is `>= n`. Use
    /// [`try_add_edge`](Self::try_add_edge) for fallible insertion.
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.try_add_edge(u, v).expect("invalid edge");
        self
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::NodeOutOfRange`] if either endpoint is `>= n`.
    pub fn try_add_edge(&mut self, u: usize, v: usize) -> Result<&mut Self, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if u >= self.n || v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u.max(v), n: self.n });
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a as u32, b as u32));
        Ok(self)
    }

    /// Adds every edge in `iter`; panics on the first invalid edge.
    pub fn extend_edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, iter: I) -> &mut Self {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Finalizes the graph, merging duplicate edges.
    pub fn build(&self) -> Graph {
        let n = self.n;
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        edges.dedup();

        let mut degree = vec![0u32; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![NodeId::new(0); acc as usize];
        for &(u, v) in &edges {
            neighbors[cursor[u as usize] as usize] = NodeId::new(v as usize);
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = NodeId::new(u as usize);
            cursor[v as usize] += 1;
        }
        // Each adjacency list is already sorted because edges were sorted by
        // (min, max) and emitted in order — but the v-side insertions arrive
        // ordered by u, which is ascending, so both sides are sorted.
        debug_assert!((0..n).all(|i| {
            let lo = offsets[i] as usize;
            let hi = offsets[i + 1] as usize;
            neighbors[lo..hi].windows(2).all(|w| w[0] < w[1])
        }));
        Graph::from_csr(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_path() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1), (1, 2), (2, 3)]);
        let g = b.build();
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(g.node(0)), 1);
        assert_eq!(g.degree(g.node(1)), 2);
    }

    #[test]
    fn builder_reusable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g1 = b.build();
        b.add_edge(1, 2);
        let g2 = b.build();
        assert_eq!(g1.m(), 1);
        assert_eq!(g2.m(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn add_edge_panics_on_self_loop() {
        GraphBuilder::new(2).add_edge(1, 1);
    }

    #[test]
    fn try_add_edge_errors() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(b.try_add_edge(0, 0), Err(GraphError::SelfLoop { node: 0 })));
        assert!(matches!(b.try_add_edge(0, 5), Err(GraphError::NodeOutOfRange { node: 5, n: 2 })));
    }

    #[test]
    fn adjacency_sorted_after_build() {
        let mut b = GraphBuilder::new(6);
        b.extend_edges([(5, 0), (3, 0), (0, 4), (0, 1), (2, 0)]);
        let g = b.build();
        let ns: Vec<usize> = g.neighbors(g.node(0)).iter().map(|v| v.index()).collect();
        assert_eq!(ns, vec![1, 2, 3, 4, 5]);
    }
}
