//! Error types for graph construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge `{v, v}` was supplied; the radio model has no self-loops.
    SelfLoop {
        /// The offending node index.
        node: usize,
    },
    /// An edge endpoint was not in `0..n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph under construction.
        n: usize,
    },
    /// An operation requiring a connected graph was given a disconnected one.
    Disconnected,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(GraphError::SelfLoop { node: 3 }.to_string(), "self-loop at node 3");
        assert_eq!(
            GraphError::NodeOutOfRange { node: 9, n: 4 }.to_string(),
            "node 9 out of range for graph with 4 nodes"
        );
        assert_eq!(GraphError::Disconnected.to_string(), "graph is not connected");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
