//! A serde-able catalogue of named graph families for experiments.
//!
//! The paper's headline comparison is between **geometric-derived** classes
//! (growth-bounded, `α = poly(D)`) and **general** graphs (`α` up to `Θ(n)`).
//! [`Family`] names one instantiable family per experiment row; the bench
//! harness sweeps `n` and a seed and gets a connected graph plus its
//! geometric classification.

use crate::generators;
use crate::geometry::{Point2, Point3};
use crate::traversal;
use crate::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The deterministic edge rule a positioned geometric instance was built
/// under — everything a mobility layer needs to *re-derive* the edge set
/// as the point set moves.
///
/// The gray zone of [`GeometryRule::Quasi`] is probabilistic at generation
/// time; consumers that re-evaluate the rule (e.g. `radionet-mobility`)
/// realize it with a deterministic per-pair coin instead, so a moving
/// quasi-UDG stays a pure function of `(points, rule, seed)`.
#[derive(Clone, Debug, PartialEq)]
pub enum GeometryRule {
    /// Edge iff `dist(u, v) ≤ radius` (unit disk / unit ball).
    Disk {
        /// The connection radius.
        radius: f64,
    },
    /// Edge certain below `r`, impossible above `big_r`, present with
    /// probability `gray_p` in between (quasi unit disk).
    Quasi {
        /// Certain-connection radius.
        r: f64,
        /// Maximum-connection radius (`R ≥ r`).
        big_r: f64,
        /// Gray-zone edge probability.
        gray_p: f64,
    },
    /// Edge iff `dist(u, v) ≤ min(ranges[u], ranges[v])` (undirected
    /// geometric radio network).
    Radio {
        /// Per-node transmission range.
        ranges: Vec<f64>,
    },
}

impl GeometryRule {
    /// The largest distance at which any pair can be connected — the cell
    /// width a uniform-grid spatial index needs.
    pub fn max_radius(&self) -> f64 {
        match self {
            GeometryRule::Disk { radius } => *radius,
            GeometryRule::Quasi { big_r, .. } => *big_r,
            GeometryRule::Radio { ranges } => ranges.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// The embedding of a positioned family instance: the point set, its
/// dimension, the generation domain `[0, side)^dim`, and the edge rule.
///
/// Points are stored as `[x, y, z]` uniformly; 2D families set `z = 0`,
/// so one distance routine serves both dimensions.
#[derive(Clone, Debug, PartialEq)]
pub struct Geometry {
    /// Node `i` sits at `points[i]` (2D points carry `z = 0`).
    pub points: Vec<[f64; 3]>,
    /// Spatial dimension: 2 or 3.
    pub dim: u32,
    /// Side length of the generation domain `[0, side)^dim`.
    pub side: f64,
    /// The edge rule relating distances to adjacency.
    pub rule: GeometryRule,
}

/// A family instance that keeps its embedding instead of discarding it.
///
/// [`Family::instantiate_positioned`] returns this for every family; only
/// the geometric families carry a [`Geometry`] (general graphs have no
/// embedding to expose).
#[derive(Clone, Debug)]
pub struct Positioned {
    /// The instantiated connected graph.
    pub graph: Graph,
    /// The embedding, for the geometric families; `None` otherwise.
    pub geometry: Option<Geometry>,
}

fn points2(points: &[Point2]) -> Vec<[f64; 3]> {
    points.iter().map(|p| [p.x, p.y, 0.0]).collect()
}

fn points3(points: &[Point3]) -> Vec<[f64; 3]> {
    points.iter().map(|p| [p.x, p.y, p.z]).collect()
}

/// Named graph families used across the experiment suite.
///
/// Each family maps `(n, seed)` to a **connected** graph of roughly `n`
/// nodes (exact size may be rounded, e.g. to a square grid).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Family {
    /// Path `P_n`: the maximum-diameter extreme.
    Path,
    /// Cycle `C_n`.
    Cycle,
    /// Square grid (√n × √n): growth-bounded, `α = Θ(n) = Θ(D²)`.
    Grid,
    /// Complete graph `K_n`: `α = 1`, the MIS lower-bound instance.
    Clique,
    /// Star: `α = n − 1`, `D = 2`.
    Star,
    /// Hypercube `Q_{log n}`: `D = log n`, `α = n/2` — strongly non-geometric.
    Hypercube,
    /// Spider with `√n` legs of length `√n`: `α = Θ(n)`, `D = Θ(√n)`.
    Spider,
    /// Balanced binary tree.
    BinaryTree,
    /// Random recursive tree: `D = Θ(log n)`, `α = Θ(n)`.
    RandomTree,
    /// Connected Erdős–Rényi with expected degree ≈ 8: the "general graph".
    Gnp,
    /// Sparser connected Erdős–Rényi (expected degree ≈ 3): larger diameter.
    GnpSparse,
    /// Unit disk graph, constant density (expected degree ≈ 10).
    UnitDisk,
    /// Quasi unit disk graph, `R/r = 2`, gray-zone probability 0.5.
    QuasiUnitDisk,
    /// Unit ball graph in 3D Euclidean space, constant density.
    UnitBall3,
    /// Undirected geometric radio network, range ratio 2.
    GeometricRadio,
    /// Random 4-regular graph (configuration model): an expander whp —
    /// minimum diameter, `α = Θ(n)`.
    RandomRegular,
    /// Chung–Lu power-law graph (`γ = 2.5`): heavy-tailed degrees.
    ChungLu,
}

impl Family {
    /// All families, in display order.
    pub const ALL: [Family; 17] = [
        Family::Path,
        Family::Cycle,
        Family::Grid,
        Family::Clique,
        Family::Star,
        Family::Hypercube,
        Family::Spider,
        Family::BinaryTree,
        Family::RandomTree,
        Family::Gnp,
        Family::GnpSparse,
        Family::UnitDisk,
        Family::QuasiUnitDisk,
        Family::UnitBall3,
        Family::GeometricRadio,
        Family::RandomRegular,
        Family::ChungLu,
    ];

    /// The geometric / growth-bounded families (`α = poly(D)`), where
    /// Corollary 9 predicts `O(D + polylog n)` broadcast.
    pub const GROWTH_BOUNDED: [Family; 8] = [
        Family::Path,
        Family::Cycle,
        Family::Grid,
        Family::UnitDisk,
        Family::QuasiUnitDisk,
        Family::UnitBall3,
        Family::GeometricRadio,
        Family::Clique,
    ];

    /// A short stable name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::Grid => "grid",
            Family::Clique => "clique",
            Family::Star => "star",
            Family::Hypercube => "hypercube",
            Family::Spider => "spider",
            Family::BinaryTree => "binary-tree",
            Family::RandomTree => "random-tree",
            Family::Gnp => "gnp",
            Family::GnpSparse => "gnp-sparse",
            Family::UnitDisk => "unit-disk",
            Family::QuasiUnitDisk => "quasi-udg",
            Family::UnitBall3 => "unit-ball-3d",
            Family::GeometricRadio => "geo-radio",
            Family::RandomRegular => "random-regular",
            Family::ChungLu => "chung-lu",
        }
    }

    /// Whether the family is growth-bounded (so `α = poly(D)`).
    pub fn is_growth_bounded(self) -> bool {
        Family::GROWTH_BOUNDED.contains(&self)
    }

    /// Whether [`Family::instantiate_positioned`] carries a [`Geometry`]
    /// (a point embedding and edge rule) — the families the mobility
    /// subsystem can move. Statically checkable from the family alone.
    pub fn has_embedding(self) -> bool {
        matches!(
            self,
            Family::UnitDisk | Family::QuasiUnitDisk | Family::UnitBall3 | Family::GeometricRadio
        )
    }

    /// Instantiates a connected graph with roughly `n` nodes.
    ///
    /// Geometric families retry with densified parameters until connected
    /// (bounded number of attempts), so the returned graph is always
    /// connected.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`.
    pub fn instantiate(self, n: usize, seed: u64) -> Graph {
        self.instantiate_positioned(n, seed).graph
    }

    /// Like [`Family::instantiate`], but keeps the embedding: geometric
    /// families return their point set, generation domain, and edge rule
    /// alongside the graph (general families return `geometry: None`).
    ///
    /// Consumes the exact same random stream as [`Family::instantiate`],
    /// so `instantiate_positioned(n, seed).graph == instantiate(n, seed)`
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`.
    pub fn instantiate_positioned(self, n: usize, seed: u64) -> Positioned {
        assert!(n >= 4, "families need n >= 4");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0000);
        let plain = |graph: Graph| Positioned { graph, geometry: None };
        match self {
            Family::Path => plain(generators::path(n)),
            Family::Cycle => plain(generators::cycle(n)),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                plain(generators::grid2d(side, side))
            }
            Family::Clique => plain(generators::complete(n)),
            Family::Star => plain(generators::star(n)),
            Family::Hypercube => {
                let d = (n as f64).log2().round().max(2.0) as u32;
                plain(generators::hypercube(d))
            }
            Family::Spider => {
                let leg = (n as f64).sqrt().round().max(1.0) as usize;
                let legs = ((n - 1) / leg).max(1);
                plain(generators::spider(legs, leg))
            }
            Family::BinaryTree => {
                let levels = ((n + 1) as f64).log2().round().max(2.0) as u32;
                plain(generators::binary_tree(levels))
            }
            Family::RandomTree => plain(generators::random_tree(n, &mut rng)),
            Family::Gnp => {
                let p = (8.0 / n as f64).min(1.0);
                plain(generators::connected_gnp(n, p, &mut rng))
            }
            Family::GnpSparse => {
                let p = (3.0 / n as f64).min(1.0);
                plain(generators::connected_gnp(n, p, &mut rng))
            }
            Family::UnitDisk => connected_geometric(n, |rng, side| {
                let inst = generators::unit_disk_in_square(n, side, rng);
                let geometry = Geometry {
                    points: points2(&inst.points),
                    dim: 2,
                    side,
                    rule: GeometryRule::Disk { radius: 1.0 },
                };
                (inst.graph, geometry)
            }),
            Family::QuasiUnitDisk => connected_geometric(n, |rng, side| {
                let inst = generators::quasi_unit_disk_in_square(n, side, 0.5, 1.0, 0.5, rng);
                let geometry = Geometry {
                    points: points2(&inst.points),
                    dim: 2,
                    side,
                    rule: GeometryRule::Quasi { r: 0.5, big_r: 1.0, gray_p: 0.5 },
                };
                (inst.graph, geometry)
            }),
            Family::UnitBall3 => connected_geometric3(n),
            Family::GeometricRadio => connected_geometric(n, |rng, side| {
                let pts = generators::uniform_points2(n, side, rng);
                let ranges = generators::geometric::uniform_ranges(n, 0.75, 1.5, rng);
                let inst = generators::geometric_radio_undirected(&pts, &ranges);
                let geometry = Geometry {
                    points: points2(&inst.points),
                    dim: 2,
                    side,
                    rule: GeometryRule::Radio { ranges },
                };
                (inst.graph, geometry)
            }),
            Family::RandomRegular => {
                let n = if n.is_multiple_of(2) { n } else { n + 1 }; // even n·d
                let g = generators::random::random_regular(n, 4, &mut rng);
                plain(generators::random::connect_components(&g, &mut rng))
            }
            Family::ChungLu => {
                let g = generators::random::chung_lu(n, 2.5, 6.0, &mut rng);
                plain(generators::random::connect_components(&g, &mut rng))
            }
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Instantiates a 2D geometric family, shrinking the square until connected.
///
/// Starts at constant density (expected degree ≈ 10) and densifies by 20%
/// per failed attempt; panics after 64 attempts (practically unreachable).
fn connected_geometric<F>(n: usize, mut gen: F) -> Positioned
where
    F: FnMut(&mut StdRng, f64) -> (Graph, Geometry),
{
    // Expected degree ≈ π side⁻²·n... choose side so that n·π/side² ≈ 10.
    let mut side = (n as f64 * std::f64::consts::PI / 10.0).sqrt();
    for attempt in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(geo_seed(attempt, n));
        let (g, geometry) = gen(&mut rng, side);
        if traversal::is_connected(&g) {
            return Positioned { graph: g, geometry: Some(geometry) };
        }
        side *= 0.8;
    }
    panic!("could not generate a connected geometric graph for n={n}");
}

fn geo_seed(attempt: u64, n: usize) -> u64 {
    attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (n as u64)
}

fn connected_geometric3(n: usize) -> Positioned {
    let mut side = (n as f64 * 4.19 / 12.0).cbrt(); // 4/3·π ≈ 4.19, degree ≈ 12
    for attempt in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(geo_seed(attempt, n) ^ 0x3d);
        let inst = generators::geometric::unit_ball3_in_cube(n, side, &mut rng);
        if traversal::is_connected(&inst.graph) {
            let geometry = Geometry {
                points: points3(&inst.points),
                dim: 3,
                side,
                rule: GeometryRule::Disk { radius: 1.0 },
            };
            return Positioned { graph: inst.graph, geometry: Some(geometry) };
        }
        side *= 0.8;
    }
    panic!("could not generate a connected 3d geometric graph for n={n}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_instantiate_connected() {
        for fam in Family::ALL {
            let g = fam.instantiate(64, 1);
            assert!(traversal::is_connected(&g), "{fam} not connected");
            assert!(g.n() >= 15, "{fam} too small: {}", g.n());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for fam in [Family::Gnp, Family::UnitDisk, Family::RandomTree] {
            let g1 = fam.instantiate(80, 7);
            let g2 = fam.instantiate(80, 7);
            assert_eq!(g1, g2, "{fam} not deterministic");
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }

    #[test]
    fn growth_bounded_subset() {
        for fam in Family::GROWTH_BOUNDED {
            assert!(fam.is_growth_bounded());
        }
        assert!(!Family::Hypercube.is_growth_bounded());
        assert!(!Family::Gnp.is_growth_bounded());
    }

    #[test]
    fn display_matches_name() {
        for fam in Family::ALL {
            assert_eq!(fam.to_string(), fam.name());
        }
    }

    /// The geometric families of the mobility subsystem.
    const POSITIONED: [Family; 4] =
        [Family::UnitDisk, Family::QuasiUnitDisk, Family::UnitBall3, Family::GeometricRadio];

    #[test]
    fn positioned_graph_is_byte_identical_to_instantiate() {
        for fam in Family::ALL {
            let a = fam.instantiate(72, 5);
            let b = fam.instantiate_positioned(72, 5);
            assert_eq!(a, b.graph, "{fam}: positioned path diverged");
            assert_eq!(b.geometry.is_some(), POSITIONED.contains(&fam), "{fam}");
            assert_eq!(fam.has_embedding(), b.geometry.is_some(), "{fam}: has_embedding lies");
        }
    }

    #[test]
    fn positioned_geometry_is_well_formed() {
        for fam in POSITIONED {
            let p = fam.instantiate_positioned(64, 2);
            let geo = p.geometry.expect("geometric family carries geometry");
            assert_eq!(geo.points.len(), p.graph.n(), "{fam}: one point per node");
            assert!(geo.side > 0.0);
            assert!(geo.rule.max_radius() > 0.0);
            assert!(matches!(geo.dim, 2 | 3));
            for pt in &geo.points {
                for (axis, &c) in pt.iter().enumerate() {
                    if axis < geo.dim as usize {
                        assert!((0.0..geo.side).contains(&c), "{fam}: point outside domain");
                    } else {
                        assert_eq!(c, 0.0, "{fam}: unused axis must be zero");
                    }
                }
            }
            if let GeometryRule::Radio { ranges } = &geo.rule {
                assert_eq!(ranges.len(), p.graph.n());
            }
        }
    }

    #[test]
    fn positioned_rule_reproduces_deterministic_edges() {
        // For the deterministic rules (disk, ball, radio) the recorded
        // geometry must re-derive exactly the generated edge set; for the
        // quasi family it must bracket it (certain ⊆ edges ⊆ possible).
        fn dist(a: &[f64; 3], b: &[f64; 3]) -> f64 {
            ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
        }
        for fam in POSITIONED {
            let p = fam.instantiate_positioned(60, 9);
            let geo = p.geometry.unwrap();
            let g = &p.graph;
            for i in 0..g.n() {
                for j in (i + 1)..g.n() {
                    let d = dist(&geo.points[i], &geo.points[j]);
                    let has = g.has_edge(g.node(i), g.node(j));
                    match &geo.rule {
                        GeometryRule::Disk { radius } => {
                            assert_eq!(has, d <= *radius, "{fam}: edge {i}-{j}")
                        }
                        GeometryRule::Quasi { r, big_r, .. } => {
                            if d <= *r {
                                assert!(has, "{fam}: certain edge {i}-{j} missing");
                            }
                            if d > *big_r {
                                assert!(!has, "{fam}: impossible edge {i}-{j} present");
                            }
                        }
                        GeometryRule::Radio { ranges } => {
                            assert_eq!(has, d <= ranges[i].min(ranges[j]), "{fam}: edge {i}-{j}")
                        }
                    }
                }
            }
        }
    }
}
