//! A serde-able catalogue of named graph families for experiments.
//!
//! The paper's headline comparison is between **geometric-derived** classes
//! (growth-bounded, `α = poly(D)`) and **general** graphs (`α` up to `Θ(n)`).
//! [`Family`] names one instantiable family per experiment row; the bench
//! harness sweeps `n` and a seed and gets a connected graph plus its
//! geometric classification.

use crate::generators;
use crate::traversal;
use crate::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Named graph families used across the experiment suite.
///
/// Each family maps `(n, seed)` to a **connected** graph of roughly `n`
/// nodes (exact size may be rounded, e.g. to a square grid).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Family {
    /// Path `P_n`: the maximum-diameter extreme.
    Path,
    /// Cycle `C_n`.
    Cycle,
    /// Square grid (√n × √n): growth-bounded, `α = Θ(n) = Θ(D²)`.
    Grid,
    /// Complete graph `K_n`: `α = 1`, the MIS lower-bound instance.
    Clique,
    /// Star: `α = n − 1`, `D = 2`.
    Star,
    /// Hypercube `Q_{log n}`: `D = log n`, `α = n/2` — strongly non-geometric.
    Hypercube,
    /// Spider with `√n` legs of length `√n`: `α = Θ(n)`, `D = Θ(√n)`.
    Spider,
    /// Balanced binary tree.
    BinaryTree,
    /// Random recursive tree: `D = Θ(log n)`, `α = Θ(n)`.
    RandomTree,
    /// Connected Erdős–Rényi with expected degree ≈ 8: the "general graph".
    Gnp,
    /// Sparser connected Erdős–Rényi (expected degree ≈ 3): larger diameter.
    GnpSparse,
    /// Unit disk graph, constant density (expected degree ≈ 10).
    UnitDisk,
    /// Quasi unit disk graph, `R/r = 2`, gray-zone probability 0.5.
    QuasiUnitDisk,
    /// Unit ball graph in 3D Euclidean space, constant density.
    UnitBall3,
    /// Undirected geometric radio network, range ratio 2.
    GeometricRadio,
    /// Random 4-regular graph (configuration model): an expander whp —
    /// minimum diameter, `α = Θ(n)`.
    RandomRegular,
    /// Chung–Lu power-law graph (`γ = 2.5`): heavy-tailed degrees.
    ChungLu,
}

impl Family {
    /// All families, in display order.
    pub const ALL: [Family; 17] = [
        Family::Path,
        Family::Cycle,
        Family::Grid,
        Family::Clique,
        Family::Star,
        Family::Hypercube,
        Family::Spider,
        Family::BinaryTree,
        Family::RandomTree,
        Family::Gnp,
        Family::GnpSparse,
        Family::UnitDisk,
        Family::QuasiUnitDisk,
        Family::UnitBall3,
        Family::GeometricRadio,
        Family::RandomRegular,
        Family::ChungLu,
    ];

    /// The geometric / growth-bounded families (`α = poly(D)`), where
    /// Corollary 9 predicts `O(D + polylog n)` broadcast.
    pub const GROWTH_BOUNDED: [Family; 8] = [
        Family::Path,
        Family::Cycle,
        Family::Grid,
        Family::UnitDisk,
        Family::QuasiUnitDisk,
        Family::UnitBall3,
        Family::GeometricRadio,
        Family::Clique,
    ];

    /// A short stable name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::Grid => "grid",
            Family::Clique => "clique",
            Family::Star => "star",
            Family::Hypercube => "hypercube",
            Family::Spider => "spider",
            Family::BinaryTree => "binary-tree",
            Family::RandomTree => "random-tree",
            Family::Gnp => "gnp",
            Family::GnpSparse => "gnp-sparse",
            Family::UnitDisk => "unit-disk",
            Family::QuasiUnitDisk => "quasi-udg",
            Family::UnitBall3 => "unit-ball-3d",
            Family::GeometricRadio => "geo-radio",
            Family::RandomRegular => "random-regular",
            Family::ChungLu => "chung-lu",
        }
    }

    /// Whether the family is growth-bounded (so `α = poly(D)`).
    pub fn is_growth_bounded(self) -> bool {
        Family::GROWTH_BOUNDED.contains(&self)
    }

    /// Instantiates a connected graph with roughly `n` nodes.
    ///
    /// Geometric families retry with densified parameters until connected
    /// (bounded number of attempts), so the returned graph is always
    /// connected.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`.
    pub fn instantiate(self, n: usize, seed: u64) -> Graph {
        assert!(n >= 4, "families need n >= 4");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0000);
        match self {
            Family::Path => generators::path(n),
            Family::Cycle => generators::cycle(n),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                generators::grid2d(side, side)
            }
            Family::Clique => generators::complete(n),
            Family::Star => generators::star(n),
            Family::Hypercube => {
                let d = (n as f64).log2().round().max(2.0) as u32;
                generators::hypercube(d)
            }
            Family::Spider => {
                let leg = (n as f64).sqrt().round().max(1.0) as usize;
                let legs = ((n - 1) / leg).max(1);
                generators::spider(legs, leg)
            }
            Family::BinaryTree => {
                let levels = ((n + 1) as f64).log2().round().max(2.0) as u32;
                generators::binary_tree(levels)
            }
            Family::RandomTree => generators::random_tree(n, &mut rng),
            Family::Gnp => {
                let p = (8.0 / n as f64).min(1.0);
                generators::connected_gnp(n, p, &mut rng)
            }
            Family::GnpSparse => {
                let p = (3.0 / n as f64).min(1.0);
                generators::connected_gnp(n, p, &mut rng)
            }
            Family::UnitDisk => connected_geometric(n, |rng, side| {
                generators::unit_disk_in_square(n, side, rng).graph
            }),
            Family::QuasiUnitDisk => connected_geometric(n, |rng, side| {
                generators::quasi_unit_disk_in_square(n, side, 0.5, 1.0, 0.5, rng).graph
            }),
            Family::UnitBall3 => connected_geometric3(n),
            Family::GeometricRadio => connected_geometric(n, |rng, side| {
                let pts = generators::uniform_points2(n, side, rng);
                let ranges = generators::geometric::uniform_ranges(n, 0.75, 1.5, rng);
                generators::geometric_radio_undirected(&pts, &ranges).graph
            }),
            Family::RandomRegular => {
                let n = if n.is_multiple_of(2) { n } else { n + 1 }; // even n·d
                let g = generators::random::random_regular(n, 4, &mut rng);
                generators::random::connect_components(&g, &mut rng)
            }
            Family::ChungLu => {
                let g = generators::random::chung_lu(n, 2.5, 6.0, &mut rng);
                generators::random::connect_components(&g, &mut rng)
            }
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Instantiates a 2D geometric family, shrinking the square until connected.
///
/// Starts at constant density (expected degree ≈ 10) and densifies by 20%
/// per failed attempt; panics after 64 attempts (practically unreachable).
fn connected_geometric<F>(n: usize, mut gen: F) -> Graph
where
    F: FnMut(&mut StdRng, f64) -> Graph,
{
    // Expected degree ≈ π side⁻²·n... choose side so that n·π/side² ≈ 10.
    let mut side = (n as f64 * std::f64::consts::PI / 10.0).sqrt();
    for attempt in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(geo_seed(attempt, n));
        let g = gen(&mut rng, side);
        if traversal::is_connected(&g) {
            return g;
        }
        side *= 0.8;
    }
    panic!("could not generate a connected geometric graph for n={n}");
}

fn geo_seed(attempt: u64, n: usize) -> u64 {
    attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (n as u64)
}

fn connected_geometric3(n: usize) -> Graph {
    let mut side = (n as f64 * 4.19 / 12.0).cbrt(); // 4/3·π ≈ 4.19, degree ≈ 12
    for attempt in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(geo_seed(attempt, n) ^ 0x3d);
        let g = generators::geometric::unit_ball3_in_cube(n, side, &mut rng).graph;
        if traversal::is_connected(&g) {
            return g;
        }
        side *= 0.8;
    }
    panic!("could not generate a connected 3d geometric graph for n={n}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_instantiate_connected() {
        for fam in Family::ALL {
            let g = fam.instantiate(64, 1);
            assert!(traversal::is_connected(&g), "{fam} not connected");
            assert!(g.n() >= 15, "{fam} too small: {}", g.n());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for fam in [Family::Gnp, Family::UnitDisk, Family::RandomTree] {
            let g1 = fam.instantiate(80, 7);
            let g2 = fam.instantiate(80, 7);
            assert_eq!(g1, g2, "{fam} not deterministic");
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }

    #[test]
    fn growth_bounded_subset() {
        for fam in Family::GROWTH_BOUNDED {
            assert!(fam.is_growth_bounded());
        }
        assert!(!Family::Hypercube.is_growth_bounded());
        assert!(!Family::Gnp.is_growth_bounded());
    }

    #[test]
    fn display_matches_name() {
        for fam in Family::ALL {
            assert_eq!(fam.to_string(), fam.name());
        }
    }
}
