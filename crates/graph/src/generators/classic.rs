//! Deterministic graph families.
//!
//! These provide the extreme points used throughout the paper's analysis:
//! cliques (`α = 1`, the lower-bound instances of \[14\]), stars and paths
//! (used in the Decay analysis), grids (growth-bounded with `α = Θ(n)` but
//! `α = poly(D)`), hypercubes (small diameter, large `α`), and spiders
//! (large `α` at small `D` — the separating family for `log_D α` vs
//! `log_D n`).

use crate::{Graph, GraphBuilder};

/// The path `P_n` (`n ≥ 1`): diameter `n − 1`, `α = ⌈n/2⌉`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    b.build()
}

/// The cycle `C_n` (`n ≥ 3`): diameter `⌊n/2⌋`, `α = ⌊n/2⌋`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
    }
    b.build()
}

/// The complete graph `K_n`: diameter 1 (for `n ≥ 2`), `α = 1`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i, j);
        }
    }
    b.build()
}

/// The star `S_n`: node 0 is the hub, nodes `1..n` are leaves.
/// Diameter 2 (for `n ≥ 3`), `α = n − 1`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least 2 nodes");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i);
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`: parts `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let mut b = GraphBuilder::new(a + b_size);
    for i in 0..a {
        for j in 0..b_size {
            b.add_edge(i, a + j);
        }
    }
    b.build()
}

/// The `w × h` grid: node `(x, y)` is `y * w + x`. Growth-bounded;
/// diameter `w + h − 2`, `α = ⌈wh/2⌉`.
pub fn grid2d(w: usize, h: usize) -> Graph {
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                b.add_edge(v, v + 1);
            }
            if y + 1 < h {
                b.add_edge(v, v + w);
            }
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes: diameter `d`,
/// `α = 2^(d−1)`.
///
/// # Panics
///
/// Panics if `d > 20` (guardrail against accidental huge graphs).
pub fn hypercube(d: u32) -> Graph {
    assert!(d <= 20, "hypercube dimension too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1usize << bit);
            if u > v {
                b.add_edge(v, u);
            }
        }
    }
    b.build()
}

/// A complete balanced binary tree with the given number of `levels`
/// (`levels = 1` is a single node). Node 0 is the root.
///
/// # Panics
///
/// Panics if `levels` is 0 or `levels > 24`.
pub fn binary_tree(levels: u32) -> Graph {
    assert!((1..=24).contains(&levels), "levels must be in 1..=24");
    let n = (1usize << levels) - 1;
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v, (v - 1) / 2);
    }
    b.build()
}

/// A spider (star of paths): `legs` paths of length `leg_len` glued at a
/// center, `n = 1 + legs·leg_len`. Diameter `2·leg_len`; `α ≈ legs·leg_len/2`
/// is large while `D` stays small — the family where parametrizing by `α`
/// versus `n` matters least, and the complement of the UDG story.
///
/// # Panics
///
/// Panics if `legs == 0` or `leg_len == 0`.
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    assert!(legs > 0 && leg_len > 0, "spider needs legs and leg length");
    let n = 1 + legs * leg_len;
    let mut b = GraphBuilder::new(n);
    for l in 0..legs {
        let base = 1 + l * leg_len;
        b.add_edge(0, base);
        for k in 1..leg_len {
            b.add_edge(base + k - 1, base + k);
        }
    }
    b.build()
}

/// A barbell: two `K_k` cliques joined by a path of `bridge` extra nodes.
/// `n = 2k + bridge`. Mixes `α = Θ(bridge)` with dense ends.
///
/// # Panics
///
/// Panics if `k < 1`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 1, "barbell needs k >= 1");
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::new(n);
    for i in 0..k {
        for j in (i + 1)..k {
            b.add_edge(i, j);
            b.add_edge(k + bridge + i, k + bridge + j);
        }
    }
    // Bridge path from node k-1 through bridge nodes to node k+bridge.
    let mut prev = k - 1;
    for t in 0..bridge {
        b.add_edge(prev, k + t);
        prev = k + t;
    }
    b.add_edge(prev, k + bridge);
    b.build()
}

/// A lollipop: a `K_k` clique with a pendant path of `tail` nodes.
///
/// # Panics
///
/// Panics if `k < 1`.
pub fn lollipop(k: usize, tail: usize) -> Graph {
    assert!(k >= 1, "lollipop needs k >= 1");
    let n = k + tail;
    let mut b = GraphBuilder::new(n);
    for i in 0..k {
        for j in (i + 1)..k {
            b.add_edge(i, j);
        }
    }
    let mut prev = k - 1;
    for t in 0..tail {
        b.add_edge(prev, k + t);
        prev = k + t;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter_exact, is_connected};

    #[test]
    fn sizes_and_connectivity() {
        assert_eq!(path(1).n(), 1);
        assert_eq!(path(10).m(), 9);
        assert_eq!(cycle(10).m(), 10);
        assert_eq!(complete(7).m(), 21);
        assert_eq!(star(8).m(), 7);
        assert_eq!(complete_bipartite(3, 4).m(), 12);
        assert_eq!(grid2d(3, 5).n(), 15);
        assert_eq!(grid2d(3, 5).m(), 2 * 15 - 3 - 5);
        assert_eq!(hypercube(4).n(), 16);
        assert_eq!(hypercube(4).m(), 32);
        assert_eq!(binary_tree(4).n(), 15);
        assert_eq!(binary_tree(4).m(), 14);
        assert_eq!(spider(3, 4).n(), 13);
        assert_eq!(barbell(4, 2).n(), 10);
        assert_eq!(lollipop(4, 3).n(), 7);
        for g in [
            path(10),
            cycle(10),
            complete(7),
            star(8),
            complete_bipartite(3, 4),
            grid2d(3, 5),
            hypercube(4),
            binary_tree(4),
            spider(3, 4),
            barbell(4, 2),
            lollipop(4, 3),
        ] {
            assert!(is_connected(&g), "{g:?}");
        }
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter_exact(&spider(5, 3)), 6);
        assert_eq!(diameter_exact(&binary_tree(4)), 6);
        // Clique interior -> attachment -> 3 bridge nodes -> attachment -> interior.
        assert_eq!(diameter_exact(&barbell(4, 3)), 6);
        assert_eq!(diameter_exact(&lollipop(4, 3)), 4);
        assert_eq!(diameter_exact(&complete_bipartite(3, 4)), 2);
    }

    #[test]
    fn grid_node_layout() {
        let g = grid2d(4, 3);
        // (1,1) = node 5 has 4 neighbors.
        assert_eq!(g.degree(g.node(5)), 4);
        // corner (0,0) = node 0 has 2.
        assert_eq!(g.degree(g.node(0)), 2);
    }

    #[test]
    fn tree_is_acyclic_size() {
        let g = binary_tree(5);
        assert_eq!(g.m(), g.n() - 1);
        let t = random_spanning_check(&g);
        assert!(t);
    }

    fn random_spanning_check(g: &Graph) -> bool {
        // A connected graph with n-1 edges is a tree.
        is_connected(g) && g.m() == g.n() - 1
    }

    #[test]
    #[should_panic(expected = "cycle needs at least 3 nodes")]
    fn cycle_too_small() {
        cycle(2);
    }
}
