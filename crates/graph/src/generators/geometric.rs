//! Geometric graph classes (paper, Section 1.3).
//!
//! All four families the paper lists are here:
//!
//! * **unit disk graphs** — [`unit_disk`] / [`unit_disk_in_square`];
//! * **quasi unit disk graphs** — [`quasi_unit_disk`] (edges certain below
//!   `r`, impossible above `R`, random in between);
//! * **unit ball graphs** — [`unit_ball`], generic over any
//!   [`Metric`] — doubling metrics give growth-bounded graphs;
//! * **geometric radio networks** — [`geometric_radio_undirected`], the
//!   undirected subclass the paper restricts to (mutual-reachability edges,
//!   bounded max/min range ratio).
//!
//! Every generator returns a [`GeometricInstance`] carrying the graph
//! together with its embedding, so experiments can relate graph quantities
//! (α, D) back to geometry.

use crate::geometry::{Euclidean2, Euclidean3, Metric, Point2, Point3};
use crate::{Graph, GraphBuilder};
use rand::Rng;

/// A generated geometric graph together with its embedding.
#[derive(Clone, Debug)]
pub struct GeometricInstance<P> {
    /// The (undirected) graph; node `i` sits at `points[i]`.
    pub graph: Graph,
    /// The embedding.
    pub points: Vec<P>,
}

/// `n` points uniform in the square `[0, side)²`.
pub fn uniform_points2<R: Rng + ?Sized>(n: usize, side: f64, rng: &mut R) -> Vec<Point2> {
    (0..n).map(|_| Point2::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side)).collect()
}

/// `n` points uniform in the cube `[0, side)³`.
pub fn uniform_points3<R: Rng + ?Sized>(n: usize, side: f64, rng: &mut R) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            Point3::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side, rng.gen::<f64>() * side)
        })
        .collect()
}

/// Unit ball graph over an arbitrary metric: edge `{u, v}` iff
/// `dist(u, v) ≤ radius`.
///
/// With a doubling metric the result is growth-bounded (Section 1.3). This
/// is the work-horse behind all the specialized constructors. `O(n²)`
/// distance evaluations.
///
/// # Panics
///
/// Panics if `radius` is negative or NaN.
pub fn unit_ball<P, M: Metric<P>>(points: &[P], metric: &M, radius: f64) -> GeometricInstance<P>
where
    P: Clone,
{
    assert!(radius >= 0.0, "radius must be nonnegative");
    let n = points.len();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if metric.dist(&points[i], &points[j]) <= radius {
                b.add_edge(i, j);
            }
        }
    }
    GeometricInstance { graph: b.build(), points: points.to_vec() }
}

/// Unit disk graph on the given 2D points: edge iff Euclidean distance ≤ 1.
pub fn unit_disk(points: &[Point2]) -> GeometricInstance<Point2> {
    unit_ball(points, &Euclidean2, 1.0)
}

/// Unit disk graph on `n` uniform points in `[0, side)²` with unit radius.
///
/// `side ≈ √(n / density)` controls the expected degree; the harness uses
/// `side = √n / c` to hold density constant as `n` grows.
pub fn unit_disk_in_square<R: Rng + ?Sized>(
    n: usize,
    side: f64,
    rng: &mut R,
) -> GeometricInstance<Point2> {
    let pts = uniform_points2(n, side, rng);
    unit_disk(&pts)
}

/// Unit *ball* graph on `n` uniform points in `[0, side)³` (3D Euclidean).
pub fn unit_ball3_in_cube<R: Rng + ?Sized>(
    n: usize,
    side: f64,
    rng: &mut R,
) -> GeometricInstance<Point3> {
    let pts = uniform_points3(n, side, rng);
    unit_ball(&pts, &Euclidean3, 1.0)
}

/// Quasi unit disk graph (paper, Section 1.3): edges are certain below
/// distance `r`, impossible above `R ≥ r`, and present with probability
/// `gray_p` in between. The ratio `R/r` is the class parameter and must be
/// treated as constant for growth-boundedness.
///
/// # Panics
///
/// Panics unless `0 < r ≤ R` and `gray_p ∈ \[0, 1\]`.
pub fn quasi_unit_disk<R2: Rng + ?Sized>(
    points: &[Point2],
    r: f64,
    big_r: f64,
    gray_p: f64,
    rng: &mut R2,
) -> GeometricInstance<Point2> {
    assert!(r > 0.0 && big_r >= r, "need 0 < r <= R");
    assert!((0.0..=1.0).contains(&gray_p), "gray_p must be a probability");
    let n = points.len();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = Euclidean2.dist(&points[i], &points[j]);
            if d <= r || (d <= big_r && rng.gen::<f64>() < gray_p) {
                b.add_edge(i, j);
            }
        }
    }
    GeometricInstance { graph: b.build(), points: points.to_vec() }
}

/// Quasi unit disk graph on `n` uniform points in `[0, side)²`.
pub fn quasi_unit_disk_in_square<R2: Rng + ?Sized>(
    n: usize,
    side: f64,
    r: f64,
    big_r: f64,
    gray_p: f64,
    rng: &mut R2,
) -> GeometricInstance<Point2> {
    let pts = uniform_points2(n, side, rng);
    quasi_unit_disk(&pts, r, big_r, gray_p, rng)
}

/// Undirected geometric radio network (paper, Section 1.3).
///
/// In a geometric radio network each node `v` has a range `r_v` and a
/// *directed* edge `v → u` exists iff `dist(v, u) ≤ r_v`. The paper
/// restricts to the subclass whose edge relation is symmetric; the canonical
/// way to realize that subclass is the mutual-reachability graph: keep
/// `{u, v}` iff `dist(u, v) ≤ min(r_u, r_v)` (i.e. both directed edges
/// exist). Growth-boundedness requires `max r / min r` bounded; callers
/// should draw `ranges` from an interval `[r_lo, r_hi]` with constant ratio.
///
/// # Panics
///
/// Panics if `ranges.len() != points.len()` or any range is negative.
pub fn geometric_radio_undirected(points: &[Point2], ranges: &[f64]) -> GeometricInstance<Point2> {
    assert_eq!(points.len(), ranges.len(), "one range per point");
    assert!(ranges.iter().all(|&r| r >= 0.0), "ranges must be nonnegative");
    let n = points.len();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = Euclidean2.dist(&points[i], &points[j]);
            if d <= ranges[i].min(ranges[j]) {
                b.add_edge(i, j);
            }
        }
    }
    GeometricInstance { graph: b.build(), points: points.to_vec() }
}

/// Uniform ranges in `[r_lo, r_hi]` for [`geometric_radio_undirected`].
///
/// # Panics
///
/// Panics unless `0 < r_lo ≤ r_hi`.
pub fn uniform_ranges<R: Rng + ?Sized>(n: usize, r_lo: f64, r_hi: f64, rng: &mut R) -> Vec<f64> {
    assert!(r_lo > 0.0 && r_hi >= r_lo, "need 0 < r_lo <= r_hi");
    (0..n).map(|_| rng.gen_range(r_lo..=r_hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Chebyshev2, Torus2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_disk_edges_match_distances() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.9, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(0.0, 0.5),
        ];
        let inst = unit_disk(&pts);
        let g = &inst.graph;
        assert!(g.has_edge(g.node(0), g.node(1)));
        assert!(!g.has_edge(g.node(0), g.node(2)));
        assert!(g.has_edge(g.node(0), g.node(3)));
        // (0.9, 0)–(0, 0.5) is at distance √1.06 ≈ 1.03 > 1: no edge.
        assert!(!g.has_edge(g.node(1), g.node(3)));
    }

    #[test]
    fn unit_disk_edge_rule_exhaustive() {
        let mut rng = StdRng::seed_from_u64(11);
        let pts = uniform_points2(40, 3.0, &mut rng);
        let inst = unit_disk(&pts);
        let g = &inst.graph;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let d = Euclidean2.dist(&pts[i], &pts[j]);
                assert_eq!(g.has_edge(g.node(i), g.node(j)), d <= 1.0);
            }
        }
    }

    #[test]
    fn quasi_udg_sandwiched() {
        let mut rng = StdRng::seed_from_u64(12);
        let pts = uniform_points2(60, 4.0, &mut rng);
        let q = quasi_unit_disk(&pts, 0.7, 1.3, 0.5, &mut rng);
        let inner = unit_ball(&pts, &Euclidean2, 0.7);
        let outer = unit_ball(&pts, &Euclidean2, 1.3);
        let g = &q.graph;
        // inner ⊆ quasi ⊆ outer
        for (u, v) in inner.graph.edges() {
            assert!(g.has_edge(u, v), "certain edge missing");
        }
        for (u, v) in g.edges() {
            assert!(outer.graph.has_edge(u, v), "edge beyond R");
        }
    }

    #[test]
    fn quasi_udg_gray_extremes() {
        let mut rng = StdRng::seed_from_u64(13);
        let pts = uniform_points2(50, 4.0, &mut rng);
        let q0 = quasi_unit_disk(&pts, 0.7, 1.3, 0.0, &mut rng);
        let q1 = quasi_unit_disk(&pts, 0.7, 1.3, 1.0, &mut rng);
        assert_eq!(q0.graph, unit_ball(&pts, &Euclidean2, 0.7).graph);
        assert_eq!(q1.graph, unit_ball(&pts, &Euclidean2, 1.3).graph);
    }

    #[test]
    fn unit_ball_other_metrics() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(0.9, 0.9), Point2::new(0.0, 9.5)];
        // Chebyshev: (0,0)-(0.9,0.9) at distance 0.9 -> edge.
        let cheb = unit_ball(&pts, &Chebyshev2, 1.0);
        assert!(cheb.graph.has_edge(cheb.graph.node(0), cheb.graph.node(1)));
        // Torus side 10: (0,0)-(0,9.5) wraps to distance 0.5 -> edge.
        let tor = unit_ball(&pts, &Torus2::new(10.0), 1.0);
        assert!(tor.graph.has_edge(tor.graph.node(0), tor.graph.node(2)));
        // Plain Euclidean would not have that edge.
        let euc = unit_ball(&pts, &Euclidean2, 1.0);
        assert!(!euc.graph.has_edge(euc.graph.node(0), euc.graph.node(2)));
    }

    #[test]
    fn unit_ball3_has_edges() {
        let mut rng = StdRng::seed_from_u64(14);
        let inst = unit_ball3_in_cube(80, 3.0, &mut rng);
        assert!(inst.graph.m() > 0);
        assert_eq!(inst.points.len(), 80);
    }

    #[test]
    fn geometric_radio_mutual_edges() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), Point2::new(2.5, 0.0)];
        // Node 0 long range, node 1 short, node 2 long.
        let ranges = vec![3.0, 1.0, 3.0];
        let inst = geometric_radio_undirected(&pts, &ranges);
        let g = &inst.graph;
        // 0-1: dist 1 <= min(3,1)=1 -> edge.
        assert!(g.has_edge(g.node(0), g.node(1)));
        // 1-2: dist 1.5 > min(1,3)=1 -> no edge (1 cannot reach back).
        assert!(!g.has_edge(g.node(1), g.node(2)));
        // 0-2: dist 2.5 <= min(3,3)=3 -> edge.
        assert!(g.has_edge(g.node(0), g.node(2)));
    }

    #[test]
    fn growth_bounded_packing_udg() {
        // In a UDG, an independent set within the r-hop ball of v has O(r²)
        // size (paper, Section 1.3). Check the packing bound empirically
        // with the exact-ish constant (2r+1)² for unit radius.
        let mut rng = StdRng::seed_from_u64(15);
        let inst = unit_disk_in_square(300, 8.0, &mut rng);
        let g = &inst.graph;
        let v = g.node(0);
        for r in 1..4u32 {
            let ball = crate::traversal::ball(g, v, r);
            let (sub, _) = g.induced_subgraph(&ball);
            let alpha = crate::independent_set::alpha_bounds(&sub, 2_000_000);
            let bound = (2 * r + 1).pow(2) as usize;
            assert!(
                alpha.upper <= bound,
                "r={r}: alpha {} exceeds packing bound {bound}",
                alpha.upper
            );
        }
    }

    #[test]
    fn uniform_ranges_in_interval() {
        let mut rng = StdRng::seed_from_u64(16);
        let rs = uniform_ranges(100, 0.5, 1.5, &mut rng);
        assert!(rs.iter().all(|&r| (0.5..=1.5).contains(&r)));
    }
}
