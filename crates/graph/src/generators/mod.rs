//! Graph generators: every class the paper names plus general-graph
//! comparators.
//!
//! * [`classic`] — deterministic families (paths, cycles, cliques, grids,
//!   stars, hypercubes, trees, spiders, barbells);
//! * [`random`] — random general graphs (Erdős–Rényi `G(n, p)`, random
//!   trees, connected variants);
//! * [`geometric`] — the geometric classes of Section 1.3: unit disk, quasi
//!   unit disk, unit ball over arbitrary metrics, and undirected geometric
//!   radio networks.
//!
//! The most used items are re-exported at this level.

pub mod classic;
pub mod geometric;
pub mod random;

pub use classic::{
    barbell, binary_tree, complete, complete_bipartite, cycle, grid2d, hypercube, lollipop, path,
    spider, star,
};
pub use geometric::{
    geometric_radio_undirected, quasi_unit_disk_in_square, uniform_points2, uniform_points3,
    unit_ball, unit_disk, unit_disk_in_square, GeometricInstance,
};
pub use random::{connected_gnp, gnp, random_tree};
