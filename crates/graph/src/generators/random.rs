//! Random general-graph generators.
//!
//! These supply the "general graphs" side of the paper's dichotomy: graphs
//! with no geometric structure whose independence number is typically
//! `Θ(n / log n)` or larger — the regime where `O(D log_D α)` degenerates to
//! the \[CD21\] bound `O(D log_D n)`.

use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: each of the `n(n−1)/2` edges present independently
/// with probability `p`.
///
/// Uses geometric skipping, so sparse graphs cost `O(n + m)` rather than
/// `O(n²)`.
///
/// # Panics
///
/// Panics if `p` is not in `\[0, 1\]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    if p >= 1.0 {
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge(i, j);
            }
        }
        return b.build();
    }
    // Skip-sampling over the linearized upper triangle.
    let log1mp = (1.0 - p).ln();
    let mut i: usize = 1; // row (v), column u < v encoding: iterate v from 1..n, u in 0..v
    let mut j: i64 = -1;
    while i < n {
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log1mp).floor() as i64 + 1;
        j += skip;
        while j >= i as i64 && i < n {
            j -= i as i64;
            i += 1;
        }
        if i < n {
            b.add_edge(j as usize, i);
        }
    }
    b.build()
}

/// `G(n, p)` conditioned on connectivity by augmentation
/// ([`connect_components`]). The result differs from `G(n, p)` by at most
/// `#components − 1` edges. The harness uses it where broadcast needs a
/// connected instance without rejection sampling.
pub fn connected_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let g = gnp(n, p, rng);
    connect_components(&g, rng)
}

/// Makes any graph connected by adding one edge per extra component:
/// component representatives are chained to random earlier representatives.
/// Returns the input unchanged (cloned) if already connected.
pub fn connect_components<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Graph {
    let n = g.n();
    if n <= 1 {
        return g.clone();
    }
    let (labels, count) = crate::traversal::connected_components(g);
    if count == 1 {
        return g.clone();
    }
    let mut b = GraphBuilder::new(n);
    for (u, v) in g.edges() {
        b.add_edge(u.index(), v.index());
    }
    // Pick one representative per component and chain them randomly.
    let mut reps: Vec<usize> = vec![usize::MAX; count];
    for v in 0..n {
        if reps[labels[v]] == usize::MAX {
            reps[labels[v]] = v;
        }
    }
    for w in 1..count {
        // Attach component w's representative to a random earlier
        // representative (keeps degree distortion minimal).
        let prev = reps[rng.gen_range(0..w)];
        b.add_edge(prev, reps[w]);
    }
    b.build()
}

/// A uniform random recursive tree: node `i ≥ 1` attaches to a uniformly
/// random earlier node. Connected, `n − 1` edges, expected diameter
/// `Θ(log n)` — a high-α, low-D general graph.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        b.add_edge(parent, i);
    }
    b.build()
}

/// A random caterpillar: a spine path of `spine` nodes, each growing a
/// random number of legs in `0..=max_legs`. Trees with long diameter and
/// tunable α.
pub fn random_caterpillar<R: Rng + ?Sized>(spine: usize, max_legs: usize, rng: &mut R) -> Graph {
    assert!(spine >= 1, "caterpillar needs a spine");
    let legs: Vec<usize> = (0..spine).map(|_| rng.gen_range(0..=max_legs)).collect();
    let n = spine + legs.iter().sum::<usize>();
    let mut b = GraphBuilder::new(n);
    for i in 1..spine {
        b.add_edge(i - 1, i);
    }
    let mut next = spine;
    for (i, &l) in legs.iter().enumerate() {
        for _ in 0..l {
            b.add_edge(i, next);
            next += 1;
        }
    }
    b.build()
}

/// Picks a uniformly random node of `g`.
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn random_node<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> NodeId {
    assert!(g.n() > 0, "empty graph has no nodes");
    g.node(rng.gen_range(0..g.n()))
}

/// A random `d`-regular-ish graph by the configuration model: `d` stubs per
/// node are paired uniformly; self-loops and duplicate pairings are dropped,
/// so a few nodes may end up with degree slightly below `d`. Expanders whp
/// for `d ≥ 3` — the extreme low-diameter, high-α general graphs.
///
/// # Panics
///
/// Panics if `n·d` is odd or `d ≥ n`.
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    assert!(d < n, "degree must be below n");
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    use rand::seq::SliceRandom;
    stubs.shuffle(rng);
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.add_edge(pair[0], pair[1]); // duplicates merged by the builder
        }
    }
    b.build()
}

/// A Chung–Lu power-law graph: node `i` gets weight `w_i ∝ (i+1)^{-1/(γ−1)}`
/// scaled to a target average degree, and edge `{i, j}` appears with
/// probability `min(1, w_i·w_j / Σw)`. Heavy-tailed degrees, small diameter
/// — the "scale-free" general-graph comparator.
///
/// # Panics
///
/// Panics unless `γ > 2` and `avg_degree > 0`.
pub fn chung_lu<R: Rng + ?Sized>(n: usize, gamma: f64, avg_degree: f64, rng: &mut R) -> Graph {
    assert!(gamma > 2.0, "power-law exponent must exceed 2");
    assert!(avg_degree > 0.0, "average degree must be positive");
    let exp = -1.0 / (gamma - 1.0);
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exp)).collect();
    let raw_mean = raw.iter().sum::<f64>() / n.max(1) as f64;
    let w: Vec<f64> = raw.iter().map(|r| r * avg_degree / raw_mean).collect();
    let total: f64 = w.iter().sum();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let p = (w[i] * w[j] / total).min(1.0);
            if p > 0.0 && rng.gen::<f64>() < p {
                b.add_edge(i, j);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).m(), 45);
        assert_eq!(gnp(0, 0.5, &mut rng).n(), 0);
        assert_eq!(gnp(1, 0.5, &mut rng).m(), 0);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 300;
        let p = 0.05;
        let trials = 20;
        let mean: f64 =
            (0..trials).map(|_| gnp(n, p, &mut rng).m() as f64).sum::<f64>() / trials as f64;
        let expected = p * (n * (n - 1) / 2) as f64;
        assert!((mean - expected).abs() < 0.1 * expected, "mean {mean} vs expected {expected}");
    }

    #[test]
    fn connected_gnp_is_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = connected_gnp(100, 0.01, &mut rng); // below the connectivity threshold
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [1usize, 2, 10, 100] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.m(), n.saturating_sub(1));
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn caterpillar_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_caterpillar(10, 3, &mut rng);
        assert!(is_connected(&g));
        assert_eq!(g.m(), g.n() - 1);
    }

    #[test]
    fn random_node_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = gnp(5, 0.5, &mut rng);
        for _ in 0..20 {
            let v = random_node(&g, &mut rng);
            assert!(v.index() < 5);
        }
    }

    #[test]
    fn gnp_deterministic_under_seed() {
        let g1 = gnp(50, 0.1, &mut StdRng::seed_from_u64(7));
        let g2 = gnp(50, 0.1, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }

    #[test]
    fn random_regular_degrees_near_d() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = random_regular(100, 4, &mut rng);
        // Dropped self-loops/duplicates can shave degrees; most stay at d.
        let at_d = g.nodes().filter(|&v| g.degree(v) == 4).count();
        assert!(at_d >= 80, "only {at_d}/100 nodes at degree 4");
        assert!(g.max_degree() <= 4);
    }

    #[test]
    #[should_panic(expected = "n·d must be even")]
    fn random_regular_parity_checked() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = random_regular(5, 3, &mut rng);
    }

    #[test]
    fn chung_lu_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = chung_lu(400, 2.5, 6.0, &mut rng);
        let avg = g.avg_degree();
        assert!((2.0..12.0).contains(&avg), "avg degree {avg}");
        // Heavy tail: the max degree should dwarf the average.
        assert!(g.max_degree() as f64 > 3.0 * avg, "max {} avg {avg}", g.max_degree());
    }

    #[test]
    fn chung_lu_deterministic() {
        let a = chung_lu(80, 2.7, 4.0, &mut StdRng::seed_from_u64(11));
        let b = chung_lu(80, 2.7, 4.0, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }
}
