//! Points and metric spaces for the geometric graph classes of Section 1.3.
//!
//! Unit *disk* graphs live in 2D Euclidean space; unit *ball* graphs
//! generalize the underlying space to any metric space, and stay
//! growth-bounded whenever the metric is *doubling* (every ball is covered
//! by `b` balls of half the radius). All metrics provided here are doubling:
//! fixed-dimensional Euclidean, Chebyshev (`L∞`), Manhattan (`L1`), and the
//! flat torus.

use serde::{Deserialize, Serialize};

/// A point in the plane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }
}

/// A point in three-dimensional space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Point3 {
    /// First coordinate.
    pub x: f64,
    /// Second coordinate.
    pub y: f64,
    /// Third coordinate.
    pub z: f64,
}

impl Point3 {
    /// Creates a point from coordinates.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }
}

/// A metric on points of type `P`.
///
/// Implementations must satisfy the metric axioms; all metrics shipped with
/// this crate are additionally *doubling*, which is what makes the derived
/// unit-ball graphs growth-bounded (paper, Section 1.3).
pub trait Metric<P> {
    /// The distance between `a` and `b`.
    fn dist(&self, a: &P, b: &P) -> f64;
}

/// Euclidean (`L2`) metric on [`Point2`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Euclidean2;

impl Metric<Point2> for Euclidean2 {
    fn dist(&self, a: &Point2, b: &Point2) -> f64 {
        (a.x - b.x).hypot(a.y - b.y)
    }
}

/// Euclidean (`L2`) metric on [`Point3`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Euclidean3;

impl Metric<Point3> for Euclidean3 {
    fn dist(&self, a: &Point3, b: &Point3) -> f64 {
        ((a.x - b.x).powi(2) + (a.y - b.y).powi(2) + (a.z - b.z).powi(2)).sqrt()
    }
}

/// Chebyshev (`L∞`) metric on [`Point2`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chebyshev2;

impl Metric<Point2> for Chebyshev2 {
    fn dist(&self, a: &Point2, b: &Point2) -> f64 {
        (a.x - b.x).abs().max((a.y - b.y).abs())
    }
}

/// Manhattan (`L1`) metric on [`Point2`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manhattan2;

impl Metric<Point2> for Manhattan2 {
    fn dist(&self, a: &Point2, b: &Point2) -> f64 {
        (a.x - b.x).abs() + (a.y - b.y).abs()
    }
}

/// Flat-torus metric: the unit square `[0, side)²` with wrap-around, scaled
/// by `side`. Useful for boundary-free geometric instances.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Torus2 {
    /// Side length of the square.
    pub side: f64,
}

impl Torus2 {
    /// A torus of the given side length.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not strictly positive and finite.
    pub fn new(side: f64) -> Self {
        assert!(side.is_finite() && side > 0.0, "torus side must be positive");
        Torus2 { side }
    }
}

impl Metric<Point2> for Torus2 {
    fn dist(&self, a: &Point2, b: &Point2) -> f64 {
        let dx = (a.x - b.x).rem_euclid(self.side);
        let dy = (a.y - b.y).rem_euclid(self.side);
        let dx = dx.min(self.side - dx);
        let dy = dy.min(self.side - dy);
        dx.hypot(dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean2_pythagoras() {
        let d = Euclidean2.dist(&Point2::new(0.0, 0.0), &Point2::new(3.0, 4.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn euclidean3_diagonal() {
        let d = Euclidean3.dist(&Point3::new(0.0, 0.0, 0.0), &Point3::new(1.0, 2.0, 2.0));
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_max_axis() {
        let d = Chebyshev2.dist(&Point2::new(0.0, 0.0), &Point2::new(3.0, -4.0));
        assert!((d - 4.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_sum_axis() {
        let d = Manhattan2.dist(&Point2::new(0.0, 0.0), &Point2::new(3.0, -4.0));
        assert!((d - 7.0).abs() < 1e-12);
    }

    #[test]
    fn torus_wraps() {
        let t = Torus2::new(10.0);
        let d = t.dist(&Point2::new(0.5, 0.5), &Point2::new(9.5, 0.5));
        assert!((d - 1.0).abs() < 1e-12);
        // Within the bulk it agrees with Euclidean.
        let d2 = t.dist(&Point2::new(2.0, 2.0), &Point2::new(5.0, 6.0));
        assert!((d2 - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "torus side must be positive")]
    fn torus_rejects_zero_side() {
        Torus2::new(0.0);
    }

    #[test]
    fn metric_axioms_sampled() {
        // Symmetry and triangle inequality on a small sample, all metrics.
        let pts = [
            Point2::new(0.1, 0.9),
            Point2::new(4.0, 2.5),
            Point2::new(7.3, 7.9),
            Point2::new(9.9, 0.2),
        ];
        fn check<M: Metric<Point2>>(m: &M, pts: &[Point2]) {
            for a in pts {
                assert!(m.dist(a, a).abs() < 1e-12);
                for b in pts {
                    assert!((m.dist(a, b) - m.dist(b, a)).abs() < 1e-12);
                    for c in pts {
                        assert!(m.dist(a, c) <= m.dist(a, b) + m.dist(b, c) + 1e-12);
                    }
                }
            }
        }
        check(&Euclidean2, &pts);
        check(&Chebyshev2, &pts);
        check(&Manhattan2, &pts);
        check(&Torus2::new(10.0), &pts);
    }
}
