//! Granularity of unit disk graphs (Emek–Gasieniec–Kantor–Pelc–Peleg–Su).
//!
//! The paper's related work compares against the UDG broadcast bound of
//! \[13\], parametrized by the **granularity** `g` — the inverse of the
//! minimum Euclidean distance between two nodes (for unit transmission
//! radius): `Θ(min{D + g², D·log g})` deterministic rounds. The paper notes
//! `g = Ω(√n / D)` by an area argument, which is how the two
//! parametrizations are compared. This module computes `g` and the derived
//! bounds so experiment E13 can put all parametrizations side by side.

use crate::geometry::{Euclidean2, Metric, Point2};

/// Granularity of a point set at unit radius: `1 / min pairwise distance`.
///
/// Returns `None` for fewer than two points or coincident points
/// (infinite granularity).
pub fn granularity(points: &[Point2]) -> Option<f64> {
    let mut min_d = f64::INFINITY;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = Euclidean2.dist(&points[i], &points[j]);
            if d < min_d {
                min_d = d;
            }
        }
    }
    (min_d.is_finite() && min_d > 0.0).then(|| 1.0 / min_d)
}

/// The \[13\] broadcast bound `min{D + g², D·log₂ g}` (up to constants).
///
/// # Panics
///
/// Panics unless `g ≥ 1` (granularity of a unit disk graph with an edge is
/// at least 1).
pub fn emek_bound(d: u32, g: f64) -> f64 {
    assert!(g >= 1.0, "granularity is at least 1");
    let a = d as f64 + g * g;
    let b = d as f64 * g.max(2.0).log2();
    a.min(b)
}

/// The paper's area-argument lower bound `g = Ω(√n / D)` — the bridge
/// between the granularity and `(n, D)` parametrizations (Section 1.5.2).
pub fn granularity_lower_bound(n: usize, d: u32) -> f64 {
    (n as f64).sqrt() / d.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn granularity_of_grid_points() {
        // Points spaced 0.5 apart: granularity 2.
        let pts: Vec<Point2> = (0..4)
            .flat_map(|x| (0..4).map(move |y| Point2::new(x as f64 / 2.0, y as f64 / 2.0)))
            .collect();
        let g = granularity(&pts).unwrap();
        assert!((g - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases() {
        assert!(granularity(&[]).is_none());
        assert!(granularity(&[Point2::new(0.0, 0.0)]).is_none());
        assert!(granularity(&[Point2::new(1.0, 1.0), Point2::new(1.0, 1.0)]).is_none());
    }

    #[test]
    fn emek_bound_regimes() {
        // Moderate g: the D + g² branch wins (116 < 200).
        assert!((emek_bound(100, 4.0) - 116.0).abs() < 1e-9);
        // Huge g: the D·log g branch wins.
        let big = emek_bound(100, 1000.0);
        assert!((big - 100.0 * 1000f64.log2()).abs() < 1e-9);
        // Tiny g: the log is floored at 1, so the bound never dips below D.
        assert!((emek_bound(100, 1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn area_bound_sane_on_udg() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = generators::unit_disk_in_square(200, 5.0, &mut rng);
        let g = granularity(&inst.points).unwrap();
        let d = crate::traversal::diameter(&inst.graph);
        // The area argument is a lower bound up to constants; allow one.
        assert!(
            g >= 0.1 * granularity_lower_bound(inst.graph.n(), d.max(1)),
            "granularity {g} far below area bound"
        );
    }

    #[test]
    #[should_panic(expected = "granularity is at least 1")]
    fn emek_bound_rejects_tiny_g() {
        let _ = emek_bound(10, 0.5);
    }
}
