//! The core immutable undirected graph type.

use std::fmt;

/// Identifier of a node in a [`Graph`].
///
/// Node ids are dense indices `0..n`. They identify vertices **to the
/// simulator and harness only**; the paper's ad-hoc model forbids protocols
/// from knowing them, and the protocol layer instead draws random identifiers
/// (see `radionet_primitives::ids`).
///
/// ```
/// use radionet_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(v: NodeId) -> usize {
        v.index()
    }
}

/// A compact, immutable, undirected graph in CSR (compressed sparse row)
/// layout.
///
/// Construct one with [`GraphBuilder`](crate::GraphBuilder) or
/// [`Graph::from_edges`]. Self-loops are rejected and parallel edges are
/// merged at build time, so `m()` counts distinct undirected edges.
///
/// ```
/// use radionet_graph::Graph;
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (1, 2)]).unwrap();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3); // the duplicate (1,2) is merged
/// assert_eq!(g.degree(g.node(1)), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-node-sorted adjacency lists.
    neighbors: Vec<NodeId>,
}

impl Graph {
    pub(crate) fn from_csr(offsets: Vec<u32>, neighbors: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, neighbors.len());
        Graph { offsets, neighbors }
    }

    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// Duplicate edges (in either orientation) are merged.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`](crate::GraphError) if an endpoint is out of
    /// range or an edge is a self-loop.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, crate::GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut b = crate::GraphBuilder::new(n);
        for (u, v) in edges {
            b.try_add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of distinct undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Returns the node with dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n()`.
    #[inline]
    pub fn node(&self, i: usize) -> NodeId {
        assert!(i < self.n(), "node index {i} out of range (n = {})", self.n());
        NodeId::new(i)
    }

    /// Iterates over all nodes in index order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.n()).map(NodeId::new)
    }

    /// The sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// The raw CSR arrays `(offsets, targets)`: the neighbors of node `i`
    /// are `targets[offsets[i] as usize..offsets[i + 1] as usize]`.
    ///
    /// This is the zero-overhead accessor the simulator's sparse step
    /// kernel and the large-graph BFS routines iterate with — hoisting the
    /// two slices out of a hot loop beats re-deriving a sub-slice through
    /// [`neighbors`](Graph::neighbors) per node.
    #[inline]
    pub fn csr(&self) -> (&[u32], &[NodeId]) {
        (&self.offsets, &self.neighbors)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Whether `{u, v}` is an edge. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree `Δ`; 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2m / n`; 0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.n() as f64
        }
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Whether the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n() == 0
    }

    /// The subgraph induced by `keep`, together with the mapping from new
    /// ids to original ids.
    ///
    /// Nodes are renumbered densely in the order they appear in `keep`;
    /// duplicates in `keep` are ignored after the first occurrence.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut new_of = vec![u32::MAX; self.n()];
        let mut order = Vec::with_capacity(keep.len());
        for &v in keep {
            if new_of[v.index()] == u32::MAX {
                new_of[v.index()] = order.len() as u32;
                order.push(v);
            }
        }
        let mut b = crate::GraphBuilder::new(order.len());
        for (ni, &v) in order.iter().enumerate() {
            for &w in self.neighbors(v) {
                let nw = new_of[w.index()];
                if nw != u32::MAX && (nw as usize) > ni {
                    b.add_edge(ni, nw as usize);
                }
            }
        }
        (b.build(), order)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn triangle_basics() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(g.node(0), g.node(2)));
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = Graph::from_edges(2, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(g.node(0)), 1);
    }

    #[test]
    fn self_loop_rejected() {
        assert!(Graph::from_edges(2, [(1, 1)]).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Graph::from_edges(2, [(0, 2)]).is_err());
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let ns: Vec<usize> = g.neighbors(g.node(2)).iter().map(|v| v.index()).collect();
        assert_eq!(ns, vec![0, 1, 3, 4]);
    }

    #[test]
    fn csr_matches_neighbors() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 4)]).unwrap();
        let (offsets, targets) = g.csr();
        assert_eq!(offsets.len(), g.n() + 1);
        assert_eq!(targets.len(), 2 * g.m());
        for v in g.nodes() {
            let lo = offsets[v.index()] as usize;
            let hi = offsets[v.index() + 1] as usize;
            assert_eq!(&targets[lo..hi], g.neighbors(v));
        }
    }

    #[test]
    fn induced_subgraph_renumbers() {
        // Path 0-1-2-3; keep {1, 3, 2} -> path 2-1(new ids: 1-2 edge? ...)
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let keep = vec![g.node(1), g.node(3), g.node(2)];
        let (h, order) = g.induced_subgraph(&keep);
        assert_eq!(h.n(), 3);
        assert_eq!(h.m(), 2); // edges {1,2} and {2,3} survive
        assert_eq!(order, keep);
        // new index of node 2 is 2; it must connect to both others.
        assert_eq!(h.degree(h.node(2)), 2);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let v = NodeId::new(7);
        assert_eq!(format!("{v}"), "7");
        assert_eq!(format!("{v:?}"), "v7");
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        assert_eq!(format!("{g:?}"), "Graph(n=2, m=1)");
    }
}
