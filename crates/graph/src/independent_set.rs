//! Independent sets and the independence number `α`.
//!
//! The paper parametrizes broadcast and leader election by the independence
//! number `α(G)` — the size of a maximum independent set (Section 1.1). The
//! harness needs:
//!
//! * validity checks ([`is_independent_set`], [`is_maximal_independent_set`])
//!   used to verify every MIS the radio algorithms output;
//! * greedy maximal independent sets ([`greedy_mis`], [`greedy_mis_order`])
//!   as lower bounds for `α` and as reference MIS solutions;
//! * cheap upper bounds (greedy clique cover, matching/Gallai bound);
//! * an exact branch-and-bound maximum-independent-set solver
//!   ([`maximum_independent_set`]) with a work budget;
//! * [`alpha_bounds`] combining all of the above into an [`AlphaBounds`]
//!   bracket, which is what experiments feed into the `O(D log_D α)`
//!   predictions.

use crate::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Whether `set` is an independent set of `g` (no two members adjacent).
///
/// Duplicates in `set` are tolerated and count once.
pub fn is_independent_set(g: &Graph, set: &[NodeId]) -> bool {
    let mut member = vec![false; g.n()];
    for &v in set {
        member[v.index()] = true;
    }
    for &v in set {
        if g.neighbors(v).iter().any(|&u| member[u.index()]) {
            return false;
        }
    }
    true
}

/// Whether `set` is a *maximal* independent set of `g`: independent, and
/// every node outside `set` has a neighbor inside it.
pub fn is_maximal_independent_set(g: &Graph, set: &[NodeId]) -> bool {
    if !is_independent_set(g, set) {
        return false;
    }
    let mut member = vec![false; g.n()];
    for &v in set {
        member[v.index()] = true;
    }
    g.nodes().all(|v| member[v.index()] || g.neighbors(v).iter().any(|&u| member[u.index()]))
}

/// Greedy maximal independent set in the given node order.
///
/// Deterministic; the returned set is maximal, hence a lower bound for `α`
/// and a valid "MIS" in the paper's sense.
pub fn greedy_mis_order(g: &Graph, order: &[NodeId]) -> Vec<NodeId> {
    let mut blocked = vec![false; g.n()];
    let mut out = Vec::new();
    for &v in order {
        if !blocked[v.index()] {
            out.push(v);
            blocked[v.index()] = true;
            for &u in g.neighbors(v) {
                blocked[u.index()] = true;
            }
        }
    }
    out
}

/// Greedy maximal independent set in a uniformly random node order.
pub fn greedy_mis<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.shuffle(rng);
    greedy_mis_order(g, &order)
}

/// Greedy maximal independent set preferring low-degree nodes, a classic
/// heuristic that gets within `Δ+1` of optimal and is usually much better.
pub fn greedy_mis_min_degree(g: &Graph) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&v| g.degree(v));
    greedy_mis_order(g, &order)
}

/// Upper bound on `α` via a greedy clique cover: `V` is covered by `k`
/// cliques, and an independent set meets each clique at most once, so
/// `α ≤ k`.
pub fn clique_cover_upper_bound(g: &Graph) -> usize {
    let n = g.n();
    let mut covered = vec![false; n];
    // Process nodes by descending degree so big cliques form early.
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut cliques = 0usize;
    let mut in_clique = vec![false; n];
    for &seed in &order {
        if covered[seed.index()] {
            continue;
        }
        // Grow a clique from `seed` among uncovered nodes.
        let mut clique = vec![seed];
        in_clique[seed.index()] = true;
        // Candidates: uncovered neighbors of seed.
        for &u in g.neighbors(seed) {
            if covered[u.index()] {
                continue;
            }
            // `u` joins if adjacent to every current member.
            if clique.iter().all(|&c| g.has_edge(u, c)) {
                clique.push(u);
                in_clique[u.index()] = true;
            }
        }
        for &c in &clique {
            covered[c.index()] = true;
            in_clique[c.index()] = false;
        }
        cliques += 1;
    }
    cliques
}

/// Upper bound on `α` via matchings: any matching `M` forces one endpoint of
/// each matched edge out of any independent set, so `α ≤ n − |M|`.
///
/// Uses a greedy maximal matching (≥ half of maximum), which still yields a
/// valid bound because `α ≤ n − μ(G) ≤ n − |M_greedy|` fails for greedy —
/// instead we use the safe direction `α ≤ n − |M|` for *any* matching `M`.
pub fn matching_upper_bound(g: &Graph) -> usize {
    let mut matched = vec![false; g.n()];
    let mut size = 0usize;
    for (u, v) in g.edges() {
        if !matched[u.index()] && !matched[v.index()] {
            matched[u.index()] = true;
            matched[v.index()] = true;
            size += 1;
        }
    }
    g.n() - size
}

/// Result of the exact maximum-independent-set search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExactAlpha {
    /// The search finished; this is a maximum independent set.
    Exact(Vec<NodeId>),
    /// The work budget ran out; the best independent set found so far.
    BudgetExhausted(Vec<NodeId>),
}

impl ExactAlpha {
    /// The best independent set found (maximum iff [`ExactAlpha::Exact`]).
    pub fn set(&self) -> &[NodeId] {
        match self {
            ExactAlpha::Exact(s) | ExactAlpha::BudgetExhausted(s) => s,
        }
    }

    /// Whether the search proved optimality.
    pub fn is_exact(&self) -> bool {
        matches!(self, ExactAlpha::Exact(_))
    }
}

/// Exact maximum independent set by branch and bound.
///
/// Branches on a maximum-degree vertex of the remaining subgraph (exclude it,
/// or include it and delete its closed neighborhood), pruning with the greedy
/// clique-cover bound. `budget` caps the number of search nodes expanded;
/// when exhausted the best set found so far is returned as
/// [`ExactAlpha::BudgetExhausted`].
///
/// Intended for the harness (`n` up to a few hundred sparse / ~100 dense).
pub fn maximum_independent_set(g: &Graph, budget: u64) -> ExactAlpha {
    // Work on an explicit "alive" subset with adjacency via bitsets for speed.
    let n = g.n();
    if n == 0 {
        return ExactAlpha::Exact(Vec::new());
    }
    let words = n.div_ceil(64);
    // Bitset adjacency.
    let mut adj = vec![0u64; n * words];
    for v in g.nodes() {
        for &u in g.neighbors(v) {
            adj[v.index() * words + u.index() / 64] |= 1u64 << (u.index() % 64);
        }
    }

    struct Search<'a> {
        words: usize,
        adj: &'a [u64],
        best: Vec<u32>,
        budget: u64,
        exhausted: bool,
    }

    impl Search<'_> {
        fn popcount(set: &[u64]) -> usize {
            set.iter().map(|w| w.count_ones() as usize).sum()
        }

        /// Greedy clique-cover bound restricted to `alive`.
        fn bound(&self, alive: &[u64]) -> usize {
            let mut remaining = alive.to_vec();
            let mut cliques = 0usize;
            while let Some(v) = first_set_bit(&remaining) {
                // Members of this clique: grow greedily within `remaining`.
                clear_bit(&mut remaining, v);
                let mut members = vec![v];
                let mut cand: Vec<u64> =
                    (0..self.words).map(|w| remaining[w] & self.adj[v * self.words + w]).collect();
                while let Some(u) = first_set_bit(&cand) {
                    // u is adjacent to all members by construction of cand.
                    clear_bit(&mut remaining, u);
                    for (w, c) in cand.iter_mut().enumerate() {
                        *c &= self.adj[u * self.words + w];
                    }
                    clear_bit(&mut cand, u);
                    members.push(u);
                }
                cliques += 1;
            }
            cliques
        }

        fn run(&mut self, alive: &mut Vec<u64>, current: &mut Vec<u32>) {
            if self.budget == 0 {
                self.exhausted = true;
                return;
            }
            self.budget -= 1;
            let alive_count = Self::popcount(alive);
            if alive_count == 0 {
                if current.len() > self.best.len() {
                    self.best = current.clone();
                }
                return;
            }
            if current.len() + alive_count <= self.best.len() {
                return;
            }
            if current.len() + self.bound(alive) <= self.best.len() {
                return;
            }
            // Pick an alive vertex of maximum alive-degree.
            let mut pick = usize::MAX;
            let mut pick_deg = usize::MAX;
            let mut max_deg = 0usize;
            for v in iter_bits(alive) {
                let deg = (0..self.words)
                    .map(|w| (self.adj[v * self.words + w] & alive[w]).count_ones() as usize)
                    .sum();
                if pick == usize::MAX || deg > max_deg {
                    max_deg = deg;
                    pick = v;
                    pick_deg = deg;
                }
            }
            let v = pick;
            if pick_deg == 0 {
                // All alive vertices are isolated: take them all.
                let mut take = current.clone();
                take.extend(iter_bits(alive).map(|i| i as u32));
                if take.len() > self.best.len() {
                    self.best = take;
                }
                return;
            }
            // Branch 1: include v (delete N[v]).
            let saved = alive.clone();
            clear_bit(alive, v);
            for (w, a) in alive.iter_mut().enumerate() {
                *a &= !self.adj[v * self.words + w];
            }
            current.push(v as u32);
            self.run(alive, current);
            current.pop();
            *alive = saved.clone();
            // Branch 2: exclude v.
            clear_bit(alive, v);
            self.run(alive, current);
            *alive = saved;
        }
    }

    fn first_set_bit(set: &[u64]) -> Option<usize> {
        for (w, &bits) in set.iter().enumerate() {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    fn clear_bit(set: &mut [u64], i: usize) {
        set[i / 64] &= !(1u64 << (i % 64));
    }

    fn iter_bits(set: &[u64]) -> impl Iterator<Item = usize> + '_ {
        set.iter().enumerate().flat_map(|(w, &bits)| {
            let mut b = bits;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let i = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(w * 64 + i)
                }
            })
        })
    }

    let mut alive = vec![0u64; words];
    for v in 0..n {
        alive[v / 64] |= 1u64 << (v % 64);
    }
    // Seed the incumbent with a decent greedy solution so pruning bites early.
    let seed = greedy_mis_min_degree(g);
    let mut search = Search {
        words,
        adj: &adj,
        best: seed.iter().map(|v| v.index() as u32).collect(),
        budget,
        exhausted: false,
    };
    let mut current = Vec::new();
    search.run(&mut alive, &mut current);
    let set: Vec<NodeId> = search.best.iter().map(|&i| NodeId::new(i as usize)).collect();
    if search.exhausted {
        ExactAlpha::BudgetExhausted(set)
    } else {
        ExactAlpha::Exact(set)
    }
}

/// A bracket on the independence number `α(G)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlphaBounds {
    /// Certified lower bound (size of an actual independent set found).
    pub lower: usize,
    /// Certified upper bound.
    pub upper: usize,
    /// Whether `lower == upper` was proven by exact search.
    pub exact: bool,
}

impl AlphaBounds {
    /// A representative value: the geometric mean of the bracket, matching
    /// the paper's tolerance of "any polynomial approximation" of `α`
    /// (Section 1.1).
    pub fn estimate(&self) -> f64 {
        ((self.lower as f64) * (self.upper as f64)).sqrt()
    }
}

/// Computes [`AlphaBounds`] for `g`.
///
/// Runs the exact solver with the given search `budget`; if it completes, the
/// bracket is tight. Otherwise combines the best found independent set
/// (lower) with the minimum of the clique-cover and matching upper bounds.
pub fn alpha_bounds(g: &Graph, budget: u64) -> AlphaBounds {
    if g.n() > EXACT_SEARCH_MAX_N {
        // The branch-and-bound solver materializes Θ(n²/64) bitset
        // adjacency — 125 GB at a million nodes — so huge graphs go
        // straight to the near-linear greedy/cover bracket. Still within
        // the paper's "any polynomial approximation" tolerance.
        let lower = greedy_mis_min_degree(g).len();
        let upper = clique_cover_upper_bound(g).min(matching_upper_bound(g));
        return AlphaBounds { lower, upper: upper.max(lower), exact: upper <= lower };
    }
    match maximum_independent_set(g, budget) {
        ExactAlpha::Exact(set) => AlphaBounds { lower: set.len(), upper: set.len(), exact: true },
        ExactAlpha::BudgetExhausted(set) => {
            let upper = clique_cover_upper_bound(g).min(matching_upper_bound(g));
            AlphaBounds { lower: set.len(), upper: upper.max(set.len()), exact: false }
        }
    }
}

/// Above this node count [`alpha_bounds`] skips the exact solver entirely
/// (its bitset adjacency is quadratic in memory) and reports the
/// greedy-vs-cover bracket computed in near-linear time.
pub const EXACT_SEARCH_MAX_N: usize = 16_384;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validity_checks() {
        let g = generators::cycle(6);
        let ind = vec![g.node(0), g.node(2)];
        assert!(is_independent_set(&g, &ind));
        // Node 4 is adjacent to neither 0 nor 2 on C6, so {0,2} is not maximal.
        assert!(!is_maximal_independent_set(&g, &ind));
        let not_ind = vec![g.node(0), g.node(1)];
        assert!(!is_independent_set(&g, &not_ind));
    }

    #[test]
    fn maximality_on_cycle5() {
        let g = generators::cycle(5);
        // {0, 2} covers 1, 3 (nbrs of 2,0... ) and 4 (adj 0). So it IS maximal.
        assert!(is_maximal_independent_set(&g, &[g.node(0), g.node(2)]));
        // {0} is independent but not maximal: 2 and 3 uncovered.
        assert!(!is_maximal_independent_set(&g, &[g.node(0)]));
    }

    #[test]
    fn greedy_is_maximal() {
        let mut rng = StdRng::seed_from_u64(42);
        for g in [
            generators::path(20),
            generators::cycle(21),
            generators::grid2d(5, 6),
            generators::complete(8),
            generators::star(15),
            generators::random::gnp(40, 0.15, &mut StdRng::seed_from_u64(1)),
        ] {
            let mis = greedy_mis(&g, &mut rng);
            assert!(is_maximal_independent_set(&g, &mis), "{g:?}");
            let mis2 = greedy_mis_min_degree(&g);
            assert!(is_maximal_independent_set(&g, &mis2), "{g:?}");
        }
    }

    #[test]
    fn exact_alpha_known_families() {
        // α(P_n) = ceil(n/2), α(C_n) = floor(n/2), α(K_n) = 1,
        // α(star_n) = n-1 (leaves), α(grid w×h) = ceil(wh/2).
        let cases: Vec<(Graph, usize)> = vec![
            (generators::path(7), 4),
            (generators::path(8), 4),
            (generators::cycle(7), 3),
            (generators::cycle(8), 4),
            (generators::complete(6), 1),
            (generators::star(9), 8),
            (generators::grid2d(3, 4), 6),
            (generators::hypercube(3), 4),
        ];
        for (g, want) in cases {
            let res = maximum_independent_set(&g, 10_000_000);
            assert!(res.is_exact(), "{g:?}");
            assert_eq!(res.set().len(), want, "{g:?}");
            assert!(is_independent_set(&g, res.set()));
        }
    }

    #[test]
    fn upper_bounds_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = generators::random::gnp(30, 0.2, &mut rng);
            let exact = maximum_independent_set(&g, 10_000_000);
            assert!(exact.is_exact());
            let alpha = exact.set().len();
            assert!(clique_cover_upper_bound(&g) >= alpha);
            assert!(matching_upper_bound(&g) >= alpha);
        }
    }

    #[test]
    fn alpha_bounds_bracket() {
        let g = generators::grid2d(4, 5);
        let b = alpha_bounds(&g, 10_000_000);
        assert!(b.exact);
        assert_eq!(b.lower, 10);
        assert_eq!(b.upper, 10);
        assert!((b.estimate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn huge_graphs_skip_the_exact_solver() {
        // Path of 20k nodes: well past EXACT_SEARCH_MAX_N; the greedy/cover
        // bracket must come back quickly and bracket α = ⌈n/2⌉.
        let g = generators::path(20_000);
        let b = alpha_bounds(&g, u64::MAX);
        assert!(b.lower <= 10_000 && 10_000 <= b.upper, "{b:?}");
        assert!(b.lower as f64 >= 0.4 * 20_000.0, "greedy far below α/2: {b:?}");
    }

    #[test]
    fn budget_exhaustion_still_valid() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::random::gnp(60, 0.1, &mut rng);
        let b = alpha_bounds(&g, 5); // absurdly small budget
        assert!(b.lower >= 1);
        assert!(b.upper >= b.lower);
        match maximum_independent_set(&g, 5) {
            ExactAlpha::BudgetExhausted(s) => assert!(is_independent_set(&g, &s)),
            ExactAlpha::Exact(_) => panic!("budget 5 cannot finish n=60"),
        }
    }

    #[test]
    fn empty_graph_alpha_zero() {
        let g = Graph::from_edges(0, []).unwrap();
        let res = maximum_independent_set(&g, 10);
        assert!(res.is_exact());
        assert!(res.set().is_empty());
    }

    #[test]
    fn edgeless_graph_alpha_n() {
        let g = Graph::from_edges(12, []).unwrap();
        let res = maximum_independent_set(&g, 1_000);
        assert!(res.is_exact());
        assert_eq!(res.set().len(), 12);
    }
}
