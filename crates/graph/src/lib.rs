//! Graph substrate for the `radionet` radio-network reproduction.
//!
//! This crate provides everything the simulator and the paper's algorithms
//! need from graphs, with **no external graph dependency**:
//!
//! * [`Graph`] — a compact, immutable, undirected graph in CSR layout, built
//!   through [`GraphBuilder`];
//! * [`traversal`] — BFS distances, connectivity, exact and estimated
//!   diameter (iFUB);
//! * [`independent_set`] — greedy maximal independent sets, an exact
//!   branch-and-bound maximum-independent-set solver, and cheap upper bounds,
//!   combined into [`independent_set::AlphaBounds`] (the paper's `α`);
//! * [`geometry`] — points and metrics (Euclidean, Chebyshev, Manhattan,
//!   torus) used by the geometric graph classes of Section 1.3 of the paper;
//! * [`spatial`] — [`spatial::SpatialGrid`], a uniform-grid spatial index
//!   shared by the mobility subsystem (incremental derived adjacency) and
//!   the simulator's sparse SINR reception kernel;
//! * [`generators`] — every graph family the paper names: unit disk, quasi
//!   unit disk, unit ball over arbitrary metrics, undirected geometric radio
//!   networks, plus the classic and random general-graph families used as
//!   non-geometric comparators;
//! * [`families`] — a serde-able catalogue of named experiment families so
//!   benchmarks can be driven by configuration.
//!
//! # Example
//!
//! ```
//! use radionet_graph::{generators, traversal, independent_set};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let g = generators::unit_disk_in_square(200, 4.0, &mut rng).graph;
//! assert!(g.n() == 200);
//! if traversal::is_connected(&g) {
//!     let d = traversal::diameter_exact(&g);
//!     let alpha = independent_set::alpha_bounds(&g, 200_000);
//!     assert!(alpha.lower >= 1 && alpha.upper >= alpha.lower);
//!     assert!(d >= 1);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph;

pub mod families;
pub mod generators;
pub mod geometry;
pub mod granularity;
pub mod independent_set;
pub mod spatial;
pub mod traversal;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Graph, NodeId};
