//! A uniform-grid spatial index over a (possibly moving) point set.
//!
//! Cells are at least one interaction radius wide, so every pair within
//! interaction range sits in the same or an adjacent cell: the candidate
//! neighbors of a point are exactly the `3^dim` surrounding cells. Nodes
//! are re-bucketed **only when they cross a cell boundary** — with per-tick
//! displacements far below the radius, crossings are rare, which is what
//! makes incremental edge maintenance cheap.
//!
//! The index serves two consumers: `radionet-mobility` maintains derived
//! adjacency over moving nodes with it, and `radionet-sim` culls candidate
//! transmitters per listener in the sparse SINR reception kernel (where
//! [`SpatialGrid::for_candidates_within`] additionally bounds the far-field
//! interference search to an arbitrary radius). It lives in this crate —
//! below both — so neither has to depend on the other.

/// Euclidean distance between two `[x, y, z]` points (2D points carry
/// `z = 0`, so one routine serves both dimensions). The shared distance
/// for every consumer of this module's point layout.
#[inline]
pub fn dist3(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
}

/// The uniform grid: node buckets per cell plus each node's current cell.
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    /// Cell width (≥ the interaction radius by construction).
    width: f64,
    /// Cells per axis (`[nx, ny, nz]`; `nz = 1` for 2D).
    cells: [usize; 3],
    /// Domain origin: cell indices are computed on `coord - origin`
    /// (zero for the classic `[0, side]^dim` domain).
    origin: [f64; 3],
    buckets: Vec<Vec<u32>>,
    cell_of: Vec<u32>,
}

impl SpatialGrid {
    /// Builds the grid over `positions` in the domain `[0, side]^dim` with
    /// cells at least `radius` wide. Coordinates outside the domain are
    /// clamped into the boundary cells, which can only over-approximate
    /// candidate sets, never miss a close pair (clamping is 1-Lipschitz on
    /// cell indices).
    ///
    /// # Panics
    ///
    /// Panics on non-positive `side`/`radius` or `dim` outside `{2, 3}`.
    pub fn new(side: f64, radius: f64, dim: usize, positions: &[[f64; 3]]) -> Self {
        Self::with_origin([0.0; 3], side, radius, dim, positions)
    }

    /// Like [`SpatialGrid::new`], but over the domain
    /// `[origin, origin + side]^dim` — for point sets that are offset
    /// from (or straddle) the coordinate origin, where anchoring the
    /// cells at zero would clamp a large fraction of the nodes into
    /// boundary cells and destroy the index's selectivity.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `side`/`radius`, non-finite `origin`, or
    /// `dim` outside `{2, 3}`.
    pub fn with_origin(
        origin: [f64; 3],
        side: f64,
        radius: f64,
        dim: usize,
        positions: &[[f64; 3]],
    ) -> Self {
        assert!(matches!(dim, 2 | 3), "spatial grid supports 2D and 3D only");
        assert!(side > 0.0 && side.is_finite(), "domain side must be positive");
        assert!(radius > 0.0 && radius.is_finite(), "radius must be positive");
        assert!(origin.iter().all(|c| c.is_finite()), "origin must be finite");
        // floor() keeps width = side / per_axis >= radius.
        let per_axis = ((side / radius).floor() as usize).max(1);
        let cells = [per_axis, per_axis, if dim == 3 { per_axis } else { 1 }];
        let width = side / per_axis as f64;
        let mut grid = SpatialGrid {
            width,
            cells,
            origin,
            buckets: vec![Vec::new(); cells[0] * cells[1] * cells[2]],
            cell_of: vec![0; positions.len()],
        };
        grid.rebuild(positions);
        grid
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.buckets.len()
    }

    /// The actual cell width (≥ the construction radius).
    pub fn cell_width(&self) -> f64 {
        self.width
    }

    #[inline]
    fn axis_cell(&self, coord: f64, axis: usize) -> usize {
        let c = ((coord - self.origin[axis]) / self.width) as isize;
        c.clamp(0, self.cells[axis] as isize - 1) as usize
    }

    #[inline]
    fn cell_index(&self, p: [f64; 3]) -> u32 {
        let cx = self.axis_cell(p[0], 0);
        let cy = self.axis_cell(p[1], 1);
        let cz = self.axis_cell(p[2], 2);
        ((cz * self.cells[1] + cy) * self.cells[0] + cx) as u32
    }

    /// Drops and re-inserts every node (the full-rebuild reference path).
    pub fn rebuild(&mut self, positions: &[[f64; 3]]) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.cell_of.resize(positions.len(), 0);
        for (i, p) in positions.iter().enumerate() {
            let cell = self.cell_index(*p);
            self.cell_of[i] = cell;
            self.buckets[cell as usize].push(i as u32);
        }
    }

    /// Re-buckets node `i` at its new position. Returns whether it crossed
    /// a cell boundary (the only case that costs anything).
    ///
    /// # Panics
    ///
    /// Panics if the index has lost track of node `i` (it is not in its
    /// recorded cell), which indicates out-of-band mutation.
    pub fn update(&mut self, i: usize, p: [f64; 3]) -> bool {
        let cell = self.cell_index(p);
        let old = self.cell_of[i];
        if cell == old {
            return false;
        }
        let bucket = &mut self.buckets[old as usize];
        let pos = bucket
            .iter()
            .position(|&x| x as usize == i)
            .expect("node missing from its recorded cell");
        bucket.swap_remove(pos);
        self.buckets[cell as usize].push(i as u32);
        self.cell_of[i] = cell;
        true
    }

    /// Calls `f` with every node within `reach` cells of `p` per axis.
    #[inline]
    fn for_cells(&self, p: [f64; 3], reach: isize, mut f: impl FnMut(u32)) {
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for axis in 0..3 {
            let c = self.axis_cell(p[axis], axis) as isize;
            let last = self.cells[axis] as isize - 1;
            lo[axis] = c.saturating_sub(reach).clamp(0, last) as usize;
            hi[axis] = c.saturating_add(reach).clamp(0, last) as usize;
        }
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                let row = (z * self.cells[1] + y) * self.cells[0];
                for x in lo[0]..=hi[0] {
                    for &node in &self.buckets[row + x] {
                        f(node);
                    }
                }
            }
        }
    }

    /// Calls `f` with every node in the `3^dim` cells around `p`
    /// (including `p`'s own cell — callers filter out the node itself).
    /// Covers every node within one cell width (≥ the construction
    /// radius) of `p`.
    pub fn for_candidates(&self, p: [f64; 3], f: impl FnMut(u32)) {
        self.for_cells(p, 1, f);
    }

    /// Calls `f` with every node in the cells spanning distance `radius`
    /// of `p` — a superset of the nodes actually within `radius`; callers
    /// filter by exact distance. Generalizes [`for_candidates`] to
    /// arbitrary radii (used by the SINR far-field cutoff search).
    ///
    /// [`for_candidates`]: SpatialGrid::for_candidates
    pub fn for_candidates_within(&self, p: [f64; 3], radius: f64, f: impl FnMut(u32)) {
        // A non-finite or huge radius saturates to a full scan; the
        // per-axis clamp in `for_cells` bounds the reach by the grid
        // dimensions either way (float→int casts saturate).
        let reach = ((radius / self.width).ceil().max(1.0)) as isize;
        self.for_cells(p, reach, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn points(n: usize, dim: usize, side: f64, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut p = [0.0; 3];
                for c in p.iter_mut().take(dim) {
                    *c = rng.gen::<f64>() * side;
                }
                p
            })
            .collect()
    }

    use super::dist3 as dist;

    #[test]
    fn candidates_cover_every_close_pair() {
        for dim in [2usize, 3] {
            let side = 8.0;
            let radius = 1.0;
            let pts = points(200, dim, side, 11);
            let grid = SpatialGrid::new(side, radius, dim, &pts);
            for i in 0..pts.len() {
                let mut cand = Vec::new();
                grid.for_candidates(pts[i], |j| cand.push(j as usize));
                for (j, q) in pts.iter().enumerate() {
                    if j != i && dist(&pts[i], q) <= radius {
                        assert!(cand.contains(&j), "dim {dim}: close pair {i}-{j} missed");
                    }
                }
                assert!(cand.contains(&i), "own cell must be scanned");
            }
        }
    }

    #[test]
    fn radius_search_covers_every_pair_within_radius() {
        for dim in [2usize, 3] {
            let side = 10.0;
            let pts = points(150, dim, side, 5);
            let grid = SpatialGrid::new(side, 1.0, dim, &pts);
            for r in [0.5, 1.0, 2.7, 6.0, f64::INFINITY] {
                for i in (0..pts.len()).step_by(13) {
                    let mut cand = Vec::new();
                    grid.for_candidates_within(pts[i], r, |j| cand.push(j as usize));
                    for (j, q) in pts.iter().enumerate() {
                        if dist(&pts[i], q) <= r.min(side * 2.0) {
                            assert!(cand.contains(&j), "dim {dim} r {r}: pair {i}-{j} missed");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn radius_search_at_cell_width_matches_candidates() {
        let pts = points(80, 2, 6.0, 9);
        let grid = SpatialGrid::new(6.0, 1.0, 2, &pts);
        for p in pts.iter().step_by(11) {
            let mut a = Vec::new();
            let mut b = Vec::new();
            grid.for_candidates(*p, |j| a.push(j));
            grid.for_candidates_within(*p, grid.cell_width(), |j| b.push(j));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn update_tracks_movement() {
        let side = 4.0;
        let mut pts = points(50, 2, side, 3);
        let mut grid = SpatialGrid::new(side, 1.0, 2, &pts);
        let mut reference = SpatialGrid::new(side, 1.0, 2, &pts);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let i = rng.gen_range(0..pts.len());
            pts[i] = [rng.gen::<f64>() * side, rng.gen::<f64>() * side, 0.0];
            grid.update(i, pts[i]);
        }
        reference.rebuild(&pts);
        // Same buckets as a from-scratch rebuild (order within a bucket may
        // differ; compare as sets).
        for (a, b) in grid.buckets.iter().zip(&reference.buckets) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn origin_anchored_grid_covers_offset_and_negative_domains() {
        // A point set centered on the origin (negative coordinates) and a
        // far-offset one: with the matching origin the index must cover
        // every close pair *and* stay selective (no boundary-cell pileup).
        for (lo, hi) in [(-6.0, 6.0), (1000.0, 1012.0)] {
            let side = hi - lo;
            let mut rng = SmallRng::seed_from_u64(4);
            let pts: Vec<[f64; 3]> = (0..200)
                .map(|_| [lo + rng.gen::<f64>() * side, lo + rng.gen::<f64>() * side, 0.0])
                .collect();
            let grid = SpatialGrid::with_origin([lo, lo, 0.0], side, 1.0, 2, &pts);
            let mut max_bucket = 0usize;
            for i in 0..pts.len() {
                let mut cand = Vec::new();
                grid.for_candidates(pts[i], |j| cand.push(j as usize));
                max_bucket = max_bucket.max(cand.len());
                for (j, q) in pts.iter().enumerate() {
                    if j != i && dist(&pts[i], q) <= 1.0 {
                        assert!(cand.contains(&j), "domain [{lo},{hi}]: pair {i}-{j} missed");
                    }
                }
            }
            // 200 points over 144 cells: a 3x3 candidate scan must see a
            // small fraction of the fleet, not a boundary-cell pileup.
            assert!(max_bucket < 60, "domain [{lo},{hi}]: selectivity lost ({max_bucket})");
        }
    }

    #[test]
    fn tiny_domain_degenerates_to_one_bucket() {
        let pts = points(10, 2, 0.5, 1);
        let grid = SpatialGrid::new(0.5, 1.0, 2, &pts);
        assert_eq!(grid.cell_count(), 1);
        let mut cand = Vec::new();
        grid.for_candidates(pts[0], |j| cand.push(j));
        assert_eq!(cand.len(), 10);
    }

    #[test]
    fn boundary_points_stay_in_range() {
        // Points exactly at `side` must clamp into the last cell.
        let pts = vec![[4.0, 4.0, 0.0], [0.0, 0.0, 0.0]];
        let grid = SpatialGrid::new(4.0, 1.0, 2, &pts);
        let mut seen = Vec::new();
        grid.for_candidates([4.0, 4.0, 0.0], |j| seen.push(j));
        assert!(seen.contains(&0));
    }
}
