//! Breadth-first traversal, connectivity and diameter computation.
//!
//! The paper's running times are parametrized by the diameter `D`; the
//! experiment harness needs exact diameters for moderate graphs
//! ([`diameter_exact`]) and a fast exact-on-most-inputs algorithm (iFUB,
//! [`diameter_ifub`]) for larger ones.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Distance marker for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `src` to every node; [`UNREACHABLE`] where no path.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    bfs_distances_multi(g, std::slice::from_ref(&src))
}

/// BFS distances from the nearest of `sources`; [`UNREACHABLE`] where none.
///
/// With an empty source set, every node is unreachable.
///
/// Iterates the raw CSR arrays ([`Graph::csr`]) so million-node sweeps pay
/// no per-node slice re-derivation.
pub fn bfs_distances_multi(g: &Graph, sources: &[NodeId]) -> Vec<u32> {
    let (offsets, targets) = g.csr();
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()] == UNREACHABLE {
            dist[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let ui = u.index();
        let du = dist[ui];
        for &w in &targets[offsets[ui] as usize..offsets[ui + 1] as usize] {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// A BFS tree rooted at `sources`: for each node, its parent and depth.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// Parent of each node; `None` for roots and unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
    /// Depth (hop distance) of each node; [`UNREACHABLE`] if unreachable.
    pub depth: Vec<u32>,
}

impl BfsTree {
    /// Maximum finite depth in the tree; 0 if no node is reachable.
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().filter(|&d| d != UNREACHABLE).max().unwrap_or(0)
    }
}

/// Builds a BFS tree from (multi-)sources.
pub fn bfs_tree(g: &Graph, sources: &[NodeId]) -> BfsTree {
    let mut parent = vec![None; g.n()];
    let mut depth = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if depth[s.index()] == UNREACHABLE {
            depth[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = depth[u.index()];
        for &w in g.neighbors(u) {
            if depth[w.index()] == UNREACHABLE {
                depth[w.index()] = du + 1;
                parent[w.index()] = Some(u);
                queue.push_back(w);
            }
        }
    }
    BfsTree { parent, depth }
}

/// Connected components: `(labels, count)` with labels in `0..count`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let mut label = vec![usize::MAX; g.n()];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for s in g.nodes() {
        if label[s.index()] != usize::MAX {
            continue;
        }
        label[s.index()] = count;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if label[w.index()] == usize::MAX {
                    label[w.index()] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    (label, count)
}

/// Whether the graph is connected. The empty graph counts as connected.
pub fn is_connected(g: &Graph) -> bool {
    g.n() <= 1 || connected_components(g).1 == 1
}

/// Eccentricity of `v`: the maximum BFS distance to any reachable node.
pub fn eccentricity(g: &Graph, v: NodeId) -> u32 {
    bfs_distances(g, v).into_iter().filter(|&d| d != UNREACHABLE).max().unwrap_or(0)
}

/// Exact diameter by all-pairs BFS. `O(n (n + m))`.
///
/// Disconnected graphs report the largest eccentricity within any component.
/// Use for `n` up to a few thousand; prefer [`diameter_ifub`] beyond that.
pub fn diameter_exact(g: &Graph) -> u32 {
    g.nodes().map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

/// Exact diameter via the iFUB algorithm (Crescenzi et al.), which is
/// `O(n (n + m))` in the worst case but typically runs a handful of BFS.
///
/// # Panics
///
/// Panics if the graph is disconnected (iFUB's bounds argument needs a single
/// component); check [`is_connected`] first.
pub fn diameter_ifub(g: &Graph) -> u32 {
    assert!(is_connected(g), "diameter_ifub requires a connected graph");
    if g.n() <= 1 {
        return 0;
    }
    // Double sweep from a max-degree node to find a far vertex pair, then run
    // iFUB from the midpoint of the found path.
    let start = g.nodes().max_by_key(|&v| g.degree(v)).expect("nonempty graph");
    let d1 = bfs_distances(g, start);
    let a = argmax_finite(&d1);
    let da = bfs_distances(g, a);
    let b = argmax_finite(&da);
    let lower0 = da[b.index()];
    // Midpoint of the a..b path: walk a BFS tree from a towards b.
    let tree = bfs_tree(g, &[a]);
    let mut mid = b;
    for _ in 0..(lower0 / 2) {
        if let Some(p) = tree.parent[mid.index()] {
            mid = p;
        }
    }
    let dmid = bfs_distances(g, mid);
    let height = dmid.iter().copied().max().expect("connected");
    // Order nodes by decreasing distance from mid (fringe-first).
    let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); height as usize + 1];
    for v in g.nodes() {
        by_level[dmid[v.index()] as usize].push(v);
    }
    let mut lower = lower0;
    let mut upper = 2 * height;
    let mut level = height as i64;
    while lower < upper && level >= 0 {
        // All nodes strictly below `level` can contribute at most 2*level - 2
        // ... standard iFUB: if lower >= 2*(level-1) we are done.
        for &v in &by_level[level as usize] {
            let ecc = eccentricity(g, v);
            if ecc > lower {
                lower = ecc;
            }
        }
        level -= 1;
        upper = 2 * (level.max(0) as u32);
        if lower >= upper {
            break;
        }
    }
    lower
}

/// Diameter with automatic strategy: exact all-pairs for small graphs,
/// iFUB for larger connected ones.
pub fn diameter(g: &Graph) -> u32 {
    if g.n() <= 1024 || !is_connected(g) {
        diameter_exact(g)
    } else {
        diameter_ifub(g)
    }
}

/// Double-sweep BFS diameter estimate in exactly three BFS passes: sweep
/// from a max-degree node to a far vertex `a`, from `a` to the farthest
/// vertex `b`, then once more from `b`, reporting the largest eccentricity
/// seen.
///
/// The estimate is a *lower* bound on the true diameter `D`, and because
/// every eccentricity is at least `D/2` it is always within a factor 2 —
/// the "linear estimate" tolerance the paper's ad-hoc model grants the
/// simulator's `NetInfo` consumers. On trees it is exact, and on
/// the path/cycle/grid/geometric families used here it is exact in
/// practice; what it buys is `O(n + m)` setup on million-node graphs where
/// all-pairs BFS is `O(n·m)` and even iFUB may degenerate.
///
/// Disconnected graphs report the bound within the start node's component
/// (matching the largest-eccentricity-seen convention of the exact
/// routines only when the start component realizes it).
pub fn diameter_double_sweep(g: &Graph) -> u32 {
    if g.n() <= 1 {
        return 0;
    }
    let start = g.nodes().max_by_key(|&v| g.degree(v)).expect("nonempty graph");
    let d0 = bfs_distances(g, start);
    let a = argmax_finite(&d0);
    let da = bfs_distances(g, a);
    let b = argmax_finite(&da);
    let ecc_a = da[b.index()];
    let db = bfs_distances(g, b);
    let ecc_b = db.iter().copied().filter(|&d| d != UNREACHABLE).max().unwrap_or(0);
    ecc_a.max(ecc_b)
}

/// Nodes within hop distance `d` of `v` (including `v`).
pub fn ball(g: &Graph, v: NodeId, d: u32) -> Vec<NodeId> {
    let dist = bfs_distances(g, v);
    g.nodes().filter(|u| dist[u.index()] <= d).collect()
}

fn argmax_finite(dist: &[u32]) -> NodeId {
    let mut best = 0usize;
    let mut best_d = 0u32;
    for (i, &d) in dist.iter().enumerate() {
        if d != UNREACHABLE && d >= best_d {
            best = i;
            best_d = d;
        }
    }
    NodeId::new(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, g.node(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn multi_source_bfs() {
        let g = generators::path(5);
        let d = bfs_distances_multi(&g, &[g.node(0), g.node(4)]);
        assert_eq!(d, vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn empty_sources_all_unreachable() {
        let g = generators::path(3);
        let d = bfs_distances_multi(&g, &[]);
        assert!(d.iter().all(|&x| x == UNREACHABLE));
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, g.node(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn components_counted() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn diameters_agree_on_families() {
        for g in [
            generators::path(17),
            generators::cycle(12),
            generators::grid2d(5, 7),
            generators::complete(9),
            generators::star(10),
            generators::hypercube(4),
        ] {
            assert_eq!(diameter_exact(&g), diameter_ifub(&g), "family {g:?}");
        }
    }

    #[test]
    fn double_sweep_exact_on_common_families() {
        for g in [
            generators::path(33),
            generators::cycle(16),
            generators::grid2d(6, 9),
            generators::complete(7),
            generators::star(12),
            generators::binary_tree(5),
        ] {
            assert_eq!(diameter_double_sweep(&g), diameter_exact(&g), "family {g:?}");
        }
    }

    #[test]
    fn double_sweep_within_factor_two() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for n in [40usize, 90] {
            let g = generators::connected_gnp(n, 0.08, &mut rng);
            let exact = diameter_exact(&g);
            let est = diameter_double_sweep(&g);
            assert!(est <= exact, "estimate must be a lower bound");
            assert!(2 * est >= exact, "estimate {est} below half of exact {exact}");
        }
    }

    #[test]
    fn double_sweep_degenerate_graphs() {
        assert_eq!(diameter_double_sweep(&Graph::from_edges(1, []).unwrap()), 0);
        assert_eq!(diameter_double_sweep(&Graph::from_edges(0, []).unwrap()), 0);
    }

    #[test]
    fn diameter_known_values() {
        assert_eq!(diameter_exact(&generators::path(10)), 9);
        assert_eq!(diameter_exact(&generators::cycle(10)), 5);
        assert_eq!(diameter_exact(&generators::complete(10)), 1);
        assert_eq!(diameter_exact(&generators::star(10)), 2);
        assert_eq!(diameter_exact(&generators::grid2d(4, 6)), 8);
        assert_eq!(diameter_exact(&generators::hypercube(5)), 5);
    }

    #[test]
    fn bfs_tree_parents_consistent() {
        let g = generators::grid2d(4, 4);
        let t = bfs_tree(&g, &[g.node(0)]);
        for v in g.nodes() {
            if let Some(p) = t.parent[v.index()] {
                assert_eq!(t.depth[v.index()], t.depth[p.index()] + 1);
                assert!(g.has_edge(v, p));
            }
        }
        assert_eq!(t.height(), 6);
    }

    #[test]
    fn ball_sizes() {
        let g = generators::path(9);
        assert_eq!(ball(&g, g.node(4), 2).len(), 5);
        assert_eq!(ball(&g, g.node(0), 0), vec![g.node(0)]);
    }

    #[test]
    fn eccentricity_of_center() {
        let g = generators::path(9);
        assert_eq!(eccentricity(&g, g.node(4)), 4);
        assert_eq!(eccentricity(&g, g.node(0)), 8);
    }

    #[test]
    fn single_node_diameter_zero() {
        let g = Graph::from_edges(1, []).unwrap();
        assert_eq!(diameter(&g), 0);
        assert_eq!(diameter_ifub(&g), 0);
        assert!(is_connected(&g));
    }
}
