//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use radionet_graph::generators::{self, geometric};
use radionet_graph::geometry::{Euclidean2, Metric};
use radionet_graph::independent_set::{
    alpha_bounds, clique_cover_upper_bound, greedy_mis, is_independent_set,
    is_maximal_independent_set, matching_upper_bound, maximum_independent_set,
};
use radionet_graph::traversal::{
    bfs_distances, connected_components, diameter_exact, diameter_ifub, is_connected, UNREACHABLE,
};
use radionet_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random graph given by (n, edge list over 0..n).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..120).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric(g in arb_graph()) {
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn degree_sum_is_twice_edges(g in arb_graph()) {
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.m());
    }

    #[test]
    fn bfs_distances_are_lipschitz(g in arb_graph()) {
        // |d(u) - d(v)| <= 1 across every edge, and d respects edges.
        let d = bfs_distances(&g, g.node(0));
        for (u, v) in g.edges() {
            let (du, dv) = (d[u.index()], d[v.index()]);
            if du != UNREACHABLE || dv != UNREACHABLE {
                prop_assert!(du != UNREACHABLE && dv != UNREACHABLE);
                prop_assert!(du.abs_diff(dv) <= 1);
            }
        }
    }

    #[test]
    fn components_partition_nodes(g in arb_graph()) {
        let (labels, count) = connected_components(&g);
        prop_assert!(labels.iter().all(|&l| l < count));
        // Same component <=> reachable.
        let d = bfs_distances(&g, g.node(0));
        for v in g.nodes() {
            prop_assert_eq!(labels[v.index()] == labels[0], d[v.index()] != UNREACHABLE);
        }
    }

    #[test]
    fn greedy_mis_is_maximal(g in arb_graph(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mis = greedy_mis(&g, &mut rng);
        prop_assert!(is_maximal_independent_set(&g, &mis));
    }

    #[test]
    fn exact_alpha_dominates_greedy_and_respects_bounds(g in arb_graph()) {
        let exact = maximum_independent_set(&g, 5_000_000);
        prop_assume!(exact.is_exact());
        let alpha = exact.set().len();
        prop_assert!(is_independent_set(&g, exact.set()));
        let mut rng = StdRng::seed_from_u64(1);
        let greedy = greedy_mis(&g, &mut rng);
        prop_assert!(greedy.len() <= alpha);
        prop_assert!(clique_cover_upper_bound(&g) >= alpha);
        prop_assert!(matching_upper_bound(&g) >= alpha);
        let b = alpha_bounds(&g, 5_000_000);
        prop_assert!(b.exact);
        prop_assert_eq!(b.lower, alpha);
    }

    #[test]
    fn ifub_matches_exact_diameter(g in arb_graph()) {
        prop_assume!(is_connected(&g) && g.n() >= 2);
        prop_assert_eq!(diameter_ifub(&g), diameter_exact(&g));
    }

    #[test]
    fn unit_disk_edge_iff_distance(seed in 0u64..500, n in 2usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = generators::uniform_points2(n, 3.0, &mut rng);
        let inst = generators::unit_disk(&pts);
        let g = &inst.graph;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = Euclidean2.dist(&pts[i], &pts[j]);
                prop_assert_eq!(g.has_edge(g.node(i), g.node(j)), d <= 1.0);
            }
        }
    }

    #[test]
    fn quasi_udg_between_inner_and_outer(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = generators::uniform_points2(30, 3.0, &mut rng);
        let q = geometric::quasi_unit_disk(&pts, 0.6, 1.2, 0.5, &mut rng).graph;
        let inner = geometric::unit_ball(&pts, &Euclidean2, 0.6).graph;
        let outer = geometric::unit_ball(&pts, &Euclidean2, 1.2).graph;
        for (u, v) in inner.edges() {
            prop_assert!(q.has_edge(u, v));
        }
        for (u, v) in q.edges() {
            prop_assert!(outer.has_edge(u, v));
        }
    }

    #[test]
    fn geometric_radio_subgraph_of_max_range_udg(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = generators::uniform_points2(25, 3.0, &mut rng);
        let ranges = geometric::uniform_ranges(25, 0.5, 1.0, &mut rng);
        let gr = generators::geometric_radio_undirected(&pts, &ranges).graph;
        let udg = geometric::unit_ball(&pts, &Euclidean2, 1.0).graph;
        for (u, v) in gr.edges() {
            prop_assert!(udg.has_edge(u, v));
        }
    }

    #[test]
    fn induced_subgraph_preserves_edges(g in arb_graph(), keep_mask in proptest::collection::vec(any::<bool>(), 40)) {
        let keep: Vec<_> = g.nodes().filter(|v| keep_mask.get(v.index()).copied().unwrap_or(false)).collect();
        let (h, order) = g.induced_subgraph(&keep);
        prop_assert_eq!(h.n(), order.len());
        for (i, &vi) in order.iter().enumerate() {
            for (j, &vj) in order.iter().enumerate() {
                if i < j {
                    prop_assert_eq!(h.has_edge(h.node(i), h.node(j)), g.has_edge(vi, vj));
                }
            }
        }
    }
}
