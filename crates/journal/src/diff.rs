//! Comparing two journals: stream normalization, first-divergence scan,
//! and waypoint-driven bisection.

use crate::event::{ClassMask, Event, EventClass};
use crate::journal::{Journal, Waypoint};
use std::fmt;

/// The compared streams' first disagreement: where it is and what each
/// side recorded there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index into the normalized compared streams.
    pub index: usize,
    /// The global step the disagreement happened at (the earlier of the
    /// two sides when they disagree on the step itself).
    pub step: u64,
    /// The left stream's event at the index (`None` = stream ended).
    pub left: Option<Event>,
    /// The right stream's event at the index (`None` = stream ended).
    pub right: Option<Event>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "first divergence at compared index {} (step {}):", self.index, self.step)?;
        match self.left {
            Some(e) => writeln!(f, "  left : {e}")?,
            None => writeln!(f, "  left : <stream ended>")?,
        }
        match self.right {
            Some(e) => write!(f, "  right: {e}"),
            None => write!(f, "  right: <stream ended>"),
        }
    }
}

/// Filters `events` down to `mask` and sorts them by the canonical
/// within-step key, making streams from different kernels (which resolve
/// one step's events in different orders) directly comparable.
pub fn normalized(events: &[Event], mask: ClassMask) -> Vec<Event> {
    let mut kept: Vec<Event> =
        events.iter().copied().filter(|e| mask.contains(e.class())).collect();
    kept.sort_by_key(Event::order_key);
    kept
}

/// Scans two normalized streams for their first disagreement.
pub fn first_divergence(left: &[Event], right: &[Event]) -> Option<Divergence> {
    first_divergence_from(left, right, 0)
}

fn first_divergence_from(left: &[Event], right: &[Event], start: usize) -> Option<Divergence> {
    let len = left.len().max(right.len());
    for index in start..len {
        let l = left.get(index).copied();
        let r = right.get(index).copied();
        if l != r {
            let step = match (l, r) {
                (Some(a), Some(b)) => a.step.min(b.step),
                (Some(a), None) => a.step,
                (None, Some(b)) => b.step,
                (None, None) => unreachable!("index < max(len, len)"),
            };
            return Some(Divergence { index, step, left: l, right: r });
        }
    }
    None
}

/// What [`bisect`] found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BisectReport {
    /// The classes actually compared: the request intersected with both
    /// recordings' masks, minus `Sched` when the kernels differ (the
    /// sparse scheduler's bookkeeping has no dense counterpart).
    pub classes: ClassMask,
    /// Whether the two journals came from different kernels.
    pub cross_kernel: bool,
    /// Waypoint pairs at matching step boundaries that were available to
    /// the binary search (0 when cadences differ or digests are not
    /// comparable because the recordings kept different invariant classes).
    pub waypoints_paired: u64,
    /// The last step boundary whose waypoints (digest and RNG fingerprint)
    /// agree, if any do.
    pub agree_until: Option<u64>,
    /// The first step boundary whose waypoints disagree, if any does.
    pub first_bad_waypoint: Option<u64>,
    /// The first disagreement between the normalized compared streams.
    /// `None` with [`first_bad_waypoint`](BisectReport::first_bad_waypoint)
    /// set means the RNG streams diverged without an observable event
    /// difference in the compared classes.
    pub divergence: Option<Divergence>,
    /// Normalized left-stream length under the compared classes.
    pub left_events: u64,
    /// Normalized right-stream length under the compared classes.
    pub right_events: u64,
}

impl BisectReport {
    /// Whether the two journals disagree on anything compared.
    pub fn is_divergent(&self) -> bool {
        self.divergence.is_some() || self.first_bad_waypoint.is_some()
    }
}

impl fmt::Display for BisectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "compared classes: {}", self.classes.names().join(","))?;
        if self.cross_kernel {
            writeln!(f, "cross-kernel comparison: sched events dropped")?;
        }
        writeln!(f, "events compared: left {} / right {}", self.left_events, self.right_events)?;
        if self.waypoints_paired > 0 {
            write!(f, "waypoints paired: {}", self.waypoints_paired)?;
            if let Some(step) = self.agree_until {
                write!(f, ", agree through step {step}")?;
            }
            if let Some(step) = self.first_bad_waypoint {
                write!(f, ", first disagreeing at step {step}")?;
            }
            writeln!(f)?;
        }
        match &self.divergence {
            Some(d) => write!(f, "{d}"),
            None if self.first_bad_waypoint.is_some() => write!(
                f,
                "streams agree on the compared classes; RNG fingerprints diverge \
                 (state differs without an observable event difference)"
            ),
            None => write!(f, "journals are identical on the compared classes"),
        }
    }
}

/// Pairs waypoints positionally while their step boundaries match.
fn paired_waypoints<'j>(
    left: &'j Journal,
    right: &'j Journal,
) -> Vec<(&'j Waypoint, &'j Waypoint)> {
    left.waypoints
        .iter()
        .zip(right.waypoints.iter())
        .take_while(|(l, r)| l.step == r.step)
        .collect()
}

/// Binary-searches two journals' waypoints for the first disagreeing step
/// boundary, then scans only the disagreeing segment of the normalized
/// event streams to pinpoint the first divergent event.
///
/// `classes` narrows the comparison; it is intersected with both
/// recordings' masks, and `Sched` is dropped automatically when the
/// journals come from different kernels. Waypoint digests are rolling over
/// the *recorded* kernel-invariant events, so the binary search (and the
/// segment skip) engages only when both recordings kept the same invariant
/// classes; otherwise the scan covers the whole stream — slower, never
/// wrong.
pub fn bisect(left: &Journal, right: &Journal, classes: ClassMask) -> BisectReport {
    let cross_kernel = left.kernel != right.kernel;
    let mut compare = classes.intersect(left.mask).intersect(right.mask);
    if cross_kernel {
        compare = compare.without(EventClass::Sched);
    }

    let digests_comparable =
        left.mask.intersect(ClassMask::INVARIANT) == right.mask.intersect(ClassMask::INVARIANT);
    let pairs = if digests_comparable { paired_waypoints(left, right) } else { Vec::new() };

    // The digest is rolling and the fingerprint is cumulative RNG state, so
    // agreement is prefix-closed: binary search for the first bad pair.
    let (mut lo, mut hi) = (0usize, pairs.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let (l, r) = pairs[mid];
        if l.digest == r.digest && l.rng_fingerprint == r.rng_fingerprint {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let last_good = lo.checked_sub(1).map(|i| pairs[i].0);
    let agree_until = last_good.map(|w| w.step);
    let first_bad_waypoint = pairs.get(lo).map(|(l, _)| l.step);

    let lnorm = normalized(&left.events, compare);
    let rnorm = normalized(&right.events, compare);

    // The waypoint event counter covers exactly the recorded invariant
    // classes; skipping the agreed prefix is sound only when the compared
    // classes are that same set.
    let invariant_compare = compare == left.mask.intersect(ClassMask::INVARIANT)
        && compare == right.mask.intersect(ClassMask::INVARIANT);
    let start = match last_good {
        Some(w) if invariant_compare => (w.events as usize).min(lnorm.len()).min(rnorm.len()),
        _ => 0,
    };

    BisectReport {
        classes: compare,
        cross_kernel,
        waypoints_paired: pairs.len() as u64,
        agree_until,
        first_bad_waypoint,
        divergence: first_divergence_from(&lnorm, &rnorm, start),
        left_events: lnorm.len() as u64,
        right_events: rnorm.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DeliverInfo, EventKind, HintInfo, TransmitInfo};
    use crate::journal::Recorder;
    use crate::sink::JournalSink;

    fn tx(step: u64, node: u32) -> Event {
        Event { step, kind: EventKind::Transmit(TransmitInfo { node }) }
    }

    fn rx(step: u64, node: u32, from: u32) -> Event {
        Event { step, kind: EventKind::Deliver(DeliverInfo { node, from }) }
    }

    fn hint(step: u64, node: u32) -> Event {
        Event {
            step,
            kind: EventKind::Hint(HintInfo {
                node,
                now: true,
                listen: false,
                retire: false,
                wake_at: None,
                done_at: None,
            }),
        }
    }

    fn record(events: &[Event], kernel: &str, every: u64) -> Journal {
        let mut r = Recorder::new(ClassMask::ALL, every);
        let mut boundary = 0;
        for e in events {
            while every != 0 && e.step > boundary {
                boundary += 1;
                if r.checkpoint_due(boundary) {
                    r.record_waypoint(boundary, 0xabc ^ boundary);
                }
            }
            r.record(e.step, e.kind);
        }
        if every != 0 {
            boundary += every;
            if r.checkpoint_due(boundary) {
                r.record_waypoint(boundary, 0xabc ^ boundary);
            }
        }
        r.into_journal("test", kernel, None, 0, 0)
    }

    #[test]
    fn normalization_sorts_within_steps_and_filters() {
        let ring_order = [rx(1, 5, 2), tx(1, 2), hint(1, 2)];
        let index_order = [tx(1, 2), rx(1, 5, 2)];
        let inv = ClassMask::INVARIANT;
        assert_eq!(normalized(&ring_order, inv), normalized(&index_order, inv));
        assert_eq!(normalized(&ring_order, ClassMask::ALL).len(), 3);
    }

    #[test]
    fn first_divergence_pinpoints_the_edit() {
        let base = [tx(0, 1), rx(1, 2, 1), tx(4, 3)];
        let edited = [tx(0, 1), rx(1, 2, 1), tx(4, 7)];
        let d = first_divergence(&base, &edited).unwrap();
        assert_eq!(d.index, 2);
        assert_eq!(d.step, 4);
        assert_eq!(d.left.unwrap().kind.node(), Some(3));
        assert_eq!(d.right.unwrap().kind.node(), Some(7));
        assert!(first_divergence(&base, &base).is_none());
    }

    #[test]
    fn first_divergence_handles_length_mismatch() {
        let long = [tx(0, 1), tx(2, 2)];
        let short = [tx(0, 1)];
        let d = first_divergence(&long, &short).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.step, 2);
        assert!(d.right.is_none());
    }

    #[test]
    fn bisect_finds_the_injected_step_via_waypoints() {
        let mut events: Vec<Event> = (0..200).map(|s| tx(s, (s % 7) as u32)).collect();
        let clean = record(&events, "sparse", 16);
        events[137] = tx(137, 99);
        let dirty = record(&events, "sparse", 16);
        let report = bisect(&clean, &dirty, ClassMask::ALL);
        assert!(report.is_divergent());
        assert_eq!(report.agree_until, Some(128));
        assert_eq!(report.first_bad_waypoint, Some(144));
        let d = report.divergence.unwrap();
        assert_eq!(d.step, 137);
        assert_eq!(d.left.unwrap().kind.node(), Some((137 % 7) as u32));
        assert_eq!(d.right.unwrap().kind.node(), Some(99));
    }

    #[test]
    fn bisect_reports_identical_journals() {
        let events: Vec<Event> = (0..50).map(|s| tx(s, 1)).collect();
        let a = record(&events, "sparse", 10);
        let b = record(&events, "sparse", 10);
        let report = bisect(&a, &b, ClassMask::ALL);
        assert!(!report.is_divergent());
        assert!(report.agree_until.is_some());
        assert!(report.first_bad_waypoint.is_none());
    }

    #[test]
    fn cross_kernel_bisect_drops_sched_and_within_step_order() {
        let sparse_order = [tx(0, 1), hint(0, 1), rx(1, 3, 1), rx(1, 2, 1)];
        let dense_order = [tx(0, 1), rx(1, 2, 1), rx(1, 3, 1)];
        let a = record(&sparse_order, "sparse", 0);
        let b = record(&dense_order, "dense", 0);
        let report = bisect(&a, &b, ClassMask::ALL);
        assert!(report.cross_kernel);
        assert!(!report.classes.contains(EventClass::Sched));
        assert!(report.divergence.is_none());
        assert_eq!(report.left_events, report.right_events);
    }
}
