//! The event vocabulary: what the engine can record, one compact kind per
//! observable occurrence, grouped into [`EventClass`]es for filtering and
//! cross-kernel comparison.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four event classes a [`ClassMask`] filters on.
///
/// The split matters for cross-configuration comparison: `Radio`,
/// `Topology`, and `Phase` events are *kernel-invariant* — the sparse and
/// dense kernels produce the same per-step multiset of them for
/// contract-honoring protocols — while `Sched` events describe the sparse
/// kernel's own bookkeeping (wake hints, spatial-index rebuilds) and exist
/// only where that machinery runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventClass {
    /// Transmissions, deliveries, collisions.
    Radio,
    /// Node status flips from the topology change feed.
    Topology,
    /// Phase boundaries and kernel fallbacks.
    Phase,
    /// Sparse-kernel scheduling: wake hints, SINR grid rebuilds.
    Sched,
}

impl EventClass {
    /// Every class, in bit order.
    pub const ALL: [EventClass; 4] =
        [EventClass::Radio, EventClass::Topology, EventClass::Phase, EventClass::Sched];

    /// Short stable name for flags and summaries.
    pub fn name(self) -> &'static str {
        match self {
            EventClass::Radio => "radio",
            EventClass::Topology => "topology",
            EventClass::Phase => "phase",
            EventClass::Sched => "sched",
        }
    }

    fn bit(self) -> u8 {
        match self {
            EventClass::Radio => 1,
            EventClass::Topology => 2,
            EventClass::Phase => 4,
            EventClass::Sched => 8,
        }
    }
}

/// A set of [`EventClass`]es, as a bitmask.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMask {
    /// The raw bits (see [`EventClass`] order).
    pub bits: u8,
}

impl Default for ClassMask {
    fn default() -> Self {
        ClassMask::ALL
    }
}

impl ClassMask {
    /// Every class.
    pub const ALL: ClassMask = ClassMask { bits: 0b1111 };
    /// No class (records nothing; useful for measuring sink overhead).
    pub const NONE: ClassMask = ClassMask { bits: 0 };
    /// The kernel-invariant classes: radio + topology + phase. This is the
    /// set two journals from *different* kernels can be compared on, and
    /// the set waypoint digests cover.
    pub const INVARIANT: ClassMask = ClassMask { bits: 0b0111 };

    /// Whether `class` is in the mask.
    pub fn contains(self, class: EventClass) -> bool {
        self.bits & class.bit() != 0
    }

    /// The mask plus `class`.
    pub fn with(self, class: EventClass) -> ClassMask {
        ClassMask { bits: self.bits | class.bit() }
    }

    /// The mask minus `class`.
    pub fn without(self, class: EventClass) -> ClassMask {
        ClassMask { bits: self.bits & !class.bit() }
    }

    /// Set intersection.
    pub fn intersect(self, other: ClassMask) -> ClassMask {
        ClassMask { bits: self.bits & other.bits }
    }

    /// Whether no class is set.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// The contained class names, in bit order.
    pub fn names(self) -> Vec<&'static str> {
        EventClass::ALL.iter().filter(|c| self.contains(**c)).map(|c| c.name()).collect()
    }

    /// Parses a comma-separated class list (`"radio,phase"`); empty input
    /// or `"all"` means [`ClassMask::ALL`], `"none"` means
    /// [`ClassMask::NONE`].
    ///
    /// # Errors
    ///
    /// Returns the unknown token verbatim.
    pub fn parse(list: &str) -> Result<ClassMask, String> {
        let trimmed = list.trim();
        if trimmed.is_empty() || trimmed == "all" {
            return Ok(ClassMask::ALL);
        }
        if trimmed == "none" {
            return Ok(ClassMask::NONE);
        }
        let mut mask = ClassMask::NONE;
        for token in trimmed.split(',') {
            let token = token.trim();
            match EventClass::ALL.iter().find(|c| c.name() == token) {
                Some(c) => mask = mask.with(*c),
                None => return Err(format!("unknown event class `{token}`")),
            }
        }
        Ok(mask)
    }
}

/// Payload of [`EventKind::Transmit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransmitInfo {
    /// The transmitting node.
    pub node: u32,
}

/// Payload of [`EventKind::Deliver`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliverInfo {
    /// The listener that decoded a message.
    pub node: u32,
    /// The transmitter it decoded.
    pub from: u32,
}

/// Payload of [`EventKind::Collision`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollisionInfo {
    /// The listener that lost a decodable signal (≥ 2 transmitting
    /// neighbors, interference, or jamming noise).
    pub node: u32,
}

/// Payload of [`EventKind::Status`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusInfo {
    /// The node whose activity flipped.
    pub node: u32,
    /// Its new state: `true` = (re)joined, `false` = crashed/asleep.
    pub active: bool,
}

/// Payload of [`EventKind::PhaseStart`] and [`EventKind::Fallback`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseInfo {
    /// Zero-based phase index within the run.
    pub phase: u64,
}

/// Payload of [`EventKind::PhaseEnd`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseEndInfo {
    /// Zero-based phase index within the run.
    pub phase: u64,
    /// Steps the phase consumed.
    pub steps: u64,
    /// Transmissions within the phase.
    pub transmissions: u64,
    /// Deliveries within the phase.
    pub deliveries: u64,
    /// Collisions within the phase.
    pub collisions: u64,
    /// Whether the phase completed before its budget.
    pub completed: bool,
}

/// Payload of [`EventKind::Hint`]: a `Wake` hint as the sparse scheduler
/// received it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HintInfo {
    /// The node the hint describes.
    pub node: u32,
    /// `Wake::Now` — act again next step.
    pub now: bool,
    /// Whether the node keeps listening while parked.
    pub listen: bool,
    /// `Wake::Retire` — done, permanently out.
    pub retire: bool,
    /// Scheduled wake time (phase-local), if any.
    pub wake_at: Option<u64>,
    /// Promised done time (phase-local), if any.
    pub done_at: Option<u64>,
}

/// Payload of [`EventKind::GridRebuild`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridInfo {
    /// The position version the decode-range index was rebuilt for.
    pub version: u64,
}

/// One recordable occurrence (the payload structs keep the offline serde
/// derive's one-field-tuple-variant shape).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A node transmitted.
    Transmit(TransmitInfo),
    /// A listener decoded a message.
    Deliver(DeliverInfo),
    /// A listener lost a decodable signal.
    Collision(CollisionInfo),
    /// A node's activity flipped (topology change feed).
    Status(StatusInfo),
    /// A phase began.
    PhaseStart(PhaseInfo),
    /// A phase ended.
    PhaseEnd(PhaseEndInfo),
    /// A sparse-kernel request fell back to the dense reference.
    Fallback(PhaseInfo),
    /// The sparse scheduler took a wake hint.
    Hint(HintInfo),
    /// The SINR decode-range index was (re)built.
    GridRebuild(GridInfo),
}

impl EventKind {
    /// The class the kind belongs to.
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::Transmit(_) | EventKind::Deliver(_) | EventKind::Collision(_) => {
                EventClass::Radio
            }
            EventKind::Status(_) => EventClass::Topology,
            EventKind::PhaseStart(_) | EventKind::PhaseEnd(_) | EventKind::Fallback(_) => {
                EventClass::Phase
            }
            EventKind::Hint(_) | EventKind::GridRebuild(_) => EventClass::Sched,
        }
    }

    /// Short stable name for diffs and tables.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Transmit(_) => "transmit",
            EventKind::Deliver(_) => "deliver",
            EventKind::Collision(_) => "collision",
            EventKind::Status(_) => "status",
            EventKind::PhaseStart(_) => "phase-start",
            EventKind::PhaseEnd(_) => "phase-end",
            EventKind::Fallback(_) => "fallback",
            EventKind::Hint(_) => "hint",
            EventKind::GridRebuild(_) => "grid-rebuild",
        }
    }

    /// The node the event concerns, if it concerns one.
    pub fn node(&self) -> Option<u32> {
        match self {
            EventKind::Transmit(i) => Some(i.node),
            EventKind::Deliver(i) => Some(i.node),
            EventKind::Collision(i) => Some(i.node),
            EventKind::Status(i) => Some(i.node),
            EventKind::Hint(i) => Some(i.node),
            EventKind::PhaseStart(_)
            | EventKind::PhaseEnd(_)
            | EventKind::Fallback(_)
            | EventKind::GridRebuild(_) => None,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            EventKind::Transmit(_) => 0,
            EventKind::Deliver(_) => 1,
            EventKind::Collision(_) => 2,
            EventKind::Status(_) => 3,
            EventKind::PhaseStart(_) => 4,
            EventKind::PhaseEnd(_) => 5,
            EventKind::Fallback(_) => 6,
            EventKind::Hint(_) => 7,
            EventKind::GridRebuild(_) => 8,
        }
    }

    /// The payload flattened to words, for hashing and ordering.
    fn words(&self) -> [u64; 3] {
        const NONE: u64 = u64::MAX;
        match *self {
            EventKind::Transmit(i) => [i.node as u64, 0, 0],
            EventKind::Deliver(i) => [i.node as u64, i.from as u64, 0],
            EventKind::Collision(i) => [i.node as u64, 0, 0],
            EventKind::Status(i) => [i.node as u64, u64::from(i.active), 0],
            EventKind::PhaseStart(i) => [i.phase, 0, 0],
            EventKind::PhaseEnd(i) => [
                i.phase,
                i.steps ^ i.transmissions.rotate_left(16) ^ i.deliveries.rotate_left(32),
                i.collisions ^ (u64::from(i.completed) << 63),
            ],
            EventKind::Fallback(i) => [i.phase, 0, 0],
            EventKind::Hint(i) => [
                i.node as u64,
                (u64::from(i.now) << 2) | (u64::from(i.listen) << 1) | u64::from(i.retire),
                i.wake_at.unwrap_or(NONE) ^ i.done_at.unwrap_or(NONE).rotate_left(32),
            ],
            EventKind::GridRebuild(i) => [i.version, 0, 0],
        }
    }
}

/// One journal entry: a global step (the engine clock at which the
/// occurrence happened) and what occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Global engine step (simulated + charged clock).
    pub step: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The event's class.
    pub fn class(&self) -> EventClass {
        self.kind.class()
    }

    /// A canonical within-step ordering key. Two kernels may resolve the
    /// same step's events in different orders (index order vs ring order);
    /// sorting each step's events by this key makes their streams directly
    /// comparable (see [`normalized`](crate::normalized)).
    pub fn order_key(&self) -> (u64, u8, [u64; 3]) {
        (self.step, self.kind.tag(), self.kind.words())
    }

    /// A stable 64-bit digest of the event (FNV-1a over its words), the
    /// unit the rolling waypoint digests accumulate.
    pub fn hash64(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.step);
        eat(self.kind.tag() as u64);
        for w in self.kind.words() {
            eat(w);
        }
        h
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {:>6}  {:<12}", self.step, self.kind.name())?;
        match self.kind {
            EventKind::Transmit(i) => write!(f, "node {}", i.node),
            EventKind::Deliver(i) => write!(f, "node {} from {}", i.node, i.from),
            EventKind::Collision(i) => write!(f, "node {}", i.node),
            EventKind::Status(i) => {
                write!(f, "node {} -> {}", i.node, if i.active { "active" } else { "inactive" })
            }
            EventKind::PhaseStart(i) => write!(f, "phase {}", i.phase),
            EventKind::PhaseEnd(i) => write!(
                f,
                "phase {} steps {} tx {} rx {} coll {} completed {}",
                i.phase, i.steps, i.transmissions, i.deliveries, i.collisions, i.completed
            ),
            EventKind::Fallback(i) => write!(f, "phase {} (dense reference executed)", i.phase),
            EventKind::Hint(i) => {
                write!(f, "node {}", i.node)?;
                if i.now {
                    write!(f, " now")?;
                }
                if i.retire {
                    write!(f, " retire")?;
                }
                if i.listen {
                    write!(f, " listen")?;
                }
                if let Some(w) = i.wake_at {
                    write!(f, " wake@{w}")?;
                }
                if let Some(d) = i.done_at {
                    write!(f, " done@{d}")?;
                }
                Ok(())
            }
            EventKind::GridRebuild(i) => write!(f, "position version {}", i.version),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_filter_and_parse() {
        assert!(ClassMask::ALL.contains(EventClass::Sched));
        assert!(!ClassMask::INVARIANT.contains(EventClass::Sched));
        assert!(ClassMask::INVARIANT.contains(EventClass::Radio));
        assert_eq!(ClassMask::parse("radio, phase").unwrap().names(), vec!["radio", "phase"]);
        assert_eq!(ClassMask::parse("").unwrap(), ClassMask::ALL);
        assert!(ClassMask::parse("bogus").is_err());
        assert_eq!(ClassMask::ALL.without(EventClass::Sched), ClassMask::INVARIANT);
        assert_eq!(ClassMask::ALL.intersect(ClassMask::NONE), ClassMask::NONE);
    }

    #[test]
    fn kinds_know_their_class_and_node() {
        let tx = EventKind::Transmit(TransmitInfo { node: 3 });
        assert_eq!(tx.class(), EventClass::Radio);
        assert_eq!(tx.node(), Some(3));
        let ph = EventKind::PhaseStart(PhaseInfo { phase: 1 });
        assert_eq!(ph.class(), EventClass::Phase);
        assert_eq!(ph.node(), None);
        let hint = EventKind::Hint(HintInfo {
            node: 2,
            now: true,
            listen: false,
            retire: false,
            wake_at: None,
            done_at: None,
        });
        assert_eq!(hint.class(), EventClass::Sched);
    }

    #[test]
    fn hashes_separate_nearby_events() {
        let a = Event { step: 5, kind: EventKind::Transmit(TransmitInfo { node: 1 }) };
        let b = Event { step: 5, kind: EventKind::Transmit(TransmitInfo { node: 2 }) };
        let c = Event { step: 6, kind: EventKind::Transmit(TransmitInfo { node: 1 }) };
        assert_ne!(a.hash64(), b.hash64());
        assert_ne!(a.hash64(), c.hash64());
        assert_eq!(a.hash64(), a.hash64());
    }

    #[test]
    fn events_serde_round_trip() {
        let events = vec![
            Event { step: 0, kind: EventKind::PhaseStart(PhaseInfo { phase: 0 }) },
            Event { step: 2, kind: EventKind::Deliver(DeliverInfo { node: 4, from: 0 }) },
            Event { step: 3, kind: EventKind::Status(StatusInfo { node: 7, active: false }) },
            Event {
                step: 3,
                kind: EventKind::Hint(HintInfo {
                    node: 1,
                    now: false,
                    listen: true,
                    retire: false,
                    wake_at: Some(9),
                    done_at: None,
                }),
            },
        ];
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<Event> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }
}
