//! The recorded artifact: [`Recorder`] (the live sink), [`Waypoint`]s,
//! the serializable [`Journal`], and its [`JournalSummary`].

use crate::event::{ClassMask, Event, EventClass, EventKind};
use crate::sink::JournalSink;
use serde::{Deserialize, Serialize, Value};

/// A checkpoint waypoint: a cheap, comparable digest of the run's state at
/// a completed-step boundary. Two runs that agree on a waypoint agreed on
/// every kernel-invariant event before it (rolling digest) *and* consumed
/// identical per-node randomness (RNG fingerprint) — which is what lets
/// [`bisect`](crate::bisect) binary-search for the first divergent segment
/// instead of scanning whole streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Waypoint {
    /// Completed-step boundary the waypoint was taken at.
    pub step: u64,
    /// Kernel-invariant events recorded up to the boundary.
    pub events: u64,
    /// Rolling order-insensitive digest of those events (wrapping sum of
    /// mixed per-event hashes, so both kernels' within-step orderings
    /// produce the same digest).
    pub digest: u64,
    /// The engine's per-node RNG-state digest at the boundary.
    pub rng_fingerprint: u64,
}

/// The live recording sink: filters by [`ClassMask`], accumulates events,
/// takes [`Waypoint`]s on a fixed step cadence.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    mask: ClassMask,
    checkpoint_every: u64,
    next_waypoint: u64,
    events: Vec<Event>,
    waypoints: Vec<Waypoint>,
    digest: u64,
    invariant_events: u64,
}

/// Bijective mixer (splitmix64 finalizer) applied to each event hash
/// before the commutative accumulation, so the wrapping sum stays
/// discriminating.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Recorder {
    /// A recorder keeping events in `mask`, taking a waypoint every
    /// `checkpoint_every` completed steps (`0` disables waypoints).
    pub fn new(mask: ClassMask, checkpoint_every: u64) -> Self {
        Recorder {
            mask,
            checkpoint_every,
            next_waypoint: checkpoint_every,
            events: Vec::new(),
            waypoints: Vec::new(),
            digest: 0,
            invariant_events: 0,
        }
    }

    /// The recorded events so far, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The waypoints taken so far.
    pub fn waypoints(&self) -> &[Waypoint] {
        &self.waypoints
    }

    /// The class filter.
    pub fn mask(&self) -> ClassMask {
        self.mask
    }

    /// The rolling digest over kernel-invariant events.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Freezes the recording into a serializable [`Journal`].
    pub fn into_journal(
        self,
        producer: impl Into<String>,
        kernel: impl Into<String>,
        spec: Option<Value>,
        final_fingerprint: u64,
        wall_nanos: u64,
    ) -> Journal {
        Journal {
            producer: producer.into(),
            kernel: kernel.into(),
            mask: self.mask,
            checkpoint_every: self.checkpoint_every,
            spec,
            final_fingerprint,
            wall_nanos,
            events: self.events,
            waypoints: self.waypoints,
        }
    }
}

impl JournalSink for Recorder {
    const ENABLED: bool = true;

    #[inline]
    fn wants(&self, class: EventClass) -> bool {
        self.mask.contains(class)
    }

    fn record(&mut self, step: u64, kind: EventKind) {
        let event = Event { step, kind };
        if ClassMask::INVARIANT.contains(event.class()) {
            // Order-insensitive within the run: the sparse and dense
            // kernels resolve one step's events in different orders, but
            // the same multiset — a commutative accumulation makes their
            // waypoint digests directly comparable.
            self.digest = self.digest.wrapping_add(mix(event.hash64()));
            self.invariant_events += 1;
        }
        self.events.push(event);
    }

    fn checkpoint_due(&self, step: u64) -> bool {
        self.checkpoint_every != 0 && step >= self.next_waypoint
    }

    fn record_waypoint(&mut self, step: u64, rng_fingerprint: u64) {
        self.waypoints.push(Waypoint {
            step,
            events: self.invariant_events,
            digest: self.digest,
            rng_fingerprint,
        });
        self.next_waypoint = step + self.checkpoint_every;
    }

    fn next_checkpoint(&self) -> Option<u64> {
        (self.checkpoint_every != 0).then_some(self.next_waypoint)
    }
}

/// Deterministic per-class counters of a [`Journal`] — what a `RunReport`
/// carries so a journaled run stays summarizable without shipping the
/// event stream (wall time deliberately excluded: summaries embedded in
/// reports must stay bit-reproducible).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalSummary {
    /// Total recorded events.
    pub events: u64,
    /// Radio-class events (transmit/deliver/collision).
    pub radio: u64,
    /// Topology-class events (status flips).
    pub topology: u64,
    /// Phase-class events (boundaries, fallbacks).
    pub phase: u64,
    /// Sched-class events (hints, grid rebuilds).
    pub sched: u64,
    /// Waypoints taken.
    pub waypoints: u64,
    /// Final rolling digest over kernel-invariant events.
    pub digest: u64,
}

/// A frozen recording: everything needed to replay the run and to compare
/// it against another recording. Serializes to a single self-describing
/// JSON document (`wall_nanos` is the only non-deterministic field; every
/// comparison in this crate ignores it).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Journal {
    /// Free-form producer tag (tool and version).
    pub producer: String,
    /// The kernel that produced the stream (`"sparse"` / `"dense"` /
    /// `"event"`), used to decide whether two journals are
    /// order-comparable per class.
    pub kernel: String,
    /// The class filter the recording ran under.
    pub mask: ClassMask,
    /// The waypoint cadence in steps (`0` = none).
    pub checkpoint_every: u64,
    /// The producing run's spec, echoed verbatim as a serialized tree so
    /// `replay` can re-drive it without this crate depending on the spec
    /// type.
    pub spec: Option<Value>,
    /// The engine's RNG fingerprint at exit.
    pub final_fingerprint: u64,
    /// Wall-clock nanoseconds of the recorded run (meta only — never
    /// compared).
    pub wall_nanos: u64,
    /// The event stream, in emission order.
    pub events: Vec<Event>,
    /// The waypoints, in step order.
    pub waypoints: Vec<Waypoint>,
}

impl Journal {
    /// Serializes the journal to a single JSON document.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error (non-finite floats are the only
    /// failure mode, and the journal carries none).
    pub fn to_json_string(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a journal back from [`to_json_string`](Journal::to_json_string)
    /// output.
    ///
    /// # Errors
    ///
    /// Returns the parser or shape error verbatim.
    pub fn from_json_str(s: &str) -> Result<Journal, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Per-class counters plus the rolling digest.
    pub fn summary(&self) -> JournalSummary {
        let mut s = JournalSummary {
            waypoints: self.waypoints.len() as u64,
            digest: self.waypoints.last().map_or(0, |w| w.digest),
            ..JournalSummary::default()
        };
        let mut digest = 0u64;
        for e in &self.events {
            s.events += 1;
            match e.class() {
                EventClass::Radio => s.radio += 1,
                EventClass::Topology => s.topology += 1,
                EventClass::Phase => s.phase += 1,
                EventClass::Sched => s.sched += 1,
            }
            if ClassMask::INVARIANT.contains(e.class()) {
                digest = digest.wrapping_add(mix(e.hash64()));
            }
        }
        s.digest = digest;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DeliverInfo, TransmitInfo};

    fn tx(node: u32) -> EventKind {
        EventKind::Transmit(TransmitInfo { node })
    }

    #[test]
    fn recorder_filters_by_mask() {
        let mut r = Recorder::new(ClassMask::NONE.with(EventClass::Radio), 0);
        assert!(r.wants(EventClass::Radio));
        assert!(!r.wants(EventClass::Sched));
        r.record(0, tx(1));
        assert_eq!(r.events().len(), 1);
        assert!(!r.checkpoint_due(1000));
    }

    #[test]
    fn digest_is_order_insensitive_within_the_run() {
        let a = EventKind::Transmit(TransmitInfo { node: 1 });
        let b = EventKind::Deliver(DeliverInfo { node: 2, from: 1 });
        let mut fwd = Recorder::new(ClassMask::ALL, 0);
        fwd.record(3, a);
        fwd.record(3, b);
        let mut rev = Recorder::new(ClassMask::ALL, 0);
        rev.record(3, b);
        rev.record(3, a);
        assert_eq!(fwd.digest(), rev.digest());
        let mut other = Recorder::new(ClassMask::ALL, 0);
        other.record(4, a);
        other.record(3, b);
        assert_ne!(fwd.digest(), other.digest());
    }

    #[test]
    fn waypoints_follow_the_cadence() {
        let mut r = Recorder::new(ClassMask::ALL, 10);
        assert_eq!(r.next_checkpoint(), Some(10));
        for boundary in 1..=25u64 {
            if r.checkpoint_due(boundary) {
                r.record_waypoint(boundary, 0xfee1);
            }
        }
        let steps: Vec<u64> = r.waypoints().iter().map(|w| w.step).collect();
        assert_eq!(steps, vec![10, 20]);
        assert_eq!(r.next_checkpoint(), Some(30));
        assert_eq!(Recorder::new(ClassMask::ALL, 0).next_checkpoint(), None);
    }

    #[test]
    fn journal_round_trips_and_summarizes() {
        let mut r = Recorder::new(ClassMask::ALL, 5);
        r.record(0, tx(0));
        r.record(2, EventKind::Deliver(DeliverInfo { node: 1, from: 0 }));
        if r.checkpoint_due(5) {
            r.record_waypoint(5, 99);
        }
        let journal = r.into_journal("test", "sparse", None, 99, 1234);
        let summary = journal.summary();
        assert_eq!(summary.events, 2);
        assert_eq!(summary.radio, 2);
        assert_eq!(summary.waypoints, 1);
        assert_eq!(summary.digest, journal.waypoints[0].digest);
        let json = serde_json::to_string(&journal).unwrap();
        let back: Journal = serde_json::from_str(&json).unwrap();
        assert_eq!(back, journal);
    }
}
