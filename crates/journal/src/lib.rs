//! Event journal for the radionet simulation engine: a zero-cost-when-off
//! observability layer.
//!
//! The engine (`radionet-sim`) is generic over a [`JournalSink`]. With the
//! default [`NullSink`] every emission site monomorphizes to dead code —
//! the instrumented engine compiles to the same hot path as the
//! uninstrumented one (the bench suite pins this with a no-regression
//! guard). Swap in a [`Recorder`] and the engine streams compact
//! [`Event`]s — transmissions, receptions, collisions, node status flips,
//! phase boundaries, kernel fallbacks, scheduler hints, spatial-index
//! rebuilds — plus periodic [`Waypoint`]s: cheap digests of everything so
//! far, taken at completed-step boundaries.
//!
//! On top of the stream sit the comparison tools:
//!
//! - [`Journal`] — the frozen, serializable recording (single JSON
//!   document; see [`Journal::to_json_string`]).
//! - [`normalized`] — canonical per-step ordering, so the sparse and dense
//!   kernels' differently-ordered streams become directly comparable on
//!   the kernel-invariant classes.
//! - [`first_divergence`] — event-for-event replay check.
//! - [`bisect`] — binary search over waypoints to the first divergent
//!   segment, then a pinpoint scan producing a structured
//!   [`Divergence`] (step, node, event kind, both values).
//!
//! Event classes ([`EventClass`], filtered by [`ClassMask`]) split along
//! the line that matters for comparison: `Radio`/`Topology`/`Phase` are
//! kernel-invariant, `Sched` describes the sparse kernel's own machinery
//! and is dropped automatically when comparing across kernels.
//!
//! ```
//! use radionet_journal::{
//!     bisect, ClassMask, DeliverInfo, Event, EventKind, JournalSink, Recorder, TransmitInfo,
//! };
//!
//! let mut run = |victim: u32| {
//!     let mut rec = Recorder::new(ClassMask::ALL, 4);
//!     for step in 0..12u64 {
//!         rec.record(step, EventKind::Transmit(TransmitInfo { node: (step % 3) as u32 }));
//!         if step == 9 {
//!             rec.record(step, EventKind::Deliver(DeliverInfo { node: victim, from: 0 }));
//!         }
//!         let boundary = step + 1;
//!         if rec.checkpoint_due(boundary) {
//!             rec.record_waypoint(boundary, 0x5eed);
//!         }
//!     }
//!     rec.into_journal("doc-test", "sparse", None, 0x5eed, 0)
//! };
//!
//! let report = bisect(&run(7), &run(8), ClassMask::ALL);
//! let diff = report.divergence.expect("the two runs differ at step 9");
//! assert_eq!(diff.step, 9);
//! assert_eq!(report.agree_until, Some(8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod journal;
mod sink;

pub mod diff;

pub use diff::{bisect, first_divergence, normalized, BisectReport, Divergence};
pub use event::{
    ClassMask, CollisionInfo, DeliverInfo, Event, EventClass, EventKind, GridInfo, HintInfo,
    PhaseEndInfo, PhaseInfo, StatusInfo, TransmitInfo,
};
pub use journal::{Journal, JournalSummary, Recorder, Waypoint};
pub use sink::{JournalSink, NullSink};
