//! The [`JournalSink`] trait the engine emits through, and the zero-cost
//! [`NullSink`].

use crate::event::{EventClass, EventKind};

/// Receiver of engine events.
///
/// The engine is generic over its sink and every emission site is guarded
/// by `if J::ENABLED`, a monomorphized constant — with [`NullSink`] (the
/// default) the guard folds to `if false` and the whole instrumentation
/// compiles out of the hot path. The E15 bench smoke pins this with a
/// no-regression assertion.
///
/// Protocol: the engine calls [`wants`](JournalSink::wants) before building
/// an event's payload (so filtered classes cost nothing but the branch),
/// [`record`](JournalSink::record) with the global step and the event, and
/// the waypoint pair — [`checkpoint_due`](JournalSink::checkpoint_due) at
/// every completed-step boundary, then
/// [`record_waypoint`](JournalSink::record_waypoint) with the engine's RNG
/// fingerprint when due.
pub trait JournalSink {
    /// Whether this sink observes anything at all. `false` compiles every
    /// emission site out (the engine guards them with this constant).
    const ENABLED: bool;

    /// Whether events of `class` should be recorded.
    fn wants(&self, class: EventClass) -> bool;

    /// Records one event at the given global step.
    fn record(&mut self, step: u64, kind: EventKind);

    /// Whether a waypoint is due at the completed-step boundary `step`
    /// (the engine asks after every simulated step, in both kernels).
    fn checkpoint_due(&self, step: u64) -> bool {
        let _ = step;
        false
    }

    /// Records a waypoint at boundary `step` with the engine's RNG-state
    /// digest (see `Sim::rng_fingerprint` in `radionet-sim`).
    fn record_waypoint(&mut self, step: u64, rng_fingerprint: u64) {
        let _ = (step, rng_fingerprint);
    }

    /// The earliest future boundary at which
    /// [`checkpoint_due`](JournalSink::checkpoint_due) would first answer
    /// true, or `None` when no waypoint is ever due. The event-driven
    /// kernel uses this to land on every waypoint step instead of jumping
    /// over it, so a recording made under clock jumps keeps the exact
    /// cadence of a stepped one. Sinks without waypoints keep the default.
    fn next_checkpoint(&self) -> Option<u64> {
        None
    }
}

/// The do-nothing sink: `ENABLED = false`, so the engine's instrumentation
/// monomorphizes away entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl JournalSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn wants(&self, _class: EventClass) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _step: u64, _kind: EventKind) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_observes_nothing() {
        const { assert!(!NullSink::ENABLED) };
        let mut s = NullSink;
        assert!(!s.wants(EventClass::Radio));
        assert!(!s.checkpoint_due(7));
        s.record(0, EventKind::Transmit(crate::TransmitInfo { node: 0 }));
        s.record_waypoint(1, 2);
    }
}
