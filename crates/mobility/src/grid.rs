//! A uniform-grid spatial index over a moving point set.
//!
//! Cells are at least one interaction radius wide, so every pair within
//! interaction range sits in the same or an adjacent cell: the candidate
//! neighbors of a point are exactly the `3^dim` surrounding cells. Nodes
//! are re-bucketed **only when they cross a cell boundary** — with per-tick
//! displacements far below the radius, crossings are rare, which is what
//! makes incremental edge maintenance cheap.

/// The uniform grid: node buckets per cell plus each node's current cell.
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    /// Cell width (≥ the interaction radius by construction).
    width: f64,
    /// Cells per axis (`[nx, ny, nz]`; `nz = 1` for 2D).
    cells: [usize; 3],
    buckets: Vec<Vec<u32>>,
    cell_of: Vec<u32>,
}

impl SpatialGrid {
    /// Builds the grid over `positions` in the domain `[0, side]^dim` with
    /// cells at least `radius` wide.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `side`/`radius` or `dim` outside `{2, 3}`.
    pub fn new(side: f64, radius: f64, dim: usize, positions: &[[f64; 3]]) -> Self {
        assert!(matches!(dim, 2 | 3), "spatial grid supports 2D and 3D only");
        assert!(side > 0.0 && side.is_finite(), "domain side must be positive");
        assert!(radius > 0.0 && radius.is_finite(), "radius must be positive");
        // floor() keeps width = side / per_axis >= radius.
        let per_axis = ((side / radius).floor() as usize).max(1);
        let cells = [per_axis, per_axis, if dim == 3 { per_axis } else { 1 }];
        let width = side / per_axis as f64;
        let mut grid = SpatialGrid {
            width,
            cells,
            buckets: vec![Vec::new(); cells[0] * cells[1] * cells[2]],
            cell_of: vec![0; positions.len()],
        };
        grid.rebuild(positions);
        grid
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn axis_cell(&self, coord: f64, axis: usize) -> usize {
        let c = (coord / self.width) as isize;
        c.clamp(0, self.cells[axis] as isize - 1) as usize
    }

    #[inline]
    fn cell_index(&self, p: [f64; 3]) -> u32 {
        let cx = self.axis_cell(p[0], 0);
        let cy = self.axis_cell(p[1], 1);
        let cz = self.axis_cell(p[2], 2);
        ((cz * self.cells[1] + cy) * self.cells[0] + cx) as u32
    }

    /// Drops and re-inserts every node (the full-rebuild reference path).
    pub fn rebuild(&mut self, positions: &[[f64; 3]]) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.cell_of.resize(positions.len(), 0);
        for (i, p) in positions.iter().enumerate() {
            let cell = self.cell_index(*p);
            self.cell_of[i] = cell;
            self.buckets[cell as usize].push(i as u32);
        }
    }

    /// Re-buckets node `i` at its new position. Returns whether it crossed
    /// a cell boundary (the only case that costs anything).
    pub fn update(&mut self, i: usize, p: [f64; 3]) -> bool {
        let cell = self.cell_index(p);
        let old = self.cell_of[i];
        if cell == old {
            return false;
        }
        let bucket = &mut self.buckets[old as usize];
        let pos = bucket
            .iter()
            .position(|&x| x as usize == i)
            .expect("node missing from its recorded cell");
        bucket.swap_remove(pos);
        self.buckets[cell as usize].push(i as u32);
        self.cell_of[i] = cell;
        true
    }

    /// Calls `f` with every node in the `3^dim` cells around `p`
    /// (including `p`'s own cell — callers filter out the node itself).
    pub fn for_candidates(&self, p: [f64; 3], mut f: impl FnMut(u32)) {
        let cx = self.axis_cell(p[0], 0) as isize;
        let cy = self.axis_cell(p[1], 1) as isize;
        let cz = self.axis_cell(p[2], 2) as isize;
        for dz in -1..=1isize {
            let z = cz + dz;
            if z < 0 || z >= self.cells[2] as isize {
                continue;
            }
            for dy in -1..=1isize {
                let y = cy + dy;
                if y < 0 || y >= self.cells[1] as isize {
                    continue;
                }
                for dx in -1..=1isize {
                    let x = cx + dx;
                    if x < 0 || x >= self.cells[0] as isize {
                        continue;
                    }
                    let cell =
                        (z as usize * self.cells[1] + y as usize) * self.cells[0] + x as usize;
                    for &node in &self.buckets[cell] {
                        f(node);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn points(n: usize, dim: usize, side: f64, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut p = [0.0; 3];
                for c in p.iter_mut().take(dim) {
                    *c = rng.gen::<f64>() * side;
                }
                p
            })
            .collect()
    }

    fn dist(a: &[f64; 3], b: &[f64; 3]) -> f64 {
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
    }

    #[test]
    fn candidates_cover_every_close_pair() {
        for dim in [2usize, 3] {
            let side = 8.0;
            let radius = 1.0;
            let pts = points(200, dim, side, 11);
            let grid = SpatialGrid::new(side, radius, dim, &pts);
            for i in 0..pts.len() {
                let mut cand = Vec::new();
                grid.for_candidates(pts[i], |j| cand.push(j as usize));
                for (j, q) in pts.iter().enumerate() {
                    if j != i && dist(&pts[i], q) <= radius {
                        assert!(cand.contains(&j), "dim {dim}: close pair {i}-{j} missed");
                    }
                }
                assert!(cand.contains(&i), "own cell must be scanned");
            }
        }
    }

    #[test]
    fn update_tracks_movement() {
        let side = 4.0;
        let mut pts = points(50, 2, side, 3);
        let mut grid = SpatialGrid::new(side, 1.0, 2, &pts);
        let mut reference = SpatialGrid::new(side, 1.0, 2, &pts);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let i = rng.gen_range(0..pts.len());
            pts[i] = [rng.gen::<f64>() * side, rng.gen::<f64>() * side, 0.0];
            grid.update(i, pts[i]);
        }
        reference.rebuild(&pts);
        // Same buckets as a from-scratch rebuild (order within a bucket may
        // differ; compare as sets).
        for (a, b) in grid.buckets.iter().zip(&reference.buckets) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn tiny_domain_degenerates_to_one_bucket() {
        let pts = points(10, 2, 0.5, 1);
        let grid = SpatialGrid::new(0.5, 1.0, 2, &pts);
        assert_eq!(grid.cell_count(), 1);
        let mut cand = Vec::new();
        grid.for_candidates(pts[0], |j| cand.push(j));
        assert_eq!(cand.len(), 10);
    }

    #[test]
    fn boundary_points_stay_in_range() {
        // Points exactly at `side` must clamp into the last cell.
        let pts = vec![[4.0, 4.0, 0.0], [0.0, 0.0, 0.0]];
        let grid = SpatialGrid::new(4.0, 1.0, 2, &pts);
        let mut seen = Vec::new();
        grid.for_candidates([4.0, 4.0, 0.0], |j| seen.push(j));
        assert!(seen.contains(&0));
    }
}
