//! # radionet-mobility — moving geometric radio networks
//!
//! The paper's geometric families (UDG, quasi-UDG, unit ball, geometric
//! radio) are defined by a point set and a distance rule, yet the rest of
//! the workspace only ever sees the *frozen* edge set. This crate puts the
//! point set back in motion:
//!
//! * [`model`] — deterministic mobility models ([`MobilityModel`]):
//!   random waypoint (with pauses), random walk / Lévy flight, correlated
//!   group drift, and the static identity. Every node's trajectory is a
//!   pure function of `(model, seed)` through per-node RNG streams.
//! * [`grid`] — [`SpatialGrid`], a uniform-grid spatial index with cell
//!   width ≥ the interaction radius, so the candidate neighbors of a point
//!   are exactly the 3^dim surrounding cells (re-exported from
//!   [`radionet_graph::spatial`], where it is shared with the simulator's
//!   sparse SINR reception kernel).
//! * [`topology`] — [`MobileTopology`], a
//!   [`TopologyView`](radionet_sim::TopologyView) whose adjacency is
//!   **derived from the evolving geometry** rather than scripted edge
//!   events. Edges are maintained incrementally in
//!   `O(moved nodes × candidates)` per step, with a full-rebuild path and
//!   a brute-force `O(n²)` reference path kept as differential oracles,
//!   plus optional time-resolved sampling of α-bounds and diameter.
//!
//! The view implements the sparse step kernel's batch change feed
//! (trivially exact: mobility never changes node activity or jamming), so
//! `radionet-sim`'s active-set kernel runs unmodified — and byte-identical
//! to the dense reference kernel — on moving graphs.
//!
//! ```
//! use radionet_graph::families::Family;
//! use radionet_mobility::{MobileTopology, MobilityModel, WaypointParams};
//! use radionet_sim::TopologyView;
//!
//! let positioned = Family::UnitDisk.instantiate_positioned(64, 1);
//! let geometry = positioned.geometry.expect("unit disk is geometric");
//! let model = MobilityModel::RandomWaypoint(WaypointParams {
//!     speed_lo: 0.05,
//!     speed_hi: 0.10,
//!     pause_lo: 0,
//!     pause_hi: 4,
//!     range: 0.0,
//! });
//! let mut topo = MobileTopology::new(&geometry, model, 1, 42);
//! let g = topo.initial_graph();
//! assert_eq!(g, positioned.graph, "derived t = 0 edges match the generator");
//! topo.advance_to(&g, 0); // baseline
//! topo.advance_to(&g, 50); // 50 mobility ticks later the edge set moved on
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod topology;

pub use model::{GroupDriftParams, MobilityModel, Motion, WalkParams, WaypointParams};
/// The uniform-grid spatial index, re-exported from `radionet_graph`
/// (moved there so the simulator's sparse SINR kernel can share it
/// without a dependency cycle; the legacy `radionet_mobility::grid` path
/// keeps working).
pub use radionet_graph::spatial as grid;
pub use radionet_graph::spatial::SpatialGrid;
pub use topology::{
    IndexStrategy, MobileTopology, MobilitySample, MobilityStats, MobilityTrace, TRACE_CAP,
};

/// Splitmix64-style finalizer: the workspace's standard bit mixer (kept in
/// sync with `radionet_api::seeds::mix`; duplicated here because the API
/// crate sits *above* this one in the dependency graph).
pub fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::mix;

    #[test]
    fn mix_matches_the_workspace_mixer() {
        // Pinned against radionet_api::seeds::mix (same constants).
        assert_eq!(mix(0), 0);
        assert_ne!(mix(1), 1);
        assert_eq!(mix(3 ^ 0x6a), mix(0x69));
    }
}
