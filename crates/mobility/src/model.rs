//! Deterministic mobility models.
//!
//! A [`Motion`] steps a point set one *mobility tick* at a time. Every
//! trajectory is a pure function of `(model, domain, seed)`: each node owns
//! a private RNG stream derived from the seed, consumed only by that node's
//! own decisions, so stepping is independent of iteration order, index
//! strategy, and step kernel.
//!
//! Speeds and step lengths are expressed as **fractions of the interaction
//! radius per tick** (the scale on which motion changes the topology), so
//! one parameter set behaves comparably across densities and domain sizes.

use crate::mix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random-waypoint parameters: travel to a waypoint at a per-leg speed,
/// pause, repeat.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WaypointParams {
    /// Minimum leg speed (fraction of the interaction radius per tick).
    pub speed_lo: f64,
    /// Maximum leg speed.
    pub speed_hi: f64,
    /// Minimum pause at a waypoint, in ticks.
    pub pause_lo: u64,
    /// Maximum pause at a waypoint, in ticks.
    pub pause_hi: u64,
    /// Waypoint draw range in interaction radii around the current
    /// position; `0.0` draws uniformly over the whole domain (the classic
    /// random-waypoint model), positive values give dwell-heavy
    /// micromobility with short legs.
    pub range: f64,
}

/// Random-walk / Lévy-flight parameters: straight legs of a drawn length,
/// then a pause, then a fresh uniform direction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WalkParams {
    /// Per-tick step length (fraction of the interaction radius). For a
    /// Lévy flight this is the *minimum* step of the heavy-tailed draw.
    pub step: f64,
    /// Lévy tail exponent: `0.0` keeps every leg at `step` (plain walk);
    /// positive values draw per-leg step lengths from a Pareto(α) tail
    /// (capped at 10 interaction radii per tick).
    pub levy_alpha: f64,
    /// Minimum leg duration, in ticks.
    pub run_lo: u64,
    /// Maximum leg duration, in ticks.
    pub run_hi: u64,
    /// Minimum pause between legs, in ticks.
    pub pause_lo: u64,
    /// Maximum pause between legs, in ticks.
    pub pause_hi: u64,
}

/// Correlated group drift: nodes share a per-group drift velocity
/// (re-drawn periodically) plus small per-node jitter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupDriftParams {
    /// Number of drift groups (node `i` belongs to group `i mod groups`).
    pub groups: u32,
    /// Group drift speed per tick (fraction of the interaction radius).
    pub speed: f64,
    /// Per-node jitter per tick (fraction of the interaction radius).
    pub jitter: f64,
    /// Ticks between group-velocity redraws.
    pub hold: u64,
}

/// A mobility model: how the point set evolves per tick.
///
/// Serde note: variants are unit or single-payload tuples so the recipe
/// embeds directly in `RunSpec` dynamics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MobilityModel {
    /// Nothing moves: the identity model (zero per-tick cost).
    Static,
    /// Random waypoint with pauses.
    RandomWaypoint(WaypointParams),
    /// Random walk; a positive `levy_alpha` turns it into a Lévy flight.
    RandomWalk(WalkParams),
    /// Correlated group drift.
    GroupDrift(GroupDriftParams),
}

impl MobilityModel {
    /// Short stable name of the model kind, for tables and preset names:
    /// `static`, `waypoint`, `walk`, `levy`, or `group`.
    pub fn kind_name(&self) -> &'static str {
        match self {
            MobilityModel::Static => "static",
            MobilityModel::RandomWaypoint(_) => "waypoint",
            MobilityModel::RandomWalk(w) if w.levy_alpha > 0.0 => "levy",
            MobilityModel::RandomWalk(_) => "walk",
            MobilityModel::GroupDrift(_) => "group",
        }
    }

    fn validate(&self) {
        match self {
            MobilityModel::Static => {}
            MobilityModel::RandomWaypoint(p) => {
                assert!(
                    p.speed_lo > 0.0 && p.speed_hi >= p.speed_lo,
                    "waypoint speeds need 0 < lo <= hi"
                );
                assert!(p.pause_hi >= p.pause_lo, "waypoint pauses need lo <= hi");
                assert!(p.range >= 0.0 && p.range.is_finite(), "waypoint range must be >= 0");
            }
            MobilityModel::RandomWalk(p) => {
                assert!(p.step > 0.0, "walk step must be positive");
                assert!(p.levy_alpha >= 0.0, "levy_alpha must be >= 0");
                assert!(p.run_lo >= 1 && p.run_hi >= p.run_lo, "walk runs need 1 <= lo <= hi");
                assert!(p.pause_hi >= p.pause_lo, "walk pauses need lo <= hi");
            }
            MobilityModel::GroupDrift(p) => {
                assert!(p.groups >= 1, "group drift needs at least one group");
                assert!(p.speed >= 0.0 && p.jitter >= 0.0, "group speeds must be >= 0");
                assert!(p.hold >= 1, "group hold must be >= 1 tick");
            }
        }
    }
}

/// Lévy step cap, in interaction radii per tick (keeps a heavy-tailed draw
/// from teleporting a node across the whole domain in one tick).
const LEVY_CAP: f64 = 10.0;

#[derive(Clone, Debug)]
struct WaypointNode {
    target: [f64; 3],
    /// Absolute speed (domain units per tick) of the current leg.
    speed: f64,
    pause_left: u64,
}

#[derive(Clone, Debug)]
struct WalkNode {
    /// Per-tick displacement of the current leg (domain units).
    step: [f64; 3],
    run_left: u64,
    pause_left: u64,
}

#[derive(Clone, Debug)]
enum State {
    Static,
    Waypoint { params: WaypointParams, nodes: Vec<WaypointNode> },
    Walk { params: WalkParams, nodes: Vec<WalkNode> },
    Group { params: GroupDriftParams, vel: Vec<[f64; 3]>, rngs: Vec<SmallRng>, hold_left: u64 },
}

/// A stepping engine for one [`MobilityModel`] over `n` nodes in the
/// domain `[0, side]^dim`.
#[derive(Clone, Debug)]
pub struct Motion {
    dim: usize,
    side: f64,
    /// The interaction radius: the unit all speeds scale by.
    scale: f64,
    rngs: Vec<SmallRng>,
    state: State,
}

fn unit_dir<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> [f64; 3] {
    let theta = rng.gen::<f64>() * std::f64::consts::TAU;
    if dim == 2 {
        [theta.cos(), theta.sin(), 0.0]
    } else {
        // Uniform on the sphere: z uniform, azimuth uniform.
        let z = rng.gen_range(-1.0..=1.0);
        let r = (1.0f64 - z * z).max(0.0).sqrt();
        [r * theta.cos(), r * theta.sin(), z]
    }
}

/// Reflects `x` back into `[0, side]` (mirror boundary).
fn reflect(x: f64, side: f64) -> f64 {
    reflect_dir(x, side).0
}

/// Mirror reflection that also reports whether the direction of travel
/// ended up reversed: each fold flips it, so a step long enough to fold
/// twice (possible for Lévy legs in small domains) comes out *unflipped*.
fn reflect_dir(mut x: f64, side: f64) -> (f64, bool) {
    let mut flipped = false;
    loop {
        if x < 0.0 {
            x = -x;
            flipped = !flipped;
        } else if x > side {
            x = 2.0 * side - x;
            flipped = !flipped;
        } else {
            return (x, flipped);
        }
    }
}

impl Motion {
    /// Builds the engine with initial per-node state drawn from `seed`.
    ///
    /// `scale` is the interaction radius (the unit of every speed in the
    /// model) and `side` the domain side length.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `side`/`scale`, `dim` outside `{2, 3}`, or
    /// out-of-range model parameters.
    pub fn new(
        model: MobilityModel,
        dim: usize,
        side: f64,
        scale: f64,
        positions: &[[f64; 3]],
        seed: u64,
    ) -> Self {
        assert!(matches!(dim, 2 | 3), "mobility supports 2D and 3D only");
        assert!(side > 0.0 && side.is_finite(), "domain side must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "interaction radius must be positive");
        model.validate();
        let n = positions.len();
        let mut rngs: Vec<SmallRng> = (0..n)
            .map(|i| {
                SmallRng::seed_from_u64(mix(seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            })
            .collect();
        let state = match model {
            MobilityModel::Static => State::Static,
            MobilityModel::RandomWaypoint(params) => {
                let nodes = positions
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let rng = &mut rngs[i];
                        let target = draw_waypoint(&params, dim, side, scale, p, rng);
                        let speed = rng.gen_range(params.speed_lo..=params.speed_hi) * scale;
                        // Staggered initial pauses desynchronize the fleet.
                        let pause_left = rng.gen_range(0..=params.pause_hi);
                        WaypointNode { target, speed, pause_left }
                    })
                    .collect();
                State::Waypoint { params, nodes }
            }
            MobilityModel::RandomWalk(params) => {
                let nodes = (0..n)
                    .map(|i| {
                        let rng = &mut rngs[i];
                        let (step, run_left) = draw_leg(&params, dim, scale, rng);
                        let pause_left = rng.gen_range(0..=params.pause_hi);
                        WalkNode { step, run_left, pause_left }
                    })
                    .collect();
                State::Walk { params, nodes }
            }
            MobilityModel::GroupDrift(params) => {
                let mut group_rngs: Vec<SmallRng> = (0..params.groups as usize)
                    .map(|g| SmallRng::seed_from_u64(mix(seed ^ 0x6 ^ ((g as u64) << 17))))
                    .collect();
                let vel = group_rngs
                    .iter_mut()
                    .map(|rng| {
                        let d = unit_dir(dim, rng);
                        [
                            d[0] * params.speed * scale,
                            d[1] * params.speed * scale,
                            d[2] * params.speed * scale,
                        ]
                    })
                    .collect();
                State::Group { params, vel, rngs: group_rngs, hold_left: params.hold }
            }
        };
        Motion { dim, side, scale, rngs, state }
    }

    /// Advances every node one tick, reflecting at the domain boundary.
    /// Pushes the index of each node whose position changed onto `moved`.
    pub fn step(&mut self, positions: &mut [[f64; 3]], moved: &mut Vec<u32>) {
        let dim = self.dim;
        let side = self.side;
        let scale = self.scale;
        match &mut self.state {
            State::Static => {}
            State::Waypoint { params, nodes } => {
                for (i, node) in nodes.iter_mut().enumerate() {
                    if node.pause_left > 0 {
                        node.pause_left -= 1;
                        continue;
                    }
                    let p = &mut positions[i];
                    let to = [node.target[0] - p[0], node.target[1] - p[1], node.target[2] - p[2]];
                    let dist = (to[0] * to[0] + to[1] * to[1] + to[2] * to[2]).sqrt();
                    if dist <= node.speed {
                        // Arrive, then draw the pause and the next leg.
                        *p = node.target;
                        let rng = &mut self.rngs[i];
                        node.pause_left = rng.gen_range(params.pause_lo..=params.pause_hi);
                        node.target = draw_waypoint(params, dim, side, scale, p, rng);
                        node.speed = rng.gen_range(params.speed_lo..=params.speed_hi) * scale;
                        if dist > 0.0 {
                            moved.push(i as u32);
                        }
                    } else {
                        let f = node.speed / dist;
                        p[0] += to[0] * f;
                        p[1] += to[1] * f;
                        p[2] += to[2] * f;
                        moved.push(i as u32);
                    }
                }
            }
            State::Walk { params, nodes } => {
                for (i, node) in nodes.iter_mut().enumerate() {
                    if node.pause_left > 0 {
                        node.pause_left -= 1;
                        continue;
                    }
                    if node.run_left == 0 {
                        let rng = &mut self.rngs[i];
                        node.pause_left = rng.gen_range(params.pause_lo..=params.pause_hi);
                        let (step, run_left) = draw_leg(params, dim, scale, rng);
                        node.step = step;
                        node.run_left = run_left;
                        if node.pause_left > 0 {
                            node.pause_left -= 1;
                            continue;
                        }
                    }
                    let p = &mut positions[i];
                    for (coord, step) in p.iter_mut().zip(node.step.iter_mut()).take(dim) {
                        let (reflected, dir_flipped) = reflect_dir(*coord + *step, side);
                        if dir_flipped {
                            *step = -*step;
                        }
                        *coord = reflected;
                    }
                    node.run_left -= 1;
                    moved.push(i as u32);
                }
            }
            State::Group { params, vel, rngs: group_rngs, hold_left } => {
                if *hold_left == 0 {
                    for (g, rng) in group_rngs.iter_mut().enumerate() {
                        let d = unit_dir(dim, rng);
                        vel[g] = [
                            d[0] * params.speed * scale,
                            d[1] * params.speed * scale,
                            d[2] * params.speed * scale,
                        ];
                    }
                    *hold_left = params.hold;
                }
                *hold_left -= 1;
                let groups = params.groups as usize;
                let jitter = params.jitter * scale;
                for (i, p) in positions.iter_mut().enumerate() {
                    let v = vel[i % groups];
                    let j = if jitter > 0.0 {
                        let d = unit_dir(dim, &mut self.rngs[i]);
                        [d[0] * jitter, d[1] * jitter, d[2] * jitter]
                    } else {
                        [0.0; 3]
                    };
                    let mut any = false;
                    for axis in 0..dim {
                        let next = reflect(p[axis] + v[axis] + j[axis], side);
                        if next != p[axis] {
                            any = true;
                        }
                        p[axis] = next;
                    }
                    if any {
                        moved.push(i as u32);
                    }
                }
            }
        }
    }
}

fn draw_waypoint<R: Rng + ?Sized>(
    params: &WaypointParams,
    dim: usize,
    side: f64,
    scale: f64,
    from: &[f64; 3],
    rng: &mut R,
) -> [f64; 3] {
    let mut target = [0.0; 3];
    if params.range > 0.0 {
        let w = params.range * scale;
        for t in target.iter_mut().take(dim) {
            *t = rng.gen_range(-w..=w);
        }
        for axis in 0..dim {
            target[axis] = (from[axis] + target[axis]).clamp(0.0, side);
        }
    } else {
        for t in target.iter_mut().take(dim) {
            *t = rng.gen::<f64>() * side;
        }
    }
    target
}

fn draw_leg<R: Rng + ?Sized>(
    params: &WalkParams,
    dim: usize,
    scale: f64,
    rng: &mut R,
) -> ([f64; 3], u64) {
    let dir = unit_dir(dim, rng);
    let len = if params.levy_alpha > 0.0 {
        // Pareto tail: step · u^(-1/α), capped.
        let u = (1.0 - rng.gen::<f64>()).max(f64::MIN_POSITIVE);
        (params.step * u.powf(-1.0 / params.levy_alpha)).min(LEVY_CAP)
    } else {
        params.step
    } * scale;
    let run = rng.gen_range(params.run_lo..=params.run_hi);
    ([dir[0] * len, dir[1] * len, dir[2] * len], run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_positions(n: usize, dim: usize, side: f64, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut p = [0.0; 3];
                for c in p.iter_mut().take(dim) {
                    *c = rng.gen::<f64>() * side;
                }
                p
            })
            .collect()
    }

    fn run_model(model: MobilityModel, dim: usize, ticks: u64, seed: u64) -> Vec<[f64; 3]> {
        let side = 10.0;
        let mut pos = uniform_positions(50, dim, side, 7);
        let mut motion = Motion::new(model, dim, side, 1.0, &pos, seed);
        let mut moved = Vec::new();
        for _ in 0..ticks {
            motion.step(&mut pos, &mut moved);
        }
        pos
    }

    const WAYPOINT: MobilityModel = MobilityModel::RandomWaypoint(WaypointParams {
        speed_lo: 0.1,
        speed_hi: 0.3,
        pause_lo: 0,
        pause_hi: 3,
        range: 0.0,
    });
    const WALK: MobilityModel = MobilityModel::RandomWalk(WalkParams {
        step: 0.2,
        levy_alpha: 0.0,
        run_lo: 2,
        run_hi: 8,
        pause_lo: 0,
        pause_hi: 2,
    });
    const LEVY: MobilityModel = MobilityModel::RandomWalk(WalkParams {
        step: 0.1,
        levy_alpha: 1.5,
        run_lo: 1,
        run_hi: 4,
        pause_lo: 0,
        pause_hi: 4,
    });
    const GROUP: MobilityModel = MobilityModel::GroupDrift(GroupDriftParams {
        groups: 4,
        speed: 0.2,
        jitter: 0.05,
        hold: 6,
    });

    #[test]
    fn models_are_deterministic_per_seed() {
        for model in [WAYPOINT, WALK, LEVY, GROUP] {
            let a = run_model(model, 2, 40, 3);
            let b = run_model(model, 2, 40, 3);
            assert_eq!(a, b, "{model:?} not deterministic");
            let c = run_model(model, 2, 40, 4);
            assert_ne!(a, c, "{model:?} ignores the seed");
        }
    }

    #[test]
    fn positions_stay_in_the_domain() {
        for model in [WAYPOINT, WALK, LEVY, GROUP] {
            for dim in [2usize, 3] {
                let pos = run_model(model, dim, 200, 9);
                for p in &pos {
                    for axis in 0..dim {
                        assert!((0.0..=10.0).contains(&p[axis]), "{model:?} escaped: {:?}", p);
                    }
                    if dim == 2 {
                        assert_eq!(p[2], 0.0, "{model:?} moved the unused axis");
                    }
                }
            }
        }
    }

    #[test]
    fn static_model_never_moves() {
        let side = 5.0;
        let mut pos = uniform_positions(20, 2, side, 1);
        let before = pos.clone();
        let mut motion = Motion::new(MobilityModel::Static, 2, side, 1.0, &pos, 0);
        let mut moved = Vec::new();
        for _ in 0..10 {
            motion.step(&mut pos, &mut moved);
        }
        assert!(moved.is_empty());
        assert_eq!(pos, before);
    }

    #[test]
    fn pauses_keep_a_fraction_stationary() {
        // Dwell-heavy micromobility: long pauses, short local legs — most
        // nodes must be stationary on any given tick (the property the
        // incremental index exploits).
        let model = MobilityModel::RandomWaypoint(WaypointParams {
            speed_lo: 0.05,
            speed_hi: 0.1,
            pause_lo: 50,
            pause_hi: 150,
            range: 2.0,
        });
        let side = 30.0;
        let mut pos = uniform_positions(400, 2, side, 2);
        let mut motion = Motion::new(model, 2, side, 1.0, &pos, 5);
        let mut moved = Vec::new();
        // Skip the initial stagger transient, then measure.
        for _ in 0..100 {
            motion.step(&mut pos, &mut moved);
        }
        moved.clear();
        for _ in 0..100 {
            motion.step(&mut pos, &mut moved);
        }
        let fraction = moved.len() as f64 / (400.0 * 100.0);
        assert!(fraction < 0.5, "moving fraction {fraction} too high for a dwell-heavy model");
        assert!(fraction > 0.0, "nobody moved at all");
    }

    #[test]
    fn kind_names() {
        assert_eq!(MobilityModel::Static.kind_name(), "static");
        assert_eq!(WAYPOINT.kind_name(), "waypoint");
        assert_eq!(WALK.kind_name(), "walk");
        assert_eq!(LEVY.kind_name(), "levy");
        assert_eq!(GROUP.kind_name(), "group");
    }

    #[test]
    fn model_serde_round_trips() {
        for model in [MobilityModel::Static, WAYPOINT, WALK, LEVY, GROUP] {
            let json = serde_json::to_string(&model).unwrap();
            let back: MobilityModel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, model);
        }
    }

    #[test]
    #[should_panic(expected = "speeds need")]
    fn zero_speed_waypoint_rejected() {
        let model = MobilityModel::RandomWaypoint(WaypointParams {
            speed_lo: 0.0,
            speed_hi: 0.0,
            pause_lo: 0,
            pause_hi: 0,
            range: 0.0,
        });
        let pos = uniform_positions(4, 2, 1.0, 0);
        let _ = Motion::new(model, 2, 1.0, 1.0, &pos, 0);
    }

    #[test]
    fn reflect_maps_into_range() {
        assert_eq!(reflect(-0.25, 2.0), 0.25);
        assert_eq!(reflect(2.5, 2.0), 1.5);
        assert_eq!(reflect(1.0, 2.0), 1.0);
        assert_eq!(reflect(-3.0, 2.0), 1.0);
    }

    #[test]
    fn double_fold_keeps_the_direction() {
        // One fold reverses travel; a second fold un-reverses it. A step
        // overshooting past BOTH walls must not flip the stored leg.
        assert_eq!(reflect_dir(2.5, 2.0), (1.5, true));
        assert_eq!(reflect_dir(-0.5, 2.0), (0.5, true));
        assert_eq!(reflect_dir(4.5, 2.0), (0.5, false), "two folds cancel");
        assert_eq!(reflect_dir(-2.5, 2.0), (1.5, false), "two folds cancel");
        assert_eq!(reflect_dir(1.0, 2.0), (1.0, false));
    }

    #[test]
    fn levy_leg_escapes_a_tight_domain_wall() {
        // Long Lévy legs in a domain smaller than the step cap used to
        // flip their direction on an even fold and grind along the wall;
        // with parity-aware reflection the fleet keeps mixing. Sanity:
        // positions spread over the domain rather than piling at borders.
        let model = MobilityModel::RandomWalk(WalkParams {
            step: 4.0, // ticks can overshoot both walls of a side-10 box
            levy_alpha: 1.2,
            run_lo: 4,
            run_hi: 12,
            pause_lo: 0,
            pause_hi: 0,
        });
        let pos = run_model(model, 2, 300, 17);
        let interior =
            pos.iter().filter(|p| (1.0..=9.0).contains(&p[0]) && (1.0..=9.0).contains(&p[1]));
        assert!(interior.count() > 0, "every node stuck at the boundary");
    }
}
