//! [`MobileTopology`]: a [`TopologyView`] whose edges are *derived from
//! evolving geometry* rather than scripted.
//!
//! Every engine step the view advances the mobility model (at its tick
//! cadence), re-buckets the nodes that crossed a grid cell, and repairs the
//! adjacency of exactly the nodes that moved:
//!
//! * a pair with **both endpoints stationary** keeps its edge relation (the
//!   distance did not change), so no work is spent on it;
//! * a pair with **a moved endpoint** is re-tested when that endpoint's row
//!   is recomputed from its `3^dim` surrounding cells, and the stationary
//!   endpoint's row is patched in place.
//!
//! Per-step cost is therefore `O(moved × candidates)` instead of the
//! `O(n × candidates)` of a full rebuild — the dwell-heavy mobility models
//! move a small fraction of the fleet per tick, which is where the E17
//! `exp_mobility` speedup comes from. [`IndexStrategy::Rebuild`] and the
//! `O(n²)` [`IndexStrategy::BruteForce`] are kept as differential oracles;
//! the proptests pin all three to the identical edge set.
//!
//! The quasi-UDG gray zone is realized with a **deterministic per-pair
//! coin** (mixed from the seed and the node pair), so a moving quasi
//! instance is a pure function of `(points, rule, seed)` — the same pair at
//! the same distance always gets the same answer, under every strategy.

use crate::grid::SpatialGrid;
use crate::mix;
use crate::model::{MobilityModel, Motion};
use radionet_graph::families::{Geometry, GeometryRule};
use radionet_graph::independent_set::{
    clique_cover_upper_bound, greedy_mis_min_degree, matching_upper_bound,
};
use radionet_graph::traversal;
use radionet_graph::{Graph, GraphBuilder, NodeId};
use radionet_sim::TopologyView;
use serde::{Deserialize, Serialize};

/// How the derived edge set is maintained as nodes move.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexStrategy {
    /// Incremental: re-bucket cell crossers, recompute only moved nodes'
    /// rows, patch their stationary neighbors in place (the default).
    #[default]
    Incremental,
    /// Rebuild the grid and every row from scratch each step (reference).
    Rebuild,
    /// All-pairs `O(n²)` recomputation each step (the ground-truth oracle
    /// the proptests compare both grid paths against).
    BruteForce,
}

impl IndexStrategy {
    /// Short stable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            IndexStrategy::Incremental => "incremental",
            IndexStrategy::Rebuild => "rebuild",
            IndexStrategy::BruteForce => "brute-force",
        }
    }
}

/// Counters of the work the index actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MobilityStats {
    /// Mobility ticks executed.
    pub ticks: u64,
    /// Sum over ticks of the number of nodes that moved that tick.
    pub moved_node_ticks: u64,
    /// Grid cell crossings (the only re-bucketing events).
    pub cell_crossings: u64,
    /// Adjacency rows recomputed from the index.
    pub rows_recomputed: u64,
}

/// One time-resolved snapshot of the derived topology's shape.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MobilitySample {
    /// Global engine clock at the sample.
    pub clock: u64,
    /// Undirected edges in the derived graph.
    pub edges: usize,
    /// Connected components.
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Double-sweep diameter lower bound of the largest component.
    pub diameter: u32,
    /// Certified α lower bound (greedy independent set).
    pub alpha_lower: usize,
    /// Certified α upper bound (clique cover / matching).
    pub alpha_upper: usize,
}

/// The index work counters plus the time-resolved samples of one run —
/// what a `RunReport` carries home from a mobility cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MobilityTrace {
    /// Index work counters.
    pub stats: MobilityStats,
    /// Time-resolved α-bounds / diameter samples, in clock order.
    pub samples: Vec<MobilitySample>,
}

/// Hard cap on recorded samples (protects long runs from unbounded trace
/// growth; sampling stops silently once reached).
pub const TRACE_CAP: usize = 512;

/// A [`TopologyView`] over a moving geometric point set.
#[derive(Clone, Debug)]
pub struct MobileTopology {
    dim: usize,
    rule: GeometryRule,
    radius: f64,
    coin_seed: u64,
    /// Engine steps per mobility tick.
    tick: u64,
    motion: Motion,
    pos: Vec<[f64; 3]>,
    grid: SpatialGrid,
    /// Current derived adjacency; rows are sorted.
    adj: Vec<Vec<NodeId>>,
    strategy: IndexStrategy,
    last_clock: Option<u64>,
    /// Bumped every time at least one node actually moves — the engine's
    /// cheap invalidation signal for caches keyed on the positions (the
    /// sparse SINR kernel rebuilds its own decode-range grid on a bump).
    motion_epoch: u64,
    moved: Vec<u32>,
    moved_mark: Vec<bool>,
    row_scratch: Vec<NodeId>,
    stats: MobilityStats,
    sample_every: Option<u64>,
    trace: Vec<MobilitySample>,
}

impl MobileTopology {
    /// Builds the view over a positioned instance: the point set starts at
    /// the generated embedding and the t = 0 edge set is derived from the
    /// geometry's rule (identical to the generated graph for the
    /// deterministic rules; the quasi gray zone is re-realized with the
    /// seed-derived pair coin).
    ///
    /// `tick` is the number of engine steps per mobility tick (≥ 1); all
    /// motion randomness derives from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on an empty point set, `tick = 0`, or out-of-range model
    /// parameters.
    pub fn new(geometry: &Geometry, model: MobilityModel, tick: u64, seed: u64) -> Self {
        assert!(!geometry.points.is_empty(), "mobility needs at least one node");
        assert!(tick >= 1, "tick must be >= 1 engine step");
        let n = geometry.points.len();
        let dim = geometry.dim as usize;
        let radius = geometry.rule.max_radius();
        assert!(radius > 0.0, "geometry rule has zero interaction radius");
        if let GeometryRule::Radio { ranges } = &geometry.rule {
            assert_eq!(ranges.len(), n, "one range per node");
        }
        let pos = geometry.points.clone();
        let grid = SpatialGrid::new(geometry.side.max(radius), radius, dim, &pos);
        let motion =
            Motion::new(model, dim, geometry.side.max(radius), radius, &pos, mix(seed ^ 0x307));
        let mut topo = MobileTopology {
            dim,
            rule: geometry.rule.clone(),
            radius,
            coin_seed: mix(seed ^ 0xc01),
            tick,
            motion,
            pos,
            grid,
            adj: vec![Vec::new(); n],
            strategy: IndexStrategy::default(),
            last_clock: None,
            motion_epoch: 0,
            moved: Vec::new(),
            moved_mark: vec![false; n],
            row_scratch: Vec::new(),
            stats: MobilityStats::default(),
            sample_every: None,
            trace: Vec::new(),
        };
        topo.rebuild_all_rows();
        topo
    }

    /// Selects the index maintenance strategy (builder style).
    pub fn with_strategy(mut self, strategy: IndexStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The active index strategy.
    pub fn strategy(&self) -> IndexStrategy {
        self.strategy
    }

    /// Enables (or disables) time-resolved α/D sampling every `every`
    /// engine steps (plus one baseline sample at the first step). At most
    /// [`TRACE_CAP`] samples are kept.
    pub fn set_sample_every(&mut self, every: Option<u64>) {
        self.sample_every = match every {
            Some(0) => Some(1),
            other => other,
        };
    }

    /// Work counters so far.
    pub fn stats(&self) -> &MobilityStats {
        &self.stats
    }

    /// The recorded samples, in clock order.
    pub fn trace(&self) -> &[MobilitySample] {
        &self.trace
    }

    /// Packages counters + samples for a report.
    pub fn to_trace(&self) -> MobilityTrace {
        MobilityTrace { stats: self.stats, samples: self.trace.clone() }
    }

    /// Current node positions.
    pub fn positions(&self) -> &[[f64; 3]] {
        &self.pos
    }

    /// The interaction radius (grid cell floor and speed unit).
    pub fn interaction_radius(&self) -> f64 {
        self.radius
    }

    /// Current number of derived undirected edges.
    pub fn current_edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Materializes the *current* derived topology as a [`Graph`]
    /// (at t = 0 this is the graph the run's `NetInfo` should measure).
    pub fn current_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.adj.len());
        for (u, row) in self.adj.iter().enumerate() {
            for &w in row {
                if u < w.index() {
                    b.add_edge(u, w.index());
                }
            }
        }
        b.build()
    }

    /// The t = 0 derived graph (alias of [`current_graph`] before any
    /// motion; named for call sites that build the simulation base).
    ///
    /// [`current_graph`]: MobileTopology::current_graph
    pub fn initial_graph(&self) -> Graph {
        assert!(self.last_clock.is_none(), "initial_graph called after motion began");
        self.current_graph()
    }

    /// An order-insensitive digest of the current adjacency (FNV over the
    /// sorted rows) — the cross-strategy differential check at scale.
    pub fn adjacency_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for row in &self.adj {
            h = (h ^ row.len() as u64).wrapping_mul(0x0000_0100_0000_01b3);
            for &w in row {
                h = (h ^ w.index() as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (&self.pos[i], &self.pos[j]);
        if self.dim == 2 {
            // hypot matches the 2D generators bit-for-bit at the boundary.
            (a[0] - b[0]).hypot(a[1] - b[1])
        } else {
            ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
        }
    }

    /// The deterministic gray-zone coin for pair `{i, j}`, uniform in
    /// `[0, 1)` and symmetric in the pair.
    #[inline]
    fn pair_coin(&self, i: usize, j: usize) -> f64 {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let key = ((a as u64) << 32) | b as u64;
        (mix(self.coin_seed ^ key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether the rule connects `{i, j}` at the current positions.
    #[inline]
    fn connected(&self, i: usize, j: usize) -> bool {
        let d = self.dist(i, j);
        match &self.rule {
            GeometryRule::Disk { radius } => d <= *radius,
            GeometryRule::Quasi { r, big_r, gray_p } => {
                d <= *r || (d <= *big_r && self.pair_coin(i, j) < *gray_p)
            }
            GeometryRule::Radio { ranges } => d <= ranges[i].min(ranges[j]),
        }
    }

    /// Recomputes node `i`'s sorted row from the grid into `out`.
    fn compute_row_into(&self, i: usize, out: &mut Vec<NodeId>) {
        out.clear();
        self.grid.for_candidates(self.pos[i], |j| {
            let j = j as usize;
            if j != i && self.connected(i, j) {
                out.push(NodeId::new(j));
            }
        });
        out.sort_unstable();
    }

    /// Recomputes node `i`'s sorted row by brute force into `out`.
    fn compute_row_brute_into(&self, i: usize, out: &mut Vec<NodeId>) {
        out.clear();
        for j in 0..self.pos.len() {
            if j != i && self.connected(i, j) {
                out.push(NodeId::new(j));
            }
        }
    }

    fn rebuild_all_rows(&mut self) {
        let n = self.pos.len();
        self.stats.rows_recomputed += n as u64;
        for i in 0..n {
            let mut row = std::mem::take(&mut self.row_scratch);
            self.compute_row_into(i, &mut row);
            self.row_scratch = std::mem::replace(&mut self.adj[i], row);
        }
    }

    fn rebuild_all_rows_brute(&mut self) {
        let n = self.pos.len();
        self.stats.rows_recomputed += n as u64;
        for i in 0..n {
            let mut row = std::mem::take(&mut self.row_scratch);
            self.compute_row_brute_into(i, &mut row);
            self.row_scratch = std::mem::replace(&mut self.adj[i], row);
        }
    }

    /// Incremental repair: recompute moved rows, patch stationary
    /// neighbors whose relation to a moved node flipped.
    fn incremental_update(&mut self) {
        let moved = std::mem::take(&mut self.moved);
        for &i in &moved {
            if self.grid.update(i as usize, self.pos[i as usize]) {
                self.stats.cell_crossings += 1;
            }
        }
        self.stats.rows_recomputed += moved.len() as u64;
        for &iu in &moved {
            let i = iu as usize;
            let old = std::mem::take(&mut self.adj[i]);
            let mut new_row = std::mem::take(&mut self.row_scratch);
            self.compute_row_into(i, &mut new_row);
            // Two-pointer diff over the sorted rows; only stationary
            // counterparts need patching (moved ones recompute themselves).
            let me = NodeId::new(i);
            let (mut a, mut b) = (0usize, 0usize);
            loop {
                match (old.get(a), new_row.get(b)) {
                    (Some(&x), Some(&y)) if x == y => {
                        a += 1;
                        b += 1;
                    }
                    // Edge {i, x} disappeared.
                    (Some(&x), other) if other.is_none_or(|&y| x < y) => {
                        a += 1;
                        if !self.moved_mark[x.index()] {
                            let row = &mut self.adj[x.index()];
                            if let Ok(pos) = row.binary_search(&me) {
                                row.remove(pos);
                            }
                        }
                    }
                    // Edge {i, y} appeared.
                    (_, Some(&y)) => {
                        b += 1;
                        if !self.moved_mark[y.index()] {
                            let row = &mut self.adj[y.index()];
                            if let Err(pos) = row.binary_search(&me) {
                                row.insert(pos, me);
                            }
                        }
                    }
                    (None, None) => break,
                    // (Some, None) with x >= nothing: covered by the guard
                    // arm above; the guard is total for that shape.
                    (Some(_), None) => unreachable!(),
                }
            }
            self.adj[i] = new_row;
            self.row_scratch = old;
        }
        self.moved = moved;
    }

    fn maybe_sample(&mut self, clock: u64) {
        if self.trace.len() >= TRACE_CAP {
            return;
        }
        let g = self.current_graph();
        let (labels, components) = traversal::connected_components(&g);
        let mut sizes = vec![0usize; components];
        for &l in &labels {
            sizes[l] += 1;
        }
        let (largest_label, largest_component) =
            sizes.iter().copied().enumerate().max_by_key(|&(_, s)| s).unwrap_or((0, g.n().min(1)));
        let diameter = if components <= 1 {
            traversal::diameter_double_sweep(&g)
        } else {
            let keep: Vec<NodeId> =
                g.nodes().filter(|v| labels[v.index()] == largest_label).collect();
            let (sub, _) = g.induced_subgraph(&keep);
            traversal::diameter_double_sweep(&sub)
        };
        // The near-linear α bracket (greedy lower, clique-cover/matching
        // upper): a sample must stay cheap enough to take every few dozen
        // steps, so the exact branch-and-bound solver is never run here.
        let alpha_lower = greedy_mis_min_degree(&g).len();
        let alpha_upper =
            clique_cover_upper_bound(&g).min(matching_upper_bound(&g)).max(alpha_lower);
        self.trace.push(MobilitySample {
            clock,
            edges: g.m(),
            components,
            largest_component,
            diameter,
            alpha_lower,
            alpha_upper,
        });
    }
}

impl TopologyView for MobileTopology {
    fn advance_to(&mut self, _base: &Graph, clock: u64) {
        let prev = match self.last_clock {
            None => {
                self.last_clock = Some(clock);
                if self.sample_every.is_some() {
                    self.maybe_sample(clock);
                }
                return;
            }
            Some(p) => p,
        };
        if clock <= prev {
            return;
        }
        self.last_clock = Some(clock);
        let ticks = clock / self.tick - prev / self.tick;
        if ticks > 0 {
            self.moved.clear();
            for _ in 0..ticks {
                self.stats.ticks += 1;
                self.motion.step(&mut self.pos, &mut self.moved);
            }
            self.stats.moved_node_ticks += self.moved.len() as u64;
            // Dedupe the per-tick move log into a moved-node set.
            let mut w = 0usize;
            for r in 0..self.moved.len() {
                let i = self.moved[r] as usize;
                if !self.moved_mark[i] {
                    self.moved_mark[i] = true;
                    self.moved[w] = self.moved[r];
                    w += 1;
                }
            }
            self.moved.truncate(w);
            if !self.moved.is_empty() {
                self.motion_epoch += 1;
                match self.strategy {
                    IndexStrategy::Incremental => self.incremental_update(),
                    IndexStrategy::Rebuild => {
                        self.grid.rebuild(&self.pos);
                        self.rebuild_all_rows();
                    }
                    IndexStrategy::BruteForce => self.rebuild_all_rows_brute(),
                }
            }
            for &i in &self.moved {
                self.moved_mark[i as usize] = false;
            }
        }
        if let Some(every) = self.sample_every {
            if clock / every > prev / every {
                self.maybe_sample(clock);
            }
        }
    }

    fn neighbors<'a>(&'a self, _base: &'a Graph, v: NodeId) -> &'a [NodeId] {
        &self.adj[v.index()]
    }

    fn is_active(&self, _v: NodeId) -> bool {
        true
    }

    fn is_jammed(&self, _v: NodeId) -> bool {
        false
    }

    /// Mobility never changes node activity or jamming, so the empty
    /// change feed is exact and the sparse kernel applies unmodified.
    fn supports_change_feed(&self) -> bool {
        true
    }

    fn supports_event_jumps(&self) -> bool {
        true
    }

    /// The next tick or sample boundary strictly after `clock`. Landing on
    /// **every** boundary (never batching several ticks into one
    /// `advance_to`) is what keeps the deterministic counters — one
    /// `motion_epoch` bump and one moved-set dedupe per boundary — and the
    /// trace-sample cadence identical to a stepped drive; the engine steps
    /// in the gaps between boundaries are no-ops (`ticks == 0`, no sample
    /// edge), so skipping them is exact.
    fn next_event(&self, clock: u64) -> Option<u64> {
        // Before the baseline call every `advance_to` does work (it
        // anchors `last_clock` and takes the t = 0 trace sample), so no
        // step may be skipped yet.
        if self.last_clock.is_none() {
            return Some(clock + 1);
        }
        let next_tick = (clock / self.tick + 1) * self.tick;
        let next = match self.sample_every {
            Some(every) => next_tick.min((clock / every + 1) * every),
            None => next_tick,
        };
        Some(next)
    }

    /// The live moving point set — what `PositionSource::Live` SINR
    /// reception reads each step.
    fn positions(&self) -> Option<&[[f64; 3]]> {
        Some(&self.pos)
    }

    fn positions_version(&self) -> u64 {
        self.motion_epoch
    }

    /// Cumulative index maintenance, surfaced by the engine into
    /// `SimStats` after every phase. Both counters are deterministic
    /// functions of the advance history, so they stay kernel-invariant.
    fn index_work(&self) -> (u64, u64) {
        (self.stats.cell_crossings, self.stats.rows_recomputed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::WaypointParams;
    use radionet_graph::families::Family;

    fn waypoint() -> MobilityModel {
        MobilityModel::RandomWaypoint(WaypointParams {
            speed_lo: 0.05,
            speed_hi: 0.15,
            pause_lo: 0,
            pause_hi: 3,
            range: 0.0,
        })
    }

    fn udg_topo(n: usize, seed: u64) -> (Graph, MobileTopology) {
        let p = Family::UnitDisk.instantiate_positioned(n, seed);
        let topo = MobileTopology::new(&p.geometry.unwrap(), waypoint(), 1, seed);
        (p.graph, topo)
    }

    #[test]
    fn initial_graph_matches_the_generator_for_deterministic_rules() {
        for fam in [Family::UnitDisk, Family::UnitBall3, Family::GeometricRadio] {
            let p = fam.instantiate_positioned(64, 3);
            let topo = MobileTopology::new(&p.geometry.unwrap(), waypoint(), 1, 3);
            assert_eq!(topo.initial_graph(), p.graph, "{fam}");
        }
    }

    #[test]
    fn quasi_initial_graph_brackets_the_rule() {
        // The gray zone is re-realized with the pair coin, so only the
        // certain/impossible bands must agree with the generated instance.
        let p = Family::QuasiUnitDisk.instantiate_positioned(64, 4);
        let geo = p.geometry.unwrap();
        let topo = MobileTopology::new(&geo, waypoint(), 1, 4);
        let g = topo.initial_graph();
        assert_eq!(g.n(), p.graph.n());
        let (r, big_r) = match geo.rule {
            GeometryRule::Quasi { r, big_r, .. } => (r, big_r),
            _ => unreachable!(),
        };
        for i in 0..g.n() {
            for j in (i + 1)..g.n() {
                let a = &geo.points[i];
                let b = &geo.points[j];
                let d = (a[0] - b[0]).hypot(a[1] - b[1]);
                let has = g.has_edge(g.node(i), g.node(j));
                if d <= r {
                    assert!(has, "certain edge {i}-{j} missing");
                }
                if d > big_r {
                    assert!(!has, "impossible edge {i}-{j} present");
                }
            }
        }
    }

    #[test]
    fn adjacency_stays_symmetric_and_sorted_under_motion() {
        let (g, mut topo) = udg_topo(80, 7);
        for clock in 0..60u64 {
            topo.advance_to(&g, clock);
            for v in 0..g.n() {
                let row = &topo.adj[v];
                assert!(row.windows(2).all(|w| w[0] < w[1]), "row {v} unsorted or duplicated");
                for &w in row {
                    assert!(
                        topo.adj[w.index()].binary_search(&NodeId::new(v)).is_ok(),
                        "edge {v}-{w} asymmetric at clock {clock}"
                    );
                }
            }
        }
    }

    #[test]
    fn motion_actually_changes_the_edge_set() {
        let (g, mut topo) = udg_topo(80, 1);
        let before = topo.adjacency_digest();
        topo.advance_to(&g, 0);
        for clock in 1..=40u64 {
            topo.advance_to(&g, clock);
        }
        assert_ne!(topo.adjacency_digest(), before, "40 ticks moved nothing");
        assert!(topo.stats().ticks == 40);
        assert!(topo.stats().moved_node_ticks > 0);
    }

    #[test]
    fn tick_subsampling_moves_on_boundaries_only() {
        let p = Family::UnitDisk.instantiate_positioned(48, 2);
        let geo = p.geometry.unwrap();
        let mut a = MobileTopology::new(&geo, waypoint(), 4, 9);
        let mut b = MobileTopology::new(&geo, waypoint(), 4, 9);
        a.advance_to(&p.graph, 0);
        b.advance_to(&p.graph, 0);
        // Advancing within a tick window changes nothing…
        a.advance_to(&p.graph, 3);
        assert_eq!(a.stats().ticks, 0);
        assert_eq!(a.adjacency_digest(), b.adjacency_digest());
        // …and one call spanning several windows catches up tick by tick.
        a.advance_to(&p.graph, 12);
        for clock in 1..=12u64 {
            b.advance_to(&p.graph, clock);
        }
        assert_eq!(a.stats().ticks, 3);
        assert_eq!(b.stats().ticks, 3);
        assert_eq!(a.adjacency_digest(), b.adjacency_digest(), "catch-up diverged");
    }

    #[test]
    fn sampling_records_alpha_and_diameter() {
        let (g, mut topo) = udg_topo(64, 5);
        topo.set_sample_every(Some(10));
        for clock in 0..35u64 {
            topo.advance_to(&g, clock);
        }
        let trace = topo.to_trace();
        assert_eq!(trace.samples.len(), 4, "baseline + 3 boundary crossings");
        for s in &trace.samples {
            assert!(s.alpha_lower >= 1 && s.alpha_upper >= s.alpha_lower);
            assert!(s.largest_component >= 1 && s.components >= 1);
            assert!(s.edges > 0);
        }
        assert_eq!(trace.samples[0].clock, 0);
        assert_eq!(trace.stats, *topo.stats());
        let json = serde_json::to_string(&trace).unwrap();
        let back: MobilityTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn static_model_is_free_and_frozen() {
        let p = Family::UnitDisk.instantiate_positioned(48, 6);
        let mut topo = MobileTopology::new(&p.geometry.unwrap(), MobilityModel::Static, 1, 6);
        let before = topo.adjacency_digest();
        for clock in 0..50u64 {
            topo.advance_to(&p.graph, clock);
        }
        assert_eq!(topo.adjacency_digest(), before);
        assert_eq!(topo.stats().moved_node_ticks, 0);
        assert_eq!(topo.stats().rows_recomputed, 48, "only the initial build");
    }

    #[test]
    #[should_panic(expected = "tick must be")]
    fn zero_tick_rejected() {
        let p = Family::UnitDisk.instantiate_positioned(16, 0);
        let _ = MobileTopology::new(&p.geometry.unwrap(), waypoint(), 0, 0);
    }

    #[test]
    fn position_feed_versions_track_actual_motion() {
        // The TopologyView position feed: present, one point per node,
        // and the version stamp bumps exactly when something moved.
        let (g, mut topo) = udg_topo(48, 8);
        let feed = TopologyView::positions(&topo).expect("mobile views carry positions");
        assert_eq!(feed.len(), g.n());
        assert_eq!(topo.positions_version(), 0);
        topo.advance_to(&g, 0); // baseline call moves nothing
        assert_eq!(topo.positions_version(), 0);
        let mut last = 0;
        for clock in 1..=30u64 {
            topo.advance_to(&g, clock);
            let v = topo.positions_version();
            assert!(v >= last, "version must be monotone");
            last = v;
        }
        assert!(last > 0, "30 waypoint ticks must bump the version");

        // A frozen model never bumps it.
        let p = Family::UnitDisk.instantiate_positioned(32, 3);
        let mut frozen = MobileTopology::new(&p.geometry.unwrap(), MobilityModel::Static, 1, 3);
        for clock in 0..20u64 {
            frozen.advance_to(&p.graph, clock);
        }
        assert_eq!(frozen.positions_version(), 0);
    }
}
