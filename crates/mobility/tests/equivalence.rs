//! The mobility subsystem's differential guarantees:
//!
//! 1. **Index equivalence** — the incremental grid index, the full-rebuild
//!    grid path, and the `O(n²)` brute-force oracle derive the *identical*
//!    edge set at every step, across models × densities × rules × tick
//!    cadences (proptest).
//! 2. **Kernel equivalence** — the sparse active-set kernel and the dense
//!    reference kernel produce identical [`PhaseReport`]s, RNG
//!    fingerprints, and protocol state on a [`MobileTopology`].

use proptest::prelude::*;
use radionet_graph::families::{Geometry, GeometryRule};
use radionet_graph::Graph;
use radionet_mobility::{
    GroupDriftParams, IndexStrategy, MobileTopology, MobilityModel, WalkParams, WaypointParams,
};
use radionet_sim::{
    Action, Kernel, NetInfo, NodeCtx, PositionSource, Protocol, ReceptionMode, Sim, SinrConfig,
    TopologyView,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn uniform_geometry(n: usize, dim: u32, side: f64, rule: GeometryRule, seed: u64) -> Geometry {
    let mut rng = SmallRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| {
            let mut p = [0.0; 3];
            for c in p.iter_mut().take(dim as usize) {
                *c = rng.gen::<f64>() * side;
            }
            p
        })
        .collect();
    Geometry { points, dim, side, rule }
}

fn model_for(kind: u8) -> MobilityModel {
    match kind % 4 {
        0 => MobilityModel::RandomWaypoint(WaypointParams {
            speed_lo: 0.05,
            speed_hi: 0.4,
            pause_lo: 0,
            pause_hi: 4,
            range: 0.0,
        }),
        1 => MobilityModel::RandomWalk(WalkParams {
            step: 0.25,
            levy_alpha: 0.0,
            run_lo: 1,
            run_hi: 6,
            pause_lo: 0,
            pause_hi: 3,
        }),
        2 => MobilityModel::RandomWalk(WalkParams {
            step: 0.1,
            levy_alpha: 1.4,
            run_lo: 1,
            run_hi: 4,
            pause_lo: 0,
            pause_hi: 5,
        }),
        _ => MobilityModel::GroupDrift(GroupDriftParams {
            groups: 3,
            speed: 0.2,
            jitter: 0.05,
            hold: 5,
        }),
    }
}

fn rule_for(kind: u8, n: usize, seed: u64) -> GeometryRule {
    match kind % 3 {
        0 => GeometryRule::Disk { radius: 1.0 },
        1 => GeometryRule::Quasi { r: 0.6, big_r: 1.2, gray_p: 0.5 },
        _ => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x7a);
            GeometryRule::Radio { ranges: (0..n).map(|_| rng.gen_range(0.7..=1.4)).collect() }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental ≡ rebuild ≡ brute force, step by step.
    #[test]
    fn index_strategies_agree(
        n in 20usize..120,
        side in 3.0f64..12.0,
        model_kind in 0u8..4,
        rule_kind in 0u8..3,
        dim3 in any::<bool>(),
        tick in 1u64..4,
        seed in 0u64..1_000,
        steps in 5u64..40,
    ) {
        let dim = if dim3 { 3 } else { 2 };
        let rule = rule_for(rule_kind, n, seed);
        let geo = uniform_geometry(n, dim, side, rule, seed ^ 0x9e1);
        let model = model_for(model_kind);
        let base = Graph::from_edges(n, []).unwrap();
        let mut topos = [
            MobileTopology::new(&geo, model, tick, seed).with_strategy(IndexStrategy::Incremental),
            MobileTopology::new(&geo, model, tick, seed).with_strategy(IndexStrategy::Rebuild),
            MobileTopology::new(&geo, model, tick, seed).with_strategy(IndexStrategy::BruteForce),
        ];
        for clock in 0..steps {
            for topo in &mut topos {
                topo.advance_to(&base, clock);
            }
            let digests: Vec<u64> = topos.iter().map(|t| t.adjacency_digest()).collect();
            prop_assert_eq!(digests[0], digests[2],
                "incremental diverged from brute force at clock {}", clock);
            prop_assert_eq!(digests[1], digests[2],
                "rebuild diverged from brute force at clock {}", clock);
            // Spot-check actual rows, not just the digest.
            for v in (0..n).step_by(7) {
                let v = base.node(v);
                prop_assert_eq!(
                    topos[0].neighbors(&base, v),
                    topos[2].neighbors(&base, v)
                );
            }
        }
    }
}

/// A protocol transmitting with probability 1/2 per step; listens
/// otherwise and records everything heard (randomized traffic over the
/// moving edge set).
struct Coin {
    sent: Vec<bool>,
    heard: Vec<u64>,
    collisions: usize,
}

impl Protocol for Coin {
    type Msg = u64;
    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u64> {
        let t = ctx.rng.gen_bool(0.5);
        self.sent.push(t);
        if t {
            Action::Transmit(ctx.time)
        } else {
            Action::Listen
        }
    }
    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &u64) {
        self.heard.push(*msg);
    }
    fn on_collision(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.collisions += 1;
    }
}

/// Per-node end state: (transmit log, heard log, collision count).
type NodeOutcome = (Vec<bool>, Vec<u64>, usize);

fn run_kernel(
    geo: &Geometry,
    model: MobilityModel,
    kernel: Kernel,
    reception: ReceptionMode,
    seed: u64,
    budget: u64,
) -> (radionet_sim::PhaseReport, u64, Vec<NodeOutcome>) {
    let topo = MobileTopology::new(geo, model, 1, seed);
    let g = topo.initial_graph();
    let info = NetInfo::exact(&g);
    let mut sim = Sim::with_topology(&g, topo, info, seed ^ 0x51, reception);
    sim.set_kernel(kernel);
    let mut states: Vec<Coin> =
        g.nodes().map(|_| Coin { sent: Vec::new(), heard: Vec::new(), collisions: 0 }).collect();
    let rep = sim.run_phase(&mut states, budget);
    let fp = sim.rng_fingerprint();
    (rep, fp, states.into_iter().map(|c| (c.sent, c.heard, c.collisions)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sparse kernel ≡ dense kernel on a moving topology: PhaseReport,
    /// per-node RNG fingerprint, and full protocol state.
    #[test]
    fn kernels_agree_on_mobile_topology(
        n in 16usize..64,
        model_kind in 0u8..4,
        cd in any::<bool>(),
        seed in 0u64..500,
    ) {
        let side = (n as f64 / 3.0).sqrt() * 1.5;
        let geo = uniform_geometry(n, 2, side, GeometryRule::Disk { radius: 1.0 }, seed ^ 0x11);
        let model = model_for(model_kind);
        let reception = if cd { ReceptionMode::ProtocolCd } else { ReceptionMode::Protocol };
        let budget = 40;
        let sparse = run_kernel(&geo, model, Kernel::Sparse, reception.clone(), seed, budget);
        let dense = run_kernel(&geo, model, Kernel::Dense, reception, seed, budget);
        prop_assert_eq!(sparse.0, dense.0, "PhaseReports differ");
        prop_assert_eq!(sparse.1, dense.1, "RNG fingerprints differ");
        prop_assert_eq!(sparse.2, dense.2, "protocol state differs");
    }

    /// SINR reception over the *live* moving point set: the sparse
    /// kernel's spatially-indexed physical resolution must match the
    /// dense reference bit-for-bit while the positions (and therefore
    /// its decode-range grid) change underneath it — across 2D and 3D
    /// geometries and every mobility model.
    #[test]
    fn sinr_kernels_agree_on_mobile_topology(
        n in 16usize..56,
        model_kind in 0u8..4,
        dim3 in any::<bool>(),
        seed in 0u64..500,
    ) {
        let dim = if dim3 { 3 } else { 2 };
        let side = if dim3 {
            (n as f64 / 2.0).cbrt() * 1.6
        } else {
            (n as f64 / 3.0).sqrt() * 1.5
        };
        let geo = uniform_geometry(n, dim, side, GeometryRule::Disk { radius: 1.0 }, seed ^ 0x2e);
        let model = model_for(model_kind);
        let reception = ReceptionMode::Sinr(SinrConfig::for_unit_range(PositionSource::Live, 1.0));
        let budget = 40;
        let sparse = run_kernel(&geo, model, Kernel::Sparse, reception.clone(), seed, budget);
        let dense = run_kernel(&geo, model, Kernel::Dense, reception, seed, budget);
        prop_assert_eq!(sparse.0.fell_back, false, "live SINR must run sparse");
        prop_assert_eq!(sparse.0, dense.0, "PhaseReports differ");
        prop_assert_eq!(sparse.1, dense.1, "RNG fingerprints differ");
        prop_assert_eq!(sparse.2, dense.2, "protocol state differs");
    }
}
