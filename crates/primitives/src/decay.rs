//! The Decay protocol (paper, Algorithm 5; originally Bar-Yehuda, Goldreich
//! and Itai).
//!
//! One *iteration* of Decay lasts `⌈log₂ n⌉` steps; in sub-step `i`
//! (1-based) each participating node transmits its message with probability
//! `2^{-i}`. If a set `S` of nodes performs one iteration, every node with a
//! neighbor in `S` hears a transmission with constant probability; `O(log n)`
//! iterations amplify this to high probability (Claim 10, validated by
//! experiment E1).

use radionet_sim::{Action, NodeCtx, Protocol, Wake};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The transmission-probability schedule of Decay.
///
/// ```
/// use radionet_primitives::DecaySchedule;
/// let s = DecaySchedule::new(8); // log n = 8
/// assert_eq!(s.steps_per_iteration(), 8);
/// assert_eq!(s.prob(0), 0.5);       // sub-step 1: 2^-1
/// assert_eq!(s.prob(7), 1.0 / 256.0);
/// assert_eq!(s.prob(8), 0.5);       // wraps into the next iteration
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecaySchedule {
    log_n: u32,
}

impl DecaySchedule {
    /// Schedule for a network with `⌈log₂ n⌉ = log_n` (clamped to ≥ 1).
    pub fn new(log_n: u32) -> Self {
        DecaySchedule { log_n: log_n.max(1) }
    }

    /// Steps in one Decay iteration.
    pub fn steps_per_iteration(&self) -> u32 {
        self.log_n
    }

    /// Transmission probability at (0-based) local step `t`, wrapping across
    /// iterations: `2^{-(1 + t mod log n)}`.
    pub fn prob(&self, t: u64) -> f64 {
        let i = (t % self.log_n as u64) as i32;
        2f64.powi(-(i + 1))
    }
}

/// Configuration for [`DecayProtocol`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecayConfig {
    /// Number of Decay iterations (Claim 10 amplification). The paper uses
    /// `O(log n)`; experiments sweep this.
    pub iterations: u32,
}

impl DecayConfig {
    /// The whp default: `2·⌈log₂ n⌉` iterations.
    pub fn whp(log_n: u32) -> Self {
        DecayConfig { iterations: 2 * log_n.max(1) }
    }

    /// Total steps the protocol runs for a given schedule.
    pub fn total_steps(&self, schedule: DecaySchedule) -> u64 {
        self.iterations as u64 * schedule.steps_per_iteration() as u64
    }
}

/// Standalone Decay as a [`Protocol`]: members of the transmitting set `S`
/// carry `Some(message)`; every node records all messages it hears.
///
/// After [`DecayConfig::total_steps`] steps every node is done; inspect
/// [`heard`](DecayProtocol::heard) / [`heard_any`](DecayProtocol::heard_any).
#[derive(Clone, Debug)]
pub struct DecayProtocol<M> {
    schedule: DecaySchedule,
    config: DecayConfig,
    message: Option<M>,
    heard: Vec<M>,
    elapsed: u64,
}

impl<M: Clone> DecayProtocol<M> {
    /// A node in `S` (with `Some(message)`) or a listener (`None`).
    pub fn new(schedule: DecaySchedule, config: DecayConfig, message: Option<M>) -> Self {
        DecayProtocol { schedule, config, message, heard: Vec::new(), elapsed: 0 }
    }

    /// Every message heard, in arrival order.
    pub fn heard(&self) -> &[M] {
        &self.heard
    }

    /// Whether anything was heard.
    pub fn heard_any(&self) -> bool {
        !self.heard.is_empty()
    }

    /// Whether this node is in the transmitting set.
    pub fn is_transmitter(&self) -> bool {
        self.message.is_some()
    }
}

impl<M: Clone> Protocol for DecayProtocol<M> {
    type Msg = M;

    // Time-based (phase-local `ctx.time`) rather than call-counting, so the
    // sparse kernel can skip the pure-listener steps: an uncalled listener's
    // state is bit-identical to a called one's, except for the `elapsed`
    // bookkeeping that `act` re-derives from the clock whenever it runs.
    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<M> {
        let total = self.config.total_steps(self.schedule);
        if ctx.time >= total {
            self.elapsed = total;
            return Action::Idle;
        }
        self.elapsed = ctx.time + 1;
        match &self.message {
            Some(m) if ctx.rng.gen_bool(self.schedule.prob(ctx.time)) => {
                Action::Transmit(m.clone())
            }
            _ => Action::Listen,
        }
    }

    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &M) {
        self.heard.push(msg.clone());
    }

    fn is_done(&self) -> bool {
        self.elapsed >= self.config.total_steps(self.schedule)
    }

    fn next_wake(&self, now: u64) -> Wake {
        let total = self.config.total_steps(self.schedule);
        if now + 1 >= total {
            Wake::Retire
        } else if self.message.is_some() {
            // Transmitters flip a coin every step.
            Wake::Now
        } else {
            // Pure listeners: passive through the whole schedule, done at
            // its end (the final act at `total` only turns listening off).
            Wake::Listen { wake_at: total, done_at: Some(total - 1) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_graph::Graph;
    use radionet_sim::{NetInfo, Sim};

    fn run_decay(g: &Graph, set: &[usize], iterations: u32, seed: u64) -> Vec<Vec<u32>> {
        let info = NetInfo::exact(g);
        let schedule = DecaySchedule::new(info.log_n());
        let config = DecayConfig { iterations };
        let mut sim = Sim::new(g, info, seed);
        let mut states: Vec<DecayProtocol<u32>> = g
            .nodes()
            .map(|v| {
                let msg = set.contains(&v.index()).then_some(v.index() as u32);
                DecayProtocol::new(schedule, config, msg)
            })
            .collect();
        let rep = sim.run_phase(&mut states, config.total_steps(schedule) + 1);
        assert!(rep.completed);
        states.into_iter().map(|s| s.heard).collect()
    }

    #[test]
    fn schedule_probabilities() {
        let s = DecaySchedule::new(4);
        assert_eq!(s.prob(0), 0.5);
        assert_eq!(s.prob(1), 0.25);
        assert_eq!(s.prob(3), 0.0625);
        assert_eq!(s.prob(4), 0.5); // wrap
    }

    #[test]
    fn schedule_clamps_log_n() {
        assert_eq!(DecaySchedule::new(0).steps_per_iteration(), 1);
    }

    #[test]
    fn single_transmitter_always_delivers() {
        // With |S| = 1, the first sub-step (p = 1/2) delivers in expectation
        // half the time; 2 log n iterations make failure vanishing.
        let g = generators::star(16);
        let heard = run_decay(&g, &[0], 10, 42);
        for (leaf, h) in heard.iter().enumerate().skip(1) {
            assert!(!h.is_empty(), "leaf {leaf} heard nothing");
        }
    }

    #[test]
    fn clique_of_transmitters_resolves() {
        // All nodes of a clique transmit: Claim 10 says everyone (being a
        // neighbor of S) still hears something whp thanks to the decaying
        // probabilities.
        let g = generators::complete(32);
        let heard = run_decay(&g, &(0..32).collect::<Vec<_>>(), 12, 7);
        let ok = heard.iter().filter(|h| !h.is_empty()).count();
        assert!(ok >= 31, "only {ok}/32 clique nodes heard");
    }

    #[test]
    fn non_neighbors_hear_nothing() {
        // Path 0-1-2-3: S = {0}; node 2 and 3 have no neighbor in S.
        let g = generators::path(4);
        let heard = run_decay(&g, &[0], 8, 3);
        assert!(!heard[1].is_empty());
        assert!(heard[2].is_empty());
        assert!(heard[3].is_empty());
    }

    #[test]
    fn transmitters_hear_each_other() {
        // Two adjacent transmitters: each should hear the other whp (needed
        // by the MIS marked-phase). With log n = 1 the per-step success
        // probability is 1/4 per direction, so 40 iterations make failure
        // ≈ 0.75⁴⁰ ≈ 10⁻⁵.
        let g = generators::path(2);
        let heard = run_decay(&g, &[0, 1], 40, 5);
        assert!(!heard[0].is_empty());
        assert!(!heard[1].is_empty());
    }

    #[test]
    fn empty_set_silence() {
        let g = generators::complete(8);
        let heard = run_decay(&g, &[], 4, 1);
        assert!(heard.iter().all(|h| h.is_empty()));
    }

    #[test]
    fn whp_config_scales() {
        let c = DecayConfig::whp(10);
        assert_eq!(c.iterations, 20);
        assert_eq!(c.total_steps(DecaySchedule::new(10)), 200);
    }

    #[test]
    fn protocol_goes_idle_after_budget() {
        let g = generators::path(2);
        let info = NetInfo::exact(&g);
        let schedule = DecaySchedule::new(2);
        let config = DecayConfig { iterations: 1 };
        let mut sim = Sim::new(&g, info, 0);
        let mut states = vec![
            DecayProtocol::new(schedule, config, Some(1u32)),
            DecayProtocol::<u32>::new(schedule, config, None),
        ];
        let rep = sim.run_phase(&mut states, 100);
        assert!(rep.completed);
        assert_eq!(rep.steps, config.total_steps(schedule));
    }
}
