//! EstimateEffectiveDegree (paper, Algorithm 6).
//!
//! Every active node `v` holds a desire level `p_t(v)`; its *effective
//! degree* is `d_t(v) = Σ_{u∈N(v)} p_t(u)`. The procedure runs `log n + 1`
//! blocks; in block `i` every node transmits with probability `p_t(v)/2^i`
//! for `C log n` steps and counts the transmissions it hears. If any block's
//! count reaches the threshold, the verdict is **High**, otherwise **Low**.
//!
//! Lemma 11 guarantees (whp): `d_t(v) ≥ 1 ⇒ High` and `d_t(v) ≤ 0.01 ⇒
//! Low`; in between, either answer is allowed. The paper's constants
//! (`C log n / 33`) are asymptotic; [`EedConfig`] keeps the same functional
//! form with calibrated defaults (DESIGN.md substitution S2, experiment
//! E12): the per-step hearing probability in the best block is in practice
//! `≈ d·e^{-d} = Ω(1)` for `d ≥ 1` versus `≤ 2·0.01` for `d ≤ 0.01`, so a
//! threshold fraction between those separates reliably.

use radionet_sim::{Action, NodeCtx, Protocol, Wake};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The two possible answers of EstimateEffectiveDegree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EedVerdict {
    /// Effective degree is above the low threshold (whp if `d ≥ 1`).
    High,
    /// Effective degree is below the high threshold (whp if `d ≤ 0.01`).
    Low,
}

/// Configuration of the procedure (paper's `C` and the count threshold).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EedConfig {
    /// Steps per block = `c_steps · log n` (the paper's `C log n`).
    pub c_steps: u32,
    /// Verdict is High iff some block's heard-count `≥ threshold_frac ·
    /// c_steps · log n` (the paper uses `1/33`; we default to `1/12`, between
    /// the Low ceiling `0.02` and the practical High floor `≈ e^{-1}`).
    pub threshold_frac: f64,
}

impl Default for EedConfig {
    fn default() -> Self {
        EedConfig { c_steps: 8, threshold_frac: 1.0 / 12.0 }
    }
}

impl EedConfig {
    /// Steps in one block for a network with the given `log n`.
    pub fn block_steps(&self, log_n: u32) -> u64 {
        (self.c_steps * log_n.max(1)) as u64
    }

    /// Number of blocks: `log n + 1` (block indices `i = 0..=log n`).
    pub fn blocks(&self, log_n: u32) -> u64 {
        log_n.max(1) as u64 + 1
    }

    /// Total steps of one EstimateEffectiveDegree execution.
    pub fn total_steps(&self, log_n: u32) -> u64 {
        self.blocks(log_n) * self.block_steps(log_n)
    }

    /// The per-block High threshold (in heard transmissions).
    pub fn threshold(&self, log_n: u32) -> u64 {
        (self.threshold_frac * self.block_steps(log_n) as f64).ceil().max(1.0) as u64
    }
}

/// Reusable counting core of EstimateEffectiveDegree, embeddable inside
/// larger protocols (RadioMIS drives one of these per round).
///
/// Call [`transmit_prob`](EedCounter::transmit_prob) to decide each step's
/// action, [`note`](EedCounter::note) once per step with whether something
/// was heard, and read [`verdict`](EedCounter::verdict) once
/// [`finished`](EedCounter::finished).
#[derive(Clone, Copy, Debug)]
pub struct EedCounter {
    config: EedConfig,
    log_n: u32,
    /// Current block index `i` (0 ..= log n).
    block: u64,
    /// Step within the current block.
    step: u64,
    /// Heard-count within the current block.
    count: u64,
    /// Whether any block reached the threshold.
    high: bool,
}

impl EedCounter {
    /// Starts a fresh execution.
    pub fn new(config: EedConfig, log_n: u32) -> Self {
        EedCounter { config, log_n: log_n.max(1), block: 0, step: 0, count: 0, high: false }
    }

    /// Probability with which the owner should transmit this step:
    /// `p / 2^i` where `i` is the current block.
    pub fn transmit_prob(&self, p: f64) -> f64 {
        (p * 2f64.powi(-(self.block as i32))).clamp(0.0, 1.0)
    }

    /// Records the outcome of the current step and advances.
    ///
    /// # Panics
    ///
    /// Panics if called after [`finished`](EedCounter::finished).
    pub fn note(&mut self, heard: bool) {
        assert!(!self.finished(), "EedCounter advanced past its last step");
        if heard {
            self.count += 1;
            if self.count >= self.config.threshold(self.log_n) {
                self.high = true;
            }
        }
        self.step += 1;
        if self.step >= self.config.block_steps(self.log_n) {
            self.step = 0;
            self.count = 0;
            self.block += 1;
        }
    }

    /// Whether all blocks have elapsed.
    pub fn finished(&self) -> bool {
        self.block >= self.config.blocks(self.log_n)
    }

    /// The verdict; `None` until [`finished`](EedCounter::finished).
    pub fn verdict(&self) -> Option<EedVerdict> {
        self.finished().then_some(if self.high { EedVerdict::High } else { EedVerdict::Low })
    }
}

/// Standalone EstimateEffectiveDegree as a [`Protocol`], for direct
/// validation of Lemma 11 (experiment E2). Each node is given its fixed
/// desire level `p`; after `total_steps` the verdict is available.
#[derive(Clone, Debug)]
pub struct EedProtocol {
    counter: EedCounter,
    p: f64,
    heard_this_step: bool,
    started: bool,
}

impl EedProtocol {
    /// A node with desire level `p ∈ [0, 1/2]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `\[0, 1\]`.
    pub fn new(config: EedConfig, log_n: u32, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "desire level must be in [0, 1]");
        EedProtocol {
            counter: EedCounter::new(config, log_n),
            p,
            heard_this_step: false,
            started: false,
        }
    }

    /// The verdict; `None` until the protocol finished.
    pub fn verdict(&self) -> Option<EedVerdict> {
        self.counter.verdict()
    }
}

impl Protocol for EedProtocol {
    type Msg = ();

    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<()> {
        // Settle the previous step's outcome first (on_hear runs between acts).
        if self.started && !self.counter.finished() {
            let heard = self.heard_this_step;
            self.heard_this_step = false;
            self.counter.note(heard);
        }
        self.started = true;
        if self.counter.finished() {
            return Action::Idle;
        }
        if ctx.rng.gen_bool(self.counter.transmit_prob(self.p)) {
            Action::Transmit(())
        } else {
            Action::Listen
        }
    }

    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &()) {
        self.heard_this_step = true;
    }

    fn is_done(&self) -> bool {
        self.counter.finished()
    }

    fn next_wake(&self, _now: u64) -> Wake {
        // Every live step draws a transmit coin; once the counter finishes,
        // `act` is a pure `Idle` forever.
        if self.counter.finished() {
            Wake::Retire
        } else {
            Wake::Now
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_graph::Graph;
    use radionet_sim::{NetInfo, Sim};

    /// Runs standalone EED on `g` with per-node desire levels; returns verdicts.
    fn run_eed(g: &Graph, ps: &[f64], seed: u64) -> Vec<EedVerdict> {
        let info = NetInfo::exact(g);
        let config = EedConfig::default();
        let log_n = info.log_n();
        let mut sim = Sim::new(g, info, seed);
        let mut states: Vec<EedProtocol> =
            ps.iter().map(|&p| EedProtocol::new(config, log_n, p)).collect();
        // One extra step so every node settles its final counter state.
        let rep = sim.run_phase(&mut states, config.total_steps(log_n) + 2);
        assert!(rep.completed);
        states.iter().map(|s| s.verdict().expect("finished")).collect()
    }

    #[test]
    fn config_arithmetic() {
        let c = EedConfig { c_steps: 8, threshold_frac: 0.1 };
        assert_eq!(c.block_steps(10), 80);
        assert_eq!(c.blocks(10), 11);
        assert_eq!(c.total_steps(10), 880);
        assert_eq!(c.threshold(10), 8);
    }

    #[test]
    fn counter_lifecycle() {
        let c = EedConfig { c_steps: 1, threshold_frac: 1.0 };
        let mut k = EedCounter::new(c, 2); // 3 blocks × 2 steps
        assert_eq!(k.transmit_prob(0.5), 0.5);
        k.note(false);
        k.note(false);
        assert_eq!(k.transmit_prob(0.5), 0.25); // block 1
        for _ in 0..4 {
            k.note(false);
        }
        assert!(k.finished());
        assert_eq!(k.verdict(), Some(EedVerdict::Low));
    }

    #[test]
    #[should_panic(expected = "advanced past its last step")]
    fn counter_overrun_panics() {
        let c = EedConfig { c_steps: 1, threshold_frac: 1.0 };
        let mut k = EedCounter::new(c, 1); // 2 blocks × 1 step
        k.note(false);
        k.note(false);
        k.note(false);
    }

    #[test]
    fn counter_high_on_threshold() {
        let c = EedConfig { c_steps: 4, threshold_frac: 0.5 }; // threshold = 2 per 4-step block
        let mut k = EedCounter::new(c, 1);
        k.note(true);
        k.note(true);
        while !k.finished() {
            k.note(false);
        }
        assert_eq!(k.verdict(), Some(EedVerdict::High));
    }

    #[test]
    fn lemma11_high_when_degree_at_least_one() {
        // Star with hub 0: leaves have p = 1/2 each, so d(hub) = (n-1)/2 ≥ 1
        // and d(leaf) = p(hub) = 1/2 + ... choose hub p small so leaves are Low.
        let g = generators::star(9);
        let mut ps = vec![0.5; 9];
        ps[0] = 0.001; // hub barely transmits: leaves have d = 0.001 ≤ 0.01 → Low
        let verdicts = run_eed(&g, &ps, 11);
        assert_eq!(verdicts[0], EedVerdict::High, "hub d = 4 must be High");
        for (leaf, v) in verdicts.iter().enumerate().skip(1) {
            assert_eq!(*v, EedVerdict::Low, "leaf {leaf} d = 0.001");
        }
    }

    #[test]
    fn lemma11_low_when_isolated() {
        // Path of 2 with p = 0 on both: d = 0 everywhere → Low.
        let g = generators::path(2);
        let verdicts = run_eed(&g, &[0.0, 0.0], 3);
        assert_eq!(verdicts, vec![EedVerdict::Low, EedVerdict::Low]);
    }

    #[test]
    fn lemma11_high_in_dense_clique() {
        // Clique of 16, all p = 1/2: d(v) = 7.5 ≥ 1 → High everywhere,
        // even though most steps collide.
        let g = generators::complete(16);
        let verdicts = run_eed(&g, &[0.5; 16], 5);
        assert!(verdicts.iter().all(|&v| v == EedVerdict::High));
    }

    #[test]
    #[should_panic(expected = "desire level must be in [0, 1]")]
    fn rejects_bad_p() {
        let _ = EedProtocol::new(EedConfig::default(), 4, 1.5);
    }
}
