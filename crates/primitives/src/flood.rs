//! Repeated-Decay flooding.
//!
//! Every node that knows a message keeps performing Decay iterations with
//! the *highest* message it knows; listeners adopt higher messages as they
//! hear them. Started from a single source this is exactly the classic BGI
//! broadcast (`O(D log n + log² n)` whp); started from many sources it is
//! the multi-source "highest message wins" competition used by the naive
//! leader-election baseline.

use crate::decay::DecaySchedule;
use radionet_sim::{Action, NodeCtx, Protocol};
use rand::Rng;

/// Decay-flooding protocol state for one node.
///
/// The message type must be totally ordered; higher messages override lower
/// ones (the paper's `Compete` uses the same lexicographic-override rule).
/// The protocol never self-terminates (completion is not locally detectable
/// in the radio model); run it for a caller-chosen step budget.
#[derive(Clone, Debug)]
pub struct FloodProtocol<M> {
    schedule: DecaySchedule,
    /// Highest message known so far (`None` = uninformed).
    best: Option<M>,
    /// Steps already spent *as an informed node* (drives the decay phase).
    informed_steps: u64,
}

impl<M: Clone + Ord> FloodProtocol<M> {
    /// A source (with `Some(message)`) or an uninformed node (`None`).
    pub fn new(schedule: DecaySchedule, message: Option<M>) -> Self {
        FloodProtocol { schedule, best: message, informed_steps: 0 }
    }

    /// The highest message this node knows, if any.
    pub fn best(&self) -> Option<&M> {
        self.best.as_ref()
    }
}

impl<M: Clone + Ord> Protocol for FloodProtocol<M> {
    type Msg = M;

    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<M> {
        match &self.best {
            None => Action::Listen,
            Some(m) => {
                let t = self.informed_steps;
                self.informed_steps += 1;
                if ctx.rng.gen_bool(self.schedule.prob(t)) {
                    Action::Transmit(m.clone())
                } else {
                    Action::Listen
                }
            }
        }
    }

    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &M) {
        if self.best.as_ref() < Some(msg) {
            self.best = Some(msg.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_graph::Graph;
    use radionet_sim::{NetInfo, Sim};

    /// Floods from the given sources for `steps`; returns per-node best.
    fn run_flood(g: &Graph, sources: &[(usize, u64)], steps: u64, seed: u64) -> Vec<Option<u64>> {
        let info = NetInfo::exact(g);
        let schedule = DecaySchedule::new(info.log_n());
        let mut sim = Sim::new(g, info, seed);
        let mut states: Vec<FloodProtocol<u64>> = g
            .nodes()
            .map(|v| {
                let msg = sources.iter().find(|(s, _)| *s == v.index()).map(|&(_, m)| m);
                FloodProtocol::new(schedule, msg)
            })
            .collect();
        sim.run_phase(&mut states, steps);
        states.into_iter().map(|s| s.best().copied()).collect()
    }

    /// A generous BGI budget: 8 (D log n + log² n).
    fn budget(g: &Graph) -> u64 {
        let info = NetInfo::exact(g);
        let l = info.log_n() as u64;
        8 * (info.d as u64 * l + l * l)
    }

    #[test]
    fn single_source_floods_path() {
        let g = generators::path(24);
        let out = run_flood(&g, &[(0, 99)], budget(&g), 2);
        assert!(out.iter().all(|&b| b == Some(99)), "{out:?}");
    }

    #[test]
    fn single_source_floods_grid() {
        let g = generators::grid2d(6, 6);
        let out = run_flood(&g, &[(0, 1)], budget(&g), 4);
        assert!(out.iter().all(|&b| b == Some(1)));
    }

    #[test]
    fn highest_message_wins() {
        let g = generators::cycle(16);
        let out = run_flood(&g, &[(0, 5), (8, 9)], budget(&g), 6);
        assert!(out.iter().all(|&b| b == Some(9)), "{out:?}");
    }

    #[test]
    fn no_sources_stays_silent() {
        let g = generators::path(5);
        let out = run_flood(&g, &[], 200, 8);
        assert!(out.iter().all(|b| b.is_none()));
    }

    #[test]
    fn insufficient_budget_incomplete() {
        // A long path with a tiny budget cannot be fully informed: message
        // moves at most 1 hop per step.
        let g = generators::path(64);
        let out = run_flood(&g, &[(0, 1)], 10, 1);
        assert!(out[63].is_none());
    }
}
