//! Repeated-Decay flooding.
//!
//! Every node that knows a message keeps performing Decay iterations with
//! the *highest* message it knows; listeners adopt higher messages as they
//! hear them. Started from a single source this is exactly the classic BGI
//! broadcast (`O(D log n + log² n)` whp); started from many sources it is
//! the multi-source "highest message wins" competition used by the naive
//! leader-election baseline.

use crate::decay::DecaySchedule;
use radionet_sim::{Action, NodeCtx, Protocol, Wake};
use rand::Rng;

/// Decay-flooding protocol state for one node.
///
/// The message type must be totally ordered; higher messages override lower
/// ones (the paper's `Compete` uses the same lexicographic-override rule).
/// By default the protocol never self-terminates (completion is not locally
/// detectable in the radio model); run it for a caller-chosen step budget,
/// or construct it [`with_quiesce`](FloodProtocol::with_quiesce) so each
/// node retires a fixed number of steps after becoming informed — the
/// standard local-termination variant, and the one that keeps million-node
/// sparse runs at `O(log n)` amortized work per node.
#[derive(Clone, Debug)]
pub struct FloodProtocol<M> {
    schedule: DecaySchedule,
    /// Highest message known so far (`None` = uninformed).
    best: Option<M>,
    /// Steps already spent *as an informed node* (drives the decay phase).
    informed_steps: u64,
    /// Retire after this many informed steps (`u64::MAX` = never).
    quiesce_after: u64,
}

impl<M: Clone + Ord> FloodProtocol<M> {
    /// A source (with `Some(message)`) or an uninformed node (`None`).
    pub fn new(schedule: DecaySchedule, message: Option<M>) -> Self {
        FloodProtocol { schedule, best: message, informed_steps: 0, quiesce_after: u64::MAX }
    }

    /// Like [`new`](FloodProtocol::new), but the node goes permanently idle
    /// (and reports [`Protocol::is_done`]) once it has spent
    /// `active_iterations` full Decay iterations informed. With
    /// `active_iterations = Θ(log n)` the flood still completes whp — each
    /// node's neighborhood is served within `O(log n)` iterations of the
    /// frontier's arrival — while total work drops from `O(n · steps)` to
    /// `O(n log² n)`.
    pub fn with_quiesce(
        schedule: DecaySchedule,
        message: Option<M>,
        active_iterations: u32,
    ) -> Self {
        let steps = active_iterations as u64 * schedule.steps_per_iteration() as u64;
        FloodProtocol { schedule, best: message, informed_steps: 0, quiesce_after: steps.max(1) }
    }

    /// The highest message this node knows, if any.
    pub fn best(&self) -> Option<&M> {
        self.best.as_ref()
    }

    fn quiesced(&self) -> bool {
        self.best.is_some() && self.informed_steps >= self.quiesce_after
    }
}

impl<M: Clone + Ord> Protocol for FloodProtocol<M> {
    type Msg = M;

    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<M> {
        match &self.best {
            None => Action::Listen,
            Some(_) if self.quiesced() => Action::Idle,
            Some(m) => {
                let t = self.informed_steps;
                self.informed_steps += 1;
                if ctx.rng.gen_bool(self.schedule.prob(t)) {
                    Action::Transmit(m.clone())
                } else {
                    Action::Listen
                }
            }
        }
    }

    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &M) {
        if self.best.as_ref() < Some(msg) {
            self.best = Some(msg.clone());
        }
    }

    fn is_done(&self) -> bool {
        self.quiesced()
    }

    fn next_wake(&self, _now: u64) -> Wake {
        if self.best.is_none() {
            // Uninformed: a pure listener until the frontier arrives. This
            // is what makes sparse flooding cost O(frontier), not O(n).
            Wake::listen()
        } else if self.quiesced() {
            Wake::Retire
        } else {
            Wake::Now
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;
    use radionet_graph::Graph;
    use radionet_sim::{NetInfo, Sim};

    /// Floods from the given sources for `steps`; returns per-node best.
    fn run_flood(g: &Graph, sources: &[(usize, u64)], steps: u64, seed: u64) -> Vec<Option<u64>> {
        let info = NetInfo::exact(g);
        let schedule = DecaySchedule::new(info.log_n());
        let mut sim = Sim::new(g, info, seed);
        let mut states: Vec<FloodProtocol<u64>> = g
            .nodes()
            .map(|v| {
                let msg = sources.iter().find(|(s, _)| *s == v.index()).map(|&(_, m)| m);
                FloodProtocol::new(schedule, msg)
            })
            .collect();
        sim.run_phase(&mut states, steps);
        states.into_iter().map(|s| s.best().copied()).collect()
    }

    /// A generous BGI budget: 8 (D log n + log² n).
    fn budget(g: &Graph) -> u64 {
        let info = NetInfo::exact(g);
        let l = info.log_n() as u64;
        8 * (info.d as u64 * l + l * l)
    }

    #[test]
    fn single_source_floods_path() {
        let g = generators::path(24);
        let out = run_flood(&g, &[(0, 99)], budget(&g), 2);
        assert!(out.iter().all(|&b| b == Some(99)), "{out:?}");
    }

    #[test]
    fn single_source_floods_grid() {
        let g = generators::grid2d(6, 6);
        let out = run_flood(&g, &[(0, 1)], budget(&g), 4);
        assert!(out.iter().all(|&b| b == Some(1)));
    }

    #[test]
    fn highest_message_wins() {
        let g = generators::cycle(16);
        let out = run_flood(&g, &[(0, 5), (8, 9)], budget(&g), 6);
        assert!(out.iter().all(|&b| b == Some(9)), "{out:?}");
    }

    #[test]
    fn no_sources_stays_silent() {
        let g = generators::path(5);
        let out = run_flood(&g, &[], 200, 8);
        assert!(out.iter().all(|b| b.is_none()));
    }

    #[test]
    fn quiescing_flood_completes_and_terminates() {
        let g = generators::grid2d(8, 8);
        let info = NetInfo::exact(&g);
        let schedule = DecaySchedule::new(info.log_n());
        let mut sim = Sim::new(&g, info, 3);
        let mut states: Vec<FloodProtocol<u64>> = g
            .nodes()
            .map(|v| {
                FloodProtocol::with_quiesce(
                    schedule,
                    (v.index() == 0).then_some(5),
                    2 * info.log_n(),
                )
            })
            .collect();
        let rep = sim.run_phase(&mut states, budget(&g) * 4);
        assert!(rep.completed, "quiescing flood must locally terminate");
        assert!(states.iter().all(|s| s.best().copied() == Some(5)));
        assert!(states.iter().all(|s| s.is_done()));
    }

    #[test]
    fn insufficient_budget_incomplete() {
        // A long path with a tiny budget cannot be fully informed: message
        // moves at most 1 hop per step.
        let g = generators::path(64);
        let out = run_flood(&g, &[(0, 1)], 10, 1);
        assert!(out[63].is_none());
    }
}
