//! Queue-draining gossip: multi-message flooding on the Decay contract.
//!
//! [`FloodProtocol`](crate::flood::FloodProtocol) carries **one** message
//! through the network; a streaming-traffic workload carries many,
//! concurrently, each entering the network at its own node and time (see
//! `radionet_sim::Injection`). [`GossipProtocol`] is the per-node state
//! machine for that pipeline: every message a node learns — by injection
//! or over the air — stays *hot* for a fixed window of steps, during which
//! the node runs Decay-schedule coin flips and, on success, retransmits
//! one of its hot messages (the step index round-robins over the hot set,
//! so concurrent floods share airtime). Cold messages stay in the known set (for
//! deduplication and the delivery ledger) but generate no further
//! transmissions, so a node's work is proportional to the traffic passing
//! through it, not to the phase length.
//!
//! The protocol honors the sparse/event kernel [`Wake`] contract the same
//! way [`FloodProtocol`](crate::flood::FloodProtocol) does: all behavior
//! derives from `ctx.time` and
//! the learned-at times in the known set, never from call counts, so a
//! node whose hints parked it is bit-identical to one polled every step.

use crate::decay::DecaySchedule;
use radionet_sim::{Action, NodeCtx, Protocol, Wake};
use rand::Rng;

/// Per-node queue-draining gossip state (multi-message flood).
///
/// Message identity is a `u64` id; the application layer (the traffic
/// plan) decides what each id means and which nodes count as its intended
/// recipients — the protocol floods every id it learns identically.
#[derive(Clone, Debug)]
pub struct GossipProtocol {
    schedule: DecaySchedule,
    /// Steps a learned message keeps generating transmissions.
    hot_window: u64,
    /// Phase length: the node listens (and is done) at `horizon`.
    horizon: u64,
    /// `(message id, learned-at step)` in learning order; each id once.
    known: Vec<(u64, u64)>,
    /// Latest step this node acted at (time-based done accounting, the
    /// same idiom as the flood/decay protocols).
    last: u64,
}

impl GossipProtocol {
    /// A node relaying each learned message for `hot_iterations` Decay
    /// iterations, inside a phase of `horizon` steps.
    pub fn new(schedule: DecaySchedule, hot_iterations: u32, horizon: u64) -> Self {
        let hot_window =
            u64::from(hot_iterations.max(1)) * u64::from(schedule.steps_per_iteration());
        GossipProtocol { schedule, hot_window, horizon, known: Vec::new(), last: 0 }
    }

    /// Every message this node knows, as `(id, learned_at)` in learning
    /// order — the delivery ledger folds over this.
    pub fn known(&self) -> &[(u64, u64)] {
        &self.known
    }

    /// Whether `id` is already in the known set.
    pub fn knows(&self, id: u64) -> bool {
        self.known.iter().any(|&(k, _)| k == id)
    }

    fn learn(&mut self, id: u64, at: u64) {
        if !self.knows(id) {
            self.known.push((id, at));
        }
    }

    /// The hot entry this node would relay at `now`. When several
    /// messages are hot at once the step index round-robins over them in
    /// learning order — the queue *drains* instead of the newest arrival
    /// shadowing (and starving) everything learned before it. Still a
    /// deterministic function of state and time, identical under every
    /// kernel.
    fn hot_at(&self, now: u64) -> Option<(u64, u64)> {
        let hot: Vec<(u64, u64)> = self
            .known
            .iter()
            .copied()
            .filter(|&(_, at)| now >= at && now - at < self.hot_window)
            .collect();
        if hot.is_empty() {
            return None;
        }
        Some(hot[(now % hot.len() as u64) as usize])
    }
}

impl Protocol for GossipProtocol {
    type Msg = u64;

    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u64> {
        self.last = ctx.time;
        if ctx.time >= self.horizon {
            return Action::Idle;
        }
        match self.hot_at(ctx.time) {
            // One Decay coin per step while anything is hot; the flip's
            // position in the schedule is the hot message's age, so a
            // fresh message starts loud and decays — the multi-message
            // analogue of one Decay iteration per learning event.
            Some((id, at)) if ctx.rng.gen_bool(self.schedule.prob(ctx.time - at)) => {
                Action::Transmit(id)
            }
            _ => Action::Listen,
        }
    }

    fn on_hear(&mut self, ctx: &mut NodeCtx<'_>, msg: &u64) {
        self.learn(*msg, ctx.time);
    }

    fn on_inject(&mut self, ctx: &mut NodeCtx<'_>, msg: &u64) {
        self.learn(*msg, ctx.time);
    }

    fn is_done(&self) -> bool {
        self.last + 1 >= self.horizon
    }

    fn next_wake(&self, now: u64) -> Wake {
        if now + 1 >= self.horizon {
            return Wake::Retire;
        }
        if self.hot_at(now + 1).is_some() {
            // Still relaying: act (and draw the coin) every step.
            return Wake::Now;
        }
        // Everything cold — and hotness only ever decays, so the promise
        // holds span-wide: passively listen out the phase. Hearing or an
        // injection re-engages the node (both are wake sources), so no
        // wake-up needs scheduling; the done promise lets the engine
        // account completion without ever calling back.
        Wake::Listen { wake_at: Wake::NEVER, done_at: Some(self.horizon - 1) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_sim::NetInfo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ctx_at<'a>(t: u64, info: &'a NetInfo, rng: &'a mut SmallRng) -> NodeCtx<'a> {
        NodeCtx { time: t, info, rng }
    }

    #[test]
    fn learns_once_and_goes_cold() {
        let info = NetInfo { n: 64, d: 8, alpha: 16.0 };
        let mut rng = SmallRng::seed_from_u64(7);
        let schedule = DecaySchedule::new(4);
        let mut g = GossipProtocol::new(schedule, 2, 100);
        assert!(g.hot_at(0).is_none());
        g.on_inject(&mut ctx_at(3, &info, &mut rng), &42);
        g.on_hear(&mut ctx_at(5, &info, &mut rng), &42); // duplicate: ignored
        assert_eq!(g.known(), &[(42, 3)]);
        assert!(g.knows(42));
        assert!(!g.knows(43));
        // Hot for 2 iterations × 4 steps starting at 3, cold after.
        assert_eq!(g.hot_at(3), Some((42, 3)));
        assert_eq!(g.hot_at(10), Some((42, 3)));
        assert!(g.hot_at(11).is_none());
    }

    #[test]
    fn concurrent_hot_messages_round_robin() {
        let info = NetInfo { n: 64, d: 8, alpha: 16.0 };
        let mut rng = SmallRng::seed_from_u64(7);
        let schedule = DecaySchedule::new(4);
        let mut g = GossipProtocol::new(schedule, 4, 100);
        g.on_inject(&mut ctx_at(0, &info, &mut rng), &9);
        g.on_hear(&mut ctx_at(2, &info, &mut rng), &5);
        // Two hot messages: even steps drain the first learned, odd the
        // second — nobody starves.
        assert_eq!(g.hot_at(2).unwrap().0, 9);
        assert_eq!(g.hot_at(3).unwrap().0, 5);
        assert_eq!(g.hot_at(4).unwrap().0, 9);
        // A third joins the rotation.
        g.on_hear(&mut ctx_at(4, &info, &mut rng), &7);
        assert_eq!(g.hot_at(6).unwrap().0, 9);
        assert_eq!(g.hot_at(7).unwrap().0, 5);
        assert_eq!(g.hot_at(8).unwrap().0, 7);
        // Once the first two cool off (learned at 0 and 2, window 16),
        // the last one drains alone.
        assert_eq!(g.hot_at(19).unwrap().0, 7);
    }

    #[test]
    fn wake_contract_shape() {
        let info = NetInfo { n: 64, d: 8, alpha: 16.0 };
        let mut rng = SmallRng::seed_from_u64(7);
        let schedule = DecaySchedule::new(4);
        let mut g = GossipProtocol::new(schedule, 1, 50);
        // Nothing known: passive listener with a phase-end done promise.
        assert_eq!(g.next_wake(0), Wake::Listen { wake_at: Wake::NEVER, done_at: Some(49) });
        // Hot: engaged every step.
        g.on_inject(&mut ctx_at(10, &info, &mut rng), &1);
        assert_eq!(g.next_wake(10), Wake::Now);
        // Cold again: back to the passive promise.
        assert_eq!(g.next_wake(20), Wake::Listen { wake_at: Wake::NEVER, done_at: Some(49) });
        // Last step: retire.
        assert_eq!(g.next_wake(49), Wake::Retire);
        // Done is time-based off the last act.
        assert!(!g.is_done());
        let _ = g.act(&mut ctx_at(49, &info, &mut rng));
        assert!(g.is_done());
    }
}
