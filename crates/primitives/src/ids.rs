//! Random identifiers (paper, Section 1.1).
//!
//! In the ad-hoc model nodes are initially indistinguishable; knowing a
//! linear upper estimate of `n`, each node draws a uniform id from `[n³]`,
//! unique across the network with high probability (union bound:
//! collision probability ≤ n²/(2n³) = 1/(2n)).

use rand::Rng;

/// Draws a uniform identifier from `[0, n̂³)`.
///
/// # Panics
///
/// Panics if `n_estimate == 0`.
pub fn random_id<R: Rng + ?Sized>(n_estimate: usize, rng: &mut R) -> u64 {
    assert!(n_estimate > 0, "need a positive n estimate");
    let n = n_estimate as u128;
    let cube = n.saturating_mul(n).saturating_mul(n).min(u64::MAX as u128) as u64;
    rng.gen_range(0..cube.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn ids_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(random_id(10, &mut rng) < 1000);
        }
    }

    #[test]
    fn ids_unique_whp() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 1000;
        let ids: HashSet<u64> = (0..n).map(|_| random_id(n, &mut rng)).collect();
        assert_eq!(ids.len(), n, "collision among {n} ids from [n³]");
    }

    #[test]
    fn huge_n_saturates() {
        let mut rng = StdRng::seed_from_u64(3);
        // n³ overflows u64: must clamp, not panic.
        let _ = random_id(usize::MAX / 2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "positive n estimate")]
    fn zero_n_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = random_id(0, &mut rng);
    }
}
