//! Shared radio-network building blocks from the paper.
//!
//! * [`decay`] — the classic **Decay** protocol of Bar-Yehuda, Goldreich and
//!   Itai (paper, Algorithm 5) and its whp amplification (Claim 10);
//! * [`effective_degree`] — **EstimateEffectiveDegree** (paper, Algorithm 6)
//!   with the High/Low guarantee of Lemma 11;
//! * [`flood`] — repeated-Decay flooding, the engine behind the BGI
//!   broadcast baseline and several internal subroutines;
//! * [`gossip`] — queue-draining multi-message gossip for streaming
//!   traffic workloads (many concurrent messages, each hot for a Decay
//!   window);
//! * [`ids`] — random identifiers from `[O(n³)]` (paper, Section 1.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decay;
pub mod effective_degree;
pub mod flood;
pub mod gossip;
pub mod ids;

pub use decay::{DecayConfig, DecayProtocol, DecaySchedule};
pub use effective_degree::{EedConfig, EedCounter, EedProtocol, EedVerdict};
pub use flood::FloodProtocol;
pub use gossip::GossipProtocol;
