//! Property tests for the radio primitives.

use proptest::prelude::*;
use radionet_primitives::decay::{DecayConfig, DecaySchedule};
use radionet_primitives::effective_degree::{EedConfig, EedCounter, EedVerdict};
use radionet_primitives::ids::random_id;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The Decay schedule sweeps exactly the probabilities 2^{-1}..2^{-log n}
    /// in every iteration, for any log n.
    #[test]
    fn decay_schedule_sweeps(log_n in 1u32..24, iteration in 0u64..5) {
        let s = DecaySchedule::new(log_n);
        let base = iteration * s.steps_per_iteration() as u64;
        for i in 0..s.steps_per_iteration() as u64 {
            let p = s.prob(base + i);
            prop_assert!((p - 2f64.powi(-(i as i32 + 1))).abs() < 1e-15);
        }
    }

    /// Decay probabilities are always valid and total steps are consistent.
    #[test]
    fn decay_config_consistent(log_n in 0u32..20, iterations in 1u32..64, t in 0u64..10_000) {
        let s = DecaySchedule::new(log_n);
        let c = DecayConfig { iterations };
        prop_assert!((0.0..=0.5).contains(&s.prob(t)));
        prop_assert_eq!(
            c.total_steps(s),
            iterations as u64 * s.steps_per_iteration() as u64
        );
    }

    /// An EedCounter that never hears anything is Low; one that hears every
    /// step is High; and it always finishes after exactly total_steps notes.
    #[test]
    fn eed_counter_extremes(c_steps in 1u32..16, log_n in 1u32..12) {
        let config = EedConfig { c_steps, threshold_frac: 1.0 / 12.0 };
        let total = config.total_steps(log_n);

        let mut silent = EedCounter::new(config, log_n);
        for _ in 0..total {
            prop_assert!(!silent.finished());
            silent.note(false);
        }
        prop_assert!(silent.finished());
        prop_assert_eq!(silent.verdict(), Some(EedVerdict::Low));

        let mut loud = EedCounter::new(config, log_n);
        for _ in 0..total {
            loud.note(true);
        }
        prop_assert_eq!(loud.verdict(), Some(EedVerdict::High));
    }

    /// The EED transmit probability decays by exactly 2× per block and
    /// stays a probability for any p ∈ [0, 1].
    #[test]
    fn eed_transmit_prob_halves(log_n in 1u32..12, p in 0.0f64..=1.0) {
        let config = EedConfig::default();
        let mut k = EedCounter::new(config, log_n);
        let mut last = k.transmit_prob(p);
        prop_assert!((0.0..=1.0).contains(&last));
        let block_steps = config.block_steps(log_n);
        while !k.finished() {
            for _ in 0..block_steps {
                if k.finished() { break; }
                k.note(false);
            }
            if k.finished() { break; }
            let now = k.transmit_prob(p);
            prop_assert!((0.0..=1.0).contains(&now));
            prop_assert!(now <= last + 1e-15);
            if p > 0.0 {
                prop_assert!((now - last / 2.0).abs() < 1e-12);
            }
            last = now;
        }
    }

    /// Random ids stay in [0, n³) and depend on the seed.
    #[test]
    fn ids_in_cube(n in 1usize..100_000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let id = random_id(n, &mut rng) as u128;
        let n = n as u128;
        prop_assert!(id < (n * n * n).max(1));
    }
}
