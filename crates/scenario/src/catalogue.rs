//! The serde-able scenario catalogue: named compositions of a graph
//! family, a workload, a reception mode, and a dynamics recipe.
//!
//! Mirroring `radionet_graph::families`, each [`Scenario`] maps `(n, seed)`
//! to a fully determined experiment cell; [`Scenario::catalogue`] lists the
//! named presets the sweep runner and `exp_scenarios` binary use.
//!
//! The recipe vocabulary itself ([`Dynamics`] and its spec structs) lives
//! in `radionet_api::spec` — a scenario is simply a *named*
//! [`RunSpec`](radionet_api::RunSpec) family, and [`Workload`] names the
//! registry task each cell runs.

use radionet_graph::families::Family;
use radionet_graph::Graph;
use radionet_sim::{NetInfo, ReceptionMode, SinrConfig};
use serde::{Deserialize, Serialize};

pub use radionet_api::spec::{ChurnSpec, Dynamics, JamSpec, PartitionSpec, StaggerSpec};

use crate::events::ScenarioEvent;

/// Which algorithm a scenario cell runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// `Compete({s})` broadcast from node 0 (Theorem 7).
    Broadcast,
    /// Leader election (Theorem 8).
    LeaderElection,
    /// Radio MIS (Theorem 14).
    Mis,
    /// Streaming traffic: a multi-message gossip pipeline with a
    /// deterministic arrival plan and a delivery ledger.
    Traffic,
}

impl Workload {
    /// Short stable name for tables and JSON. Doubles as the
    /// `radionet_api` task-registry key, so a [`Scenario`] converts to a
    /// [`RunSpec`](radionet_api::RunSpec) by name alone.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Broadcast => "broadcast",
            Workload::LeaderElection => "leader-election",
            Workload::Mis => "mis",
            Workload::Traffic => "traffic.gossip",
        }
    }

    /// The step timebase dynamics fractions refer to: an a-priori
    /// lower-envelope of how long the workload keeps running (its own
    /// budget), computable from [`NetInfo`] alone.
    ///
    /// Delegates to the corresponding façade task's
    /// [`Task::timebase`](radionet_api::Task::timebase) — there is exactly
    /// one definition of each budget (for the `Compete`-based workloads,
    /// `CompeteConfig::default().propagation_budget`; for MIS, the round
    /// budget of `MisConfig::default`), so a scenario and its derived
    /// [`RunSpec`](radionet_api::RunSpec) can never time their event
    /// scripts differently.
    pub fn timebase(self, info: &NetInfo) -> u64 {
        use radionet_api::tasks::{BroadcastTask, LeaderElectionTask, MisTask, TrafficTask};
        use radionet_api::{Task, TrafficKind};
        match self {
            Workload::Broadcast => BroadcastTask.timebase(info),
            Workload::LeaderElection => LeaderElectionTask.timebase(info),
            Workload::Mis => MisTask.timebase(info),
            Workload::Traffic => TrafficTask::new(TrafficKind::Gossip).timebase(info),
        }
    }
}

/// A fully specified named scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Unique name (used in tables, JSON, and per-cell seeding).
    pub name: String,
    /// The base graph family.
    pub family: Family,
    /// The algorithm under test.
    pub workload: Workload,
    /// The reception rule.
    pub reception: ReceptionMode,
    /// The dynamics recipe.
    pub dynamics: Dynamics,
}

impl Scenario {
    /// Materializes the event script for one cell.
    ///
    /// Deterministic in `(graph, info, seed)`; fractions in the dynamics
    /// spec are scaled by [`Workload::timebase`].
    pub fn events_for(&self, g: &Graph, info: &NetInfo, seed: u64) -> Vec<ScenarioEvent> {
        self.dynamics.events_for(g, self.workload.timebase(info), seed)
    }

    /// The named presets swept by `exp_scenarios`: every dynamics recipe
    /// crossed with a geometric and a general family, broadcast as the
    /// common workload plus leader-election and MIS spot checks.
    pub fn catalogue() -> Vec<Scenario> {
        let mk = |name: &str, family, workload, dynamics| Scenario {
            name: name.to_string(),
            family,
            workload,
            reception: ReceptionMode::Protocol,
            dynamics,
        };
        let churn = Dynamics::preset("churn").expect("standard preset");
        let split = Dynamics::preset("partition-repair").expect("standard preset");
        let jam = Dynamics::preset("jamming").expect("standard preset");
        let wake = Dynamics::preset("staggered-wake").expect("standard preset");
        vec![
            mk("grid-static", Family::Grid, Workload::Broadcast, Dynamics::Static),
            mk("grid-churn", Family::Grid, Workload::Broadcast, churn),
            mk("grid-split-heal", Family::Grid, Workload::Broadcast, split),
            mk("grid-jammed", Family::Grid, Workload::Broadcast, jam),
            mk("grid-staggered", Family::Grid, Workload::Broadcast, wake),
            mk("udg-churn", Family::UnitDisk, Workload::Broadcast, churn),
            mk("udg-jammed", Family::UnitDisk, Workload::Broadcast, jam),
            mk("gnp-split-heal", Family::Gnp, Workload::Broadcast, split),
            mk("gnp-churn-le", Family::Gnp, Workload::LeaderElection, churn),
            mk("grid-churn-mis", Family::Grid, Workload::Mis, churn),
            mk("udg-jammed-mis", Family::UnitDisk, Workload::Mis, jam),
        ]
    }

    /// The mobility scenarios: geometric families whose topology is
    /// derived from a *moving* point set (`radionet-mobility`), including
    /// the physical-layer cells where SINR reception follows the live
    /// positions (geometry-calibrated — no hand-shipped coordinates).
    ///
    /// Kept separate from [`Scenario::catalogue`] because the frozen
    /// pre-façade reference pipeline (`run_cell_reference`) predates
    /// mobility and is pinned byte-for-byte against that list only; the
    /// mobility cells run purely through the façade.
    pub fn mobility_catalogue() -> Vec<Scenario> {
        let mk = |name: &str, family, workload, dynamics| Scenario {
            name: name.to_string(),
            family,
            workload,
            reception: ReceptionMode::Protocol,
            dynamics,
        };
        let sinr = |name: &str, family, workload, dynamics| Scenario {
            name: name.to_string(),
            family,
            workload,
            reception: ReceptionMode::Sinr(SinrConfig::geometric()),
            dynamics,
        };
        let preset = |name: &str| Dynamics::preset(name).expect("standard mobility preset");
        vec![
            mk("udg-waypoint", Family::UnitDisk, Workload::Broadcast, preset("mobility:waypoint")),
            mk("udg-levy", Family::UnitDisk, Workload::Broadcast, preset("mobility:levy")),
            mk("quasi-walk", Family::QuasiUnitDisk, Workload::Broadcast, preset("mobility:walk")),
            mk("ball3-group", Family::UnitBall3, Workload::Broadcast, preset("mobility:group")),
            mk(
                "georadio-waypoint-mis",
                Family::GeometricRadio,
                Workload::Mis,
                preset("mobility:waypoint"),
            ),
            sinr(
                "udg-waypoint-sinr",
                Family::UnitDisk,
                Workload::Broadcast,
                preset("mobility:waypoint"),
            ),
            sinr(
                "ball3-group-sinr",
                Family::UnitBall3,
                Workload::Broadcast,
                preset("mobility:group"),
            ),
        ]
    }

    /// The streaming-traffic scenarios: the multi-message delivery
    /// pipeline over a static and a churning grid. Kept out of
    /// [`Scenario::catalogue`] for the same reason as mobility — the
    /// frozen pre-façade reference pipeline predates traffic workloads
    /// and is pinned against that list only.
    pub fn traffic_catalogue() -> Vec<Scenario> {
        let mk = |name: &str, family, dynamics| Scenario {
            name: name.to_string(),
            family,
            workload: Workload::Traffic,
            reception: ReceptionMode::Protocol,
            dynamics,
        };
        let churn = Dynamics::preset("churn").expect("standard preset");
        vec![
            mk("grid-traffic", Family::Grid, Dynamics::Static),
            mk("grid-traffic-churn", Family::Grid, churn),
        ]
    }

    /// [`Scenario::catalogue`] plus the mobility and traffic cells — the
    /// list CLI sweeps iterate.
    pub fn extended_catalogue() -> Vec<Scenario> {
        let mut all = Self::catalogue();
        all.extend(Self::mobility_catalogue());
        all.extend(Self::traffic_catalogue());
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_unique_and_serde_stable() {
        let cat = Scenario::catalogue();
        let mut names: Vec<&str> = cat.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len(), "duplicate scenario names");
        let json = serde_json::to_string_pretty(&cat).unwrap();
        let back: Vec<Scenario> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cat);
    }

    #[test]
    fn catalogue_covers_required_dynamics() {
        let cat = Scenario::catalogue();
        for required in ["churn", "partition-repair", "jamming", "staggered-wake", "static"] {
            assert!(
                cat.iter().any(|s| s.dynamics.name() == required),
                "catalogue misses {required}"
            );
        }
    }

    #[test]
    fn extended_catalogue_adds_every_mobility_preset() {
        let cat = Scenario::extended_catalogue();
        let base = Scenario::catalogue();
        assert_eq!(
            cat.len(),
            base.len() + Scenario::mobility_catalogue().len() + Scenario::traffic_catalogue().len()
        );
        assert!(
            cat.iter().any(|s| s.workload == Workload::Traffic),
            "extended catalogue misses the streaming-traffic cells"
        );
        for required in ["mobility:waypoint", "mobility:walk", "mobility:levy", "mobility:group"] {
            assert!(
                cat.iter().any(|s| s.dynamics.name() == required),
                "extended catalogue misses {required}"
            );
        }
        let mut names: Vec<&str> = cat.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len(), "duplicate scenario names");
        // Mobility scenarios must stay on families with an embedding
        // (growth-bounded is not enough: Path/Grid have no positions).
        for sc in Scenario::mobility_catalogue() {
            assert!(sc.family.has_embedding(), "{} has no point embedding", sc.name);
        }
        // The physical-layer mobility cells are present and geometry-
        // sourced (no hand-shipped coordinates in the catalogue).
        let sinr: Vec<Scenario> = Scenario::mobility_catalogue()
            .into_iter()
            .filter(|s| s.reception.name() == "sinr")
            .collect();
        assert!(sinr.len() >= 2, "catalogue misses the SINR mobility cells");
        for sc in &sinr {
            match &sc.reception {
                ReceptionMode::Sinr(cfg) => assert_eq!(
                    cfg.positions,
                    radionet_sim::PositionSource::Geometry,
                    "{}: SINR cells must be geometry-sourced",
                    sc.name
                ),
                _ => unreachable!(),
            }
        }
        let json = serde_json::to_string_pretty(&cat).unwrap();
        let back: Vec<Scenario> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cat);
    }

    #[test]
    fn catalogue_presets_pin_historical_parameters() {
        // The preset constants seed every event script; changing them would
        // silently re-define every recorded sweep.
        let churn = Dynamics::preset("churn").unwrap();
        assert_eq!(
            churn,
            Dynamics::Churn(ChurnSpec { victims: 0.1, start: 0.05, spread: 0.15, down: 0.2 })
        );
        let split = Dynamics::preset("partition-repair").unwrap();
        assert_eq!(
            split,
            Dynamics::PartitionRepair(PartitionSpec { parts: 2, at: 0.05, heal_at: 0.35 })
        );
        let jam = Dynamics::preset("jamming").unwrap();
        assert_eq!(jam, Dynamics::Jamming(JamSpec { jammers: 0.05, from: 0.05, until: 0.4 }));
        let wake = Dynamics::preset("staggered-wake").unwrap();
        assert_eq!(wake, Dynamics::StaggeredWake(StaggerSpec { spread: 0.1 }));
    }

    #[test]
    fn events_deterministic_and_sound() {
        let g = Family::Grid.instantiate(49, 1);
        let info = NetInfo::exact(&g);
        for sc in Scenario::catalogue() {
            let a = sc.events_for(&g, &info, 42);
            let b = sc.events_for(&g, &info, 42);
            assert_eq!(a, b, "{} not deterministic", sc.name);
            let c = sc.events_for(&g, &info, 43);
            if !matches!(sc.dynamics, Dynamics::Static | Dynamics::PartitionRepair(_)) {
                assert_ne!(a, c, "{} ignores the seed", sc.name);
            }
            for e in &a {
                if let Some(v) = e.kind.node() {
                    assert!(v > 0, "{}: node 0 must stay protected", sc.name);
                    assert!(v < g.n());
                }
            }
        }
    }

    #[test]
    fn timebase_scales_with_size() {
        let small = NetInfo { n: 64, d: 14, alpha: 32.0 };
        let big = NetInfo { n: 1024, d: 62, alpha: 512.0 };
        for w in [Workload::Broadcast, Workload::LeaderElection, Workload::Mis] {
            assert!(w.timebase(&big) > w.timebase(&small), "{}", w.name());
            assert!(w.timebase(&small) > 100, "{} timebase degenerate", w.name());
        }
    }

    #[test]
    fn workload_names_resolve_in_the_standard_registry() {
        let registry = radionet_api::TaskRegistry::standard();
        for w in [Workload::Broadcast, Workload::LeaderElection, Workload::Mis] {
            assert!(registry.get(w.name()).is_some(), "{} has no task", w.name());
        }
    }
}
