//! The serde-able scenario catalogue: named compositions of a graph
//! family, a workload, a reception mode, and a dynamics recipe.
//!
//! Mirroring `radionet_graph::families`, each [`Scenario`] maps `(n, seed)`
//! to a fully determined experiment cell; [`Scenario::catalogue`] lists the
//! named presets the sweep runner and `exp_scenarios` binary use.
//!
//! Dynamics recipes express event times as *fractions of the workload's
//! step budget* (the quantity the paper's bounds are stated in), so one
//! recipe scales across sizes and families: `0.0` is the start of the run
//! and `1.0` is roughly where the workload's own budget would expire.

use crate::events::{EventKind, ScenarioEvent};
use radionet_core::compete::CompeteConfig;
use radionet_core::mis::MisConfig;
use radionet_graph::families::Family;
use radionet_graph::Graph;
use radionet_sim::{NetInfo, ReceptionMode};
use serde::{Deserialize, Serialize};

/// Which algorithm a scenario cell runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// `Compete({s})` broadcast from node 0 (Theorem 7).
    Broadcast,
    /// Leader election (Theorem 8).
    LeaderElection,
    /// Radio MIS (Theorem 14).
    Mis,
}

impl Workload {
    /// Short stable name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Broadcast => "broadcast",
            Workload::LeaderElection => "leader-election",
            Workload::Mis => "mis",
        }
    }

    /// The step timebase dynamics fractions refer to: an a-priori
    /// lower-envelope of how long the workload keeps running (its own
    /// budget), computable from [`NetInfo`] alone.
    ///
    /// For the `Compete`-based workloads this is
    /// [`CompeteConfig::propagation_budget`] of the default config (the
    /// exact budget the stage-8 loop enforces); setup steps only push
    /// events *earlier* relative to the run, never past its end. For MIS it
    /// is the round budget of [`MisConfig::default`].
    pub fn timebase(self, info: &NetInfo) -> u64 {
        match self {
            Workload::Broadcast | Workload::LeaderElection => {
                CompeteConfig::default().propagation_budget(info)
            }
            Workload::Mis => {
                let c = MisConfig::default();
                let log_n = MisConfig::effective_log_n(info.log_n());
                c.total_steps(log_n)
            }
        }
    }
}

/// Staggered (asynchronous) wake-up: every node except 0 wakes at a
/// deterministic pseudo-random time in `[0, spread × timebase]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StaggerSpec {
    /// Wake-time spread as a fraction of the workload timebase.
    pub spread: f64,
}

/// Node churn: a fraction of nodes crash at staggered times and rejoin
/// `down` later.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Fraction of nodes (excluding node 0) that crash.
    pub victims: f64,
    /// First crash, as a fraction of the timebase.
    pub start: f64,
    /// Crash times spread over this additional fraction.
    pub spread: f64,
    /// Downtime per victim, as a fraction of the timebase.
    pub down: f64,
}

/// A k-way partition (contiguous index blocks) later healed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Number of parts.
    pub parts: u32,
    /// Split time as a fraction of the timebase.
    pub at: f64,
    /// Repair time as a fraction of the timebase.
    pub heal_at: f64,
}

/// Adversarial jammers: a fraction of nodes defect and emit noise during a
/// window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JamSpec {
    /// Fraction of nodes (excluding node 0) that become jammers.
    pub jammers: f64,
    /// Jamming starts, as a fraction of the timebase.
    pub from: f64,
    /// Jamming ends, as a fraction of the timebase.
    pub until: f64,
}

/// A dynamics recipe: how the topology evolves during the run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Dynamics {
    /// The paper's model: nothing changes.
    Static,
    /// Staggered wake-up.
    StaggeredWake(StaggerSpec),
    /// Crash/rejoin churn.
    Churn(ChurnSpec),
    /// Partition then repair.
    PartitionRepair(PartitionSpec),
    /// Jamming window.
    Jamming(JamSpec),
}

impl Dynamics {
    /// Short stable name for tables and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Dynamics::Static => "static",
            Dynamics::StaggeredWake(_) => "staggered-wake",
            Dynamics::Churn(_) => "churn",
            Dynamics::PartitionRepair(_) => "partition-repair",
            Dynamics::Jamming(_) => "jamming",
        }
    }
}

/// A fully specified named scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Unique name (used in tables, JSON, and per-cell seeding).
    pub name: String,
    /// The base graph family.
    pub family: Family,
    /// The algorithm under test.
    pub workload: Workload,
    /// The reception rule.
    pub reception: ReceptionMode,
    /// The dynamics recipe.
    pub dynamics: Dynamics,
}

/// Splitmix-style mixing for deterministic per-scenario derivations.
pub(crate) fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Picks `count` distinct victims from `1..n` (node 0 — the instrumented
/// source — is never picked), deterministically from `seed`.
fn pick_victims(n: usize, count: usize, seed: u64) -> Vec<usize> {
    assert!(n >= 2, "victim selection needs n >= 2");
    let count = count.min(n - 1);
    let mut picked = Vec::with_capacity(count);
    let mut i = 0u64;
    while picked.len() < count {
        let v = 1 + (mix(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % (n as u64 - 1)) as usize;
        if !picked.contains(&v) {
            picked.push(v);
        }
        i += 1;
    }
    picked
}

impl Scenario {
    /// Materializes the event script for one cell.
    ///
    /// Deterministic in `(graph, info, seed)`; fractions in the dynamics
    /// spec are scaled by [`Workload::timebase`].
    pub fn events_for(&self, g: &Graph, info: &NetInfo, seed: u64) -> Vec<ScenarioEvent> {
        let h = self.workload.timebase(info) as f64;
        let at = |frac: f64| (frac * h).round().max(0.0) as u64;
        let n = g.n();
        match self.dynamics {
            Dynamics::Static => Vec::new(),
            Dynamics::StaggeredWake(s) => (1..n)
                .map(|v| {
                    let t = mix(seed ^ 0x5a5a ^ v as u64) as f64 / u64::MAX as f64;
                    ScenarioEvent::new(at(t * s.spread), EventKind::Wake(v))
                })
                .collect(),
            Dynamics::Churn(c) => {
                let count = ((n as f64 * c.victims).round() as usize).max(1);
                let victims = pick_victims(n, count, seed ^ 0xc4u64);
                let mut script = Vec::with_capacity(2 * victims.len());
                for (i, &v) in victims.iter().enumerate() {
                    let frac =
                        if victims.len() > 1 { i as f64 / (victims.len() - 1) as f64 } else { 0.0 };
                    let crash = at(c.start + frac * c.spread);
                    script.push(ScenarioEvent::new(crash, EventKind::Crash(v)));
                    script.push(ScenarioEvent::new(crash + at(c.down).max(1), EventKind::Join(v)));
                }
                script
            }
            Dynamics::PartitionRepair(p) => vec![
                ScenarioEvent::new(at(p.at), EventKind::Partition(p.parts)),
                ScenarioEvent::new(at(p.heal_at), EventKind::Heal),
            ],
            Dynamics::Jamming(j) => {
                let count = ((n as f64 * j.jammers).round() as usize).max(1);
                let victims = pick_victims(n, count, seed ^ 0x7a_7au64);
                let mut script = Vec::with_capacity(2 * victims.len());
                for &v in &victims {
                    script.push(ScenarioEvent::new(at(j.from), EventKind::JammerOn(v)));
                    script.push(ScenarioEvent::new(at(j.until), EventKind::JammerOff(v)));
                }
                script
            }
        }
    }

    /// The named presets swept by `exp_scenarios`: every dynamics recipe
    /// crossed with a geometric and a general family, broadcast as the
    /// common workload plus leader-election and MIS spot checks.
    pub fn catalogue() -> Vec<Scenario> {
        let mk = |name: &str, family, workload, dynamics| Scenario {
            name: name.to_string(),
            family,
            workload,
            reception: ReceptionMode::Protocol,
            dynamics,
        };
        let churn =
            Dynamics::Churn(ChurnSpec { victims: 0.1, start: 0.05, spread: 0.15, down: 0.2 });
        let split = Dynamics::PartitionRepair(PartitionSpec { parts: 2, at: 0.05, heal_at: 0.35 });
        let jam = Dynamics::Jamming(JamSpec { jammers: 0.05, from: 0.05, until: 0.4 });
        let wake = Dynamics::StaggeredWake(StaggerSpec { spread: 0.1 });
        vec![
            mk("grid-static", Family::Grid, Workload::Broadcast, Dynamics::Static),
            mk("grid-churn", Family::Grid, Workload::Broadcast, churn),
            mk("grid-split-heal", Family::Grid, Workload::Broadcast, split),
            mk("grid-jammed", Family::Grid, Workload::Broadcast, jam),
            mk("grid-staggered", Family::Grid, Workload::Broadcast, wake),
            mk("udg-churn", Family::UnitDisk, Workload::Broadcast, churn),
            mk("udg-jammed", Family::UnitDisk, Workload::Broadcast, jam),
            mk("gnp-split-heal", Family::Gnp, Workload::Broadcast, split),
            mk("gnp-churn-le", Family::Gnp, Workload::LeaderElection, churn),
            mk("grid-churn-mis", Family::Grid, Workload::Mis, churn),
            mk("udg-jammed-mis", Family::UnitDisk, Workload::Mis, jam),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_unique_and_serde_stable() {
        let cat = Scenario::catalogue();
        let mut names: Vec<&str> = cat.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len(), "duplicate scenario names");
        let json = serde_json::to_string_pretty(&cat).unwrap();
        let back: Vec<Scenario> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cat);
    }

    #[test]
    fn catalogue_covers_required_dynamics() {
        let cat = Scenario::catalogue();
        for required in ["churn", "partition-repair", "jamming", "staggered-wake", "static"] {
            assert!(
                cat.iter().any(|s| s.dynamics.name() == required),
                "catalogue misses {required}"
            );
        }
    }

    #[test]
    fn events_deterministic_and_sound() {
        let g = Family::Grid.instantiate(49, 1);
        let info = NetInfo::exact(&g);
        for sc in Scenario::catalogue() {
            let a = sc.events_for(&g, &info, 42);
            let b = sc.events_for(&g, &info, 42);
            assert_eq!(a, b, "{} not deterministic", sc.name);
            let c = sc.events_for(&g, &info, 43);
            if !matches!(sc.dynamics, Dynamics::Static | Dynamics::PartitionRepair(_)) {
                assert_ne!(a, c, "{} ignores the seed", sc.name);
            }
            for e in &a {
                if let Some(v) = e.kind.node() {
                    assert!(v > 0, "{}: node 0 must stay protected", sc.name);
                    assert!(v < g.n());
                }
            }
        }
    }

    #[test]
    fn victims_distinct_and_exclude_source() {
        let v = pick_victims(50, 10, 9);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(v.iter().all(|&x| (1..50).contains(&x)));
    }

    #[test]
    fn timebase_scales_with_size() {
        let small = NetInfo { n: 64, d: 14, alpha: 32.0 };
        let big = NetInfo { n: 1024, d: 62, alpha: 512.0 };
        for w in [Workload::Broadcast, Workload::LeaderElection, Workload::Mis] {
            assert!(w.timebase(&big) > w.timebase(&small), "{}", w.name());
            assert!(w.timebase(&small) > 100, "{} timebase degenerate", w.name());
        }
    }
}
