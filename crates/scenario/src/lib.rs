//! Dynamic-network scenarios for the radionet workspace.
//!
//! The paper (Davies, PODC 2023) assumes a static topology with synchronous
//! wake-up; its point, though, is that parametrizing by the independence
//! number α makes the *same* algorithms behave predictably across wildly
//! different network shapes. This crate measures how those guarantees
//! degrade when the shape changes *during* the run:
//!
//! * [`events`] — the scenario vocabulary: timed node crash/join, edge
//!   fades, k-way partition + repair, staggered wake-up, adversarial
//!   jammers (re-exported from `radionet_api`, which owns the run
//!   machinery since the façade redesign);
//! * [`dynamics`] — [`DynamicTopology`], a mutable overlay over the
//!   immutable CSR graph implementing the engine's
//!   [`TopologyView`](radionet_sim::TopologyView) (also re-exported from
//!   `radionet_api`);
//! * [`catalogue`] — serde-able named scenarios composing a graph family,
//!   a workload, a reception mode, and a dynamics recipe — i.e. *named*
//!   [`RunSpec`](radionet_api::RunSpec) families;
//! * [`runner`] — a rayon-parallel sweep executor with deterministic
//!   per-cell seeding (shared with the façade via
//!   [`radionet_api::seeds`]); parallel and sequential runs are
//!   byte-identical, and each cell is a thin adapter over
//!   [`Driver::run`](radionet_api::Driver::run).
//!
//! # Example: broadcast across a partition that heals
//!
//! ```
//! use radionet_core::broadcast::run_broadcast;
//! use radionet_core::compete::CompeteConfig;
//! use radionet_graph::generators;
//! use radionet_scenario::events::{EventKind, ScenarioEvent};
//! use radionet_scenario::DynamicTopology;
//! use radionet_sim::{NetInfo, ReceptionMode, Sim};
//!
//! let g = generators::grid2d(6, 6);
//! let info = NetInfo::exact(&g);
//! // Split into 2 blocks immediately; repair at step 2000.
//! let script = vec![
//!     ScenarioEvent::new(0, EventKind::Partition(2)),
//!     ScenarioEvent::new(2000, EventKind::Heal),
//! ];
//! let topo = DynamicTopology::new(&g, script);
//! let mut sim = Sim::with_topology(&g, topo, info, 7, ReceptionMode::Protocol);
//! let out = run_broadcast(&mut sim, g.node(0), 42, &CompeteConfig::default());
//! assert!(out.completed(), "broadcast must recover after the repair");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalogue;
pub use radionet_api::dynamics;
pub use radionet_api::events;
pub mod runner;

pub use catalogue::{Dynamics, Scenario, Workload};
pub use dynamics::DynamicTopology;
pub use events::{EventKind, ScenarioEvent};
pub use runner::{
    run_cell, run_sweep_parallel, run_sweep_sequential, to_record, CellResult, CellSpec,
    SweepConfig,
};
