//! The sweep runner: fans (scenario × size × seed) cells across cores.
//!
//! Every cell is a pure function of its [`CellSpec`] — the graph, the event
//! script, and the simulator seed all derive from one mixed cell seed (see
//! [`radionet_api::seeds`]) — so the rayon-parallel runner produces
//! **byte-identical** results to the sequential one, in the same order.
//! `exp_scenarios` asserts exactly that before writing records.
//!
//! Since the façade redesign, a cell *is* a named [`RunSpec`]:
//! [`run_cell`] converts via
//! [`spec_for_cell`] and delegates to [`Driver::run`]. The pre-façade
//! hand-wired implementation is kept frozen as [`run_cell_reference`], and
//! the `facade_equiv` integration suite pins the two paths byte-identical
//! (reports *and* RNG fingerprints) across the whole catalogue, under both
//! kernels.

use crate::catalogue::{Scenario, Workload};
use crate::dynamics::DynamicTopology;
use radionet_analysis::{ExperimentRecord, RunRecord};
use radionet_api::seeds;
use radionet_api::{Driver, RunSpec};
use radionet_core::broadcast::run_broadcast;
use radionet_core::compete::CompeteConfig;
use radionet_core::leader_election::{run_leader_election, LeaderElectionConfig};
use radionet_core::mis::{run_radio_mis, MisConfig};
use radionet_sim::{Kernel, NetInfo, Sim, SimStats};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A sweep: every scenario crossed with every size, `seeds` times.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// The scenarios to run.
    pub scenarios: Vec<Scenario>,
    /// Requested graph sizes.
    pub sizes: Vec<usize>,
    /// Seeds per (scenario, size) cell.
    pub seeds: u64,
    /// Master seed mixed into every cell.
    pub base_seed: u64,
}

impl SweepConfig {
    /// The full catalogue at the given sizes.
    pub fn catalogue(sizes: Vec<usize>, seeds: u64, base_seed: u64) -> Self {
        SweepConfig { scenarios: Scenario::catalogue(), sizes, seeds, base_seed }
    }

    /// Expands the sweep into its cells, in deterministic order.
    pub fn cells(&self) -> Vec<CellSpec> {
        self.cells_iter().collect()
    }

    /// Lazily yields the sweep's cells in the same deterministic order as
    /// [`SweepConfig::cells`], without materializing them — the CLI
    /// streams arbitrarily large sweeps through this.
    pub fn cells_iter(&self) -> impl Iterator<Item = CellSpec> + '_ {
        self.scenarios.iter().flat_map(move |scenario| {
            self.sizes.iter().flat_map(move |&n| {
                (0..self.seeds).map(move |rep| CellSpec {
                    scenario: scenario.clone(),
                    n,
                    rep,
                    cell_seed: seeds::seed_for(self.base_seed, &scenario.name, n, rep),
                })
            })
        })
    }
}

/// One runnable cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// The scenario.
    pub scenario: Scenario,
    /// Requested size.
    pub n: usize,
    /// Repetition index within the cell.
    pub rep: u64,
    /// The mixed seed all randomness derives from.
    pub cell_seed: u64,
}

/// The measured outcome of one cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Scenario name.
    pub scenario: String,
    /// Family name.
    pub family: String,
    /// Workload name.
    pub workload: String,
    /// Dynamics name.
    pub dynamics: String,
    /// Actual node count.
    pub n: usize,
    /// Repetition index.
    pub rep: u64,
    /// Diameter of the instantiated base graph.
    pub d: u32,
    /// α estimate of the base graph.
    pub alpha: f64,
    /// Events in the materialized script.
    pub events: usize,
    /// Whether the workload's own success criterion held (all informed /
    /// valid MIS / unique agreed leader).
    pub success: bool,
    /// Workload-specific achievement in `[0, 1]`: informed fraction for
    /// broadcast and leader election, 1/0 validity for MIS.
    pub achieved: f64,
    /// Total clock at exit (simulated + charged).
    pub clock_total: u64,
    /// Clock when the success criterion was first met, if ever.
    pub clock_done: Option<u64>,
    /// Whether any phase fell back from the sparse to the dense kernel.
    /// Lifted out of [`SimStats::kernel_fallbacks`] so sweep rows surface
    /// a per-cell fallback without digging into the nested counters — a
    /// silent per-cell fallback would otherwise only be visible on
    /// single-run CLI output.
    pub fell_back: bool,
    /// `Some(hit)` when the cell was served through a content-addressed
    /// result cache (`radionet-service`): `true` means the report came
    /// straight from the cache, `false` means it executed fresh and was
    /// inserted. `None` for direct (uncached) runs — which is also what
    /// pre-service recorded rows deserialize to.
    pub cache_hit: Option<bool>,
    /// Engine counters.
    pub stats: SimStats,
}

/// Builds the sweep row a [`Driver`] report denotes for `cell`, tagging it
/// with how it was served (`cache_hit`). Shared by the direct runner below
/// and the service layer's cached cell runner, so the two row shapes can
/// never drift apart.
pub fn cell_result_from_report(
    cell: &CellSpec,
    report: &radionet_api::RunReport,
    cache_hit: Option<bool>,
) -> CellResult {
    CellResult {
        scenario: cell.scenario.name.clone(),
        family: cell.scenario.family.name().to_string(),
        workload: cell.scenario.workload.name().to_string(),
        dynamics: cell.scenario.dynamics.name().to_string(),
        n: report.n,
        rep: cell.rep,
        d: report.d,
        alpha: report.alpha,
        events: report.events,
        success: report.success,
        achieved: report.achieved,
        clock_total: report.clock_total,
        clock_done: report.clock_done,
        fell_back: report.stats.kernel_fallbacks > 0,
        cache_hit,
        stats: report.stats,
    }
}

/// The façade spec a cell denotes: same family, reception, dynamics, and
/// cell seed, with the workload mapped to its task-registry key.
pub fn spec_for_cell(cell: &CellSpec, kernel: Kernel) -> RunSpec {
    RunSpec {
        task: cell.scenario.workload.name().to_string(),
        family: cell.scenario.family,
        n: cell.n,
        reception: cell.scenario.reception.clone(),
        kernel,
        dynamics: cell.scenario.dynamics,
        steps: None,
        journal: None,
        traffic: None,
        seed: cell.cell_seed,
    }
}

/// Runs one cell. Pure: identical `spec` ⇒ identical result.
pub fn run_cell(spec: &CellSpec) -> CellResult {
    run_cell_kernel(spec, Kernel::default())
}

/// Runs one cell under an explicit step [`Kernel`]: a thin adapter that
/// converts to a [`RunSpec`] and delegates to the façade [`Driver`]. Both
/// kernels produce identical results — the scenario-level `kernel_equiv`
/// tests assert this across the whole catalogue.
pub fn run_cell_kernel(spec: &CellSpec, kernel: Kernel) -> CellResult {
    let report = Driver::standard()
        .run(&spec_for_cell(spec, kernel))
        .expect("catalogue cells are valid specs");
    cell_result_from_report(spec, &report, None)
}

/// The **frozen pre-façade implementation** of a cell, kept verbatim as the
/// differential oracle for [`run_cell_kernel`]: the `facade_equiv` suite
/// asserts the façade path reproduces this hand-wired pipeline
/// bit-for-bit — same [`CellResult`] *and* same per-node RNG fingerprint —
/// for every catalogue entry under both kernels. Not for new callers.
pub fn run_cell_reference(spec: &CellSpec, kernel: Kernel) -> (CellResult, u64) {
    let sc = &spec.scenario;
    let graph_seed = seeds::mix(spec.cell_seed ^ 0x6a);
    let g = sc.family.instantiate(spec.n, graph_seed);
    let info = NetInfo::exact(&g);
    let events = sc.events_for(&g, &info, seeds::mix(spec.cell_seed ^ 0xe7));
    let n_events = events.len();
    let topo = DynamicTopology::new(&g, events);
    let sim_seed = seeds::mix(spec.cell_seed ^ 0x51);
    let mut sim = Sim::with_topology(&g, topo, info, sim_seed, sc.reception.clone());
    sim.set_kernel(kernel);

    let (success, achieved, clock_done) = match sc.workload {
        Workload::Broadcast => {
            let out = run_broadcast(&mut sim, g.node(0), 42, &CompeteConfig::default());
            let informed =
                out.compete.best.iter().filter(|b| **b == Some(42)).count() as f64 / g.n() as f64;
            (out.completed(), informed, out.completion_time())
        }
        Workload::LeaderElection => {
            let out = run_leader_election(
                &mut sim,
                seeds::mix(spec.cell_seed ^ 0x1e),
                &LeaderElectionConfig::default(),
            );
            let agree = match out.leader {
                Some(id) => {
                    out.compete.best.iter().filter(|b| **b == Some(id)).count() as f64
                        / g.n() as f64
                }
                None => 0.0,
            };
            (out.succeeded(), agree, out.compete.clock_all_informed)
        }
        Workload::Mis => {
            let out = run_radio_mis(&mut sim, &MisConfig::default());
            let valid = out.is_valid(&g);
            let done = valid.then(|| sim.clock());
            (valid, if valid { 1.0 } else { 0.0 }, done)
        }
        Workload::Traffic => panic!(
            "the frozen reference pipeline predates traffic workloads; traffic cells \
             run only through the façade (run_cell_kernel)"
        ),
    };

    let result = CellResult {
        scenario: sc.name.clone(),
        family: sc.family.name().to_string(),
        workload: sc.workload.name().to_string(),
        dynamics: sc.dynamics.name().to_string(),
        n: g.n(),
        rep: spec.rep,
        d: info.d,
        alpha: info.alpha,
        events: n_events,
        success,
        achieved,
        clock_total: sim.clock(),
        clock_done,
        fell_back: sim.stats().kernel_fallbacks > 0,
        cache_hit: None,
        stats: *sim.stats(),
    };
    (result, sim.rng_fingerprint())
}

/// Runs the sweep on the current thread, in cell order.
pub fn run_sweep_sequential(config: &SweepConfig) -> Vec<CellResult> {
    config.cells().iter().map(run_cell).collect()
}

/// Runs the sweep on all cores (rayon), preserving cell order.
///
/// Because cells are seeded from their spec alone, the output is
/// byte-identical to [`run_sweep_sequential`] for the same config.
pub fn run_sweep_parallel(config: &SweepConfig) -> Vec<CellResult> {
    config.cells().into_par_iter().map(|spec| run_cell(&spec)).collect()
}

/// Converts results into the analysis layer's row type.
pub fn to_run_records(results: &[CellResult]) -> Vec<RunRecord> {
    results
        .iter()
        .map(|r| {
            let record = RunRecord::new()
                .param("scenario", &r.scenario)
                .param("family", &r.family)
                .param("workload", &r.workload)
                .param("dynamics", &r.dynamics)
                .param("n", r.n)
                .param("rep", r.rep)
                .metric("d", r.d as f64)
                .metric("alpha", r.alpha)
                .metric("events", r.events as f64)
                .metric("success", if r.success { 1.0 } else { 0.0 })
                .metric("achieved", r.achieved)
                .metric("clock_total", r.clock_total as f64)
                .metric("clock_done", r.clock_done.map(|c| c as f64).unwrap_or(-1.0))
                .metric("fell_back", if r.fell_back { 1.0 } else { 0.0 })
                .metric("kernel_fallbacks", r.stats.kernel_fallbacks as f64)
                .metric("simulated_steps", r.stats.simulated_steps as f64)
                .metric("transmissions", r.stats.transmissions as f64)
                .metric("deliveries", r.stats.deliveries as f64)
                .metric("collisions", r.stats.collisions as f64)
                .metric("scheduler_events", r.stats.scheduler_events as f64)
                .metric("silent_steps_skipped", r.stats.silent_steps_skipped as f64);
            // A cell served through a result cache carries its hit/miss as
            // a 1/0 metric; direct runs omit it (the ingest aggregations
            // skip rows without a metric), so a hit-rate summary over a
            // service-served sweep counts exactly the served cells.
            match r.cache_hit {
                Some(hit) => record.metric("cache_hit", if hit { 1.0 } else { 0.0 }),
                None => record,
            }
        })
        .collect()
}

/// Packages a finished sweep as an [`ExperimentRecord`].
pub fn to_record(id: &str, claim: &str, results: &[CellResult]) -> ExperimentRecord {
    let mut record = ExperimentRecord::new(id, claim);
    for run in to_run_records(results) {
        record.push(run);
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalogue::{Dynamics, PartitionSpec};
    use radionet_graph::families::Family;
    use radionet_sim::ReceptionMode;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            scenarios: vec![
                Scenario {
                    name: "t-static".into(),
                    family: Family::Grid,
                    workload: Workload::Broadcast,
                    reception: ReceptionMode::Protocol,
                    dynamics: Dynamics::Static,
                },
                Scenario {
                    name: "t-split".into(),
                    family: Family::Grid,
                    workload: Workload::Broadcast,
                    reception: ReceptionMode::Protocol,
                    dynamics: Dynamics::PartitionRepair(PartitionSpec {
                        parts: 2,
                        at: 0.05,
                        heal_at: 0.35,
                    }),
                },
            ],
            sizes: vec![36],
            seeds: 2,
            base_seed: 3,
        }
    }

    #[test]
    fn cells_are_deterministic_and_distinct() {
        let cfg = tiny_config();
        let a = cfg.cells();
        let b = cfg.cells();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let mut seeds: Vec<u64> = a.iter().map(|c| c.cell_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "cell seeds collide");
    }

    #[test]
    fn cell_seed_pins_the_shared_derivation() {
        // The extracted `seeds::seed_for` must keep producing the exact
        // values the runner's private derivation always produced (the
        // companion pin for `seeds::tests::pinned_values`).
        let cfg = tiny_config();
        assert_eq!(cfg.cells()[0].cell_seed, 0xafd9_5556_08f2_5d31);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        // Determinism here is by construction (cells are pure functions of
        // their specs), so the check holds for any worker count; genuinely
        // multi-threaded scheduling is exercised by the vendored rayon's
        // own tests, which force a 4-worker pool explicitly.
        let cfg = tiny_config();
        let seq = run_sweep_sequential(&cfg);
        let par = run_sweep_parallel(&cfg);
        assert_eq!(seq, par);
        let a = serde_json::to_string_pretty(&to_run_records(&seq)).unwrap();
        let b = serde_json::to_string_pretty(&to_run_records(&par)).unwrap();
        assert_eq!(a, b, "runner outputs must be byte-identical");
    }

    #[test]
    fn static_broadcast_succeeds() {
        let cfg = tiny_config();
        let results = run_sweep_sequential(&cfg);
        for r in results.iter().filter(|r| r.scenario == "t-static") {
            assert!(r.success, "static broadcast failed: {r:?}");
            assert!((r.achieved - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn facade_path_matches_reference_on_tiny_cells() {
        // The exhaustive catalogue × kernel sweep lives in
        // `tests/facade_equiv.rs`; this is the fast in-crate guard.
        for cell in tiny_config().cells() {
            let (reference, _fp) = run_cell_reference(&cell, Kernel::default());
            assert_eq!(run_cell(&cell), reference, "façade diverged in {}", cell.scenario.name);
        }
    }

    #[test]
    fn records_carry_the_sweep() {
        let cfg = tiny_config();
        let results = run_sweep_sequential(&cfg);
        let record = to_record("ES", "scenario sweep", &results);
        assert_eq!(record.runs.len(), results.len());
        assert_eq!(record.runs[0].params["scenario"], "t-static");
        assert!(record.runs[0].metrics.contains_key("clock_total"));
        // Kernel-fallback telemetry reaches every sweep row, not just
        // single-run CLI output.
        assert_eq!(record.runs[0].metrics["fell_back"], 0.0);
        assert_eq!(record.runs[0].metrics["kernel_fallbacks"], 0.0);
        assert!(!results[0].fell_back, "protocol-mode grid cells never fall back");
        // Event-kernel telemetry makes service-served sweeps auditable:
        // every row states how much scheduling work it really did.
        assert!(record.runs[0].metrics.contains_key("scheduler_events"));
        assert!(record.runs[0].metrics.contains_key("silent_steps_skipped"));
        // Direct (uncached) runs carry no cache metric at all…
        assert!(!record.runs[0].metrics.contains_key("cache_hit"));
        // …while served cells surface their hit/miss as 1/0.
        let mut served = results[0].clone();
        served.cache_hit = Some(true);
        let row = &to_record("ES", "served", &[served]).runs[0];
        assert_eq!(row.metrics["cache_hit"], 1.0);
    }
}
