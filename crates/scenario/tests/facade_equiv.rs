//! Façade equivalence: `Driver::run` on a catalogue-derived [`RunSpec`]
//! must be **byte-identical** to the frozen pre-façade cell pipeline —
//! same `CellResult` (stats, clocks, achieved fractions) *and* same
//! per-node RNG fingerprint — for the full scenario catalogue, under both
//! step kernels and both protocol-model reception modes.
//!
//! This is the acceptance gate of the API redesign: the unified entry
//! point may not change a single bit of any result the repo has ever
//! recorded.

use radionet_api::Driver;
use radionet_scenario::runner::{
    run_cell_kernel, run_cell_reference, spec_for_cell, CellSpec, SweepConfig,
};
use radionet_sim::{Kernel, ReceptionMode};

fn catalogue_cells(base_seed: u64) -> Vec<CellSpec> {
    SweepConfig::catalogue(vec![36], 1, base_seed).cells()
}

fn assert_cell_equivalent(cell: &CellSpec, kernel: Kernel) {
    let (reference, reference_fp) = run_cell_reference(cell, kernel);
    let facade = run_cell_kernel(cell, kernel);
    assert_eq!(
        facade, reference,
        "façade diverged from legacy pipeline in {} under {kernel:?}",
        cell.scenario.name
    );

    // Byte-level identity of the serialized rows, not just PartialEq.
    let a = serde_json::to_string_pretty(&facade).unwrap();
    let b = serde_json::to_string_pretty(&reference).unwrap();
    assert_eq!(a, b, "serialized results differ in {}", cell.scenario.name);

    // The RNG fingerprint proves the two paths consumed *identical*
    // randomness node-for-node, not merely that summaries agree.
    let report = Driver::standard().run(&spec_for_cell(cell, kernel)).expect("valid spec");
    assert_eq!(
        report.rng_fingerprint, reference_fp,
        "RNG streams diverged in {} under {kernel:?}",
        cell.scenario.name
    );
    assert_eq!(report.stats, reference.stats);
    assert_eq!(report.clock_total, reference.clock_total);
}

/// The whole catalogue, both kernels: spec path ≡ legacy path.
#[test]
fn full_catalogue_facade_equivalence() {
    for cell in catalogue_cells(0xface) {
        assert_cell_equivalent(&cell, Kernel::Sparse);
        assert_cell_equivalent(&cell, Kernel::Dense);
    }
}

/// Same sweep under collision-detection reception (the catalogue presets
/// are all protocol-model; clone them onto CD).
#[test]
fn full_catalogue_facade_equivalence_under_cd() {
    let mut cells = catalogue_cells(0xcd_face);
    for cell in &mut cells {
        cell.scenario.reception = ReceptionMode::ProtocolCd;
    }
    for cell in cells {
        assert_cell_equivalent(&cell, Kernel::Sparse);
        assert_cell_equivalent(&cell, Kernel::Dense);
    }
}

/// The spec derived from a cell carries the cell seed verbatim, so the
/// derived sub-seeds (graph, events, sim, lottery) cannot drift.
#[test]
fn cell_spec_round_trips_the_seed() {
    for cell in catalogue_cells(7) {
        let spec = spec_for_cell(&cell, Kernel::default());
        assert_eq!(spec.seed, cell.cell_seed);
        assert_eq!(spec.task, cell.scenario.workload.name());
        assert_eq!(spec.family, cell.scenario.family);
        assert_eq!(spec.dynamics, cell.scenario.dynamics);
    }
}
