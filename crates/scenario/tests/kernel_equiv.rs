//! Scenario-level kernel equivalence: every (protocol × scenario) cell of
//! the catalogue must produce the identical [`CellResult`] under the
//! sparse, dense, and event kernels — full `Compete` broadcast, leader
//! election, and radio MIS, under churn, partitions, jamming, staggered
//! wake-up, and mobility.
//!
//! This is the end-to-end counterpart of `radionet-sim`'s differential
//! proptests: it exercises the real protocol stack (MIS → partition → ICP →
//! propagation rounds, with all the `Wake` hints those implementations
//! return) over `DynamicTopology`'s batch change feed and the mobility
//! views' tick clocks. Results are compared after
//! [`SimStats::kernel_invariant`] zeroes the kernel-dependent counters
//! (scheduler pops, skipped silent steps) — everything else must match
//! byte-for-byte.

use proptest::prelude::*;
use radionet_scenario::catalogue::Scenario;
use radionet_scenario::runner::{run_cell_kernel, CellResult, CellSpec, SweepConfig};
use radionet_sim::{Kernel, ReceptionMode};

fn cells(sizes: Vec<usize>, seeds: u64, base_seed: u64) -> Vec<CellSpec> {
    SweepConfig::catalogue(sizes, seeds, base_seed).cells()
}

/// Runs the cell under one kernel and zeroes the kernel-dependent stats
/// counters so whole results compare across kernels.
fn run_invariant(spec: &CellSpec, kernel: Kernel) -> CellResult {
    let mut r = run_cell_kernel(spec, kernel);
    r.stats = r.stats.kernel_invariant();
    r
}

/// The whole catalogue, one small size, all three kernels, cell by cell.
#[test]
fn catalogue_cells_agree_across_kernels() {
    for spec in cells(vec![36], 1, 0xbeef) {
        let sparse = run_invariant(&spec, Kernel::Sparse);
        let dense = run_invariant(&spec, Kernel::Dense);
        let event = run_invariant(&spec, Kernel::Event);
        assert_eq!(sparse, dense, "kernel divergence in cell {:?}", spec.scenario.name);
        assert_eq!(sparse, event, "event-kernel divergence in cell {:?}", spec.scenario.name);
    }
}

/// The mobility scenarios (topology derived from a moving point set): the
/// sparse active-set and clock-jumping event kernels must reproduce the
/// dense reference bit-for-bit on `MobileTopology` too.
#[test]
fn mobility_cells_agree_across_kernels() {
    let config = SweepConfig {
        scenarios: Scenario::mobility_catalogue(),
        sizes: vec![36],
        seeds: 1,
        base_seed: 0x30b,
    };
    for spec in config.cells() {
        let sparse = run_invariant(&spec, Kernel::Sparse);
        let dense = run_invariant(&spec, Kernel::Dense);
        let event = run_invariant(&spec, Kernel::Event);
        assert_eq!(sparse, dense, "kernel divergence in mobility cell {:?}", spec.scenario.name);
        assert_eq!(
            sparse, event,
            "event-kernel divergence in mobility cell {:?}",
            spec.scenario.name
        );
    }
}

/// Collision-detection reception over the dynamic scenarios (the catalogue
/// presets are all protocol-model; clone them onto CD).
#[test]
fn catalogue_cells_agree_under_collision_detection() {
    let mut specs = cells(vec![36], 1, 0x0cd);
    for spec in &mut specs {
        spec.scenario.reception = ReceptionMode::ProtocolCd;
    }
    for spec in specs {
        let sparse = run_invariant(&spec, Kernel::Sparse);
        let dense = run_invariant(&spec, Kernel::Dense);
        let event = run_invariant(&spec, Kernel::Event);
        assert_eq!(sparse, dense, "CD kernel divergence in cell {:?}", spec.scenario.name);
        assert_eq!(sparse, event, "CD event-kernel divergence in cell {:?}", spec.scenario.name);
    }
}

/// Streaming-traffic specs through the full façade: every traffic kind,
/// under churn and under jamming, must produce the identical outcome,
/// kernel-invariant stats, scheduler pops, and RNG fingerprint across the
/// three kernels — the end-to-end counterpart of `radionet-sim`'s
/// injection-schedule proptest.
#[test]
fn traffic_cells_agree_across_kernels() {
    use radionet_api::{Driver, Dynamics, RunSpec, TrafficSpec};
    use radionet_graph::families::Family;

    let driver = Driver::standard();
    for task in ["traffic.gossip", "traffic.unicast", "traffic.multicast"] {
        for dynamics in ["churn", "jamming"] {
            let spec = |kernel| {
                RunSpec::new(task, Family::Grid, 36)
                    .with_seed(0x7a)
                    .with_traffic(TrafficSpec::default())
                    .with_dynamics(Dynamics::preset(dynamics).unwrap())
                    .with_kernel(kernel)
            };
            let sparse = driver.run(&spec(Kernel::Sparse)).unwrap();
            let dense = driver.run(&spec(Kernel::Dense)).unwrap();
            let event = driver.run(&spec(Kernel::Event)).unwrap();
            let key = |r: &radionet_api::RunReport| {
                (r.outcome, r.traffic, r.stats.kernel_invariant(), r.rng_fingerprint)
            };
            assert_eq!(key(&sparse), key(&dense), "{task} under {dynamics}: dense disagrees");
            assert_eq!(key(&sparse), key(&event), "{task} under {dynamics}: event disagrees");
            assert_eq!(
                sparse.stats.scheduler_events, event.stats.scheduler_events,
                "{task} under {dynamics}: event kernel must pop exactly sparse's wake entries"
            );
            assert!(
                sparse.traffic.is_some_and(|t| t.injected > 0),
                "{task} under {dynamics}: the workload injected nothing — vacuous cell"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random seeds × random catalogue entries at a slightly larger size.
    #[test]
    fn random_cells_agree(base_seed in 0u64..10_000, idx in 0usize..11, rep in 0u64..3) {
        let catalogue = Scenario::catalogue();
        let scenario = catalogue[idx % catalogue.len()].clone();
        let config = SweepConfig {
            scenarios: vec![scenario],
            sizes: vec![48],
            seeds: rep + 1,
            base_seed,
        };
        let spec = config.cells().into_iter().last().unwrap();
        let sparse = run_invariant(&spec, Kernel::Sparse);
        let dense = run_invariant(&spec, Kernel::Dense);
        let event = run_invariant(&spec, Kernel::Event);
        prop_assert_eq!(&sparse, &dense);
        prop_assert_eq!(&sparse, &event);
    }
}
