//! Scenario-level kernel equivalence: every (protocol × scenario) cell of
//! the catalogue must produce the identical [`CellResult`] under the sparse
//! and the dense kernel — full `Compete` broadcast, leader election, and
//! radio MIS, under churn, partitions, jamming, and staggered wake-up.
//!
//! This is the end-to-end counterpart of `radionet-sim`'s differential
//! proptests: it exercises the real protocol stack (MIS → partition → ICP →
//! propagation rounds, with all the `Wake` hints those implementations
//! return) over `DynamicTopology`'s batch change feed.

use proptest::prelude::*;
use radionet_scenario::catalogue::Scenario;
use radionet_scenario::runner::{run_cell_kernel, CellSpec, SweepConfig};
use radionet_sim::{Kernel, ReceptionMode};

fn cells(sizes: Vec<usize>, seeds: u64, base_seed: u64) -> Vec<CellSpec> {
    SweepConfig::catalogue(sizes, seeds, base_seed).cells()
}

/// The whole catalogue, one small size, both kernels, cell by cell.
#[test]
fn catalogue_cells_agree_across_kernels() {
    for spec in cells(vec![36], 1, 0xbeef) {
        let sparse = run_cell_kernel(&spec, Kernel::Sparse);
        let dense = run_cell_kernel(&spec, Kernel::Dense);
        assert_eq!(sparse, dense, "kernel divergence in cell {:?}", spec.scenario.name);
    }
}

/// The mobility scenarios (topology derived from a moving point set): the
/// sparse active-set kernel must reproduce the dense reference bit-for-bit
/// on `MobileTopology` too.
#[test]
fn mobility_cells_agree_across_kernels() {
    let config = SweepConfig {
        scenarios: Scenario::mobility_catalogue(),
        sizes: vec![36],
        seeds: 1,
        base_seed: 0x30b,
    };
    for spec in config.cells() {
        let sparse = run_cell_kernel(&spec, Kernel::Sparse);
        let dense = run_cell_kernel(&spec, Kernel::Dense);
        assert_eq!(sparse, dense, "kernel divergence in mobility cell {:?}", spec.scenario.name);
    }
}

/// Collision-detection reception over the dynamic scenarios (the catalogue
/// presets are all protocol-model; clone them onto CD).
#[test]
fn catalogue_cells_agree_under_collision_detection() {
    let mut specs = cells(vec![36], 1, 0x0cd);
    for spec in &mut specs {
        spec.scenario.reception = ReceptionMode::ProtocolCd;
    }
    for spec in specs {
        let sparse = run_cell_kernel(&spec, Kernel::Sparse);
        let dense = run_cell_kernel(&spec, Kernel::Dense);
        assert_eq!(sparse, dense, "CD kernel divergence in cell {:?}", spec.scenario.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random seeds × random catalogue entries at a slightly larger size.
    #[test]
    fn random_cells_agree(base_seed in 0u64..10_000, idx in 0usize..11, rep in 0u64..3) {
        let catalogue = Scenario::catalogue();
        let scenario = catalogue[idx % catalogue.len()].clone();
        let config = SweepConfig {
            scenarios: vec![scenario],
            sizes: vec![48],
            seeds: rep + 1,
            base_seed,
        };
        let spec = config.cells().into_iter().last().unwrap();
        let sparse = run_cell_kernel(&spec, Kernel::Sparse);
        let dense = run_cell_kernel(&spec, Kernel::Dense);
        prop_assert_eq!(sparse, dense);
    }
}
