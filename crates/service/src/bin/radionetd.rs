//! `radionetd` — the deterministic run service daemon.
//!
//! ```text
//! radionetd [--addr A] [--workers N] [--queue-cap N] [--cache-bytes N]
//!           [--audit-fraction F] [--persist FILE]
//! radionetd --worker     # subprocess shard worker: spec JSONL on stdin,
//!                        # report JSONL on stdout
//! ```
//!
//! `radionet serve` is an alias for the first form; clients are
//! `radionet submit / status / fetch / call` (or anything that speaks the
//! newline-delimited JSON protocol — see `radionet_service::protocol`).

use radionet_service::cli;
use std::process::ExitCode;

const USAGE: &str = "\
radionetd — deterministic run service (content-addressed cache, job queue, shard workers)

USAGE:
  radionetd [OPTIONS]     serve until a client sends {\"cmd\": \"shutdown\"}
  radionetd --worker      shard worker: spec JSONL on stdin -> report JSONL on stdout

OPTIONS:
  --addr A            bind address             [default: 127.0.0.1:7177; port 0 = free port]
  --workers N         queue worker threads     [default: 2]
  --queue-cap N       backpressure high-water  [default: 256]
  --cache-bytes N     in-memory LRU budget     [default: 67108864]
  --audit-fraction F  fraction of cache hits re-run and byte-compared [default: 0.05]
  --persist FILE      JSONL-backed persistent result store
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("--worker") => cli::worker_cmd(),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            Ok(())
        }
        _ => cli::serve_cmd(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("radionetd: {e}");
            ExitCode::FAILURE
        }
    }
}
