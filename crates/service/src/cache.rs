//! The content-addressed result cache: serve identical traffic without
//! re-simulating.
//!
//! Keys are [`SpecHash`]es over the canonical spec bytes
//! ([`RunSpec::spec_hash`]), so two documents that *mean* the same run —
//! reordered fields, `null` versus absent optionals — share one entry.
//! Values are the **compact JSON lines** of the corresponding
//! [`RunReport`]s, not decoded structs: byte-level storage is what makes
//! the cache-correctness contract checkable (a served report must be
//! byte-identical to a fresh run) and what the persistent store appends
//! verbatim. The workspace serializer's float rendering is
//! shortest-round-trip, so decode → re-encode reproduces the stored line
//! exactly; the round-trip test below pins that.
//!
//! Three layers, checked in order:
//!
//! 1. an **in-memory LRU** with a byte budget (stored line lengths), the
//!    oldest entries evicted first;
//! 2. an optional **persistent store** — a JSONL file of
//!    `{"hash": …, "report": …}` rows loaded at open (last write wins) and
//!    appended on every fresh run, so a restarted daemon serves yesterday's
//!    traffic warm;
//! 3. the [`Driver`] itself on a miss.
//!
//! **The audit guard.** Caching correctness rests on run purity, so the
//! cache re-verifies it in production: a configurable fraction of hits is
//! re-executed fresh and compared byte-for-byte against the stored line.
//! The decision is deterministic (a [`seeds::mix`] draw over the key and
//! the hit ordinal), so audit behaviour is reproducible run-for-run. A
//! mismatch increments `audit_failures`, replaces the poisoned entry, and
//! serves the fresh report — a corrupted store degrades to correct-but-slow
//! instead of wrong.

use radionet_api::{seeds, Driver, RunError, RunReport, RunSpec, SpecHash};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::Mutex;

/// Configuration of a [`ResultCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Byte budget of the in-memory LRU (sum of stored report lines).
    pub max_bytes: usize,
    /// Fraction of hits re-run fresh and compared byte-for-byte, in
    /// `[0, 1]`. `0.0` disables the audit guard; `1.0` audits every hit
    /// (every hit costs a full run — useful in tests and canaries only).
    pub audit_fraction: f64,
    /// Optional JSONL-backed persistent store, loaded at open and appended
    /// on every fresh run.
    pub persist: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { max_bytes: 64 << 20, audit_fraction: 0.05, persist: None }
    }
}

/// Monotone counters describing cache behaviour since open.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests served from the cache (memory or persistent store).
    pub hits: u64,
    /// Requests that ran fresh because no entry existed.
    pub misses: u64,
    /// In-memory entries dropped to respect the byte budget.
    pub evictions: u64,
    /// Hits that were audited (re-run fresh and compared).
    pub audits: u64,
    /// Audits whose stored line did **not** match the fresh run. Always 0
    /// under the purity contract; anything else means a corrupted store or
    /// a determinism regression.
    pub audit_failures: u64,
    /// Entries loaded from the persistent store that later served a hit.
    pub persist_hits: u64,
    /// Live in-memory entries.
    pub entries: u64,
    /// Live in-memory bytes (sum of stored line lengths).
    pub bytes: u64,
}

/// The outcome of [`ResultCache::serve`].
#[derive(Clone, Debug, PartialEq)]
pub struct Served {
    /// The report — decoded from the stored line on a hit, fresh otherwise.
    pub report: RunReport,
    /// Whether the request was served from the cache. An audited hit whose
    /// comparison failed reports `false`: the caller got a fresh run.
    pub hit: bool,
    /// Whether the audit guard re-ran this request.
    pub audited: bool,
}

/// One stored report line plus its LRU stamp.
struct Entry {
    line: String,
    stamp: u64,
    from_disk: bool,
}

/// One row of the persistent JSONL store.
#[derive(Serialize, Deserialize)]
struct PersistRow {
    hash: SpecHash,
    report: RunReport,
}

struct Inner {
    entries: HashMap<SpecHash, Entry>,
    /// LRU index: stamp → key. Stamps are unique (a monotone clock), so
    /// the first entry is always the least recently used.
    by_age: BTreeMap<u64, SpecHash>,
    bytes: usize,
    clock: u64,
    stats: CacheStats,
    /// Rows loaded from the persistent file that have not been promoted
    /// into memory yet (last write in the file wins).
    disk: HashMap<SpecHash, String>,
    /// Append handle of the persistent store, if configured.
    persist: Option<std::fs::File>,
}

/// The content-addressed result cache (see the module docs). All methods
/// take `&self`; the cache is shared across worker threads behind one
/// internal mutex, which is **never held across a simulation** — misses
/// and audits run unlocked, so a long cell cannot stall lookups.
pub struct ResultCache {
    inner: Mutex<Inner>,
    max_bytes: usize,
    audit_fraction: f64,
}

impl ResultCache {
    /// Opens a cache; loads the persistent store when configured.
    ///
    /// # Errors
    ///
    /// Fails when the persistent file exists but cannot be read, or cannot
    /// be opened for append. Unparseable rows are skipped (a torn final
    /// append after a crash must not brick the store).
    pub fn open(config: CacheConfig) -> io::Result<ResultCache> {
        let mut disk = HashMap::new();
        let mut persist = None;
        if let Some(path) = &config.persist {
            if path.exists() {
                let file = std::fs::File::open(path)?;
                for line in io::BufReader::new(file).lines() {
                    let line = line?;
                    if let Ok(row) = serde_json::from_str::<PersistRow>(&line) {
                        let report_line = serde_json::to_string(&row.report)
                            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                        disk.insert(row.hash, report_line);
                    }
                }
            }
            persist = Some(std::fs::OpenOptions::new().create(true).append(true).open(path)?);
        }
        Ok(ResultCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                by_age: BTreeMap::new(),
                bytes: 0,
                clock: 0,
                stats: CacheStats::default(),
                disk,
                persist,
            }),
            max_bytes: config.max_bytes.max(1),
            audit_fraction: config.audit_fraction.clamp(0.0, 1.0),
        })
    }

    /// An in-memory cache with the default budget and no persistence.
    pub fn in_memory() -> ResultCache {
        ResultCache::open(CacheConfig::default()).expect("no persistence, cannot fail")
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache poisoned").stats
    }

    /// Serves one spec: cache hit (possibly audited) or a fresh run that
    /// populates the cache.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from fresh runs and audit re-runs; store
    /// I/O and decode failures surface as [`RunError::Sink`].
    pub fn serve(&self, driver: &Driver, spec: &RunSpec) -> Result<Served, RunError> {
        let hash = spec.spec_hash();
        let cached = {
            let mut inner = self.inner.lock().expect("cache poisoned");
            inner.lookup(hash, self.max_bytes)
        };
        match cached {
            Some((line, nth_hit)) => {
                if self.should_audit(hash, nth_hit) {
                    return self.audit(driver, spec, hash, line);
                }
                let report = decode(&line)?;
                Ok(Served { report, hit: true, audited: false })
            }
            None => {
                let report = driver.run(spec)?;
                let line = encode(&report)?;
                self.store(hash, line)?;
                Ok(Served { report, hit: false, audited: false })
            }
        }
    }

    /// Cache lookup without fallback execution: the sweep path peeks every
    /// cell first, runs only the misses (sharded), and re-inserts via
    /// [`ResultCache::insert`]. Counts hits/misses like
    /// [`ResultCache::serve`]; never audits.
    pub fn lookup(&self, spec: &RunSpec) -> Option<RunReport> {
        let hash = spec.spec_hash();
        let line = self.inner.lock().expect("cache poisoned").lookup(hash, self.max_bytes)?.0;
        decode(&line).ok()
    }

    /// Inserts a report under its own spec's hash (fresh-run results from
    /// the sweep path; also usable to pre-warm a cache).
    ///
    /// # Errors
    ///
    /// Surfaces persistent-store append failures.
    pub fn insert(&self, report: &RunReport) -> Result<(), RunError> {
        let hash = report.spec.spec_hash();
        let line = encode(report)?;
        self.store(hash, line)
    }

    /// The deterministic audit draw: hit `nth` of key `hash` is audited
    /// iff a fixed mix of the two falls under the configured fraction.
    fn should_audit(&self, hash: SpecHash, nth_hit: u64) -> bool {
        if self.audit_fraction >= 1.0 {
            return true;
        }
        let draw = seeds::mix(hash.lo ^ seeds::mix(nth_hit ^ hash.hi));
        (draw as f64) < self.audit_fraction * (u64::MAX as f64)
    }

    /// Re-runs an audited hit and compares byte-for-byte. On mismatch the
    /// poisoned entry is replaced and the fresh report served.
    fn audit(
        &self,
        driver: &Driver,
        spec: &RunSpec,
        hash: SpecHash,
        line: String,
    ) -> Result<Served, RunError> {
        let fresh = driver.run(spec)?;
        let fresh_line = encode(&fresh)?;
        let clean = fresh_line == line;
        {
            let mut inner = self.inner.lock().expect("cache poisoned");
            inner.stats.audits += 1;
            if !clean {
                inner.stats.audit_failures += 1;
            }
        }
        if !clean {
            self.store(hash, fresh_line)?;
        }
        Ok(Served { report: fresh, hit: clean, audited: true })
    }

    /// Inserts a line under `hash`, evicting LRU entries past the byte
    /// budget, and appends to the persistent store when configured.
    fn store(&self, hash: SpecHash, line: String) -> Result<(), RunError> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(file) = &mut inner.persist {
            // The stored line is already compact JSON; splicing it into the
            // row keeps the append byte-identical to what a reload serves.
            let row = format!("{{\"hash\":\"{}\",\"report\":{}}}\n", hash.to_hex(), line);
            file.write_all(row.as_bytes()).and_then(|()| file.flush()).map_err(RunError::Sink)?;
        }
        inner.put(hash, line, false);
        inner.respect_budget(self.max_bytes);
        Ok(())
    }
}

impl Inner {
    /// Memory lookup with disk-store promotion; returns the stored line
    /// and the hit ordinal (for the deterministic audit draw), counting
    /// hit/miss either way.
    fn lookup(&mut self, hash: SpecHash, max_bytes: usize) -> Option<(String, u64)> {
        if let Some(entry) = self.entries.get(&hash) {
            let (line, stamp, from_disk) = (entry.line.clone(), entry.stamp, entry.from_disk);
            self.by_age.remove(&stamp);
            self.clock += 1;
            let stamp = self.clock;
            self.by_age.insert(stamp, hash);
            self.entries.get_mut(&hash).expect("just read").stamp = stamp;
            self.stats.hits += 1;
            if from_disk {
                self.stats.persist_hits += 1;
            }
            return Some((line, self.stats.hits));
        }
        if let Some(line) = self.disk.remove(&hash) {
            self.put(hash, line.clone(), true);
            self.respect_budget(max_bytes);
            self.stats.hits += 1;
            self.stats.persist_hits += 1;
            return Some((line, self.stats.hits));
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts (or replaces) an entry and refreshes its LRU stamp.
    fn put(&mut self, hash: SpecHash, line: String, from_disk: bool) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(old) = self.entries.insert(hash, Entry { line, stamp, from_disk }) {
            self.bytes -= old.line.len();
            self.by_age.remove(&old.stamp);
        }
        self.bytes += self.entries[&hash].line.len();
        self.by_age.insert(stamp, hash);
        self.stats.entries = self.entries.len() as u64;
        self.stats.bytes = self.bytes as u64;
    }

    /// Evicts least-recently-used entries until the budget holds. The
    /// newest entry always survives, even when it alone exceeds the
    /// budget — a cache of one beats a cache of none.
    fn respect_budget(&mut self, max_bytes: usize) {
        while self.bytes > max_bytes && self.entries.len() > 1 {
            let (&stamp, &hash) = self.by_age.iter().next().expect("entries nonempty");
            self.by_age.remove(&stamp);
            let evicted = self.entries.remove(&hash).expect("index and map in sync");
            self.bytes -= evicted.line.len();
            self.stats.evictions += 1;
        }
        self.stats.entries = self.entries.len() as u64;
        self.stats.bytes = self.bytes as u64;
    }
}

/// Compact-JSON encode with cache-flavoured error mapping.
fn encode(report: &RunReport) -> Result<String, RunError> {
    serde_json::to_string(report)
        .map_err(|e| RunError::Sink(io::Error::new(io::ErrorKind::InvalidData, e.to_string())))
}

/// Decode of a stored line with cache-flavoured error mapping.
fn decode(line: &str) -> Result<RunReport, RunError> {
    serde_json::from_str(line)
        .map_err(|e| RunError::Sink(io::Error::new(io::ErrorKind::InvalidData, e.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::families::Family;

    fn spec(seed: u64) -> RunSpec {
        RunSpec::new("luby-mis", Family::Path, 8).with_seed(seed)
    }

    fn cache(max_bytes: usize, audit: f64) -> ResultCache {
        ResultCache::open(CacheConfig { max_bytes, audit_fraction: audit, persist: None }).unwrap()
    }

    #[test]
    fn hit_is_byte_identical_to_fresh() {
        let driver = Driver::standard();
        let cache = cache(1 << 20, 0.0);
        let cold = cache.serve(&driver, &spec(1)).unwrap();
        assert!(!cold.hit);
        let warm = cache.serve(&driver, &spec(1)).unwrap();
        assert!(warm.hit && !warm.audited);
        // Byte identity, not just struct equality: the decoded report
        // re-encodes to exactly the stored line.
        assert_eq!(
            serde_json::to_string(&warm.report).unwrap(),
            serde_json::to_string(&cold.report).unwrap()
        );
        assert_eq!(warm.report, cold.report);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn full_audit_verifies_every_hit() {
        let driver = Driver::standard();
        let cache = cache(1 << 20, 1.0);
        cache.serve(&driver, &spec(2)).unwrap();
        let served = cache.serve(&driver, &spec(2)).unwrap();
        assert!(served.hit && served.audited);
        let s = cache.stats();
        assert_eq!((s.audits, s.audit_failures), (1, 0));
    }

    #[test]
    fn audit_catches_a_poisoned_entry() {
        let driver = Driver::standard();
        let cache = cache(1 << 20, 1.0);
        let truth = cache.serve(&driver, &spec(3)).unwrap().report;
        let hash = spec(3).spec_hash();
        // Corrupt the stored line behind the public API's back
        // (same-length corruption, so the byte accounting stays honest).
        {
            let mut inner = cache.inner.lock().unwrap();
            let entry = inner.entries.get_mut(&hash).unwrap();
            assert!(entry.line.contains("\"clock_total\":"));
            entry.line = entry.line.replace("\"clock_total\":", "\"clock_toXal\":");
        }
        let served = cache.serve(&driver, &spec(3)).unwrap();
        assert!(!served.hit && served.audited, "a failed audit is not a hit");
        assert_eq!(served.report, truth, "the fresh run is served, not the poison");
        assert_eq!(cache.stats().audit_failures, 1);
        // The poisoned entry was replaced: the next audit passes.
        let again = cache.serve(&driver, &spec(3)).unwrap();
        assert!(again.hit && again.audited);
        assert_eq!(cache.stats().audit_failures, 1);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let driver = Driver::standard();
        // One tiny report is ~1–2 KiB; a 3 KiB budget holds at most two.
        let one = serde_json::to_string(&driver.run(&spec(0)).unwrap()).unwrap().len();
        let cache = cache(2 * one + one / 2, 0.0);
        for seed in 0..3 {
            cache.serve(&driver, &spec(seed)).unwrap();
        }
        let s = cache.stats();
        assert!(s.evictions >= 1, "three entries cannot fit a two-entry budget");
        assert!(s.bytes <= (2 * one + one / 2) as u64);
        // Seed 0 was the least recently used → evicted → misses again.
        let again = cache.serve(&driver, &spec(0)).unwrap();
        assert!(!again.hit);
        // Seed 2 stayed resident.
        assert!(cache.serve(&driver, &spec(2)).unwrap().hit);
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("radionet-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.jsonl");
        let _ = std::fs::remove_file(&path);
        let driver = Driver::standard();
        let config =
            CacheConfig { max_bytes: 1 << 20, audit_fraction: 0.0, persist: Some(path.clone()) };
        let cold = {
            let cache = ResultCache::open(config.clone()).unwrap();
            cache.serve(&driver, &spec(9)).unwrap()
        };
        assert!(!cold.hit);
        // A fresh process image: memory empty, file warm.
        let cache = ResultCache::open(config).unwrap();
        let warm = cache.serve(&driver, &spec(9)).unwrap();
        assert!(warm.hit, "the persisted entry serves the reopened cache");
        assert_eq!(warm.report, cold.report);
        let s = cache.stats();
        assert_eq!((s.persist_hits, s.misses), (1, 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn audit_draw_is_deterministic_and_roughly_calibrated() {
        let cache = cache(1 << 20, 0.25);
        let hash = spec(0).spec_hash();
        let hits: u64 = (0..4000).filter(|&n| cache.should_audit(hash, n)).count() as u64;
        let again: u64 = (0..4000).filter(|&n| cache.should_audit(hash, n)).count() as u64;
        assert_eq!(hits, again, "the draw is a pure function");
        assert!((700..1300).contains(&hits), "≈25% of 4000 draws, got {hits}");
    }
}
