//! Shared command implementations behind the `radionetd` binary and the
//! `radionet serve / submit / status / fetch / call` subcommands — one
//! place parses flags and speaks the protocol, two binaries expose it.

use crate::client::ServiceClient;
use crate::protocol::Request;
use crate::server::{Service, ServiceConfig};
use crate::shard::worker_loop;
use radionet_api::{Driver, RunSpec};
use radionet_graph::families::Family;
use radionet_sim::Kernel;
use std::io::{BufRead, Write};

/// The default loopback endpoint shared by server and client commands.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7177";

/// A tiny `--key value` / `--switch` cursor (mirrors the root CLI's).
struct Args<'a> {
    rest: &'a [String],
    i: usize,
}

impl<'a> Args<'a> {
    fn new(rest: &'a [String]) -> Self {
        Args { rest, i: 0 }
    }

    fn next_flag(&mut self) -> Option<&'a str> {
        let flag = self.rest.get(self.i)?;
        self.i += 1;
        Some(flag.as_str())
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        let v = self.rest.get(self.i).ok_or_else(|| format!("{flag} needs a value"))?;
        self.i += 1;
        Ok(v.as_str())
    }
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag} {value:?}: {e}"))
}

/// `serve`: run the daemon in the foreground until a client sends
/// `shutdown`.
///
/// Flags: `--addr A` (default [`DEFAULT_ADDR`]; port 0 picks a free
/// port), `--workers N`, `--queue-cap N`, `--cache-bytes N`,
/// `--audit-fraction F`, `--persist FILE`.
///
/// # Errors
///
/// Flag, bind, and persistent-store failures, as printable text.
pub fn serve_cmd(rest: &[String]) -> Result<(), String> {
    let mut args = Args::new(rest);
    let mut config = ServiceConfig { addr: DEFAULT_ADDR.into(), ..ServiceConfig::default() };
    while let Some(flag) = args.next_flag() {
        match flag {
            "--addr" => config.addr = args.value(flag)?.to_string(),
            "--workers" => config.workers = parse(flag, args.value(flag)?)?,
            "--queue-cap" => config.queue_capacity = parse(flag, args.value(flag)?)?,
            "--cache-bytes" => config.cache.max_bytes = parse(flag, args.value(flag)?)?,
            "--audit-fraction" => config.cache.audit_fraction = parse(flag, args.value(flag)?)?,
            "--persist" => config.cache.persist = Some(args.value(flag)?.into()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let handle = Service::start(config).map_err(|e| e.to_string())?;
    // The exact line CI greps for; flushed so a piped supervisor sees it
    // before the first request arrives.
    println!("radionetd listening on {}", handle.addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    handle.join();
    eprintln!("radionetd: drained and stopped");
    Ok(())
}

/// `--worker`: the subprocess shard worker — spec JSONL on stdin, report
/// JSONL on stdout (see [`worker_loop`]).
///
/// # Errors
///
/// I/O and run failures, as printable text.
pub fn worker_cmd() -> Result<(), String> {
    let driver = Driver::standard();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let served = worker_loop(&driver, stdin.lock(), stdout.lock()).map_err(|e| e.to_string())?;
    eprintln!("worker: served {served} specs");
    Ok(())
}

/// Builds the spec a `submit` command describes: either `--spec FILE|-`
/// (a full JSON document) or the quick flags
/// `--task/--family/--n/--seed/--kernel`.
fn spec_from_flags(args: &mut Args<'_>, flag: &str, spec: &mut RunSpec) -> Result<bool, String> {
    match flag {
        "--task" => spec.task = args.value(flag)?.to_string(),
        "--family" => {
            let name = args.value(flag)?;
            spec.family = Family::ALL
                .into_iter()
                .find(|f| f.name() == name)
                .ok_or_else(|| format!("unknown family {name:?}"))?;
        }
        "--n" => spec.n = parse(flag, args.value(flag)?)?,
        "--seed" => spec.seed = parse(flag, args.value(flag)?)?,
        "--kernel" => {
            spec.kernel = match args.value(flag)? {
                "sparse" => Kernel::Sparse,
                "dense" => Kernel::Dense,
                "event" => Kernel::Event,
                other => return Err(format!("unknown kernel {other:?}")),
            };
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Reads a full spec document from a file or stdin (`-`).
fn spec_from_file(path: &str) -> Result<RunSpec, String> {
    let json = if path == "-" {
        std::io::read_to_string(std::io::stdin()).map_err(|e| e.to_string())?
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    serde_json::from_str(&json).map_err(|e| format!("bad spec in {path}: {e}"))
}

/// `submit`: send one spec to a running service.
///
/// Flags: `--addr A`, `--spec FILE|-` or the quick spec flags, `--wait`
/// (block for the terminal response). Prints the response as pretty JSON.
///
/// # Errors
///
/// Flag, transport, and service failures, as printable text.
pub fn submit_cmd(rest: &[String]) -> Result<(), String> {
    let mut args = Args::new(rest);
    let mut addr = DEFAULT_ADDR.to_string();
    let mut spec = RunSpec::new("broadcast", Family::Grid, 36);
    let mut spec_file: Option<String> = None;
    let mut wait = false;
    while let Some(flag) = args.next_flag() {
        match flag {
            "--addr" => addr = args.value(flag)?.to_string(),
            "--spec" => spec_file = Some(args.value(flag)?.to_string()),
            "--wait" => wait = true,
            other => {
                if !spec_from_flags(&mut args, other, &mut spec)? {
                    return Err(format!("unknown flag {other:?}"));
                }
            }
        }
    }
    if let Some(path) = spec_file {
        spec = spec_from_file(&path)?;
    }
    let mut client = ServiceClient::connect(&addr).map_err(|e| e.to_string())?;
    let response = client.call(&Request::submit(spec, wait)).map_err(|e| e.to_string())?;
    println!("{}", serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?);
    if response.ok {
        Ok(())
    } else {
        Err(response.error.unwrap_or_else(|| "unspecified service error".into()))
    }
}

/// `status` / `fetch`: query a submitted job. `fetch` includes the
/// report; with `--report-only` it prints just the report as one compact
/// JSON line (byte-comparable across requests — what the CI smoke diffs).
///
/// # Errors
///
/// Flag, transport, and service failures, as printable text.
pub fn status_cmd(rest: &[String], with_report: bool) -> Result<(), String> {
    let mut args = Args::new(rest);
    let mut addr = DEFAULT_ADDR.to_string();
    let mut id: Option<u64> = None;
    let mut report_only = false;
    while let Some(flag) = args.next_flag() {
        match flag {
            "--addr" => addr = args.value(flag)?.to_string(),
            "--id" => id = Some(parse(flag, args.value(flag)?)?),
            "--report-only" if with_report => report_only = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let id = id.ok_or("--id is required")?;
    let mut client = ServiceClient::connect(&addr).map_err(|e| e.to_string())?;
    let request = if with_report { Request::result(id) } else { Request::status(id) };
    let response = client.call(&request).map_err(|e| e.to_string())?;
    if report_only {
        let report = response
            .report
            .as_ref()
            .ok_or_else(|| format!("job {id} has no report (state: {:?})", response.state))?;
        println!("{}", serde_json::to_string(report).map_err(|e| e.to_string())?);
    } else {
        println!("{}", serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?);
    }
    if response.ok {
        Ok(())
    } else {
        Err(response.error.unwrap_or_else(|| "unspecified service error".into()))
    }
}

/// `metrics`: scrape a running daemon's telemetry and render it as
/// Prometheus-style text (the default) or raw JSON (`--json`).
///
/// Flags: `--addr A`, `--json`.
///
/// # Errors
///
/// Flag, transport, and service failures, as printable text.
pub fn metrics_cmd(rest: &[String]) -> Result<(), String> {
    let mut args = Args::new(rest);
    let mut addr = DEFAULT_ADDR.to_string();
    let mut json = false;
    while let Some(flag) = args.next_flag() {
        match flag {
            "--addr" => addr = args.value(flag)?.to_string(),
            "--json" => json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let mut client = ServiceClient::connect(&addr).map_err(|e| e.to_string())?;
    let response = client.call(&Request::metrics()).map_err(|e| e.to_string())?;
    if !response.ok {
        return Err(response.error.unwrap_or_else(|| "unspecified service error".into()));
    }
    let snapshot = response.metrics.ok_or("response carried no metrics snapshot")?;
    if json {
        println!("{}", serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?);
    } else {
        print!("{}", radionet_telemetry::render_prometheus(&snapshot));
    }
    Ok(())
}

/// `call`: the raw protocol passthrough — request JSON lines on stdin,
/// response JSON lines on stdout. CI drives `sweep`, `stats`, and
/// `shutdown` through this without bespoke flags.
///
/// # Errors
///
/// Flag and transport failures, plus any `ok: false` response (after
/// printing it), as printable text.
pub fn call_cmd(rest: &[String]) -> Result<(), String> {
    let mut args = Args::new(rest);
    let mut addr = DEFAULT_ADDR.to_string();
    while let Some(flag) = args.next_flag() {
        match flag {
            "--addr" => addr = args.value(flag)?.to_string(),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let mut client = ServiceClient::connect(&addr).map_err(|e| e.to_string())?;
    let mut failures = 0usize;
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let request: Request =
            serde_json::from_str(&line).map_err(|e| format!("bad request line: {e}"))?;
        let response = client.call(&request).map_err(|e| e.to_string())?;
        if !response.ok {
            failures += 1;
        }
        println!("{}", serde_json::to_string(&response).map_err(|e| e.to_string())?);
    }
    if failures > 0 {
        return Err(format!("{failures} request(s) answered ok: false"));
    }
    Ok(())
}
