//! The typed client side of the wire protocol: one TCP connection, one
//! request/response round per call.

use crate::protocol::{Request, Response, ServiceStats};
use radionet_api::{RunReport, RunSpec};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// A connected protocol client. Each method performs one request line and
/// reads one response line; the connection stays open across calls.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connects to a running service (e.g. `"127.0.0.1:7177"`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        Ok(ServiceClient { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// One raw protocol round: send `request`, read its [`Response`].
    ///
    /// # Errors
    ///
    /// I/O failures and unparseable response lines. A transport-level
    /// error is distinct from `ok: false`, which this returns unchanged.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let line = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "service closed"));
        }
        serde_json::from_str(&reply)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Like [`ServiceClient::call`] but turns `ok: false` into an error.
    fn call_ok(&mut self, request: &Request) -> io::Result<Response> {
        let response = self.call(request)?;
        if response.ok {
            Ok(response)
        } else {
            Err(io::Error::other(response.error.unwrap_or_else(|| "unspecified error".into())))
        }
    }

    /// Submits a spec without waiting; returns the job id.
    ///
    /// # Errors
    ///
    /// Transport failures plus service rejections (e.g. backpressure).
    pub fn submit(&mut self, spec: &RunSpec) -> io::Result<u64> {
        let response = self.call_ok(&Request::submit(spec.clone(), false))?;
        response.id.ok_or_else(|| io::Error::other("submit response without id"))
    }

    /// Submits a spec and blocks until its terminal response.
    ///
    /// # Errors
    ///
    /// Transport failures plus service rejections.
    pub fn submit_wait(&mut self, spec: &RunSpec) -> io::Result<Response> {
        self.call_ok(&Request::submit(spec.clone(), true))
    }

    /// Snapshots a job's state.
    ///
    /// # Errors
    ///
    /// Transport failures and unknown ids.
    pub fn status(&mut self, id: u64) -> io::Result<Response> {
        self.call_ok(&Request::status(id))
    }

    /// Snapshots a job's state including its report, once done.
    ///
    /// # Errors
    ///
    /// Transport failures and unknown ids.
    pub fn result(&mut self, id: u64) -> io::Result<Response> {
        self.call_ok(&Request::result(id))
    }

    /// Serves a sweep through the cache + sharded coordinator; returns
    /// the in-order reports and the per-cell hit flags.
    ///
    /// # Errors
    ///
    /// Transport failures and failing cells.
    pub fn sweep(
        &mut self,
        specs: &[RunSpec],
        shards: usize,
    ) -> io::Result<(Vec<RunReport>, Vec<bool>)> {
        let response = self.call_ok(&Request::sweep(specs.to_vec(), shards))?;
        match (response.reports, response.cache_hits) {
            (Some(reports), Some(hits)) => Ok((reports, hits)),
            _ => Err(io::Error::other("sweep response without reports")),
        }
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&mut self) -> io::Result<ServiceStats> {
        let response = self.call_ok(&Request::stats())?;
        response.stats.ok_or_else(|| io::Error::other("stats response without stats"))
    }

    /// Asks the service to shut down (acknowledged, then it drains).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.call_ok(&Request::shutdown()).map(|_| ())
    }
}
