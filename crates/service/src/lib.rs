//! # radionet-service — the serving layer over the pure engine
//!
//! Every run in this workspace is a **pure function** of its serde-able
//! [`RunSpec`](radionet_api::RunSpec): identical specs produce bit-identical
//! [`RunReport`](radionet_api::RunReport)s anywhere (pinned since the façade
//! redesign). This crate is the layer that turns that purity into a
//! long-running service shape — the ROADMAP's "heavy traffic from millions
//! of users" north star made concrete:
//!
//! * [`cache`] — a **content-addressed result cache**: requests are keyed
//!   by [`SpecHash`](radionet_api::SpecHash) over the canonical spec bytes,
//!   served from an in-memory LRU with a byte budget (plus an optional
//!   JSONL-backed persistent store), and probabilistically **audited**: a
//!   configurable fraction of hits is re-run fresh and compared
//!   byte-for-byte, so a stale or corrupted entry cannot survive silently.
//! * [`queue`] — a **bounded job queue** (std `Mutex`/`Condvar`, no new
//!   dependencies) feeding a worker pool, with explicit job states
//!   (`queued → running → done | failed`, `queued → cancelled`),
//!   backpressure ([`SubmitError::QueueFull`](queue::SubmitError) beyond
//!   the high-water mark), cancellation, and per-job timing.
//! * [`shard`] — a **sharded sweep coordinator**: a spec list is
//!   partitioned by the deterministic per-cell seed stream, shards execute
//!   on scoped threads (or spawned `radionetd --worker` subprocesses), and
//!   the merged output stream is **byte-identical** to the sequential
//!   [`Driver::run_sweep`](radionet_api::Driver::run_sweep) — purity makes
//!   the merge a trivial reorder, and the shard-merge tests pin it.
//! * [`protocol`] / [`server`] / [`client`] — a newline-delimited JSON
//!   request/response protocol (`submit`, `status`, `result`, `sweep`,
//!   `stats`, `shutdown`) served over `std::net::TcpListener` by a
//!   thread-per-connection accept loop, with a typed client on the other
//!   side.
//! * [`cli`] — the shared command implementations behind the `radionetd`
//!   binary and the `radionet serve / submit / status / fetch / call`
//!   subcommands, so the whole system is driveable from the shell and CI.
//!
//! ```no_run
//! use radionet_api::RunSpec;
//! use radionet_graph::families::Family;
//! use radionet_service::client::ServiceClient;
//! use radionet_service::server::{Service, ServiceConfig};
//!
//! let handle = Service::start(ServiceConfig::default()).unwrap();
//! let mut client = ServiceClient::connect(&handle.addr().to_string()).unwrap();
//! let spec = RunSpec::new("broadcast", Family::Grid, 36).with_seed(7);
//! let first = client.submit_wait(&spec).unwrap();
//! let second = client.submit_wait(&spec).unwrap();
//! assert_eq!(first.report, second.report); // bit-identical — and the
//! assert_eq!(second.cache_hit, Some(true)); // second one never re-ran
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod shard;

pub use cache::{CacheConfig, CacheStats, ResultCache, Served};
pub use client::ServiceClient;
pub use protocol::{Request, Response, ServiceStats};
pub use queue::{JobId, JobQueue, JobSnapshot, JobState, QueueLatency, SubmitError};
pub use server::{Service, ServiceConfig, ServiceHandle};
pub use shard::{run_sweep_sharded, shard_of, ShardMode};
