//! The wire protocol: newline-delimited JSON, one request object per line
//! in, one response object per line out, over a plain TCP stream.
//!
//! Both shapes are **flat structs with optional fields** rather than
//! tagged enums: a hand-written client (or a CI shell script piping
//! through `radionet call`) only ever has to emit
//! `{"cmd": "submit", "spec": {…}}` — field order free, absent and `null`
//! interchangeable, exactly the serde laxness the canonical spec hash was
//! built to absorb. Unknown commands get an `ok: false` response, never a
//! dropped connection; a connection stays open for any number of
//! request/response rounds.
//!
//! | `cmd`      | request fields        | response fields                      |
//! |------------|-----------------------|--------------------------------------|
//! | `submit`   | `spec`, `wait?`       | `id` (+ terminal fields when `wait`) |
//! | `status`   | `id`                  | `state`, timing                      |
//! | `result`   | `id`                  | `state`, `report?`, `cache_hit?`     |
//! | `sweep`    | `specs`, `shards?`    | `reports`, `cache_hits`              |
//! | `stats`    | —                     | `stats`                              |
//! | `metrics`  | —                     | `metrics` (telemetry snapshot)       |
//! | `shutdown` | —                     | `ok` (then the service drains)       |

use crate::cache::CacheStats;
use crate::queue::QueueLatency;
use radionet_api::{RunReport, RunSpec};
use radionet_telemetry::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// One request line (see the module table for which fields each `cmd`
/// reads; unread fields are ignored).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// The command: `submit`, `status`, `result`, `sweep`, `stats`,
    /// `metrics`, or `shutdown`.
    pub cmd: String,
    /// `submit`: the spec to run.
    pub spec: Option<RunSpec>,
    /// `sweep`: the specs to sweep, in order.
    pub specs: Option<Vec<RunSpec>>,
    /// `status` / `result`: the job id.
    pub id: Option<u64>,
    /// `sweep`: worker shards for the cache-miss cells (default 1).
    pub shards: Option<usize>,
    /// `submit`: block until the job is terminal and return its result in
    /// the same response (default `false`).
    pub wait: Option<bool>,
}

impl Request {
    /// A bare command with no arguments.
    fn bare(cmd: &str) -> Request {
        Request { cmd: cmd.into(), spec: None, specs: None, id: None, shards: None, wait: None }
    }

    /// `submit` — enqueue one spec; `wait` blocks for the result.
    pub fn submit(spec: RunSpec, wait: bool) -> Request {
        Request { spec: Some(spec), wait: Some(wait), ..Request::bare("submit") }
    }

    /// `status` — job-state snapshot.
    pub fn status(id: u64) -> Request {
        Request { id: Some(id), ..Request::bare("status") }
    }

    /// `result` — job-state snapshot plus the report once done.
    pub fn result(id: u64) -> Request {
        Request { id: Some(id), ..Request::bare("result") }
    }

    /// `sweep` — serve a spec list through cache + sharded coordinator.
    pub fn sweep(specs: Vec<RunSpec>, shards: usize) -> Request {
        Request { specs: Some(specs), shards: Some(shards), ..Request::bare("sweep") }
    }

    /// `stats` — service counters.
    pub fn stats() -> Request {
        Request::bare("stats")
    }

    /// `metrics` — the daemon's live telemetry snapshot.
    pub fn metrics() -> Request {
        Request::bare("metrics")
    }

    /// `shutdown` — acknowledge, then drain and stop the service.
    pub fn shutdown() -> Request {
        Request::bare("shutdown")
    }
}

/// Aggregated service counters (the `stats` response payload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Jobs accepted and still live (queued or running).
    pub jobs_live: u64,
    /// Jobs in a terminal state (done, failed, or cancelled).
    pub jobs_terminal: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Worker threads serving the queue.
    pub workers: u64,
    /// Queue wait / run-time quantiles over terminal jobs (`None` until a
    /// job has finished; also absent in responses from older daemons).
    pub queue_latency: Option<QueueLatency>,
}

/// One response line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request was served. `false` ⇒ `error` explains why.
    pub ok: bool,
    /// The failure message when `ok` is `false`.
    pub error: Option<String>,
    /// `submit`: the accepted job's id; `status`/`result`: echoed back.
    pub id: Option<u64>,
    /// Job state name (`queued`, `running`, `done`, `failed`,
    /// `cancelled`).
    pub state: Option<String>,
    /// Whether the result came from the cache.
    pub cache_hit: Option<bool>,
    /// The report (`result`, or `submit` with `wait`).
    pub report: Option<RunReport>,
    /// `sweep`: the merged reports, in request order.
    pub reports: Option<Vec<RunReport>>,
    /// `sweep`: per-cell cache hit/miss, aligned with `reports`.
    pub cache_hits: Option<Vec<bool>>,
    /// `stats`: the counters.
    pub stats: Option<ServiceStats>,
    /// Microseconds the job waited in the queue, when known.
    pub queued_micros: Option<u64>,
    /// Microseconds the job spent executing, when known.
    pub run_micros: Option<u64>,
    /// `metrics`: the daemon's telemetry snapshot.
    pub metrics: Option<MetricsSnapshot>,
}

impl Response {
    /// An empty success to be filled in field-by-field.
    pub fn ok() -> Response {
        Response {
            ok: true,
            error: None,
            id: None,
            state: None,
            cache_hit: None,
            report: None,
            reports: None,
            cache_hits: None,
            stats: None,
            queued_micros: None,
            run_micros: None,
            metrics: None,
        }
    }

    /// A failure response carrying `message`.
    pub fn err(message: impl Into<String>) -> Response {
        Response { ok: false, error: Some(message.into()), ..Response::ok() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::families::Family;

    #[test]
    fn requests_round_trip() {
        let spec = RunSpec::new("broadcast", Family::Grid, 36).with_seed(7);
        for req in [
            Request::submit(spec.clone(), true),
            Request::status(3),
            Request::result(3),
            Request::sweep(vec![spec], 4),
            Request::stats(),
            Request::shutdown(),
        ] {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'), "one request per line");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn hand_written_requests_parse() {
        // Minimal fields, arbitrary order — what a shell client sends.
        let req: Request = serde_json::from_str(r#"{"id": 12, "cmd": "status"}"#).unwrap();
        assert_eq!(req, Request::status(12));
        let req: Request = serde_json::from_str(r#"{"cmd": "stats"}"#).unwrap();
        assert_eq!(req, Request::stats());
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response { id: Some(4), state: Some("queued".into()), ..Response::ok() };
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
        let fail = Response::err("queue full");
        assert!(!fail.ok);
        assert_eq!(fail.error.as_deref(), Some("queue full"));
    }
}
