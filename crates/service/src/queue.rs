//! The bounded job queue: backpressure, cancellation, and monotone job
//! states over std `Mutex`/`Condvar` — no new dependencies.
//!
//! Producers [`submit`](JobQueue::submit) specs; beyond the capacity
//! high-water mark submission fails fast with
//! [`SubmitError::QueueFull`] instead of buffering unboundedly (the
//! client retries or sheds load — the service never falls over from queue
//! growth). Workers [`take`](JobQueue::take) jobs (blocking) or
//! [`try_take`](JobQueue::try_take) them (non-blocking, what the
//! deterministic property tests drive), run them, and
//! [`complete`](JobQueue::complete) them.
//!
//! **State machine.** `Queued → Running → Done | Failed`, plus
//! `Queued → Cancelled`. Transitions are checked at the single mutation
//! point (the private `Inner::transition`), so an illegal move (e.g. completing a
//! cancelled job, cancelling a running one) is impossible by construction
//! — the queue-semantics proptest then verifies the *observable* story:
//! states only ever move forward, and every accepted job reaches a
//! terminal state once workers drain the queue.

// Nearest-rank quantiles come from the workspace-shared helper so the
// queue's latency summary and the traffic layer's delivery percentiles can
// never drift apart in semantics.
use radionet_analysis::percentile;
use radionet_api::{RunReport, RunSpec};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Identifies one submitted job (monotone per queue, starting at 1).
pub type JobId = u64;

/// The lifecycle state of a job. Ordered: a job's state only ever moves to
/// a strictly larger [`JobState::rank`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished with a report.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled while still queued (running jobs cannot be cancelled —
    /// the engine has no preemption point, and a deterministic run is
    /// cheap enough to let finish).
    Cancelled,
}

impl JobState {
    /// Monotonicity rank: legal transitions strictly increase it.
    pub fn rank(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done | JobState::Failed | JobState::Cancelled => 2,
        }
    }

    /// Whether the job will never change state again.
    pub fn is_terminal(self) -> bool {
        self.rank() == 2
    }

    /// The wire name (`queued`, `running`, `done`, `failed`, `cancelled`).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// Why a submission was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its high-water mark; retry later or shed load.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The queue is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} jobs pending); retry later")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// An observable snapshot of one job (what `status`/`result` return).
#[derive(Clone, Debug)]
pub struct JobSnapshot {
    /// The job's id.
    pub id: JobId,
    /// Its state at snapshot time.
    pub state: JobState,
    /// The report, once `Done`.
    pub report: Option<RunReport>,
    /// Whether the result came from the cache, once `Done`.
    pub cache_hit: Option<bool>,
    /// The failure message, once `Failed`.
    pub error: Option<String>,
    /// Microseconds spent waiting in the queue (final once running).
    pub queued_micros: u64,
    /// Microseconds spent executing (final once terminal; 0 while queued).
    pub run_micros: u64,
}

/// Queue wait / run-time quantiles over terminal jobs (nearest-rank, in
/// microseconds) — the `stats` response's latency summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueLatency {
    /// Terminal jobs the quantiles were computed over.
    pub samples: u64,
    /// Median queue wait.
    pub queued_p50_micros: u64,
    /// 99th-percentile queue wait.
    pub queued_p99_micros: u64,
    /// Median execution time.
    pub run_p50_micros: u64,
    /// 99th-percentile execution time.
    pub run_p99_micros: u64,
}

/// One job's full record.
struct Job {
    spec: RunSpec,
    state: JobState,
    report: Option<RunReport>,
    cache_hit: Option<bool>,
    error: Option<String>,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
}

struct Inner {
    next_id: JobId,
    /// Accepted-but-untaken ids in FIFO order; cancelled ids are lazily
    /// skipped at take time (cancellation does not reshuffle the deque).
    pending: VecDeque<JobId>,
    jobs: HashMap<JobId, Job>,
    shutdown: bool,
}

impl Inner {
    /// The single mutation point for job states: checks monotonicity and
    /// stamps timing.
    fn transition(&mut self, id: JobId, to: JobState) {
        let job = self.jobs.get_mut(&id).expect("transition of unknown job");
        assert!(to.rank() > job.state.rank(), "illegal job transition {:?} → {to:?}", job.state);
        match to {
            JobState::Running => job.started = Some(Instant::now()),
            JobState::Done | JobState::Failed | JobState::Cancelled => {
                job.finished = Some(Instant::now());
            }
            JobState::Queued => unreachable!("rank check rejects moves back to Queued"),
        }
        job.state = to;
    }
}

/// The bounded MPMC job queue (see the module docs).
pub struct JobQueue {
    inner: Mutex<Inner>,
    /// Signalled when `pending` gains work or shutdown begins.
    ready: Condvar,
    /// Signalled when any job reaches a terminal state.
    settled: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue rejecting submissions beyond `capacity` pending jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                next_id: 1,
                pending: VecDeque::new(),
                jobs: HashMap::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            settled: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured high-water mark.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accepts a job, or rejects it when the backlog is at capacity.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at the high-water mark,
    /// [`SubmitError::ShuttingDown`] after [`JobQueue::shutdown`].
    pub fn submit(&self, spec: RunSpec) -> Result<JobId, SubmitError> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        // Count only live pending entries: lazily-skipped cancellations
        // must not eat capacity, or backpressure would lie.
        let backlog =
            inner.pending.iter().filter(|id| inner.jobs[id].state == JobState::Queued).count();
        if backlog >= self.capacity {
            return Err(SubmitError::QueueFull { capacity: self.capacity });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(
            id,
            Job {
                spec,
                state: JobState::Queued,
                report: None,
                cache_hit: None,
                error: None,
                submitted: Instant::now(),
                started: None,
                finished: None,
            },
        );
        inner.pending.push_back(id);
        self.ready.notify_one();
        Ok(id)
    }

    /// Cancels a job iff it is still queued; returns whether it did.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut inner = self.inner.lock().expect("queue poisoned");
        match inner.jobs.get(&id) {
            Some(job) if job.state == JobState::Queued => {
                inner.transition(id, JobState::Cancelled);
                self.settled.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Blocking worker intake: waits for a queued job, marks it running,
    /// and returns it. `None` once the queue shuts down and drains.
    pub fn take(&self) -> Option<(JobId, RunSpec)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(found) = Self::pop_queued(&mut inner) {
                return Some(found);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Non-blocking intake (the property tests' deterministic worker
    /// step): like [`JobQueue::take`] but `None` when nothing is queued.
    pub fn try_take(&self) -> Option<(JobId, RunSpec)> {
        Self::pop_queued(&mut self.inner.lock().expect("queue poisoned"))
    }

    /// Pops the first still-queued pending id and marks it running.
    fn pop_queued(inner: &mut Inner) -> Option<(JobId, RunSpec)> {
        while let Some(id) = inner.pending.pop_front() {
            if inner.jobs[&id].state == JobState::Queued {
                inner.transition(id, JobState::Running);
                let spec = inner.jobs[&id].spec.clone();
                return Some((id, spec));
            }
            // Cancelled while pending: drop the stale deque entry.
        }
        None
    }

    /// Worker hand-back: a running job finished with a served report
    /// (`Ok(report, cache_hit)`) or an error message.
    pub fn complete(&self, id: JobId, outcome: Result<(RunReport, bool), String>) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        match outcome {
            Ok((report, cache_hit)) => {
                inner.transition(id, JobState::Done);
                let job = inner.jobs.get_mut(&id).expect("transition checked existence");
                job.report = Some(report);
                job.cache_hit = Some(cache_hit);
            }
            Err(message) => {
                inner.transition(id, JobState::Failed);
                inner.jobs.get_mut(&id).expect("transition checked existence").error =
                    Some(message);
            }
        }
        self.settled.notify_all();
    }

    /// A snapshot of one job, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobSnapshot> {
        let inner = self.inner.lock().expect("queue poisoned");
        inner.jobs.get(&id).map(|job| snapshot(id, job))
    }

    /// Blocks until the job reaches a terminal state, then snapshots it.
    /// `None` for an unknown id.
    pub fn wait_terminal(&self, id: JobId) -> Option<JobSnapshot> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            match inner.jobs.get(&id) {
                None => return None,
                Some(job) if job.state.is_terminal() => return Some(snapshot(id, job)),
                Some(_) => inner = self.settled.wait(inner).expect("queue poisoned"),
            }
        }
    }

    /// Jobs accepted so far, by terminality: `(live, terminal)`.
    pub fn counts(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("queue poisoned");
        let terminal = inner.jobs.values().filter(|j| j.state.is_terminal()).count() as u64;
        (inner.jobs.len() as u64 - terminal, terminal)
    }

    /// Queue wait / run-time quantiles over every terminal job, or `None`
    /// before the first job finishes. Cancelled jobs contribute their
    /// queue wait but no run time sample (they never ran).
    pub fn latency(&self) -> Option<QueueLatency> {
        let inner = self.inner.lock().expect("queue poisoned");
        let mut queued: Vec<u64> = Vec::new();
        let mut run: Vec<u64> = Vec::new();
        for job in inner.jobs.values() {
            if !job.state.is_terminal() {
                continue;
            }
            // Same derivations as `snapshot`, without cloning the report.
            let queued_end = job.started.or(job.finished).expect("terminal jobs are stamped");
            queued.push(queued_end.duration_since(job.submitted).as_micros() as u64);
            if let (Some(s), Some(f)) = (job.started, job.finished) {
                run.push(f.duration_since(s).as_micros() as u64);
            }
        }
        if queued.is_empty() {
            return None;
        }
        queued.sort_unstable();
        run.sort_unstable();
        Some(QueueLatency {
            samples: queued.len() as u64,
            queued_p50_micros: percentile(&queued, 0.50),
            queued_p99_micros: percentile(&queued, 0.99),
            run_p50_micros: percentile(&run, 0.50),
            run_p99_micros: percentile(&run, 0.99),
        })
    }

    /// Stops intake and wakes every blocked worker; pending jobs already
    /// accepted still drain.
    pub fn shutdown(&self) {
        self.inner.lock().expect("queue poisoned").shutdown = true;
        self.ready.notify_all();
        self.settled.notify_all();
    }
}

/// Builds the observable snapshot of a job record.
fn snapshot(id: JobId, job: &Job) -> JobSnapshot {
    let queued_end = job.started.or(job.finished);
    let queued_micros = match queued_end {
        Some(t) => t.duration_since(job.submitted).as_micros() as u64,
        None => job.submitted.elapsed().as_micros() as u64,
    };
    let run_micros = match (job.started, job.finished) {
        (Some(s), Some(f)) => f.duration_since(s).as_micros() as u64,
        (Some(s), None) => s.elapsed().as_micros() as u64,
        _ => 0,
    };
    JobSnapshot {
        id,
        state: job.state,
        report: job.report.clone(),
        cache_hit: job.cache_hit,
        error: job.error.clone(),
        queued_micros,
        run_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::families::Family;

    fn spec(seed: u64) -> RunSpec {
        RunSpec::new("luby-mis", Family::Path, 8).with_seed(seed)
    }

    fn report(seed: u64) -> RunReport {
        radionet_api::Driver::standard().run(&spec(seed)).unwrap()
    }

    #[test]
    fn lifecycle_and_timing() {
        let q = JobQueue::new(4);
        let id = q.submit(spec(1)).unwrap();
        assert_eq!(q.status(id).unwrap().state, JobState::Queued);
        let (taken, s) = q.try_take().unwrap();
        assert_eq!((taken, &s), (id, &spec(1)));
        assert_eq!(q.status(id).unwrap().state, JobState::Running);
        q.complete(id, Ok((report(1), false)));
        let snap = q.status(id).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert!(snap.report.is_some());
        assert_eq!(snap.cache_hit, Some(false));
        assert_eq!(q.counts(), (0, 1));
    }

    #[test]
    fn backpressure_is_a_clean_rejection() {
        let q = JobQueue::new(2);
        q.submit(spec(1)).unwrap();
        q.submit(spec(2)).unwrap();
        let err = q.submit(spec(3)).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { capacity: 2 });
        // Cancelling a pending job frees its slot immediately.
        let id = q.submit_front_cancel();
        assert!(q.submit(spec(4)).is_ok(), "cancelled job {id} must not eat capacity");
    }

    impl JobQueue {
        /// Test helper: cancel the oldest pending job, returning its id.
        fn submit_front_cancel(&self) -> JobId {
            let id = *self.inner.lock().unwrap().pending.front().unwrap();
            assert!(self.cancel(id));
            id
        }
    }

    #[test]
    fn cancellation_only_while_queued() {
        let q = JobQueue::new(4);
        let id = q.submit(spec(1)).unwrap();
        let (taken, _) = q.try_take().unwrap();
        assert_eq!(taken, id);
        assert!(!q.cancel(id), "running jobs cannot be cancelled");
        q.complete(id, Err("boom".into()));
        assert!(!q.cancel(id), "terminal jobs cannot be cancelled");
        let snap = q.status(id).unwrap();
        assert_eq!(snap.state, JobState::Failed);
        assert_eq!(snap.error.as_deref(), Some("boom"));
    }

    #[test]
    fn cancelled_jobs_never_reach_workers() {
        let q = JobQueue::new(8);
        let a = q.submit(spec(1)).unwrap();
        let b = q.submit(spec(2)).unwrap();
        assert!(q.cancel(a));
        let (taken, _) = q.try_take().unwrap();
        assert_eq!(taken, b, "the cancelled head is skipped");
        assert!(q.try_take().is_none());
    }

    #[test]
    fn blocking_take_wakes_on_submit_and_shutdown() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut served = 0;
                while let Some((id, _)) = q.take() {
                    q.complete(id, Err("drained".into()));
                    served += 1;
                }
                served
            })
        };
        let id = q.submit(spec(1)).unwrap();
        assert_eq!(q.wait_terminal(id).unwrap().state, JobState::Failed);
        q.shutdown();
        assert_eq!(worker.join().unwrap(), 1);
        assert_eq!(q.submit(spec(2)).unwrap_err(), SubmitError::ShuttingDown);
    }
}
